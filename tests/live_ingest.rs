//! Online ingest (`LiveEngine`): the generation contract.
//!
//! 1. **Refresh ≡ fresh build.** For any interleaving of pushes,
//!    queries and refreshes, a refreshed `LiveEngine` answers exactly
//!    like a from-scratch `SealEngine::build` over the union corpus —
//!    for every `FilterKind` with an index path and every build thread
//!    count (proptest).
//! 2. **Delta visibility.** An object is answerable the moment it is
//!    pushed, before any refresh, under the id it will keep forever.
//! 3. **Lock-free serving.** Queries keep answering — and stay
//!    correct — while a `refresh()` builds the next generation on
//!    another thread; every observed answer set matches one of the two
//!    legal snapshots (pre-swap generation + frozen-weight overlay, or
//!    post-swap union build).

use proptest::prelude::*;
use seal_core::{verify::naive_search, BuildOpts};
use seal_core::{
    FilterKind, LiveEngine, ObjectId, ObjectStore, Query, RoiObject, SealEngine, SimilarityConfig,
};
use seal_geom::Rect;
use seal_text::{TokenId, TokenSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

/// Every filter kind that serves off a signature index (the baselines
/// and the naive scan have no index path to go stale).
fn indexed_kinds() -> Vec<FilterKind> {
    vec![
        FilterKind::Token,
        FilterKind::TokenCompressed,
        FilterKind::TokenBasic,
        FilterKind::Grid { side: 8 },
        FilterKind::HashHybrid {
            side: 8,
            buckets: None,
        },
        FilterKind::HashHybrid {
            side: 8,
            buckets: Some(64),
        },
        FilterKind::HashHybridCompressed {
            side: 8,
            buckets: Some(64),
        },
        FilterKind::Hierarchical {
            max_level: 4,
            budget: 8,
        },
        FilterKind::Adaptive { side: 8 },
    ]
}

const VOCAB: usize = 12;

/// Proptest-generated object: position, extent, 1–3 token ids.
type RawObj = (u32, u32, u32, u32, Vec<u32>);

fn obj_strategy() -> impl Strategy<Value = RawObj> {
    (
        0u32..100,
        0u32..100,
        1u32..25,
        1u32..25,
        proptest::collection::vec(0u32..VOCAB as u32, 1..4),
    )
}

fn materialize(raw: &RawObj) -> RoiObject {
    let (x, y, w, h, ref tokens) = *raw;
    RoiObject::new(
        Rect::new(
            f64::from(x),
            f64::from(y),
            f64::from(x + w),
            f64::from(y + h),
        )
        .unwrap(),
        TokenSet::from_ids(tokens.iter().map(|&t| TokenId(t))),
    )
}

fn workload() -> Vec<Query> {
    let region = |x0, y0, x1, y1| Rect::new(x0, y0, x1, y1).unwrap();
    vec![
        Query::with_token_ids(
            region(0.0, 0.0, 60.0, 60.0),
            [TokenId(0), TokenId(1)],
            0.1,
            0.1,
        )
        .unwrap(),
        Query::with_token_ids(
            region(20.0, 20.0, 90.0, 90.0),
            [TokenId(2), TokenId(5), TokenId(7)],
            0.3,
            0.2,
        )
        .unwrap(),
        Query::with_token_ids(region(50.0, 0.0, 125.0, 70.0), [TokenId(3)], 0.2, 0.5).unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any push/refresh interleaving, checked against a fresh build
    /// over the union after every refresh, for every indexed kind.
    #[test]
    fn refreshed_generations_answer_like_fresh_builds(
        raw in proptest::collection::vec(obj_strategy(), 6..32),
        initial_frac in 1usize..5,
        cuts in proptest::collection::vec(0usize..32, 0..3),
        threads in 0usize..3,
    ) {
        let objects: Vec<RoiObject> = raw.iter().map(materialize).collect();
        let initial = (objects.len() * initial_frac / 5).max(1).min(objects.len());
        let queries = workload();
        for kind in indexed_kinds() {
            let store0 = Arc::new(ObjectStore::from_objects(objects[..initial].to_vec(), VOCAB));
            let live = LiveEngine::with_opts(
                store0,
                kind,
                SimilarityConfig::default(),
                BuildOpts::with_threads(threads),
            );
            for (i, o) in objects[initial..].iter().enumerate() {
                let id = live.push(o.clone());
                prop_assert_eq!(id, ObjectId((initial + i) as u32), "{:?}: delta ids dense", kind);
                if cuts.contains(&i) {
                    live.refresh();
                    assert_matches_fresh(&live, &objects[..initial + i + 1], &queries, kind);
                }
            }
            live.refresh();
            assert_matches_fresh(&live, &objects, &queries, kind);
            prop_assert_eq!(live.len(), objects.len());
            prop_assert_eq!(live.staged_len(), 0);
        }
    }

    /// A pushed object is answerable immediately: a query that is the
    /// object itself (τ = 1, both sides) must return its id before any
    /// refresh, under any kind and any weights (self-similarity is 1
    /// regardless of idf).
    #[test]
    fn pushed_objects_are_visible_before_refresh(
        raw in proptest::collection::vec(obj_strategy(), 4..16),
        pushed in obj_strategy(),
    ) {
        let objects: Vec<RoiObject> = raw.iter().map(materialize).collect();
        let newcomer = materialize(&pushed);
        let q = Query::new(newcomer.region, newcomer.tokens.clone(), 1.0, 1.0).unwrap();
        for kind in indexed_kinds() {
            let store = Arc::new(ObjectStore::from_objects(objects.clone(), VOCAB));
            let live = LiveEngine::new(store, kind);
            let id = live.push(newcomer.clone());
            prop_assert_eq!(id, ObjectId(objects.len() as u32));
            let answers = live.search(&q).sorted().answers;
            prop_assert!(
                answers.contains(&id),
                "{:?}: pushed object invisible before refresh ({:?})", kind, answers
            );
        }
    }
}

/// The generation contract: the live engine's answers equal a fresh
/// `SealEngine::build` over the union corpus, query for query.
fn assert_matches_fresh(
    live: &LiveEngine,
    union: &[RoiObject],
    queries: &[Query],
    kind: FilterKind,
) {
    let fresh_store = Arc::new(ObjectStore::from_objects(union.to_vec(), VOCAB));
    let fresh = SealEngine::build(fresh_store.clone(), kind);
    let cfg = SimilarityConfig::default();
    for (qi, q) in queries.iter().enumerate() {
        let got = live.search(q).sorted().answers;
        let expect = fresh.search(q).sorted().answers;
        assert_eq!(
            got, expect,
            "{kind:?} query {qi} diverged from the fresh union build"
        );
        // And both agree with the oracle, so the equality is not a
        // shared bug.
        let mut oracle = naive_search(&fresh_store, &cfg, q);
        oracle.sort_unstable();
        assert_eq!(got, oracle, "{kind:?} query {qi} oracle");
    }
}

/// The two legal answer sets a concurrent reader may observe for a
/// query while a refresh is in flight.
struct LegalAnswers {
    /// Pre-swap: old generation + frozen-weight delta overlay.
    before: Vec<ObjectId>,
    /// Post-swap: the union generation.
    after: Vec<ObjectId>,
}

#[test]
fn queries_keep_answering_while_refresh_runs() {
    let (store, queries) = twitter_fixture(900, 3);
    let all: Vec<RoiObject> = store.objects().to_vec();
    let vocab = store.vocab_size();
    let split = 700usize;
    let gen0_store = Arc::new(ObjectStore::from_objects(all[..split].to_vec(), vocab));
    let delta = &all[split..];
    let union_store = Arc::new(ObjectStore::from_objects(all.clone(), vocab));
    let cfg = SimilarityConfig::default();

    // Both legal snapshots per query, straight from the oracle.
    let legal: Vec<LegalAnswers> = queries
        .iter()
        .map(|q| {
            let mut before = naive_search(&gen0_store, &cfg, q);
            for (i, o) in delta.iter().enumerate() {
                if cfg.is_answer(q, o, gen0_store.weights()) {
                    before.push(ObjectId((split + i) as u32));
                }
            }
            before.sort_unstable();
            let mut after = naive_search(&union_store, &cfg, q);
            after.sort_unstable();
            LegalAnswers { before, after }
        })
        .collect();

    let kind = FilterKind::Hierarchical {
        max_level: 5,
        budget: 8,
    };
    let live = LiveEngine::new(gen0_store, kind);
    live.push_all(delta.iter().cloned());

    const READERS: usize = 2;
    let refresh_done = AtomicBool::new(false);
    let ready = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);
    let served_during_refresh = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Readers: hammer the workload until the builder finishes,
        // validating every answer set against the two legal snapshots.
        for _ in 0..READERS {
            scope.spawn(|| {
                let mut qi = 0usize;
                while !refresh_done.load(Ordering::Acquire) {
                    let q = &queries[qi % queries.len()];
                    let got = live.search(q).sorted().answers;
                    let l = &legal[qi % queries.len()];
                    assert!(
                        got == l.before || got == l.after,
                        "mid-refresh answer matched neither legal snapshot:\n got {got:?}\n pre {:?}\n post {:?}",
                        l.before,
                        l.after
                    );
                    if qi == 0 {
                        ready.fetch_add(1, Ordering::Release);
                    }
                    served.fetch_add(1, Ordering::Relaxed);
                    if !refresh_done.load(Ordering::Acquire) {
                        served_during_refresh.fetch_add(1, Ordering::Relaxed);
                    }
                    qi += 1;
                }
            });
        }
        // Start gate: don't begin the refresh until every reader has
        // completed a query — otherwise a loaded machine could finish
        // the whole build before a reader thread even starts, and the
        // served-during-refresh assertion below would race.
        while ready.load(Ordering::Acquire) < READERS {
            std::thread::yield_now();
        }
        let stats = live.refresh();
        assert_eq!(stats.merged, delta.len());
        assert_eq!(stats.generation, 1);
        refresh_done.store(true, Ordering::Release);
    });
    assert!(
        served_during_refresh.load(Ordering::Relaxed) > 0,
        "no query completed while the refresh was in flight — readers blocked on the builder?"
    );

    // Steady state after the swap: exactly the union build's answers.
    for (q, l) in queries.iter().zip(&legal) {
        assert_eq!(live.search(q).sorted().answers, l.after);
    }
    assert_eq!(live.generation(), 1);
    assert_eq!(live.staged_len(), 0);
}

#[test]
fn repeated_push_refresh_cycles_stay_exact() {
    // The streaming-ingest loop the CLI `ingest` command drives:
    // batch → refresh → serve, many times, against the oracle each
    // round.
    let (store, queries) = twitter_fixture(600, 2);
    let all: Vec<RoiObject> = store.objects().to_vec();
    let vocab = store.vocab_size();
    let cfg = SimilarityConfig::default();
    let live = LiveEngine::new(
        Arc::new(ObjectStore::from_objects(all[..200].to_vec(), vocab)),
        FilterKind::Token,
    );
    let mut ingested = 200usize;
    for chunk in all[200..].chunks(100) {
        live.push_all(chunk.iter().cloned());
        ingested += chunk.len();
        let stats = live.refresh();
        assert_eq!(stats.merged, chunk.len());
        assert_eq!(stats.total, ingested);
        let so_far = Arc::new(ObjectStore::from_objects(all[..ingested].to_vec(), vocab));
        for q in &queries {
            let mut oracle = naive_search(&so_far, &cfg, q);
            oracle.sort_unstable();
            assert_eq!(
                live.search(q).sorted().answers,
                oracle,
                "round at {ingested} objects diverged"
            );
        }
    }
    assert_eq!(live.generation(), 4);
    assert_eq!(live.len(), 600);
}
