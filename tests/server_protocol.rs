//! Black-box protocol conformance for `seal-server`: every test binds
//! an ephemeral port and speaks to the server over a raw
//! [`TcpStream`] — request bytes in, response bytes out, no shared
//! types with the implementation beyond the spawn handle.
//!
//! Covered: the happy path of every endpoint (with answers checked
//! against a direct `LiveEngine::search` on the engine behind the
//! server), pipelined requests, keep-alive vs `Connection: close`,
//! `Expect: 100-continue`, the full typed-rejection table
//! (400/404/405/408/413/431/501/503/505), slow-loris and truncated
//! writes, and the churn backpressure gate. A server that panics on
//! any of these inputs fails the follow-up "still serving" probes.

use seal_core::{FilterKind, LiveEngine, Query};
use seal_server::{Limits, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

const KIND: FilterKind = FilterKind::Hierarchical {
    max_level: 5,
    budget: 8,
};

/// A small served corpus plus its query workload.
fn spawn_fixture(cfg: ServerConfig) -> (Server, Vec<Query>) {
    let (store, queries) = twitter_fixture(300, 2);
    let live = Arc::new(LiveEngine::new(Arc::new(store), KIND));
    let server = Server::spawn(live, cfg).expect("bind ephemeral port");
    (server, queries)
}

fn config() -> ServerConfig {
    ServerConfig::default()
}

/// Writes `request`, half-closes the write side, and drains the
/// response bytes until the server closes.
fn send(server: &Server, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).expect("write request");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read response");
    out
}

fn send_str(server: &Server, request: &str) -> String {
    String::from_utf8_lossy(&send(server, request.as_bytes())).into_owned()
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n")
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn status_of(response: &str) -> u16 {
    let line = response.lines().next().unwrap_or("");
    assert!(
        line.starts_with("HTTP/1.1 "),
        "not an HTTP/1.1 status line: {line:?}"
    );
    line[9..12].parse().expect("numeric status")
}

/// Reads exactly one response off a keep-alive stream (head +
/// `Content-Length` body), leaving the connection open.
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "peer closed mid-head: {buf:?}");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    while buf.len() < head_end + len {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "peer closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(buf.len(), head_end + len, "server sent extra bytes");
    String::from_utf8_lossy(&buf).into_owned()
}

/// `region=…&tokens=…&tau_r=…&tau_t=…` for a workload query (float
/// `Display` round-trips exactly, so the server re-parses the same
/// query).
fn query_params(q: &Query) -> String {
    let tokens: Vec<String> = q.tokens.iter().map(|t| t.0.to_string()).collect();
    format!(
        "region={},{},{},{}&tokens={}&tau_r={}&tau_t={}",
        q.region.min().x,
        q.region.min().y,
        q.region.max().x,
        q.region.max().y,
        tokens.join(","),
        q.tau_spatial,
        q.tau_textual,
    )
}

/// Extracts the id list out of `"answers":[…]` in a response body.
fn parse_answers(response: &str) -> Vec<u32> {
    let start = response
        .find("\"answers\":[")
        .unwrap_or_else(|| panic!("no answers array in {response:?}"))
        + "\"answers\":[".len();
    let end = start + response[start..].find(']').expect("unterminated answers");
    response[start..end]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("numeric object id"))
        .collect()
}

#[test]
fn admin_endpoints_answer_200() {
    let (server, _) = spawn_fixture(config());
    for path in ["/status", "/", "/metrics"] {
        let resp = send_str(&server, &get(path));
        assert_eq!(status_of(&resp), 200, "GET {path}:\n{resp}");
        assert!(resp.contains("\"generation\""), "GET {path}:\n{resp}");
        assert!(resp.contains("Content-Type: application/json"));
    }
}

#[test]
fn wire_answers_equal_direct_engine_answers() {
    let (server, queries) = spawn_fixture(config());
    let live = server.engine();
    for q in &queries {
        let resp = send_str(&server, &get(&format!("/query?{}", query_params(q))));
        assert_eq!(status_of(&resp), 200, "{resp}");
        let direct: Vec<u32> = live
            .search(q)
            .sorted()
            .answers
            .iter()
            .map(|id| id.0)
            .collect();
        assert_eq!(parse_answers(&resp), direct, "wire drifted from engine");
    }
}

#[test]
fn post_query_body_is_equivalent_to_get_params() {
    let (server, queries) = spawn_fixture(config());
    for q in queries.iter().take(4) {
        let params = query_params(q);
        let via_get = parse_answers(&send_str(&server, &get(&format!("/query?{params}"))));
        let via_post = parse_answers(&send_str(&server, &post("/query", &params)));
        assert_eq!(via_get, via_post);
    }
}

#[test]
fn push_then_refresh_lifecycle() {
    let (server, _) = spawn_fixture(config());
    // Push two objects in one body (with a blank line to skip).
    let resp = send_str(&server, &post("/push", "1 1 2 2 0,1\n\n3 3 4 4 2\n"));
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"staged\":2"), "{resp}");
    assert!(resp.contains("\"first_id\":300"), "{resp}");

    let status = send_str(&server, &get("/status"));
    assert!(status.contains("\"staged\":2"), "{status}");

    // The staged objects are answerable before any refresh, under the
    // ids they will keep forever.
    let probe = "region=0.5,0.5,4.5,4.5&tokens=0,1,2&tau_r=0.01&tau_t=0.01";
    let overlay = parse_answers(&send_str(&server, &get(&format!("/query?{probe}"))));
    assert!(
        overlay.contains(&300) && overlay.contains(&301),
        "staged objects invisible before refresh: {overlay:?}"
    );

    let resp = send_str(&server, &post("/refresh", ""));
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"generation\":1"), "{resp}");
    assert!(resp.contains("\"merged\":2"), "{resp}");

    let status = send_str(&server, &get("/status"));
    assert!(status.contains("\"generation\":1"), "{status}");
    assert!(status.contains("\"staged\":0"), "{status}");
    assert!(status.contains("\"objects\":302"), "{status}");

    // Still answerable, same ids, now from the merged generation.
    let merged = parse_answers(&send_str(&server, &get(&format!("/query?{probe}"))));
    assert_eq!(merged, overlay, "ids changed across the swap");
}

#[test]
fn malformed_requests_get_typed_status_codes() {
    let (server, _) = spawn_fixture(config());
    let many_headers: String = {
        let hs: String = (0..70).map(|i| format!("H{i}: v\r\n")).collect();
        format!("GET /status HTTP/1.1\r\n{hs}\r\n")
    };
    let huge_head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
    let cases: Vec<(String, u16, &str)> = vec![
        ("GARBAGE\r\n\r\n".into(), 400, "not a request line"),
        ("GET /status\r\n\r\n".into(), 400, "two-field request line"),
        ("GET /status HTTP/2.0\r\n\r\n".into(), 505, "wrong version"),
        (
            "GET /status HTTP/1.1\r\nno-colon-here\r\n\r\n".into(),
            400,
            "header without a colon",
        ),
        (many_headers, 431, "too many headers"),
        (huge_head, 431, "oversized head"),
        (
            "POST /push HTTP/1.1\r\nContent-Length: banana\r\n\r\n".into(),
            400,
            "non-numeric content length",
        ),
        (
            "POST /push HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\n".into(),
            400,
            "disagreeing duplicate content lengths",
        ),
        (
            format!(
                "POST /push HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                Limits::default().max_body_bytes + 1
            ),
            413,
            "declared body over the limit",
        ),
        (
            "POST /push HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".into(),
            501,
            "chunked transfer encoding",
        ),
    ];
    for (req, want, what) in cases {
        let resp = send_str(&server, &req);
        assert_eq!(status_of(&resp), want, "{what}:\n{resp}");
    }
    // The server survived the whole table.
    assert_eq!(status_of(&send_str(&server, &get("/status"))), 200);
}

#[test]
fn bad_query_parameters_answer_400() {
    let (server, _) = spawn_fixture(config());
    let cases = [
        "/query",                              // missing region
        "/query?region=1,2,3",                 // three fields
        "/query?region=1,2,nan-ish,x",         // unparsable coordinate
        "/query?region=5,5,1,1",               // inverted rect
        "/query?region=0,0,1,1&tau_r=zero",    // unparsable tau
        "/query?region=0,0,1,1&tau_r=0",       // tau out of (0,1]
        "/query?region=0,0,1,1&tokens=coffee", // name, but no dictionary
    ];
    for path in cases {
        let resp = send_str(&server, &get(path));
        assert_eq!(status_of(&resp), 400, "GET {path}:\n{resp}");
    }
    // Push bodies are validated as a whole before staging anything.
    for body in ["", "1 2 3\n", "1 1 2 2 0\nbroken line\n", "1 1 2 2 \n"] {
        let resp = send_str(&server, &post("/push", body));
        assert_eq!(status_of(&resp), 400, "push {body:?}:\n{resp}");
    }
    let status = send_str(&server, &get("/status"));
    assert!(status.contains("\"staged\":0"), "a bad body staged objects");
}

#[test]
fn unknown_paths_and_methods_answer_404_and_405() {
    let (server, _) = spawn_fixture(config());
    assert_eq!(status_of(&send_str(&server, &get("/nope"))), 404);
    let cases = [
        ("DELETE /query HTTP/1.1\r\n\r\n", "Allow: GET, POST"),
        ("GET /push HTTP/1.1\r\n\r\n", "Allow: POST"),
        ("GET /refresh HTTP/1.1\r\n\r\n", "Allow: POST"),
        (
            "POST /status HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
            "Allow: GET",
        ),
        (
            "POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
            "Allow: GET",
        ),
    ];
    for (req, allow) in cases {
        let resp = send_str(&server, req);
        assert_eq!(status_of(&resp), 405, "{req:?}:\n{resp}");
        assert!(resp.contains(allow), "{req:?} missing {allow:?}:\n{resp}");
    }
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (server, _) = spawn_fixture(config());
    let pipeline = format!("{}{}{}", get("/status"), get("/metrics"), get("/status"));
    let resp = send_str(&server, &pipeline);
    let oks = resp.matches("HTTP/1.1 200 OK").count();
    assert_eq!(oks, 3, "expected three pipelined responses:\n{resp}");
    // Response order matches request order: status, metrics, status.
    let status_marker = "\"uptime_seconds\"";
    let metrics_marker = "\"batched_queries\"";
    let first_status = resp.find(status_marker).expect("first status body");
    let metrics = resp.find(metrics_marker).expect("metrics body");
    let second_status = resp.rfind(status_marker).expect("second status body");
    assert!(
        first_status < metrics && metrics < second_status,
        "pipelined responses out of order:\n{resp}"
    );
}

#[test]
fn keep_alive_serves_multiple_exchanges_and_close_closes() {
    let (server, _) = spawn_fixture(config());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for _ in 0..3 {
        stream.write_all(get("/status").as_bytes()).unwrap();
        let resp = read_one_response(&mut stream);
        assert_eq!(status_of(&resp), 200);
        assert!(resp.contains("Connection: keep-alive"), "{resp}");
    }
    // `Connection: close` is honored: the response says so and the
    // server closes the socket afterwards.
    stream
        .write_all(b"GET /status HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let resp = read_one_response(&mut stream);
    assert!(resp.contains("Connection: close"), "{resp}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty(), "bytes after a close response: {rest:?}");
}

#[test]
fn http10_defaults_to_close() {
    let (server, _) = spawn_fixture(config());
    let resp = send_str(&server, "GET /status HTTP/1.0\r\n\r\n");
    assert_eq!(status_of(&resp), 200);
    assert!(resp.contains("Connection: close"), "{resp}");
}

#[test]
fn expect_continue_handshake() {
    let (server, _) = spawn_fixture(config());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = "1 1 2 2 0";
    stream
        .write_all(
            format!(
                "POST /push HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    // The interim response arrives before we send a single body byte.
    let mut interim = [0u8; 25];
    stream.read_exact(&mut interim).expect("read 100");
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    stream.write_all(body.as_bytes()).unwrap();
    let resp = read_one_response(&mut stream);
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"staged\":1"), "{resp}");
}

#[test]
fn slow_loris_write_times_out_with_408() {
    let mut cfg = config();
    cfg.request_timeout = Duration::from_millis(250);
    let (server, _) = spawn_fixture(cfg);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A request that starts but never finishes: one partial line, then
    // silence past the deadline.
    stream.write_all(b"GET /status HT").unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read 408 + close");
    let resp = String::from_utf8_lossy(&out);
    assert_eq!(status_of(&resp), 408, "{resp}");
    // The server is still serving afterwards.
    assert_eq!(status_of(&send_str(&server, &get("/status"))), 200);
}

#[test]
fn idle_keep_alive_expires_silently() {
    let mut cfg = config();
    cfg.request_timeout = Duration::from_millis(250);
    let (server, _) = spawn_fixture(cfg);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // No bytes at all: the idle connection is reclaimed without a 408
    // (nothing was half-sent, so there is nothing to answer).
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read EOF");
    assert!(out.is_empty(), "idle expiry produced bytes: {out:?}");
}

#[test]
fn truncated_writes_and_abrupt_closes_leave_the_server_serving() {
    let (server, _) = spawn_fixture(config());
    // Clients that send a partial request line, a partial head, or a
    // head whose declared body never arrives — then slam the
    // connection shut.
    let fragments: [&[u8]; 4] = [
        b"G",
        b"GET /status HTTP/1.1\r\nHos",
        b"POST /push HTTP/1.1\r\nContent-Length: 10\r\n\r\n1 1",
        b"",
    ];
    for frag in fragments {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(frag).unwrap();
        drop(stream); // abrupt close, no half-close handshake
    }
    // Every one of those connections must have been torn down without
    // wedging a worker; a healthy pool still answers.
    let resp = send_str(&server, &get("/status"));
    assert_eq!(status_of(&resp), 200, "{resp}");
}

#[test]
fn oversized_actual_body_respects_configured_limit() {
    let mut cfg = config();
    cfg.limits.max_body_bytes = 64;
    let (server, _) = spawn_fixture(cfg);
    // Under the limit: accepted.
    let ok = send_str(&server, &post("/push", "1 1 2 2 0\n"));
    assert_eq!(status_of(&ok), 200, "{ok}");
    // Over the configured limit: rejected from the declared length,
    // before the body is buffered.
    let big = "9 9 10 10 0\n".repeat(32);
    let resp = send_str(&server, &post("/push", &big));
    assert_eq!(status_of(&resp), 413, "{resp}");
}

#[test]
fn churn_gate_sheds_pushes_with_503_until_refresh() {
    let mut cfg = config();
    cfg.max_staged = 1;
    let (server, _) = spawn_fixture(cfg);
    let ok = send_str(&server, &post("/push", "1 1 2 2 0\n"));
    assert_eq!(status_of(&ok), 200, "{ok}");
    // The staged delta is now at the bound: further pushes shed.
    let shed = send_str(&server, &post("/push", "3 3 4 4 1\n"));
    assert_eq!(status_of(&shed), 503, "{shed}");
    assert!(shed.contains("Retry-After: 1"), "{shed}");
    // Draining the delta reopens the gate.
    assert_eq!(status_of(&send_str(&server, &post("/refresh", ""))), 200);
    let ok = send_str(&server, &post("/push", "3 3 4 4 1\n"));
    assert_eq!(status_of(&ok), 200, "{ok}");
}
