//! Baseline integration: Keyword-first, Spatial-first and IR-tree must
//! return exactly the oracle answers after verification, and their
//! documented inefficiencies must actually show up in the counters
//! (that is what the paper measures).

use seal_core::baselines::{IrTreeBaseline, KeywordFirst, SpatialFirst};
use seal_core::filters::{CandidateFilter, HierarchicalFilter};
use seal_core::verify::{naive_search, verify};
use seal_core::{SearchStats, SimilarityConfig};
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::{twitter_fixture, usa_fixture};

#[test]
fn baselines_return_oracle_answers() {
    for (store, queries) in [twitter_fixture(1_500, 6), usa_fixture(1_500, 6)] {
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        let baselines: Vec<Box<dyn CandidateFilter>> = vec![
            Box::new(KeywordFirst::build(store.clone())),
            Box::new(SpatialFirst::build(store.clone())),
            Box::new(IrTreeBaseline::build_with_fanout(store.clone(), 16)),
        ];
        for q in &queries {
            let mut expect = naive_search(&store, &cfg, q);
            expect.sort_unstable();
            for b in &baselines {
                let mut stats = SearchStats::new();
                let cands = b.candidates(q, &mut stats);
                let mut vstats = SearchStats::new();
                let mut got = verify(&store, &cfg, q, &cands, &mut vstats);
                got.sort_unstable();
                assert_eq!(got, expect, "{} wrong", b.name());
            }
        }
    }
}

#[test]
fn seal_scans_fewer_postings_than_keyword_first() {
    // The headline claim: threshold-aware hybrid pruning reads far less
    // of the index than the exact-similarity keyword scan.
    let (store, queries) = twitter_fixture(3_000, 10);
    let store = Arc::new(store);
    let keyword = KeywordFirst::build(store.clone());
    let seal = HierarchicalFilter::build(store.clone(), 9, 16);
    let mut kw_total = 0usize;
    let mut seal_total = 0usize;
    for q in &queries {
        let mut s1 = SearchStats::new();
        let _ = keyword.candidates(q, &mut s1);
        kw_total += s1.postings_scanned;
        let mut s2 = SearchStats::new();
        let _ = seal.candidates(q, &mut s2);
        seal_total += s2.postings_scanned;
    }
    // (Keyword-first's *candidates* can be fewer — its first stage is
    // the exact textual predicate — but it pays for that by scanning
    // every posting of every query token's list. The paper's cost model
    // charges exactly this scan.)
    assert!(
        seal_total < kw_total,
        "SEAL scanned {seal_total} ≥ keyword's {kw_total}"
    );
}

#[test]
fn irtree_visits_many_nodes_on_loose_queries() {
    // Section 2.3: the IR-tree "may visit too many unnecessary nodes".
    // With loose thresholds it must visit a non-trivial share of the
    // tree, while SEAL's postings stay bounded.
    let (store, queries) = twitter_fixture(3_000, 6);
    let store = Arc::new(store);
    let ir = IrTreeBaseline::build_with_fanout(store.clone(), 16);
    let total_nodes = ir.tree().node_count();
    let mut visited_max = 0usize;
    for q in &queries {
        let loose = q.with_thresholds(0.1, 0.1).unwrap();
        let mut stats = SearchStats::new();
        let _ = ir.candidates(&loose, &mut stats);
        visited_max = visited_max.max(stats.nodes_visited);
    }
    assert!(
        visited_max > total_nodes / 20,
        "IR-tree unexpectedly selective: {visited_max}/{total_nodes}"
    );
}

#[test]
fn irtree_token_storage_blows_up_with_height() {
    let (store, _) = twitter_fixture(2_000, 1);
    let store = Arc::new(store);
    let object_tokens: usize = store.objects().iter().map(|o| o.tokens.len()).sum();
    // Small fan-out → taller tree → more duplicated tokens.
    let tall = IrTreeBaseline::build_with_fanout(store.clone(), 4);
    let flat = IrTreeBaseline::build_with_fanout(store.clone(), 128);
    assert!(tall.stored_tokens() > flat.stored_tokens());
    assert!(tall.stored_tokens() > object_tokens, "no blowup at all?");
}
