//! Filter-level integration: every filter's candidate set must be a
//! superset of the answers (the signature property of Section 3.1),
//! and the documented containment relations between filters must hold.

use seal_core::filters::{
    CandidateFilter, GridFilter, HierarchicalFilter, HybridFilter, TokenFilter, TokenFilterBasic,
};
use seal_core::signatures::hash_hybrid::BucketScheme;
use seal_core::verify::naive_search;
use seal_core::{ObjectId, SearchStats, SimilarityConfig};
use std::collections::BTreeSet;
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

fn candidate_set(f: &dyn CandidateFilter, q: &seal_core::Query) -> BTreeSet<ObjectId> {
    let mut stats = SearchStats::new();
    f.candidates(q, &mut stats).into_iter().collect()
}

#[test]
fn every_filter_is_a_superset_of_the_answers() {
    let (store, queries) = twitter_fixture(1_500, 8);
    let store = Arc::new(store);
    let cfg = SimilarityConfig::default();
    let filters: Vec<Box<dyn CandidateFilter>> = vec![
        Box::new(TokenFilter::build(store.clone())),
        Box::new(TokenFilterBasic::build(store.clone())),
        Box::new(GridFilter::build(store.clone(), 256)),
        Box::new(HybridFilter::build(store.clone(), 256, BucketScheme::Full)),
        Box::new(HybridFilter::build(
            store.clone(),
            256,
            BucketScheme::Buckets(4096),
        )),
        Box::new(HierarchicalFilter::build(store.clone(), 8, 16)),
    ];
    for q in &queries {
        let answers: BTreeSet<ObjectId> = naive_search(&store, &cfg, q).into_iter().collect();
        for f in &filters {
            let cands = candidate_set(f.as_ref(), q);
            assert!(
                answers.is_subset(&cands),
                "{}: lost answers {:?}",
                f.name(),
                answers.difference(&cands).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn hybrid_full_hash_is_contained_in_grid_and_token() {
    // Hybrid pruning applies both constraints, so (with collision-free
    // hashing) its candidates ⊆ grid candidates ∩ token candidates.
    let (store, queries) = twitter_fixture(1_500, 6);
    let store = Arc::new(store);
    let token = TokenFilter::build(store.clone());
    let grid = GridFilter::build(store.clone(), 256);
    let hybrid = HybridFilter::build(store.clone(), 256, BucketScheme::Full);
    for q in &queries {
        let ct = candidate_set(&token, q);
        let cg = candidate_set(&grid, q);
        let ch = candidate_set(&hybrid, q);
        assert!(ch.is_subset(&cg), "hybrid ⊄ grid");
        assert!(ch.is_subset(&ct), "hybrid ⊄ token");
    }
}

#[test]
fn bucketed_hash_contains_full_hash() {
    // Bucket collisions merge lists, which can only add candidates.
    let (store, queries) = twitter_fixture(1_000, 6);
    let store = Arc::new(store);
    let full = HybridFilter::build(store.clone(), 128, BucketScheme::Full);
    let small = HybridFilter::build(store.clone(), 128, BucketScheme::Buckets(512));
    for q in &queries {
        let cf = candidate_set(&full, q);
        let cs = candidate_set(&small, q);
        assert!(cf.is_subset(&cs), "collisions removed candidates?!");
    }
}

#[test]
fn basic_token_filter_is_tighter_than_prefix_variant() {
    // Sig-Filter computes the exact signature similarity; Sig-Filter+
    // only tests prefix intersection. Basic ⊆ plus, always.
    let (store, queries) = twitter_fixture(1_200, 8);
    let store = Arc::new(store);
    let plus = TokenFilter::build(store.clone());
    let basic = TokenFilterBasic::build(store.clone());
    for q in &queries {
        let cb = candidate_set(&basic, q);
        let cp = candidate_set(&plus, q);
        assert!(cb.is_subset(&cp), "basic produced extra candidates");
    }
}

#[test]
fn tighter_thresholds_shrink_candidates() {
    let (store, queries) = twitter_fixture(1_200, 4);
    let store = Arc::new(store);
    let f = HierarchicalFilter::build(store.clone(), 8, 16);
    for q in queries.iter().take(8) {
        let loose = candidate_set(&f, &q.with_thresholds(0.1, 0.1).unwrap());
        let tight = candidate_set(&f, &q.with_thresholds(0.6, 0.6).unwrap());
        assert!(
            tight.is_subset(&loose),
            "tight thresholds must not add candidates"
        );
    }
}
