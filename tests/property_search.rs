//! Property-based integration tests: random small worlds, every engine
//! vs the oracle, plus metamorphic properties of the search problem
//! itself.

use proptest::prelude::*;
use seal_core::verify::naive_search;
use seal_core::{FilterKind, ObjectStore, Query, RoiObject, SealEngine, SimilarityConfig};
use seal_geom::Rect;
use seal_text::{TokenId, TokenSet};
use std::sync::Arc;

const WORLD: f64 = 1000.0;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0..WORLD, 0.0..WORLD, 1.0..200.0, 1.0..200.0).prop_map(
        |(x, y, w, h): (f64, f64, f64, f64)| {
            Rect::new(x, y, (x + w).min(WORLD * 2.0), (y + h).min(WORLD * 2.0)).unwrap()
        },
    )
}

fn arb_tokens(vocab: u32) -> impl Strategy<Value = Vec<TokenId>> {
    proptest::collection::vec((0..vocab).prop_map(TokenId), 1..8)
}

fn arb_objects(vocab: u32) -> impl Strategy<Value = Vec<RoiObject>> {
    proptest::collection::vec(
        (arb_rect(), arb_tokens(vocab)).prop_map(|(r, t)| RoiObject::new(r, TokenSet::from_ids(t))),
        1..60,
    )
}

fn arb_query(vocab: u32) -> impl Strategy<Value = Query> {
    (arb_rect(), arb_tokens(vocab), 0.05f64..0.9, 0.05f64..0.9)
        .prop_map(|(r, t, tr, tt)| Query::with_token_ids(r, t, tr, tt).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_match_oracle_on_random_worlds(
        objects in arb_objects(30),
        query in arb_query(30),
    ) {
        let vocab = 30;
        let store = Arc::new(ObjectStore::from_objects(objects, vocab));
        let cfg = SimilarityConfig::default();
        let mut expect = naive_search(&store, &cfg, &query);
        expect.sort_unstable();
        for kind in [
            FilterKind::Token,
            FilterKind::Grid { side: 16 },
            FilterKind::HashHybrid { side: 16, buckets: Some(256) },
            FilterKind::Hierarchical { max_level: 5, budget: 6 },
            FilterKind::KeywordFirst,
            FilterKind::SpatialFirst,
            FilterKind::IrTree { fanout: 4 },
        ] {
            let engine = SealEngine::build(store.clone(), kind);
            let got = engine.search(&query).sorted();
            prop_assert_eq!(&got.answers, &expect, "{:?} diverged", kind);
        }
    }

    #[test]
    fn self_query_returns_self(
        objects in arb_objects(20),
        idx in 0usize..60,
    ) {
        // Querying with an object's own region+tokens at any threshold
        // must return at least that object.
        let store = Arc::new(ObjectStore::from_objects(objects, 20));
        let idx = idx % store.len();
        let o = store.get(seal_core::ObjectId(idx as u32)).clone();
        let q = Query::new(o.region, o.tokens.clone(), 1.0, 1.0).unwrap();
        let engine = SealEngine::build(
            store.clone(),
            FilterKind::Hierarchical { max_level: 5, budget: 6 },
        );
        let result = engine.search(&q);
        prop_assert!(
            result.answers.contains(&seal_core::ObjectId(idx as u32)),
            "object not similar to itself"
        );
    }

    #[test]
    fn threshold_monotonicity(
        objects in arb_objects(20),
        query in arb_query(20),
    ) {
        // Raising either threshold can only shrink the answer set.
        let store = Arc::new(ObjectStore::from_objects(objects, 20));
        let engine = SealEngine::build(store, FilterKind::Grid { side: 16 });
        let loose = engine
            .search(&query.with_thresholds(0.05, 0.05).unwrap())
            .sorted();
        let tight = engine
            .search(&query.with_thresholds(0.7, 0.7).unwrap())
            .sorted();
        for id in &tight.answers {
            prop_assert!(loose.answers.contains(id));
        }
    }

    #[test]
    fn translation_invariance(
        objects in arb_objects(15),
        query in arb_query(15),
        dx in -500.0f64..500.0,
        dy in -500.0f64..500.0,
    ) {
        // Translating the whole world (objects + query) must not change
        // answers: similarities are translation-invariant and the grid
        // is built relative to the data space.
        let translated: Vec<RoiObject> = objects
            .iter()
            .map(|o| RoiObject::new(o.region.translated(dx, dy).unwrap(), o.tokens.clone()))
            .collect();
        let store_a = Arc::new(ObjectStore::from_objects(objects, 15));
        let store_b = Arc::new(ObjectStore::from_objects(translated, 15));
        let qb = Query::new(
            query.region.translated(dx, dy).unwrap(),
            query.tokens.clone(),
            query.tau_spatial,
            query.tau_textual,
        ).unwrap();
        let ea = SealEngine::build(store_a, FilterKind::Grid { side: 32 });
        let eb = SealEngine::build(store_b, FilterKind::Grid { side: 32 });
        let ra = ea.search(&query).sorted();
        let rb = eb.search(&qb).sorted();
        prop_assert_eq!(ra.answers, rb.answers);
    }
}
