//! Integration: hostile-input hardening of the `.seal` container.
//!
//! Every mutation of a valid container — truncation at every section
//! boundary, random truncations, single-bit flips anywhere in the
//! file, oversized declared counts, or outright random bytes — must
//! surface as a typed [`seal_index::ContainerError`] from
//! `SealEngine::load_from_bytes`: never a panic, never an
//! attacker-controlled allocation.

use proptest::prelude::*;
use seal_core::persist::{SECTION_PRIMARY_INDEX, SECTION_STORE_OBJECTS, SECTION_STORE_STATS};
use seal_core::{FilterKind, SealEngine};
use seal_index::{Container, ContainerWriter};
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

/// A small but fully-featured container: the hierarchical kind
/// persists every section type (stats, objects, dictionary-less meta,
/// HSS scheme, hybrid index). Built once — the proptest cases below
/// mutate copies.
fn seal_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        let (store, _) = twitter_fixture(150, 1);
        let engine = SealEngine::build(
            Arc::new(store),
            FilterKind::Hierarchical {
                max_level: 5,
                budget: 4,
            },
        );
        engine
            .to_container_bytes()
            .expect("serializing a healthy engine must succeed")
    })
}

/// Loading must fail with an error — reaching this helper with a panic
/// inside `load_from_bytes` fails the test on its own.
fn assert_rejected(bytes: &[u8], what: &str) {
    let err = SealEngine::load_from_bytes(bytes, 1).err();
    assert!(err.is_some(), "{what}: corrupt container was accepted");
}

/// A container whose primary index is a **block-packed** posting arena
/// (serialize kind 7): token-compressed over enough objects that the
/// hot tokens span multiple 128-id blocks. Built once — tests below
/// mutate copies.
fn packed_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        let (store, _) = twitter_fixture(2_000, 1);
        let engine = SealEngine::build(Arc::new(store), FilterKind::TokenCompressed);
        engine
            .to_container_bytes()
            .expect("serializing a healthy engine must succeed")
    })
}

#[test]
fn pristine_bytes_load() {
    let bytes = seal_bytes();
    let engine = SealEngine::load_from_bytes(bytes, 1).expect("pristine container must load");
    assert_eq!(engine.store().len(), 150);
}

#[test]
fn truncation_at_every_section_boundary_errors() {
    let bytes = seal_bytes();
    // Recover the true boundaries from the directory, then cut the
    // file at the start, middle, and end of every section.
    let container = Container::parse(bytes).expect("pristine container must parse");
    let mut cuts = vec![0usize, 1, 4, 9];
    for s in container.sections() {
        cuts.push(s.offset);
        cuts.push(s.offset + s.payload.len() / 2);
        cuts.push(s.offset + s.payload.len());
    }
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        assert_rejected(&bytes[..cut], &format!("truncated to {cut} bytes"));
    }
}

#[test]
fn oversized_declared_count_errors_without_allocating() {
    let bytes = seal_bytes();
    let container = Container::parse(bytes).expect("pristine container must parse");
    // Rewrite the store-objects section to declare u64::MAX objects —
    // the writer recomputes the CRCs, so only the count validation
    // stands between the lie and a 2^64-element allocation.
    let mut w = ContainerWriter::new();
    for s in container.sections() {
        let mut payload = s.payload.to_vec();
        if s.kind == SECTION_STORE_OBJECTS {
            payload[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        }
        w.push_section(s.kind, payload);
    }
    assert_rejected(&w.finish(), "u64::MAX declared objects");

    // Same lie in the stats section: declared object count disagrees
    // with the (valid) objects section.
    let mut w = ContainerWriter::new();
    for s in container.sections() {
        let mut payload = s.payload.to_vec();
        if s.kind == SECTION_STORE_STATS {
            payload[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        }
        w.push_section(s.kind, payload);
    }
    assert_rejected(&w.finish(), "u64::MAX declared stats objects");
}

#[test]
fn packed_container_truncation_at_every_section_boundary_errors() {
    let bytes = packed_bytes();
    let container = Container::parse(bytes).expect("pristine container must parse");
    // The primary index must really be the block-packed kind (byte 5
    // of the index header is the serialize kind byte, 7 = packed).
    let primary = container
        .sections()
        .iter()
        .find(|s| s.kind == SECTION_PRIMARY_INDEX)
        .expect("token-compressed container has a primary index");
    assert_eq!(
        primary.payload[5], 7,
        "primary index must be kind 7 (block-packed)"
    );
    SealEngine::load_from_bytes(bytes, 1).expect("pristine packed container must load");

    let mut cuts = vec![0usize, 1, 4, 9];
    for s in container.sections() {
        cuts.push(s.offset);
        cuts.push(s.offset + s.payload.len() / 2);
        cuts.push(s.offset + s.payload.len());
    }
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        assert_rejected(
            &bytes[..cut],
            &format!("packed container truncated to {cut} bytes"),
        );
    }
}

#[test]
fn packed_declared_counts_behind_valid_crcs_error() {
    // The index-section header is [magic u32 | version u8 | kind u8 |
    // key_count u64 | arena_len u64]. Lie at each count with the
    // section CRCs recomputed by the writer — only the decoder's typed
    // count validation stands between the lie and a 2^64 allocation.
    let bytes = packed_bytes();
    let container = Container::parse(bytes).expect("pristine container must parse");
    for at in [6usize, 14] {
        let mut w = ContainerWriter::new();
        for s in container.sections() {
            let mut payload = s.payload.to_vec();
            if s.kind == SECTION_PRIMARY_INDEX {
                payload[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            }
            w.push_section(s.kind, payload);
        }
        assert_rejected(
            &w.finish(),
            &format!("u64::MAX count at index-header byte {at}"),
        );
    }
}

#[test]
fn missing_required_section_errors() {
    let bytes = seal_bytes();
    let container = Container::parse(bytes).expect("pristine container must parse");
    for dropped in container.sections().iter().map(|s| s.kind) {
        let mut w = ContainerWriter::new();
        for s in container.sections() {
            if s.kind != dropped {
                w.push_section(s.kind, s.payload.to_vec());
            }
        }
        assert_rejected(&w.finish(), &format!("section kind {dropped} dropped"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_truncations_error(frac in 0.0f64..1.0) {
        let bytes = seal_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(SealEngine::load_from_bytes(&bytes[..cut.min(bytes.len() - 1)], 1).is_err());
    }

    #[test]
    fn single_bit_flips_error(frac in 0.0f64..1.0, bit in 0usize..8) {
        // Every byte of the file is covered by a checksum or an exact
        // cross-check (header + directory by the footer CRC, payloads
        // by per-section CRCs, the footer by magic and length fields),
        // so any single-bit flip must be rejected.
        let mut bytes = seal_bytes().to_vec();
        let pos = (((bytes.len() - 1) as f64) * frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            SealEngine::load_from_bytes(&bytes, 1).is_err(),
            "flipped bit {bit} of byte {pos}"
        );
    }

    #[test]
    fn random_bytes_error(junk in proptest::collection::vec(0u8..=255, 0..256)) {
        prop_assert!(SealEngine::load_from_bytes(&junk, 1).is_err());
    }

    #[test]
    fn packed_primary_mutations_behind_valid_crcs_never_panic(
        frac in 0.0f64..1.0, val in 0u8..=255,
    ) {
        // Overwrite one byte of the block-packed primary index and
        // rebuild the container, so every CRC is valid and the lie
        // reaches the index decoder itself: it must either reject with
        // a typed error or decode something servable — never panic,
        // never make an attacker-sized allocation.
        let container = Container::parse(packed_bytes()).expect("pristine container must parse");
        let mut w = ContainerWriter::new();
        for s in container.sections() {
            let mut payload = s.payload.to_vec();
            if s.kind == SECTION_PRIMARY_INDEX && !payload.is_empty() {
                let pos = (((payload.len() - 1) as f64) * frac) as usize;
                payload[pos] = val;
            }
            w.push_section(s.kind, payload);
        }
        let _ = SealEngine::load_from_bytes(&w.finish(), 1);
    }
}

/// The streaming file loader must agree with the buffered one on a
/// healthy container and reject a truncated file with a typed error.
#[test]
fn streaming_file_load_parity_and_truncation() {
    let bytes = packed_bytes();
    let mut path = std::env::temp_dir();
    path.push(format!("seal-corrupt-stream-{}.seal", std::process::id()));
    std::fs::write(&path, bytes).expect("write temp container");
    let streamed = SealEngine::load_with_threads(&path, 0).expect("streamed load must succeed");
    let buffered = SealEngine::load_from_bytes(bytes, 1).expect("buffered load must succeed");
    assert_eq!(streamed.store().len(), buffered.store().len());
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write truncated container");
    assert!(
        SealEngine::load_with_threads(&path, 0).is_err(),
        "truncated file was accepted by the streaming loader"
    );
    std::fs::remove_file(&path).ok();
}
