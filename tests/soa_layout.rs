//! The SoA-layout contract, pinned from outside the index crate:
//!
//! 1. The columnar `finalize` is **behaviorally identical to an
//!    array-of-structs oracle** for any push/finalize interleaving —
//!    same group order, same qualifying prefixes.
//! 2. **Old-codec (AoS, kinds 1/2) serialized indexes still load**
//!    under the SoA engine and answer identically (hand-encoded bytes,
//!    so the test would catch a writer/reader co-drift).
//! 3. The chunked `bound_cut` agrees with `partition_point` on
//!    adversarial bound columns: ties, all-pass, all-fail, lengths not
//!    divisible by the 16-lane chunk, lengths across the scan/binary
//!    cutover.

use proptest::prelude::*;
use seal_index::{bound_cut, HybridIndex, InvertedIndex};

// ---------------------------------------------------------------------
// 1. SoA finalize ≡ AoS oracle
// ---------------------------------------------------------------------

/// The AoS oracle: a plain map of interleaved posting structs, sorted
/// wholesale after every freeze — the behavior the pre-SoA arena had.
#[derive(Default)]
struct AosOracle {
    groups: std::collections::BTreeMap<u64, Vec<(u32, f64)>>,
}

impl AosOracle {
    fn push(&mut self, key: u64, id: u32, bound: f64) {
        self.groups.entry(key).or_default().push((id, bound));
    }

    fn finalize(&mut self) {
        for g in self.groups.values_mut() {
            g.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
    }

    fn qualifying(&self, key: u64, c: f64) -> Vec<u32> {
        self.groups
            .get(&key)
            .map(|g| {
                g.iter()
                    .take_while(|(_, b)| *b >= c)
                    .map(|(id, _)| *id)
                    .collect()
            })
            .unwrap_or_default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn soa_finalize_matches_aos_oracle_for_any_interleaving(
        // Each op is (key, id, bound, finalize-after?): an arbitrary
        // interleaving of pushes and freezes.
        ops in proptest::collection::vec(
            (0u64..12, 0u32..10_000, 0.0f64..1e4, (0u8..2).prop_map(|b| b == 1)),
            1..200),
        thr in 0.0f64..1e4,
    ) {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        let mut oracle = AosOracle::default();
        let mut seen = std::collections::HashSet::new();
        for (key, id, bound, freeze) in ops {
            // Distinct (key, id) pairs keep the tie-break order unique
            // so both layouts produce one well-defined sequence.
            if seen.insert((key, id)) {
                idx.push(key, id, bound);
                oracle.push(key, id, bound);
            }
            if freeze {
                idx.finalize();
                oracle.finalize();
            }
        }
        idx.finalize();
        oracle.finalize();
        prop_assert_eq!(idx.key_count(), oracle.groups.len());
        for key in 0u64..12 {
            for c in [0.0, thr, thr / 2.0, 1e9] {
                prop_assert_eq!(
                    idx.qualifying(&key, c),
                    &oracle.qualifying(key, c)[..],
                    "key {} thr {}", key, c
                );
            }
            // The full list's columns agree with the oracle rows.
            if let Some(view) = idx.list(&key) {
                let rows: Vec<(u32, f64)> = view
                    .ids
                    .iter()
                    .zip(view.bounds)
                    .map(|(&i, &b)| (i, b))
                    .collect();
                prop_assert_eq!(&rows, &oracle.groups[&key]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. Old-codec (AoS) files load and answer identically
// ---------------------------------------------------------------------

/// Hand-encodes the legacy kind-1 (single-bound AoS) format, byte for
/// byte, independent of the crate's writer.
fn encode_legacy_single(groups: &[(u64, Vec<(u32, f64)>)]) -> Vec<u8> {
    let mut raw = Vec::new();
    raw.extend_from_slice(&0x5EA1_1D8Eu32.to_le_bytes()); // magic
    raw.push(1); // version
    raw.push(1); // kind 1: legacy AoS single
    raw.extend_from_slice(&(groups.len() as u64).to_le_bytes());
    for (key, postings) in groups {
        raw.extend_from_slice(&u128::from(*key).to_le_bytes());
        raw.extend_from_slice(&(postings.len() as u64).to_le_bytes());
        for (id, bound) in postings {
            raw.extend_from_slice(&id.to_le_bytes());
            raw.extend_from_slice(&bound.to_le_bytes());
        }
    }
    raw
}

/// One legacy dual group: `(key, [(id, spatial, textual)])`.
type DualGroup = (u64, Vec<(u32, f64, f64)>);

/// Hand-encodes the legacy kind-2 (dual-bound AoS) format.
fn encode_legacy_dual(groups: &[DualGroup]) -> Vec<u8> {
    let mut raw = Vec::new();
    raw.extend_from_slice(&0x5EA1_1D8Eu32.to_le_bytes());
    raw.push(1);
    raw.push(2); // kind 2: legacy AoS dual
    raw.extend_from_slice(&(groups.len() as u64).to_le_bytes());
    for (key, postings) in groups {
        raw.extend_from_slice(&u128::from(*key).to_le_bytes());
        raw.extend_from_slice(&(postings.len() as u64).to_le_bytes());
        for (id, sb, tb) in postings {
            raw.extend_from_slice(&id.to_le_bytes());
            raw.extend_from_slice(&sb.to_le_bytes());
            raw.extend_from_slice(&tb.to_le_bytes());
        }
    }
    raw
}

#[test]
fn legacy_single_codec_loads_and_answers_identically() {
    // Build the reference index through the normal API...
    let mut idx: InvertedIndex<u64> = InvertedIndex::new();
    let mut groups: std::collections::BTreeMap<u64, Vec<(u32, f64)>> = Default::default();
    for key in 0u64..8 {
        for i in 0..60u32 {
            let id = i.wrapping_mul(2_654_435_761) % 10_000;
            let bound = f64::from((i * 37 + key as u32 * 11) % 500) / 7.0;
            idx.push(key, id, bound);
            groups.entry(key).or_default().push((id, bound));
        }
    }
    idx.finalize();
    // ...and the same postings as a hand-encoded legacy file (records
    // in arbitrary — here insertion — order inside each group; the
    // loader re-sorts via the transpose-on-read path).
    let raw: Vec<(u64, Vec<(u32, f64)>)> = groups.into_iter().collect();
    let loaded: InvertedIndex<u64> =
        InvertedIndex::from_bytes(&encode_legacy_single(&raw)[..]).expect("legacy load");
    assert_eq!(loaded.key_count(), idx.key_count());
    assert_eq!(loaded.posting_count(), idx.posting_count());
    for key in 0u64..8 {
        for thr in [0.0, 5.0, 20.0, 60.0, 1000.0] {
            assert_eq!(
                loaded.qualifying(&key, thr),
                idx.qualifying(&key, thr),
                "key {key} thr {thr}"
            );
        }
    }
    // And the SoA round-trip agrees with the legacy load.
    let soa: InvertedIndex<u64> = InvertedIndex::from_bytes(idx.to_bytes()).unwrap();
    for key in 0u64..8 {
        assert_eq!(soa.qualifying(&key, 10.0), loaded.qualifying(&key, 10.0));
    }
}

#[test]
fn legacy_dual_codec_loads_and_answers_identically() {
    let mut idx: HybridIndex<u64> = HybridIndex::new();
    let mut groups: std::collections::BTreeMap<u64, Vec<(u32, f64, f64)>> = Default::default();
    for key in 0u64..5 {
        for i in 0..40u32 {
            let sb = f64::from((i * 13 + key as u32) % 300) * 10.0;
            let tb = f64::from(i % 9) / 4.0;
            idx.push(key, i, sb, tb);
            groups.entry(key).or_default().push((i, sb, tb));
        }
    }
    idx.finalize();
    let raw: Vec<DualGroup> = groups.into_iter().collect();
    let loaded: HybridIndex<u64> =
        HybridIndex::from_bytes(&encode_legacy_dual(&raw)[..]).expect("legacy load");
    assert_eq!(loaded.posting_count(), idx.posting_count());
    for key in 0u64..5 {
        for (cr, ct) in [(0.0, 0.0), (500.0, 1.0), (2500.0, 0.5), (1e6, 0.0)] {
            let a: Vec<u32> = loaded.qualifying(&key, cr, ct).collect();
            let b: Vec<u32> = idx.qualifying(&key, cr, ct).collect();
            assert_eq!(a, b, "key {key} thresholds ({cr},{ct})");
        }
    }
}

// ---------------------------------------------------------------------
// 3. Chunked bound_cut ≡ partition_point
// ---------------------------------------------------------------------

#[test]
fn chunked_cut_matches_partition_point_on_adversarial_columns() {
    // Deterministic adversarial shapes around every boundary the
    // chunked scan has: lane width 16, the scan/binary cutover, tie
    // plateaus straddling chunk edges.
    for len in [0usize, 1, 15, 16, 17, 47, 48, 49, 255, 256, 257, 511, 2048] {
        // Plateaus of width 5 (ties everywhere, including across chunk
        // boundaries since 5 ∤ 16).
        let col: Vec<f64> = (0..len).map(|i| ((len - i) / 5) as f64).collect();
        let thresholds: Vec<f64> = [
            -1.0,
            0.0,
            0.5,
            1.0,
            (len / 10) as f64,
            (len / 5) as f64,
            len as f64,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ]
        .to_vec();
        for c in thresholds {
            assert_eq!(
                bound_cut(&col, c),
                col.partition_point(|&b| b >= c),
                "plateau column len {len} c {c}"
            );
        }
        // All-pass and all-fail.
        let flat = vec![7.5f64; len];
        assert_eq!(bound_cut(&flat, 7.5), len, "all-pass ties len {len}");
        assert_eq!(bound_cut(&flat, 7.6), 0, "all-fail len {len}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chunked_cut_matches_partition_point_on_random_columns(
        bounds in proptest::collection::vec(0.0f64..1000.0, 0..600),
        c in -10.0f64..1010.0,
    ) {
        let mut bounds = bounds;
        bounds.sort_by(|a, b| b.total_cmp(a)); // non-increasing
        prop_assert_eq!(
            bound_cut(&bounds, c),
            bounds.partition_point(|&b| b >= c)
        );
        // The cut index is also exactly the count of qualifying rows.
        let count = bounds.iter().filter(|&&b| b >= c).count();
        prop_assert_eq!(bound_cut(&bounds, c), count);
    }
}
