//! End-to-end integration: generate a realistic dataset, build every
//! engine, and check they all agree with the brute-force oracle across
//! the paper's threshold grid.

use seal_bench_test_util::*;
use seal_core::verify::naive_search;
use seal_core::{FilterKind, SealEngine, SimilarityConfig};
use std::sync::Arc;

#[path = "util/mod.rs"]
mod seal_bench_test_util;

#[test]
fn all_engines_agree_with_oracle_on_twitter_like_data() {
    let (store, queries) = twitter_fixture(2_000, 12);
    let store = Arc::new(store);
    let cfg = SimilarityConfig::default();
    let kinds = vec![
        FilterKind::Token,
        FilterKind::TokenBasic,
        FilterKind::Grid { side: 64 },
        FilterKind::Grid { side: 512 },
        FilterKind::HashHybrid {
            side: 128,
            buckets: Some(1 << 14),
        },
        FilterKind::Hierarchical {
            max_level: 8,
            budget: 8,
        },
        FilterKind::KeywordFirst,
        FilterKind::SpatialFirst,
        FilterKind::IrTree { fanout: 16 },
    ];
    for kind in kinds {
        let engine = SealEngine::build(store.clone(), kind);
        for q in &queries {
            let got = engine.search(q).sorted();
            let mut expect = naive_search(&store, &cfg, q);
            expect.sort_unstable();
            assert_eq!(
                got.answers, expect,
                "{kind:?} disagrees with oracle on query {:?} τ=({},{})",
                q.region, q.tau_spatial, q.tau_textual
            );
        }
    }
}

#[test]
fn usa_like_data_round_trips_too() {
    let (store, queries) = usa_fixture(2_000, 3);
    let store = Arc::new(store);
    let cfg = SimilarityConfig::default();
    let engine = SealEngine::build(store.clone(), FilterKind::seal_default());
    for q in &queries {
        let got = engine.search(q).sorted();
        let mut expect = naive_search(&store, &cfg, q);
        expect.sort_unstable();
        assert_eq!(got.answers, expect);
    }
    // Self-anchored queries guarantee non-empty answers, so completeness
    // is exercised on hits as well as misses (at this reduced scale the
    // generated workload can legitimately return nothing: 2k objects in
    // a continent-sized space are sparse, unlike the paper's 1M).
    for idx in [0u32, 7, 42] {
        let o = store.get(seal_core::ObjectId(idx));
        let q = seal_core::Query::new(o.region, o.tokens.clone(), 0.5, 0.5).unwrap();
        let got = engine.search(&q);
        assert!(
            got.answers.contains(&seal_core::ObjectId(idx)),
            "self-query missed object {idx}"
        );
    }
}

#[test]
fn results_are_stable_across_repeated_searches() {
    let (store, queries) = twitter_fixture(1_000, 5);
    let store = Arc::new(store);
    let engine = SealEngine::build(store, FilterKind::seal_default());
    for q in queries.iter().take(5) {
        let a = engine.search(q).sorted();
        let b = engine.search(q).sorted();
        assert_eq!(a.answers, b.answers, "non-deterministic engine");
    }
}

#[test]
fn engine_is_shareable_across_threads() {
    let (store, queries) = twitter_fixture(1_000, 6);
    let store = Arc::new(store);
    let engine = Arc::new(SealEngine::build(store, FilterKind::seal_default()));
    let mut handles = Vec::new();
    for chunk in queries.chunks(5).take(4) {
        let engine = engine.clone();
        let chunk: Vec<_> = chunk.to_vec();
        handles.push(std::thread::spawn(move || {
            chunk
                .iter()
                .map(|q| engine.search(q).answers.len())
                .sum::<usize>()
        }));
    }
    let totals: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Sequential re-run must agree with what the threads saw.
    let mut check = Vec::new();
    for chunk in queries.chunks(5).take(4) {
        check.push(
            chunk
                .iter()
                .map(|q| engine.search(q).answers.len())
                .sum::<usize>(),
        );
    }
    assert_eq!(totals, check);
}
