//! Integration net for the compressed serving mode: the
//! finalize → serialize → load → qualifying pipeline must agree with
//! the uncompressed index (superset at the probe level, exact equality
//! after verification), stay correct under heavy thread interleaving,
//! and keep the warm probe path allocation-free.

use seal_core::{FilterKind, QueryContext, SealEngine};
use seal_index::{CompressedInvertedIndex, InvertedIndex};
use seal_text::TokenWeights;
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

const THREADS: usize = 64;

/// One quantization step for a group whose maximum bound is `max`.
fn quant_step(max: f64) -> f64 {
    max / 65535.0 + 1e-9
}

#[test]
fn serialize_load_qualifying_matches_uncompressed() {
    // Build a realistic token index off a generated store, round-trip
    // it through the compressed codec, and check every key at several
    // thresholds: nothing the uncompressed index returns may be lost,
    // and nothing outside one quantization step may be admitted.
    let (store, _) = twitter_fixture(2_000, 1);
    let mut idx: InvertedIndex<u32> = InvertedIndex::new();
    for (id, o) in store.iter() {
        for t in o.tokens.iter() {
            idx.push(t.0, id.0, store.weights().weight(t) * 3.0);
        }
    }
    idx.finalize();

    let compressed = CompressedInvertedIndex::compress(&idx);
    let loaded: CompressedInvertedIndex<u32> =
        CompressedInvertedIndex::from_bytes(compressed.to_bytes()).expect("codec round-trip");
    assert_eq!(loaded.key_count(), idx.key_count());
    assert_eq!(loaded.posting_count(), idx.posting_count());

    let mut scratch = Vec::new();
    for (key, group) in idx.iter() {
        let max = group.bounds.iter().copied().fold(0.0f64, f64::max);
        for thr in [0.0, max * 0.3, max * 0.7, max, max * 1.5] {
            let exact: std::collections::BTreeSet<u32> =
                idx.qualifying(&key, thr).iter().copied().collect();
            let got: std::collections::BTreeSet<u32> = loaded
                .qualifying_into(&key, thr, &mut scratch)
                .iter()
                .copied()
                .collect();
            assert!(exact.is_subset(&got), "key {key} thr {thr}: lost postings");
            let relaxed: std::collections::BTreeSet<u32> = idx
                .qualifying(&key, thr - quant_step(max))
                .iter()
                .copied()
                .collect();
            assert!(
                got.is_subset(&relaxed),
                "key {key} thr {thr}: admitted beyond one quantization step"
            );
        }
    }
}

#[test]
fn compressed_engines_answer_exactly_like_uncompressed() {
    // Filter-level supersets may differ by quantization, but verified
    // answers must be identical query-for-query.
    let (store, queries) = twitter_fixture(3_000, 20);
    let store = Arc::new(store);
    for (arena, compressed) in [
        (FilterKind::Token, FilterKind::TokenCompressed),
        (
            FilterKind::HashHybrid {
                side: 32,
                buckets: Some(1 << 12),
            },
            FilterKind::HashHybridCompressed {
                side: 32,
                buckets: Some(1 << 12),
            },
        ),
    ] {
        let exact = SealEngine::build(store.clone(), arena);
        let served = SealEngine::build(store.clone(), compressed);
        let mut ctx = QueryContext::with_capacity(store.len());
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                served.search_with_ctx(q, &mut ctx).sorted().answers,
                exact.search(q).sorted().answers,
                "{} diverged from {} on query {i}",
                served.filter_name(),
                exact.filter_name(),
            );
        }
    }
}

#[test]
fn sixty_four_thread_batch_over_compressed_arenas() {
    // Mirror of tests/concurrent_batch.rs for the compressed serving
    // mode: each worker decodes qualifying prefixes into its own
    // context scratch, so interleaved reuse must never corrupt results.
    let (store, queries) = twitter_fixture(5_000, 36);
    assert!(queries.len() >= THREADS);
    let store = Arc::new(store);
    for kind in [
        FilterKind::TokenCompressed,
        FilterKind::HashHybridCompressed {
            side: 64,
            buckets: Some(1 << 12),
        },
        FilterKind::HashHybridCompressed {
            side: 32,
            buckets: None,
        },
    ] {
        let engine = SealEngine::build(store.clone(), kind);
        let mut ctx = QueryContext::new();
        let sequential: Vec<Vec<_>> = queries
            .iter()
            .map(|q| engine.search_with_ctx(q, &mut ctx).sorted().answers)
            .collect();
        let parallel: Vec<Vec<_>> = engine
            .search_batch(&queries, THREADS)
            .into_iter()
            .map(|r| r.sorted().answers)
            .collect();
        assert_eq!(
            parallel, sequential,
            "{kind:?}: {THREADS}-thread batch diverged from sequential"
        );
    }
}

#[test]
fn warm_compressed_probes_do_not_grow_the_decode_scratch() {
    // The acceptance check for in-place serving: after one warm pass,
    // further probes reuse the context's decode buffers without any
    // reallocation (capacities frozen).
    let (store, queries) = twitter_fixture(3_000, 16);
    let store = Arc::new(store);
    let token = SealEngine::build(store.clone(), FilterKind::TokenCompressed);
    let hybrid = SealEngine::build(
        store.clone(),
        FilterKind::HashHybridCompressed {
            side: 32,
            buckets: Some(1 << 12),
        },
    );
    let mut ctx = QueryContext::with_capacity(store.len());
    for q in &queries {
        let _ = token.search_with_ctx(q, &mut ctx);
        let _ = hybrid.search_with_ctx(q, &mut ctx);
    }
    let warm = ctx.decode_capacity();
    assert!(
        warm > 0,
        "workload must actually exercise the id-decode buffer, got {warm}"
    );
    for _ in 0..3 {
        for q in &queries {
            let _ = token.search_with_ctx(q, &mut ctx);
            let _ = hybrid.search_with_ctx(q, &mut ctx);
        }
        assert_eq!(
            ctx.decode_capacity(),
            warm,
            "warm serving must not reallocate the decode scratch"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn random_indexes_roundtrip_and_serve_supersets(
            entries in proptest::collection::vec(
                (0u32..24, 0u32..100_000, 0.0f64..1e4), 1..400),
            thr in 0.0f64..1e4,
        ) {
            let mut idx: InvertedIndex<u32> = InvertedIndex::new();
            let mut seen = std::collections::HashSet::new();
            for (k, id, b) in entries {
                if seen.insert((k, id)) {
                    idx.push(k, id, b);
                }
            }
            idx.finalize();
            let compressed = CompressedInvertedIndex::compress(&idx);
            let loaded: CompressedInvertedIndex<u32> =
                CompressedInvertedIndex::from_bytes(compressed.to_bytes()).unwrap();
            prop_assert_eq!(loaded.posting_count(), idx.posting_count());
            let mut scratch = Vec::new();
            for key in 0u32..24 {
                let exact: std::collections::BTreeSet<u32> =
                    idx.qualifying(&key, thr).iter().copied().collect();
                let got: std::collections::BTreeSet<u32> = loaded
                    .qualifying_into(&key, thr, &mut scratch)
                    .iter()
                    .copied()
                    .collect();
                prop_assert!(exact.is_subset(&got));
                // And the loaded index serves identically to the
                // in-memory compressed one.
                let mut scratch2 = Vec::new();
                let mut scratch3 = Vec::new();
                prop_assert_eq!(
                    loaded.qualifying_into(&key, thr, &mut scratch2),
                    compressed.qualifying_into(&key, thr, &mut scratch3)
                );
            }
        }
    }
}
