//! Integration net for the compressed serving mode: the
//! finalize → serialize → load → qualifying pipeline must agree with
//! the uncompressed index (superset at the probe level, exact equality
//! after verification), stay correct under heavy thread interleaving,
//! and keep the warm probe path allocation-free.

use seal_core::{FilterKind, QueryContext, SealEngine};
use seal_index::{CompressedInvertedIndex, IdCodec, InvertedIndex};
use seal_text::TokenWeights;
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

const THREADS: usize = 64;

/// One quantization step for a group whose maximum bound is `max`.
fn quant_step(max: f64) -> f64 {
    max / 65535.0 + 1e-9
}

#[test]
fn serialize_load_qualifying_matches_uncompressed() {
    // Build a realistic token index off a generated store, round-trip
    // it through the compressed codec, and check every key at several
    // thresholds: nothing the uncompressed index returns may be lost,
    // and nothing outside one quantization step may be admitted.
    let (store, _) = twitter_fixture(2_000, 1);
    let mut idx: InvertedIndex<u32> = InvertedIndex::new();
    for (id, o) in store.iter() {
        for t in o.tokens.iter() {
            idx.push(t.0, id.0, store.weights().weight(t) * 3.0);
        }
    }
    idx.finalize();

    let compressed = CompressedInvertedIndex::compress(&idx);
    let loaded: CompressedInvertedIndex<u32> =
        CompressedInvertedIndex::from_bytes(compressed.to_bytes()).expect("codec round-trip");
    assert_eq!(loaded.key_count(), idx.key_count());
    assert_eq!(loaded.posting_count(), idx.posting_count());

    let mut scratch = Vec::new();
    for (key, group) in idx.iter() {
        let max = group.bounds.iter().copied().fold(0.0f64, f64::max);
        for thr in [0.0, max * 0.3, max * 0.7, max, max * 1.5] {
            let exact: std::collections::BTreeSet<u32> =
                idx.qualifying(&key, thr).iter().copied().collect();
            let got: std::collections::BTreeSet<u32> = loaded
                .qualifying_into(&key, thr, &mut scratch)
                .iter()
                .copied()
                .collect();
            assert!(exact.is_subset(&got), "key {key} thr {thr}: lost postings");
            let relaxed: std::collections::BTreeSet<u32> = idx
                .qualifying(&key, thr - quant_step(max))
                .iter()
                .copied()
                .collect();
            assert!(
                got.is_subset(&relaxed),
                "key {key} thr {thr}: admitted beyond one quantization step"
            );
        }
    }
}

#[test]
fn compressed_engines_answer_exactly_like_uncompressed() {
    // Filter-level supersets may differ by quantization, but verified
    // answers must be identical query-for-query.
    let (store, queries) = twitter_fixture(3_000, 20);
    let store = Arc::new(store);
    for (arena, compressed) in [
        (FilterKind::Token, FilterKind::TokenCompressed),
        (
            FilterKind::HashHybrid {
                side: 32,
                buckets: Some(1 << 12),
            },
            FilterKind::HashHybridCompressed {
                side: 32,
                buckets: Some(1 << 12),
            },
        ),
    ] {
        let exact = SealEngine::build(store.clone(), arena);
        let served = SealEngine::build(store.clone(), compressed);
        let mut ctx = QueryContext::with_capacity(store.len());
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                served.search_with_ctx(q, &mut ctx).sorted().answers,
                exact.search(q).sorted().answers,
                "{} diverged from {} on query {i}",
                served.filter_name(),
                exact.filter_name(),
            );
        }
    }
}

#[test]
fn sixty_four_thread_batch_over_compressed_arenas() {
    // Mirror of tests/concurrent_batch.rs for the compressed serving
    // mode: each worker decodes qualifying prefixes into its own
    // context scratch, so interleaved reuse must never corrupt results.
    let (store, queries) = twitter_fixture(5_000, 36);
    assert!(queries.len() >= THREADS);
    let store = Arc::new(store);
    for kind in [
        FilterKind::TokenCompressed,
        FilterKind::HashHybridCompressed {
            side: 64,
            buckets: Some(1 << 12),
        },
        FilterKind::HashHybridCompressed {
            side: 32,
            buckets: None,
        },
    ] {
        let engine = SealEngine::build(store.clone(), kind);
        let mut ctx = QueryContext::new();
        let sequential: Vec<Vec<_>> = queries
            .iter()
            .map(|q| engine.search_with_ctx(q, &mut ctx).sorted().answers)
            .collect();
        let parallel: Vec<Vec<_>> = engine
            .search_batch(&queries, THREADS)
            .into_iter()
            .map(|r| r.sorted().answers)
            .collect();
        assert_eq!(
            parallel, sequential,
            "{kind:?}: {THREADS}-thread batch diverged from sequential"
        );
    }
}

#[test]
fn warm_compressed_probes_do_not_grow_the_decode_scratch() {
    // The acceptance check for in-place serving: after one warm pass,
    // further probes reuse the context's decode buffers without any
    // reallocation (capacities frozen).
    let (store, queries) = twitter_fixture(3_000, 16);
    let store = Arc::new(store);
    let token = SealEngine::build(store.clone(), FilterKind::TokenCompressed);
    let hybrid = SealEngine::build(
        store.clone(),
        FilterKind::HashHybridCompressed {
            side: 32,
            buckets: Some(1 << 12),
        },
    );
    let mut ctx = QueryContext::with_capacity(store.len());
    for q in &queries {
        let _ = token.search_with_ctx(q, &mut ctx);
        let _ = hybrid.search_with_ctx(q, &mut ctx);
    }
    let warm = ctx.decode_capacity();
    assert!(
        warm > 0,
        "workload must actually exercise the id-decode buffer, got {warm}"
    );
    for _ in 0..3 {
        for q in &queries {
            let _ = token.search_with_ctx(q, &mut ctx);
            let _ = hybrid.search_with_ctx(q, &mut ctx);
        }
        assert_eq!(
            ctx.decode_capacity(),
            warm,
            "warm serving must not reallocate the decode scratch"
        );
    }
}

#[test]
fn block_packed_truncations_and_bad_widths_error() {
    // Single key, 401 consecutive ids: three full 128-id blocks plus a
    // delta-varint tail, bounds strictly descending.
    let mut idx: InvertedIndex<u32> = InvertedIndex::new();
    let n = 401u32;
    for id in 0..n {
        idx.push(7u32, id, f64::from(n - id));
    }
    idx.finalize();
    let packed = CompressedInvertedIndex::compress_with_codec(&idx, IdCodec::BlockPacked);
    assert_eq!(packed.codec(), IdCodec::BlockPacked);
    let encoded = packed.to_bytes();
    let bytes = encoded.as_slice();

    // Every truncation point — in particular every block boundary
    // inside the id column — must be a typed error, never a panic.
    for cut in 0..bytes.len() {
        assert!(
            CompressedInvertedIndex::<u32>::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes was accepted"
        );
    }
    assert!(CompressedInvertedIndex::<u32>::from_bytes(bytes).is_ok());

    // The arena is serialized last, so the id column starts at
    // `len - id_column_bytes()`: the first block's width byte.
    let width_at = bytes.len() - packed.id_column_bytes();
    assert_eq!(bytes[width_at], 2, "consecutive ids pack at width 2");
    for bad in [0u8, 65, 255] {
        let mut mutated = bytes.to_vec();
        mutated[width_at] = bad;
        assert!(
            CompressedInvertedIndex::<u32>::from_bytes(&mutated[..]).is_err(),
            "block width {bad} was accepted"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn random_indexes_roundtrip_and_serve_supersets(
            entries in proptest::collection::vec(
                (0u32..24, 0u32..100_000, 0.0f64..1e4), 1..400),
            thr in 0.0f64..1e4,
        ) {
            let mut idx: InvertedIndex<u32> = InvertedIndex::new();
            let mut seen = std::collections::HashSet::new();
            for (k, id, b) in entries {
                if seen.insert((k, id)) {
                    idx.push(k, id, b);
                }
            }
            idx.finalize();
            let compressed = CompressedInvertedIndex::compress(&idx);
            let loaded: CompressedInvertedIndex<u32> =
                CompressedInvertedIndex::from_bytes(compressed.to_bytes()).unwrap();
            prop_assert_eq!(loaded.posting_count(), idx.posting_count());
            let mut scratch = Vec::new();
            for key in 0u32..24 {
                let exact: std::collections::BTreeSet<u32> =
                    idx.qualifying(&key, thr).iter().copied().collect();
                let got: std::collections::BTreeSet<u32> = loaded
                    .qualifying_into(&key, thr, &mut scratch)
                    .iter()
                    .copied()
                    .collect();
                prop_assert!(exact.is_subset(&got));
                // And the loaded index serves identically to the
                // in-memory compressed one.
                let mut scratch2 = Vec::new();
                let mut scratch3 = Vec::new();
                prop_assert_eq!(
                    loaded.qualifying_into(&key, thr, &mut scratch2),
                    compressed.qualifying_into(&key, thr, &mut scratch3)
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn block_packed_roundtrip_matches_varint_reference(
            entries in proptest::collection::vec(
                (0u32..4, 0u32..100_000, 0.0f64..1e4), 1..1200),
            thr in 0.0f64..1e4,
        ) {
            // Dense enough per key (~hundreds of postings over 4 keys)
            // that full 128-id blocks, partial tails and single-id
            // groups all occur; the block-packed arena must round-trip
            // through its bytes and answer bit-identically to the
            // varint reference decode on the same index.
            let mut idx: InvertedIndex<u32> = InvertedIndex::new();
            let mut seen = std::collections::HashSet::new();
            for (k, id, b) in entries {
                if seen.insert((k, id)) {
                    idx.push(k, id, b);
                }
            }
            idx.finalize();
            let varint =
                CompressedInvertedIndex::compress_with_codec(&idx, IdCodec::Varint);
            let packed =
                CompressedInvertedIndex::compress_with_codec(&idx, IdCodec::BlockPacked);
            let loaded: CompressedInvertedIndex<u32> =
                CompressedInvertedIndex::from_bytes(packed.to_bytes()).unwrap();
            prop_assert_eq!(loaded.codec(), IdCodec::BlockPacked);
            prop_assert_eq!(loaded.posting_count(), idx.posting_count());
            let mut sv = Vec::new();
            let mut sp = Vec::new();
            let mut sl = Vec::new();
            for key in 0u32..4 {
                for c in [0.0, thr * 0.4, thr, 1e9] {
                    let reference = varint.qualifying_into(&key, c, &mut sv).to_vec();
                    prop_assert_eq!(
                        packed.qualifying_into(&key, c, &mut sp),
                        reference.as_slice()
                    );
                    prop_assert_eq!(
                        loaded.qualifying_into(&key, c, &mut sl),
                        reference.as_slice()
                    );
                }
            }
        }
    }
}
