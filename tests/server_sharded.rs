//! Concurrency over a sharded backend: the wire-level suite of
//! `server_concurrent.rs` replayed against a `ShardedEngine` — the
//! serving tier is engine-generic, so the same oracle discipline must
//! hold when every `/query` fans out across shards and every `/push`
//! routes through the partitioner.
//!
//! Same shape as the single-engine twin: a gen-0 corpus partitioned
//! over 4 shards, a staged delta pushed over the wire, both legal
//! snapshots (frozen-weight overlay before the swap, union build
//! after) precomputed from the naive oracle, then ≥ 32 client threads
//! hammering `/query`, `/push` and `/status` while one drives
//! `POST /refresh`. Extra over the twin: `/status` must expose the
//! per-shard detail rows throughout.

use seal_core::BuildOpts;
use seal_core::{
    verify::naive_search, FilterKind, ObjectId, ObjectStore, Query, RoiObject, ShardedEngine,
    SimilarityConfig,
};
use seal_server::{HttpClient, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

const SHARDS: usize = 4;
const READERS: usize = 32;
const PUSH_MIXERS: usize = 2;
const STATUS_MIXERS: usize = 1;

/// The two legal answer sets a wire client may observe for one query
/// while the refresh is in flight.
struct LegalAnswers {
    before: Vec<u32>,
    after: Vec<u32>,
}

fn query_path(q: &Query) -> String {
    let tokens: Vec<String> = q.tokens.iter().map(|t| t.0.to_string()).collect();
    format!(
        "/query?region={},{},{},{}&tokens={}&tau_r={}&tau_t={}",
        q.region.min().x,
        q.region.min().y,
        q.region.max().x,
        q.region.max().y,
        tokens.join(","),
        q.tau_spatial,
        q.tau_textual,
    )
}

fn push_line(o: &RoiObject) -> String {
    let tokens: Vec<String> = o.tokens.iter().map(|t| t.0.to_string()).collect();
    format!(
        "{} {} {} {} {}",
        o.region.min().x,
        o.region.min().y,
        o.region.max().x,
        o.region.max().y,
        tokens.join(","),
    )
}

fn parse_answers(body: &str) -> Vec<u32> {
    let start = body
        .find("\"answers\":[")
        .unwrap_or_else(|| panic!("no answers array in {body:?}"))
        + "\"answers\":[".len();
    let end = start + body[start..].find(']').expect("unterminated answers");
    body[start..end]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("numeric object id"))
        .collect()
}

#[test]
fn sharded_backend_serves_only_legal_snapshots_across_a_swap() {
    let (store, queries) = twitter_fixture(900, 3);
    let all: Vec<RoiObject> = store.objects().to_vec();
    let vocab = store.vocab_size();
    let split = 700usize;
    let gen0_store = Arc::new(ObjectStore::from_objects(all[..split].to_vec(), vocab));
    let delta = &all[split..];
    let union_store = Arc::new(ObjectStore::from_objects(all.clone(), vocab));
    let cfg = SimilarityConfig::default();

    // Both legal snapshots per query, straight from the oracle. The
    // sharded engine's global ids follow push order, so the staged
    // delta keeps ids split.. regardless of which shard each object
    // routed to.
    let legal: Vec<LegalAnswers> = queries
        .iter()
        .map(|q| {
            let mut before: Vec<ObjectId> = naive_search(&gen0_store, &cfg, q);
            for (i, o) in delta.iter().enumerate() {
                if cfg.is_answer(q, o, gen0_store.weights()) {
                    before.push(ObjectId((split + i) as u32));
                }
            }
            before.sort_unstable();
            let mut after = naive_search(&union_store, &cfg, q);
            after.sort_unstable();
            LegalAnswers {
                before: before.into_iter().map(|id| id.0).collect(),
                after: after.into_iter().map(|id| id.0).collect(),
            }
        })
        .collect();

    let engine = Arc::new(ShardedEngine::with_opts(
        &gen0_store,
        FilterKind::Hierarchical {
            max_level: 5,
            budget: 8,
        },
        cfg,
        BuildOpts::default(),
        SHARDS,
        None,
    ));
    assert_eq!(engine.shard_count(), SHARDS);
    // Same churn-gate trick as the single-engine twin: `max_staged`
    // equals the oracle delta, so mixer pushes are deterministically
    // shed with 503 and can never leak into the generation-1 build.
    let server = Server::spawn(
        engine,
        ServerConfig {
            max_connections: READERS + PUSH_MIXERS + STATUS_MIXERS + 8,
            max_staged: delta.len(),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // Stage the delta over the wire; global ids continue in push order.
    let mut c = HttpClient::connect(&addr).expect("connect");
    let body: String = delta.iter().map(|o| push_line(o) + "\n").collect();
    let resp = c
        .request("POST", "/push", body.as_bytes())
        .expect("push delta");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let text = resp.text();
    assert!(
        text.contains(&format!("\"staged\":{}", delta.len())),
        "{text}"
    );
    assert!(text.contains(&format!("\"first_id\":{split}")), "{text}");

    // Pre-swap sanity: the wire serves exactly the `before` snapshot,
    // and `/status` already exposes one detail row per shard.
    let paths: Vec<String> = queries.iter().map(query_path).collect();
    for (path, l) in paths.iter().zip(&legal) {
        let resp = c.request("GET", path, &[]).expect("pre-swap query");
        assert_eq!(resp.status, 200);
        assert_eq!(parse_answers(&resp.text()), l.before, "pre-swap {path}");
    }
    let status = c.request("GET", "/status", &[]).expect("status").text();
    assert_eq!(
        status.matches("\"generation\":0").count(),
        SHARDS + 1,
        "engine + per-shard generations: {status}"
    );

    let refresh_done = AtomicBool::new(false);
    let ready = AtomicUsize::new(0);
    let served_during_refresh = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Readers: every observed answer set must equal one of the two
        // legal snapshots, before, during and right after the swap.
        for r in 0..READERS {
            let (addr, paths, legal) = (&addr, &paths, &legal);
            let (refresh_done, ready, served) = (&refresh_done, &ready, &served_during_refresh);
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("reader connect");
                let mut qi = r; // stagger the workload across readers
                loop {
                    let done_before = refresh_done.load(Ordering::Acquire);
                    let path = &paths[qi % paths.len()];
                    let resp = client.request("GET", path, &[]).expect("reader query");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    let got = parse_answers(&resp.text());
                    let l = &legal[qi % paths.len()];
                    assert!(
                        got == l.before || got == l.after,
                        "mid-swap answer matched neither legal snapshot for {path}:\n \
                         got {got:?}\n pre {:?}\n post {:?}",
                        l.before,
                        l.after
                    );
                    if qi == r {
                        ready.fetch_add(1, Ordering::Release);
                    }
                    if !done_before {
                        served.fetch_add(1, Ordering::Relaxed);
                    } else {
                        break; // one full validated pass after the swap
                    }
                    qi += 1;
                }
            });
        }
        // Push mixers: stage objects far outside every query region
        // (spatial similarity 0 ⇒ never an answer), over an existing
        // token so the corpus vocabulary cannot drift.
        for m in 0..PUSH_MIXERS {
            let (addr, refresh_done, ready) = (&addr, &refresh_done, &ready);
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("mixer connect");
                let mut i = 0usize;
                while !refresh_done.load(Ordering::Acquire) {
                    let x = 1.0e7 + (m * 1000 + i) as f64;
                    let line = format!("{x} {x} {} {} 0\n", x + 1.0, x + 1.0);
                    let resp = client
                        .request("POST", "/push", line.as_bytes())
                        .expect("mixer push");
                    assert!(
                        resp.status == 200 || resp.status == 503,
                        "mixer push answered {}",
                        resp.status
                    );
                    if i == 0 {
                        ready.fetch_add(1, Ordering::Release);
                    }
                    i += 1;
                }
            });
        }
        // Status mixers: the per-shard admin view interleaves with
        // everything else and always lists every shard.
        for _ in 0..STATUS_MIXERS {
            let (addr, refresh_done, ready) = (&addr, &refresh_done, &ready);
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("status connect");
                let mut first = true;
                while !refresh_done.load(Ordering::Acquire) {
                    let resp = client.request("GET", "/status", &[]).expect("status");
                    assert_eq!(resp.status, 200);
                    let text = resp.text();
                    assert_eq!(
                        text.matches("\"staged\":").count(),
                        SHARDS + 1,
                        "engine + per-shard staged counts: {text}"
                    );
                    if first {
                        ready.fetch_add(1, Ordering::Release);
                        first = false;
                    }
                }
            });
        }
        // Start gate: every client thread has completed at least one
        // exchange before the refresh fires, so the swap happens under
        // real concurrent load.
        let clients = READERS + PUSH_MIXERS + STATUS_MIXERS;
        while ready.load(Ordering::Acquire) < clients {
            std::thread::yield_now();
        }
        let mut refresher = HttpClient::connect(&addr).expect("refresher connect");
        let resp = refresher
            .request("POST", "/refresh", &[])
            .expect("wire refresh");
        assert_eq!(resp.status, 200, "{}", resp.text());
        let text = resp.text();
        assert!(text.contains("\"generation\":1"), "{text}");
        assert!(
            text.contains(&format!("\"merged\":{}", delta.len())),
            "exactly the oracle delta merges (mixers are shed): {text}"
        );
        refresh_done.store(true, Ordering::Release);
    });
    assert!(
        served_during_refresh.load(Ordering::Relaxed) > 0,
        "no query completed while the refresh was in flight"
    );

    // Steady state after the swap: exactly the union answers, from an
    // epoch-1 engine whose shards all merged or reweighted.
    let mut c = HttpClient::connect(&addr).expect("post-swap connect");
    for (path, l) in paths.iter().zip(&legal) {
        let resp = c.request("GET", path, &[]).expect("post-swap query");
        assert_eq!(parse_answers(&resp.text()), l.after, "post-swap {path}");
    }
    let status = c.request("GET", "/status", &[]).expect("status").text();
    assert!(status.contains("\"generation\":1"), "{status}");
    assert!(status.contains("\"shards\":["), "{status}");
    let metrics = server.metrics_json();
    server.shutdown();
    assert!(metrics.contains("\"parse_errors\":0"), "{metrics}");
    assert!(metrics.contains("\"shards\":["), "{metrics}");
}
