//! Incremental (merge-based) finalize and parallel builds.
//!
//! Two properties anchor the build path:
//!
//! 1. **Re-finalize ≡ fresh build.** The same pushes, split across any
//!    push/finalize interleaving (streaming ingest), produce an index
//!    whose `iter()` output is identical to pushing everything once
//!    and finalizing once — for both index types and every build
//!    thread count. The merge-based finalize is an optimization, never
//!    a semantic change.
//! 2. **Parallel builds are deterministic.** The hierarchical
//!    (HSS-Greedy) build selects exactly the same cells — and the
//!    resulting engine returns exactly the same answers — at every
//!    thread count.

use proptest::prelude::*;
use seal_core::filters::HierarchicalFilter;
use seal_core::signatures::hierarchical::HierarchicalScheme;
use seal_core::{BuildOpts, FilterKind, SealEngine, SimilarityConfig};
use seal_index::{HybridIndex, InvertedIndex};
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

/// One push: key, object id, bound (dual bounds derive from it).
type Entry = (u64, u32, f64);

fn entries() -> impl Strategy<Value = Vec<Entry>> {
    proptest::collection::vec((0u64..12, 0u32..50_000, 0.0f64..1e5), 0..250)
}

/// Finalize points: after which pushes (by index) to freeze mid-build.
fn cuts() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..250, 0..5)
}

fn inverted_snapshot(idx: &InvertedIndex<u64>) -> Vec<(u64, Vec<(u32, f64)>)> {
    idx.iter()
        .map(|(k, g)| (k, g.iter().map(|p| (p.object, p.bound)).collect()))
        .collect()
}

type HybridGroup = (u64, Vec<(u32, f64, f64)>);

fn hybrid_snapshot(idx: &HybridIndex<u64>) -> Vec<HybridGroup> {
    idx.iter()
        .map(|(k, g)| {
            (
                k,
                g.iter()
                    .map(|p| (p.object, p.spatial_bound, p.textual_bound))
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inverted_refinalize_equals_fresh_build(
        entries in entries(),
        cuts in cuts(),
        threads in 1usize..5,
    ) {
        let mut fresh: InvertedIndex<u64> = InvertedIndex::new();
        for &(k, o, b) in &entries {
            fresh.push(k, o, b);
        }
        fresh.finalize();

        let mut incremental: InvertedIndex<u64> = InvertedIndex::new();
        for (i, &(k, o, b)) in entries.iter().enumerate() {
            incremental.push(k, o, b);
            if cuts.contains(&i) {
                incremental.finalize_with_threads(threads);
            }
        }
        incremental.finalize_with_threads(threads);

        prop_assert_eq!(incremental.posting_count(), fresh.posting_count());
        prop_assert_eq!(incremental.key_count(), fresh.key_count());
        prop_assert_eq!(inverted_snapshot(&incremental), inverted_snapshot(&fresh));
    }

    #[test]
    fn hybrid_refinalize_equals_fresh_build(
        entries in entries(),
        cuts in cuts(),
        threads in 1usize..5,
    ) {
        let dual = |b: f64| (b, 1e5 - b); // distinct, NaN-free bounds
        let mut fresh: HybridIndex<u64> = HybridIndex::new();
        for &(k, o, b) in &entries {
            let (sb, tb) = dual(b);
            fresh.push(k, o, sb, tb);
        }
        fresh.finalize();

        let mut incremental: HybridIndex<u64> = HybridIndex::new();
        for (i, &(k, o, b)) in entries.iter().enumerate() {
            let (sb, tb) = dual(b);
            incremental.push(k, o, sb, tb);
            if cuts.contains(&i) {
                incremental.finalize_with_threads(threads);
            }
        }
        incremental.finalize_with_threads(threads);

        prop_assert_eq!(incremental.posting_count(), fresh.posting_count());
        prop_assert_eq!(hybrid_snapshot(&incremental), hybrid_snapshot(&fresh));
    }
}

#[test]
fn parallel_hierarchical_build_selects_the_same_cells() {
    let (store, _qs) = twitter_fixture(1500, 1);
    let store = Arc::new(store);
    let sequential = HierarchicalScheme::build(&store, 6, 8);
    let baseline = sequential.selected_cells_sorted();
    assert!(!baseline.is_empty());
    for threads in [2usize, 4, 8, 0] {
        let parallel = HierarchicalScheme::build_with_threads(&store, 6, 8, threads);
        assert_eq!(
            parallel.selected_cells_sorted(),
            baseline,
            "threads={threads} selected different cells"
        );
        assert_eq!(parallel.total_cells(), sequential.total_cells());
    }
}

#[test]
fn parallel_hierarchical_filter_answers_identically() {
    let (store, queries) = twitter_fixture(1200, 6);
    let store = Arc::new(store);
    let cfg = SimilarityConfig::default();
    let sequential =
        HierarchicalFilter::build_with_opts(store.clone(), 5, 8, cfg, BuildOpts::with_threads(1));
    let parallel =
        HierarchicalFilter::build_with_opts(store.clone(), 5, 8, cfg, BuildOpts::with_threads(4));
    assert_eq!(
        sequential.index().posting_count(),
        parallel.index().posting_count(),
        "parallel build produced a different index"
    );
    assert_eq!(
        sequential.scheme().selected_cells_sorted(),
        parallel.scheme().selected_cells_sorted(),
    );
    // And end to end through the engine: identical answers.
    let seq_engine = SealEngine::build_with_opts(
        store.clone(),
        FilterKind::Hierarchical {
            max_level: 5,
            budget: 8,
        },
        cfg,
        BuildOpts::with_threads(1),
    );
    let par_engine = SealEngine::build_with_opts(
        store,
        FilterKind::Hierarchical {
            max_level: 5,
            budget: 8,
        },
        cfg,
        BuildOpts::with_threads(0),
    );
    for q in &queries {
        assert_eq!(
            seq_engine.search(q).sorted().answers,
            par_engine.search(q).sorted().answers,
        );
    }
}

#[test]
fn streaming_ingest_serves_correct_answers_after_each_refinalize() {
    // The scenario the merge-based finalize opens: push a batch,
    // re-finalize, serve — repeatedly — and at every step the frozen
    // index answers exactly like a fresh one built from the same
    // postings.
    let (store, _qs) = twitter_fixture(900, 1);
    let all: Vec<(u32, seal_core::RoiObject)> =
        store.iter().map(|(id, o)| (id.0, o.clone())).collect();
    let mut streaming: InvertedIndex<u32> = InvertedIndex::new();
    let mut so_far: Vec<(u32, u32, f64)> = Vec::new();
    for chunk in all.chunks(300) {
        for (id, o) in chunk {
            for t in o.tokens.iter() {
                let bound = f64::from(*id % 97); // synthetic NaN-free bound
                streaming.push(t.0, *id, bound);
                so_far.push((t.0, *id, bound));
            }
        }
        streaming.finalize_with_threads(2);
        let mut fresh: InvertedIndex<u32> = InvertedIndex::new();
        for &(k, o, b) in &so_far {
            fresh.push(k, o, b);
        }
        fresh.finalize();
        for key in 0u32..40 {
            for thr in [0.0, 10.0, 50.0, 96.0] {
                assert_eq!(
                    streaming.qualifying(&key, thr),
                    fresh.qualifying(&key, thr),
                    "key {key} thr {thr} diverged mid-stream"
                );
            }
        }
    }
}
