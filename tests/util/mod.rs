//! Shared fixtures for the workspace integration tests: realistic
//! synthetic stores + query workloads with mixed thresholds.

// The module is compiled once per test binary; not every binary uses
// every fixture.
#![allow(dead_code)]

use seal_core::{ObjectStore, Query, RoiObject};
use seal_datagen::{
    generate_queries, twitter_like, usa_like, QueryParams, QuerySpec, TwitterParams, UsaParams,
};
use seal_text::TokenSet;

/// A Twitter-like store plus a mixed-threshold query workload.
pub fn twitter_fixture(objects: usize, queries_per_spec: usize) -> (ObjectStore, Vec<Query>) {
    let dataset = twitter_like(&TwitterParams {
        count: objects,
        seed: 0xFEED,
        ..TwitterParams::default()
    });
    let store = to_store(&dataset);
    let qs = build_queries(&dataset, queries_per_spec, 0xBEE);
    (store, qs)
}

/// A USA-like store plus a mixed-threshold query workload.
pub fn usa_fixture(objects: usize, queries_per_spec: usize) -> (ObjectStore, Vec<Query>) {
    let dataset = usa_like(&UsaParams {
        count: objects,
        seed: 0xFACE,
        ..UsaParams::default()
    });
    let store = to_store(&dataset);
    let qs = build_queries(&dataset, queries_per_spec, 0xCAB);
    (store, qs)
}

fn to_store(dataset: &seal_datagen::Dataset) -> ObjectStore {
    let objects: Vec<RoiObject> = dataset
        .objects
        .iter()
        .map(|o| RoiObject::new(o.region, TokenSet::from_ids(o.tokens.iter().copied())))
        .collect();
    ObjectStore::from_objects(objects, dataset.vocab_size)
}

fn build_queries(dataset: &seal_datagen::Dataset, per_spec: usize, seed: u64) -> Vec<Query> {
    let mut out = Vec::new();
    for (i, spec) in [QuerySpec::LargeRegion, QuerySpec::SmallRegion]
        .into_iter()
        .enumerate()
    {
        let raw = generate_queries(
            dataset,
            &QueryParams {
                spec,
                count: per_spec,
                seed: seed + i as u64,
            },
        );
        // Rotate through threshold combinations so the suite exercises
        // loose, default and tight settings.
        let thresholds = [(0.1, 0.1), (0.1, 0.4), (0.4, 0.1), (0.4, 0.4), (0.5, 0.5)];
        for (j, r) in raw.into_iter().enumerate() {
            let (tr, tt) = thresholds[j % thresholds.len()];
            out.push(
                Query::with_token_ids(r.region, r.tokens.iter().copied(), tr, tt)
                    .expect("valid thresholds"),
            );
        }
    }
    out
}
