//! Concurrency stress: `search_batch` with far more threads than cores
//! over a realistically-sized store must return exactly the sequential
//! results for every filter kind.
//!
//! This is the regression net for the zero-contention query path: the
//! per-worker `QueryContext` holds epoch-stamped dedup/accumulator
//! scratch, and a reuse bug (stale stamps, shared buffers, missed
//! epoch bump) produces duplicated or dropped candidates only under
//! interleaved reuse — which a 7-object fixture can't surface. A ~5k
//! object store with mixed workloads can.

use seal_core::{FilterKind, Query, QueryContext, SealEngine};
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

const THREADS: usize = 64;

fn kinds() -> Vec<FilterKind> {
    vec![
        FilterKind::Token,
        FilterKind::TokenCompressed,
        FilterKind::TokenBasic,
        FilterKind::Grid { side: 64 },
        FilterKind::HashHybrid {
            side: 64,
            buckets: Some(1 << 12),
        },
        FilterKind::HashHybridCompressed {
            side: 64,
            buckets: Some(1 << 12),
        },
        FilterKind::HashHybrid {
            side: 32,
            buckets: None,
        },
        FilterKind::Hierarchical {
            max_level: 5,
            budget: 8,
        },
        FilterKind::Adaptive { side: 64 },
        FilterKind::KeywordFirst,
        FilterKind::SpatialFirst,
        FilterKind::IrTree { fanout: 16 },
        FilterKind::Naive,
    ]
}

#[test]
fn sixty_four_thread_batch_equals_sequential_for_every_filter() {
    // 36 queries per spec × 2 specs = 72 queries: comfortably above
    // THREADS, since search_batch clamps workers to the query count —
    // a smaller workload would silently run fewer than 64 workers.
    let (store, queries) = twitter_fixture(5_000, 36);
    assert!(
        queries.len() >= THREADS,
        "workload must not clamp the thread count"
    );
    let store = Arc::new(store);
    for kind in kinds() {
        let engine = SealEngine::build(store.clone(), kind);
        // Sequential ground truth through the same context-reuse path a
        // worker uses (one warm context across all queries).
        let mut ctx = QueryContext::new();
        let sequential: Vec<Vec<_>> = queries
            .iter()
            .map(|q| engine.search_with_ctx(q, &mut ctx).sorted().answers)
            .collect();
        let parallel: Vec<Vec<_>> = engine
            .search_batch(&queries, THREADS)
            .into_iter()
            .map(|r| r.sorted().answers)
            .collect();
        assert_eq!(
            parallel, sequential,
            "{kind:?}: {THREADS}-thread batch diverged from sequential"
        );
    }
}

#[test]
fn repeated_batches_reuse_contexts_cleanly() {
    // Back-to-back batches over the same engine: a second run must see
    // no residue from the first (epoch bumps, buffer clears).
    let (store, queries) = twitter_fixture(3_000, 32);
    assert!(queries.len() >= THREADS);
    let store = Arc::new(store);
    let engine = SealEngine::build(store, FilterKind::seal_default());
    let first: Vec<usize> = engine
        .search_batch(&queries, THREADS)
        .iter()
        .map(|r| r.answers.len())
        .collect();
    for round in 0..3 {
        let again: Vec<usize> = engine
            .search_batch(&queries, THREADS)
            .iter()
            .map(|r| r.answers.len())
            .collect();
        assert_eq!(again, first, "round {round} diverged");
    }
}

#[test]
fn one_context_serves_engines_of_different_sizes() {
    // A context warmed on a large store must stay correct on a smaller
    // one and re-grow for a larger one (the `ensure` path).
    let (big_store, big_queries) = twitter_fixture(2_000, 4);
    let (small_store, small_queries) = twitter_fixture(300, 4);
    let big = SealEngine::build(Arc::new(big_store), FilterKind::Token);
    let small = SealEngine::build(Arc::new(small_store), FilterKind::Token);
    let mut ctx = QueryContext::new();
    for (engine, qs) in [
        (&big, &big_queries),
        (&small, &small_queries),
        (&big, &big_queries),
    ] {
        for q in qs.iter().take(4) {
            let with_ctx = engine.search_with_ctx(q, &mut ctx).sorted().answers;
            let fresh = engine.search(q).sorted().answers;
            assert_eq!(with_ctx, fresh);
        }
    }
}

#[test]
fn context_query_interleaving_across_filters() {
    // One context alternating between filters with different scratch
    // needs (dedup vs accumulator) must never leak state between them.
    let (store, queries) = twitter_fixture(1_500, 6);
    let store = Arc::new(store);
    let token = SealEngine::build(store.clone(), FilterKind::Token);
    let basic = SealEngine::build(store.clone(), FilterKind::TokenBasic);
    let keyword = SealEngine::build(store.clone(), FilterKind::KeywordFirst);
    let mut ctx = QueryContext::with_capacity(store.len());
    let check = |engine: &SealEngine, q: &Query, ctx: &mut QueryContext| {
        let a = engine.search_with_ctx(q, ctx).sorted().answers;
        let b = engine.search(q).sorted().answers;
        assert_eq!(
            a,
            b,
            "{} diverged under context reuse",
            engine.filter_name()
        );
    };
    for q in &queries {
        check(&token, q, &mut ctx);
        check(&basic, q, &mut ctx);
        check(&keyword, q, &mut ctx);
    }
}
