//! Integration: inverted indexes built by the filters survive the
//! binary codec and keep answering identically (the disk-resident
//! deployment path of Section 6.1).

use seal_core::signatures::grid::GridScheme;
use seal_core::signatures::textual::TextualSignature;
use seal_index::{HybridIndex, InvertedIndex};
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

#[test]
fn token_index_roundtrips_through_bytes() {
    let (store, _) = twitter_fixture(800, 1);
    let store = Arc::new(store);
    let mut idx: InvertedIndex<u32> = InvertedIndex::new();
    for (id, o) in store.iter() {
        let sig = TextualSignature::build(&o.tokens, store.weights(), store.token_order());
        for (e, b) in sig.elements_with_bounds() {
            idx.push(e.token.0, id.0, b);
        }
    }
    idx.finalize();
    let bytes = idx.to_bytes();
    let back: InvertedIndex<u32> = InvertedIndex::from_bytes(bytes).unwrap();
    assert_eq!(back.key_count(), idx.key_count());
    assert_eq!(back.posting_count(), idx.posting_count());
    // Spot-check qualifying sets for a sample of keys and thresholds.
    for (key, _) in idx.iter().take(50) {
        for c in [0.0, 0.5, 2.0, 10.0] {
            assert_eq!(
                idx.qualifying(&key, c),
                back.qualifying(&key, c),
                "key {key} threshold {c}"
            );
        }
    }
}

#[test]
fn grid_index_roundtrips_through_bytes() {
    let (store, _) = twitter_fixture(800, 1);
    let store = Arc::new(store);
    let scheme = GridScheme::build(&store, 64);
    let mut idx: InvertedIndex<u64> = InvertedIndex::new();
    for (id, o) in store.iter() {
        for (e, b) in scheme.signature(&o.region).elements_with_bounds() {
            idx.push(e.cell, id.0, b);
        }
    }
    idx.finalize();
    let back: InvertedIndex<u64> = InvertedIndex::from_bytes(idx.to_bytes()).unwrap();
    assert_eq!(back.posting_count(), idx.posting_count());
}

#[test]
fn hybrid_index_roundtrips_through_bytes() {
    let (store, _) = twitter_fixture(400, 1);
    let store = Arc::new(store);
    let scheme = GridScheme::build(&store, 32);
    let mut idx: HybridIndex<u128> = HybridIndex::new();
    for (id, o) in store.iter() {
        let tsig = TextualSignature::build(&o.tokens, store.weights(), store.token_order());
        let gsig = scheme.signature(&o.region);
        for (t, tb) in tsig.elements_with_bounds() {
            for (g, gb) in gsig.elements_with_bounds() {
                let key = (u128::from(t.token.0) << 64) | u128::from(g.cell);
                idx.push(key, id.0, gb, tb);
            }
        }
    }
    idx.finalize();
    let back: HybridIndex<u128> = HybridIndex::from_bytes(idx.to_bytes()).unwrap();
    assert_eq!(back.posting_count(), idx.posting_count());
    assert_eq!(back.key_count(), idx.key_count());
    for (key, _) in idx.iter().take(25) {
        let a: Vec<u32> = idx.qualifying(&key, 10.0, 0.5).collect();
        let b: Vec<u32> = back.qualifying(&key, 10.0, 0.5).collect();
        assert_eq!(a, b);
    }
}
