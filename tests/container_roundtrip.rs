//! Integration: the `.seal` container round-trips every engine
//! configuration bit-identically — answers, kind, config and bytes —
//! and its atomic-rename save protocol never clobbers a good
//! container with a failed write.

use seal_core::{FilterKind, LiveEngine, ObjectId, Query, QueryContext, SealEngine};
use seal_index::container::temp_path_for;
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::twitter_fixture;

fn temp_seal(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("seal-container-test-{}-{name}", std::process::id()));
    p
}

fn answers(engine: &SealEngine, queries: &[Query]) -> Vec<Vec<ObjectId>> {
    let mut ctx = QueryContext::new();
    queries
        .iter()
        .map(|q| engine.search_with_ctx(q, &mut ctx).sorted().answers)
        .collect()
}

/// Every indexed and derivable filter kind: build → save → load must
/// preserve the kind, reproduce the answers exactly, and re-serialize
/// to the very same bytes (save → load → save is a fixed point).
#[test]
fn every_kind_roundtrips_bit_identical() {
    let (store, queries) = twitter_fixture(400, 3);
    let store = Arc::new(store);
    let kinds = [
        FilterKind::Token,
        FilterKind::TokenCompressed,
        FilterKind::TokenBasic,
        FilterKind::Grid { side: 64 },
        FilterKind::HashHybrid {
            side: 64,
            buckets: None,
        },
        FilterKind::HashHybrid {
            side: 64,
            buckets: Some(1 << 12),
        },
        FilterKind::HashHybridCompressed {
            side: 64,
            buckets: None,
        },
        FilterKind::HashHybridCompressed {
            side: 64,
            buckets: Some(1 << 12),
        },
        FilterKind::Hierarchical {
            max_level: 5,
            budget: 8,
        },
        FilterKind::KeywordFirst,
        FilterKind::SpatialFirst,
        FilterKind::IrTree { fanout: 16 },
        FilterKind::Adaptive { side: 64 },
        FilterKind::Naive,
    ];
    let path = temp_seal("kinds.seal");
    for kind in kinds {
        let engine = SealEngine::build(store.clone(), kind);
        let expect = answers(&engine, &queries);
        let saved = engine
            .save(&path)
            .unwrap_or_else(|e| panic!("{kind:?}: save failed: {e}"));
        assert_eq!(
            saved,
            std::fs::metadata(&path)
                .expect("saved file must exist")
                .len(),
            "{kind:?}: reported size disagrees with the file"
        );
        let loaded =
            SealEngine::load(&path).unwrap_or_else(|e| panic!("{kind:?}: load failed: {e}"));
        assert_eq!(loaded.kind(), kind, "kind must survive the round-trip");
        assert_eq!(
            answers(&loaded, &queries),
            expect,
            "{kind:?}: answers changed across save/load"
        );
        // save → load → save is a fixed point: bit-identical bytes.
        assert_eq!(
            loaded.to_container_bytes().expect("re-serialize"),
            engine.to_container_bytes().expect("serialize"),
            "{kind:?}: container bytes not a fixed point"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// A post-`refresh()` generation — built through the incremental
/// scheme-reuse path, not a fresh build — persists and reloads with
/// identical answers.
#[test]
fn post_refresh_generation_roundtrips() {
    let (store, queries) = twitter_fixture(400, 3);
    let objects: Vec<_> = store.iter().map(|(_, o)| o.clone()).collect();
    let vocab = store.vocab_size();
    let gen0 = Arc::new(seal_core::ObjectStore::from_objects(
        objects[..300].to_vec(),
        vocab,
    ));
    let live = LiveEngine::new(
        gen0,
        FilterKind::Hierarchical {
            max_level: 5,
            budget: 8,
        },
    );
    live.push_all(objects[300..].iter().cloned());
    let stats = live.refresh();
    assert_eq!(stats.total, 400);
    let engine = live.engine();
    let expect = answers(&engine, &queries);

    let path = temp_seal("generation.seal");
    engine.save(&path).expect("saving a refreshed generation");
    let loaded = SealEngine::load(&path).expect("loading a refreshed generation");
    assert_eq!(loaded.store().len(), 400);
    assert_eq!(answers(&loaded, &queries), expect);
    std::fs::remove_file(&path).ok();
}

/// Crash safety: a save that fails mid-flight (here: the temp path is
/// unwritable) must leave the existing container byte-for-byte intact
/// and loadable.
#[test]
fn failed_save_never_clobbers_an_existing_container() {
    let (store, queries) = twitter_fixture(200, 2);
    let store = Arc::new(store);
    let engine = SealEngine::build(store.clone(), FilterKind::Token);
    let path = temp_seal("clobber.seal");
    engine.save(&path).expect("initial save");
    let pristine = std::fs::read(&path).expect("read saved container");

    // Occupy the temp slot with a non-empty directory: the writer's
    // create/rename both fail, and the error must surface as a typed
    // ContainerError without touching the good container.
    let tmp = temp_path_for(&path);
    std::fs::create_dir_all(tmp.join("occupied")).expect("block the temp path");
    let other = SealEngine::build(store, FilterKind::TokenCompressed);
    assert!(
        other.save(&path).is_err(),
        "save through a blocked temp path must fail"
    );
    assert_eq!(
        std::fs::read(&path).expect("container must still exist"),
        pristine,
        "failed save altered the existing container"
    );
    let reloaded = SealEngine::load(&path).expect("existing container must still load");
    assert_eq!(answers(&reloaded, &queries), answers(&engine, &queries));

    std::fs::remove_dir_all(&tmp).ok();
    std::fs::remove_file(&path).ok();
}

/// The legacy raw codec blobs (index `to_bytes`/`from_bytes`) stay
/// loadable through the compatibility entry points, and the container
/// loader refuses them with guidance instead of misparsing.
#[test]
fn legacy_codec_blobs_still_load_via_from_bytes() {
    let (store, _) = twitter_fixture(200, 1);
    let store = Arc::new(store);
    let mut idx: seal_index::InvertedIndex<u32> = seal_index::InvertedIndex::new();
    for (id, o) in store.iter() {
        let sig = seal_core::signatures::textual::TextualSignature::build(
            &o.tokens,
            store.weights(),
            store.token_order(),
        );
        for (e, b) in sig.elements_with_bounds() {
            idx.push(e.token.0, id.0, b);
        }
    }
    idx.finalize();
    let blob = idx.to_bytes();

    let back: seal_index::InvertedIndex<u32> =
        seal_index::InvertedIndex::from_bytes(blob.clone()).expect("legacy blob must decode");
    assert_eq!(back.posting_count(), idx.posting_count());

    let err = SealEngine::load_from_bytes(blob.as_ref(), 1)
        .err()
        .expect("a legacy blob is not a container");
    let msg = format!("{err}");
    assert!(
        msg.contains("legacy"),
        "error should point at the legacy format: {msg}"
    );
}
