//! Hostile-input hardening of the `seal-server` HTTP/1.1 parser, in
//! the style of `container_corrupt.rs`: every byte string — random
//! soup, mutated valid requests, truncations, header floods,
//! oversized declarations — must come back from [`parse_request`] as
//! `Ok(NeedMore)`, `Ok(Complete)`, or a typed [`ParseError`] that
//! maps to a real 4xx/5xx status. Never a panic, and never an
//! allocation sized by attacker-declared lengths (the oversized cases
//! are rejected straight from the declaration, before any buffering).

use proptest::prelude::*;
use seal_server::http::{parse_request, Parsed};
use seal_server::Limits;

/// Valid request templates the mutation properties start from.
fn templates() -> Vec<Vec<u8>> {
    let body = b"1 1 2 2 0,1\n3 3 4 4 2\n";
    vec![
        b"GET /status HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /query?region=0,0,9,9&tokens=1,2&tau_r=0.3&tau_t=0.2 HTTP/1.1\r\nHost: x\r\n\r\n"
            .to_vec(),
        format!(
            "POST /push HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            String::from_utf8_lossy(body),
        )
        .into_bytes(),
        b"POST /refresh HTTP/1.0\r\nContent-Length: 0\r\n\r\n".to_vec(),
        // Two pipelined requests in one buffer.
        b"GET / HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
    ]
}

/// The statuses the serving tier maps parse errors onto.
fn assert_typed(e: seal_server::ParseError, what: &str) {
    let (status, reason) = e.status();
    assert!(
        matches!(status, 400 | 413 | 431 | 501 | 505),
        "{what}: {e:?} mapped to unknown status {status} {reason}"
    );
    assert!(!reason.is_empty(), "{what}: empty reason phrase");
}

/// Whatever `parse_request` returns, it returned (did not panic) and
/// any error is typed.
fn assert_total(bytes: &[u8], limits: &Limits, what: &str) {
    match parse_request(bytes, limits) {
        Ok(Parsed::NeedMore) | Ok(Parsed::Complete(..)) => {}
        Err(e) => assert_typed(e, what),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure byte soup, plus every 64-byte-step prefix of it.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..1024)) {
        let limits = Limits::default();
        assert_total(&bytes, &limits, "byte soup");
        let mut cut = 0usize;
        while cut < bytes.len() {
            assert_total(&bytes[..cut], &limits, "byte-soup prefix");
            cut += 64;
        }
    }

    /// Single-byte mutations of valid requests: flip, insert, delete,
    /// or truncate — the parser stays total and typed.
    #[test]
    fn mutated_valid_requests_stay_typed(
        which in 0usize..5,
        op in 0u8..4,
        pos in 0usize..1024,
        byte in 0u8..=255,
    ) {
        let mut bytes = templates()[which].clone();
        let pos = pos % bytes.len();
        match op {
            0 => bytes[pos] = byte,          // flip
            1 => bytes.insert(pos, byte),    // insert
            2 => { bytes.remove(pos); }      // delete
            _ => bytes.truncate(pos),        // truncate
        }
        assert_total(&bytes, &Limits::default(), "mutated template");
    }

    /// Incremental feeding: for a valid request delivered a prefix at
    /// a time, every proper prefix is `NeedMore` (never an error, so
    /// a slow-but-honest client is never rejected mid-write), and the
    /// full buffer parses `Complete` consuming exactly the request.
    #[test]
    fn prefixes_of_valid_requests_need_more(which in 0usize..4, step in 1usize..64) {
        let bytes = templates()[which].clone();
        let limits = Limits::default();
        let mut cut = 0usize;
        while cut < bytes.len() {
            match parse_request(&bytes[..cut], &limits) {
                Ok(Parsed::NeedMore) => {}
                Ok(Parsed::Complete(..)) => {
                    panic!("complete from a proper prefix of template {which} at {cut}")
                }
                Err(e) => panic!("prefix {cut} of template {which} rejected: {e:?}"),
            }
            cut = (cut + step).min(bytes.len());
        }
        match parse_request(&bytes, &limits) {
            Ok(Parsed::Complete(req, consumed)) => {
                prop_assert!(consumed <= bytes.len());
                prop_assert!(!req.method.is_empty());
                prop_assert!(req.path.starts_with('/'));
            }
            other => panic!("template {which} did not complete: {other:?}"),
        }
    }

    /// Oversized declarations are rejected from the *declaration*:
    /// a giant Content-Length with zero body bytes present must come
    /// back `BodyTooLarge` (413) — not `NeedMore`, which would invite
    /// buffering toward an attacker-chosen size.
    #[test]
    fn oversized_declared_bodies_are_rejected_up_front(
        over in 1u64..u64::MAX / 2,
    ) {
        let limits = Limits::default();
        let declared = limits.max_body_bytes as u64 + over;
        let head = format!("POST /push HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        match parse_request(head.as_bytes(), &limits) {
            Err(e) => {
                let (status, _) = e.status();
                prop_assert_eq!(status, 413);
            }
            other => panic!("oversized declaration accepted: {other:?}"),
        }
    }

    /// Heads that never terminate are cut off at the head limit (431),
    /// no matter how much more the client pours in.
    #[test]
    fn unterminated_heads_are_cut_off(extra in 1usize..4096) {
        let limits = Limits::default();
        let mut bytes = b"GET /".to_vec();
        bytes.resize(limits.max_head_bytes + extra, b'a');
        match parse_request(&bytes, &limits) {
            Err(e) => {
                let (status, _) = e.status();
                prop_assert_eq!(status, 431);
            }
            other => panic!("runaway head accepted: {other:?}"),
        }
    }

    /// Header floods: up to the configured count parses fine, one
    /// past it is a typed 431.
    #[test]
    fn header_floods_hit_the_header_limit(extra in 0usize..40) {
        let limits = Limits::default();
        let n = limits.max_headers + extra;
        let heads: String = (0..n).map(|i| format!("H{i}: v{i}\r\n")).collect();
        let bytes = format!("GET /status HTTP/1.1\r\n{heads}\r\n").into_bytes();
        match parse_request(&bytes, &limits) {
            Ok(Parsed::Complete(..)) => prop_assert!(extra == 0, "over-limit head parsed"),
            Err(e) => {
                prop_assert!(extra > 0, "within-limit head rejected: {e:?}");
                let (status, _) = e.status();
                // The flood trips whichever bound it crosses first:
                // the header-count limit or the head-byte limit.
                prop_assert!(status == 431, "flood mapped to {status}");
            }
            Ok(Parsed::NeedMore) => panic!("complete head reported NeedMore"),
        }
    }
}
