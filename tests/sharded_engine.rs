//! Sharded serving (`ShardedEngine`): the exactness contract.
//!
//! Sharding moves work around; it must never move answers. For any
//! push/query/refresh interleaving and any shard count:
//!
//! 1. **Staged overlay ≡ single engine.** Between refreshes the
//!    sharded engine answers exactly like one `LiveEngine` fed the
//!    same push sequence — both serve the frozen-weight generation
//!    plus delta overlay, just in different places.
//! 2. **Refresh ≡ fresh build.** After every refresh the sharded
//!    engine answers exactly like a from-scratch `SealEngine::build`
//!    over the union corpus, which in turn matches the naive oracle.
//! 3. **Top-k bit-identity.** Ranked results — scores, order and
//!    id tie-breaks included — equal the single engine's.

use proptest::prelude::*;
use seal_core::{verify::naive_search, BuildOpts};
use seal_core::{
    FilterKind, LiveEngine, ObjectId, ObjectStore, Query, QueryEngine, RoiObject, SealEngine,
    ShardedEngine, SimilarityConfig,
};
use seal_geom::Rect;
use seal_text::{TokenId, TokenSet};
use std::sync::Arc;

/// A cross-section of filter kinds: the sharded layer is
/// filter-agnostic, so a plain arena, a hierarchical scheme and a
/// hashed hybrid cover the interesting per-shard index paths without
/// re-running the whole `live_ingest` matrix.
fn kinds() -> Vec<FilterKind> {
    vec![
        FilterKind::Token,
        FilterKind::Hierarchical {
            max_level: 4,
            budget: 8,
        },
        FilterKind::HashHybrid {
            side: 8,
            buckets: Some(64),
        },
    ]
}

const VOCAB: usize = 12;

/// Proptest-generated object: position, extent, 1–3 token ids.
type RawObj = (u32, u32, u32, u32, Vec<u32>);

fn obj_strategy() -> impl Strategy<Value = RawObj> {
    (
        0u32..100,
        0u32..100,
        1u32..25,
        1u32..25,
        proptest::collection::vec(0u32..VOCAB as u32, 1..4),
    )
}

fn materialize(raw: &RawObj) -> RoiObject {
    let (x, y, w, h, ref tokens) = *raw;
    RoiObject::new(
        Rect::new(
            f64::from(x),
            f64::from(y),
            f64::from(x + w),
            f64::from(y + h),
        )
        .unwrap(),
        TokenSet::from_ids(tokens.iter().map(|&t| TokenId(t))),
    )
}

fn workload() -> Vec<Query> {
    let region = |x0, y0, x1, y1| Rect::new(x0, y0, x1, y1).unwrap();
    vec![
        Query::with_token_ids(
            region(0.0, 0.0, 60.0, 60.0),
            [TokenId(0), TokenId(1)],
            0.1,
            0.1,
        )
        .unwrap(),
        Query::with_token_ids(
            region(20.0, 20.0, 90.0, 90.0),
            [TokenId(2), TokenId(5), TokenId(7)],
            0.3,
            0.2,
        )
        .unwrap(),
        Query::with_token_ids(region(50.0, 0.0, 125.0, 70.0), [TokenId(3)], 0.2, 0.5).unwrap(),
    ]
}

/// Post-refresh contract: sharded answers equal a fresh build over the
/// union, and both equal the oracle (so the equality is not a shared
/// bug).
fn assert_matches_fresh(
    sharded: &ShardedEngine,
    union: &[RoiObject],
    queries: &[Query],
    kind: FilterKind,
    n: usize,
) {
    let fresh_store = Arc::new(ObjectStore::from_objects(union.to_vec(), VOCAB));
    let fresh = SealEngine::build(fresh_store.clone(), kind);
    let cfg = SimilarityConfig::default();
    for (qi, q) in queries.iter().enumerate() {
        let got = sharded.search(q).sorted().answers;
        let expect = fresh.search(q).sorted().answers;
        assert_eq!(
            got, expect,
            "{kind:?} n={n} query {qi} diverged from the fresh union build"
        );
        let mut oracle = naive_search(&fresh_store, &cfg, q);
        oracle.sort_unstable();
        assert_eq!(got, oracle, "{kind:?} n={n} query {qi} oracle");
        // Ranked retrieval, ties included: `(id, score)` pairs must be
        // bit-identical, which exercises the deterministic id
        // tie-break across the shard merge.
        for k in [1usize, 3, 100] {
            for alpha in [0.0, 0.5, 1.0] {
                assert_eq!(
                    sharded.search_top_k(q.region, q.tokens.clone(), k, alpha),
                    fresh.search_top_k(q.region, q.tokens.clone(), k, alpha),
                    "{kind:?} n={n} query {qi} top-{k} alpha {alpha}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any push/query/refresh interleaving at N ∈ {1, 2, 3, 4}: the
    /// staged overlay matches a single `LiveEngine` mirror at every
    /// step, each refresh matches a fresh union build and the oracle.
    #[test]
    fn sharded_interleavings_match_single_engine_oracles(
        raw in proptest::collection::vec(obj_strategy(), 6..32),
        initial_frac in 1usize..5,
        cuts in proptest::collection::vec(0usize..32, 0..3),
    ) {
        let objects: Vec<RoiObject> = raw.iter().map(materialize).collect();
        let initial = (objects.len() * initial_frac / 5).max(1).min(objects.len());
        let queries = workload();
        for kind in kinds() {
            for n in [1usize, 2, 3, 4] {
                let store0 = Arc::new(ObjectStore::from_objects(objects[..initial].to_vec(), VOCAB));
                let sharded = ShardedEngine::with_opts(
                    &store0,
                    kind,
                    SimilarityConfig::default(),
                    BuildOpts::default(),
                    n,
                    None,
                );
                let mirror = LiveEngine::new(store0, kind);
                for (i, o) in objects[initial..].iter().enumerate() {
                    let id = QueryEngine::push(&sharded, o.clone());
                    prop_assert_eq!(
                        id,
                        ObjectId((initial + i) as u32),
                        "{:?} n={}: global ids follow push order", kind, n
                    );
                    mirror.push(o.clone());
                    for (qi, q) in queries.iter().enumerate() {
                        prop_assert_eq!(
                            sharded.search(q).sorted().answers,
                            mirror.search(q).sorted().answers,
                            "{:?} n={} query {} staged overlay diverged", kind, n, qi
                        );
                    }
                    if cuts.contains(&i) {
                        ShardedEngine::refresh(&sharded);
                        mirror.refresh();
                        assert_matches_fresh(&sharded, &objects[..initial + i + 1], &queries, kind, n);
                    }
                }
                ShardedEngine::refresh(&sharded);
                assert_matches_fresh(&sharded, &objects, &queries, kind, n);
                prop_assert_eq!(sharded.len(), objects.len());
                prop_assert_eq!(QueryEngine::staged_len(&sharded), 0);
                prop_assert_eq!(sharded.shard_count(), n);
            }
        }
    }
}
