//! The hierarchical quad grid tree of Sections 4.3 and 5.2.
//!
//! Level `l` partitions the space into `2^l × 2^l` cells; each level-`l`
//! cell splits into exactly four level-`l+1` children (Figure 7). SEAL
//! uses the tree twice:
//!
//! * **Grid granularity selection** (§4.3) walks levels top-down and
//!   stops when the partitioning benefit `B(l, l+1)` drops below a
//!   threshold.
//! * **Hierarchical hybrid signatures** (§5.2) select, per token, a set
//!   of tree cells of *mixed* levels minimizing the grid error
//!   (`HSS-Greedy`, Figure 11).
//!
//! [`GridCellId`] packs `(level, ix, iy)` into a single `u64` so cells of
//! different levels can share one inverted-index key space.

use crate::{GeomError, Grid, GridCell, Rect, Result};
use serde::{Deserialize, Serialize};

/// Maximum supported tree level. `2^26` cells per side is far beyond any
/// granularity the paper evaluates (its finest is 8192 = level 13) while
/// keeping the packed id within 58 bits.
pub const MAX_TREE_LEVEL: u8 = 26;

const COORD_BITS: u32 = 26;
const COORD_MASK: u64 = (1 << COORD_BITS) - 1;

/// Identifier of one cell of the grid tree: a level plus the cell's
/// column/row at that level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridCellId {
    level: u8,
    ix: u32,
    iy: u32,
}

impl GridCellId {
    /// The single level-0 cell covering the whole space.
    pub const ROOT: GridCellId = GridCellId {
        level: 0,
        ix: 0,
        iy: 0,
    };

    /// Creates a cell id, validating level and coordinates.
    ///
    /// # Errors
    /// * [`GeomError::LevelOutOfRange`] if `level > MAX_TREE_LEVEL`.
    /// * [`GeomError::CellOutOfRange`] if `ix`/`iy ≥ 2^level`.
    pub fn new(level: u8, ix: u32, iy: u32) -> Result<Self> {
        if level > MAX_TREE_LEVEL {
            return Err(GeomError::LevelOutOfRange { level });
        }
        let side = 1u32 << level;
        if ix >= side || iy >= side {
            return Err(GeomError::CellOutOfRange { level, ix, iy });
        }
        Ok(GridCellId { level, ix, iy })
    }

    /// The cell's level in the tree (0 = whole space).
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Column at this cell's level.
    #[inline]
    pub fn ix(&self) -> u32 {
        self.ix
    }

    /// Row at this cell's level.
    #[inline]
    pub fn iy(&self) -> u32 {
        self.iy
    }

    /// Cells per side at this cell's level.
    #[inline]
    pub fn side(&self) -> u32 {
        1u32 << self.level
    }

    /// Packs the id into a `u64` (level in the top bits, then ix, iy).
    /// The packing is order-preserving per level, which makes packed ids
    /// usable directly as inverted-index keys.
    #[inline]
    pub fn pack(&self) -> u64 {
        (u64::from(self.level) << (2 * COORD_BITS))
            | (u64::from(self.ix) << COORD_BITS)
            | u64::from(self.iy)
    }

    /// Inverse of [`GridCellId::pack`].
    pub fn unpack(packed: u64) -> Result<Self> {
        let level = (packed >> (2 * COORD_BITS)) as u8;
        let ix = ((packed >> COORD_BITS) & COORD_MASK) as u32;
        let iy = (packed & COORD_MASK) as u32;
        GridCellId::new(level, ix, iy)
    }

    /// The parent cell one level up, or `None` for the root.
    #[inline]
    pub fn parent(&self) -> Option<GridCellId> {
        if self.level == 0 {
            return None;
        }
        Some(GridCellId {
            level: self.level - 1,
            ix: self.ix / 2,
            iy: self.iy / 2,
        })
    }

    /// The four children one level down, or `None` at [`MAX_TREE_LEVEL`].
    pub fn children(&self) -> Option<[GridCellId; 4]> {
        if self.level >= MAX_TREE_LEVEL {
            return None;
        }
        let l = self.level + 1;
        let (x, y) = (self.ix * 2, self.iy * 2);
        Some([
            GridCellId {
                level: l,
                ix: x,
                iy: y,
            },
            GridCellId {
                level: l,
                ix: x + 1,
                iy: y,
            },
            GridCellId {
                level: l,
                ix: x,
                iy: y + 1,
            },
            GridCellId {
                level: l,
                ix: x + 1,
                iy: y + 1,
            },
        ])
    }

    /// True if `self` is `other` or an ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &GridCellId) -> bool {
        if self.level > other.level {
            return false;
        }
        let shift = other.level - self.level;
        (other.ix >> shift) == self.ix && (other.iy >> shift) == self.iy
    }

    /// The [`GridCell`] view of this id (for use with a level [`Grid`]).
    #[inline]
    pub fn as_grid_cell(&self) -> GridCell {
        GridCell {
            ix: self.ix,
            iy: self.iy,
        }
    }
}

/// The grid tree: a space rectangle plus a maximum depth. Levels are
/// materialized lazily as [`Grid`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridTree {
    space: Rect,
    max_level: u8,
}

impl GridTree {
    /// Creates a grid tree over `space` with levels `0..=max_level`.
    ///
    /// # Errors
    /// * [`GeomError::LevelOutOfRange`] if `max_level > MAX_TREE_LEVEL`.
    /// * [`GeomError::DegenerateSpace`] for zero-extent spaces.
    pub fn new(space: Rect, max_level: u8) -> Result<Self> {
        if max_level > MAX_TREE_LEVEL {
            return Err(GeomError::LevelOutOfRange { level: max_level });
        }
        if space.width() <= 0.0 || space.height() <= 0.0 {
            return Err(GeomError::DegenerateSpace {
                width: space.width(),
                height: space.height(),
            });
        }
        Ok(GridTree { space, max_level })
    }

    /// The space rectangle.
    #[inline]
    pub fn space(&self) -> Rect {
        self.space
    }

    /// Deepest level of the tree.
    #[inline]
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// The uniform [`Grid`] at a given level (`2^level` cells per side).
    ///
    /// # Errors
    /// [`GeomError::LevelOutOfRange`] if `level > max_level`.
    pub fn level_grid(&self, level: u8) -> Result<Grid> {
        if level > self.max_level {
            return Err(GeomError::LevelOutOfRange { level });
        }
        Grid::new(self.space, 1u32 << level)
    }

    /// The rectangle of a tree cell.
    pub fn cell_rect(&self, id: GridCellId) -> Result<Rect> {
        let grid = self.level_grid(id.level())?;
        Ok(grid.cell_rect(id.as_grid_cell()))
    }

    /// Overlap area `|cell ∩ r|` for a tree cell.
    pub fn cell_overlap(&self, id: GridCellId, r: &Rect) -> Result<f64> {
        Ok(self.cell_rect(id)?.intersection_area(r))
    }

    /// Enumerates the level-`level` cell ids intersecting `r`.
    pub fn overlapping_cells(&self, level: u8, r: &Rect) -> Result<Vec<GridCellId>> {
        let grid = self.level_grid(level)?;
        Ok(grid
            .overlaps(r)
            .map(|ov| GridCellId {
                level,
                ix: ov.cell.ix,
                iy: ov.cell.iy,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Rect {
        Rect::new(0.0, 0.0, 128.0, 128.0).unwrap()
    }

    #[test]
    fn id_validation() {
        assert!(GridCellId::new(0, 0, 0).is_ok());
        assert!(GridCellId::new(0, 1, 0).is_err());
        assert!(GridCellId::new(2, 3, 3).is_ok());
        assert!(GridCellId::new(2, 4, 0).is_err());
        assert!(GridCellId::new(MAX_TREE_LEVEL + 1, 0, 0).is_err());
    }

    #[test]
    fn pack_roundtrip() {
        for &(l, x, y) in &[(0u8, 0u32, 0u32), (1, 1, 0), (10, 1023, 512), (26, 0, 0)] {
            let id = GridCellId::new(l, x, y).unwrap();
            assert_eq!(GridCellId::unpack(id.pack()).unwrap(), id);
        }
    }

    #[test]
    fn pack_distinguishes_levels() {
        // Cell (0,0) at different levels must have different keys: the
        // hierarchical index stores mixed-level cells in one map.
        let a = GridCellId::new(1, 0, 0).unwrap().pack();
        let b = GridCellId::new(2, 0, 0).unwrap().pack();
        assert_ne!(a, b);
    }

    #[test]
    fn parent_child_relationships() {
        let root = GridCellId::ROOT;
        assert!(root.parent().is_none());
        let kids = root.children().unwrap();
        assert_eq!(kids.len(), 4);
        for k in kids {
            assert_eq!(k.parent(), Some(root));
            assert_eq!(k.level(), 1);
        }
        // Figure 7's example: level-1 cell g1^1 splits into four level-2
        // cells g1^2..g4^2.
        let g11 = GridCellId::new(1, 0, 0).unwrap();
        let children = g11.children().unwrap();
        let expect: Vec<GridCellId> = vec![
            GridCellId::new(2, 0, 0).unwrap(),
            GridCellId::new(2, 1, 0).unwrap(),
            GridCellId::new(2, 0, 1).unwrap(),
            GridCellId::new(2, 1, 1).unwrap(),
        ];
        assert_eq!(children.to_vec(), expect);
    }

    #[test]
    fn ancestor_test() {
        let root = GridCellId::ROOT;
        let deep = GridCellId::new(3, 5, 6).unwrap();
        assert!(root.is_ancestor_of(&deep));
        assert!(deep.is_ancestor_of(&deep));
        assert!(!deep.is_ancestor_of(&root));
        let parent = deep.parent().unwrap();
        assert!(parent.is_ancestor_of(&deep));
        let uncle = GridCellId::new(2, 0, 0).unwrap();
        assert!(!uncle.is_ancestor_of(&deep));
    }

    #[test]
    fn children_tile_parent_exactly() {
        let tree = GridTree::new(space(), 5).unwrap();
        let cell = GridCellId::new(2, 1, 3).unwrap();
        let parent_rect = tree.cell_rect(cell).unwrap();
        let kid_area: f64 = cell
            .children()
            .unwrap()
            .iter()
            .map(|k| tree.cell_rect(*k).unwrap().area())
            .sum();
        assert!((kid_area - parent_rect.area()).abs() < 1e-9);
        for k in cell.children().unwrap() {
            assert!(parent_rect.contains_rect(&tree.cell_rect(k).unwrap()));
        }
    }

    #[test]
    fn level_grid_sides() {
        let tree = GridTree::new(space(), 7).unwrap();
        for l in 0..=7u8 {
            assert_eq!(tree.level_grid(l).unwrap().side(), 1u32 << l);
        }
        assert!(tree.level_grid(8).is_err());
    }

    #[test]
    fn overlapping_cells_at_levels() {
        let tree = GridTree::new(space(), 4).unwrap();
        let r = Rect::new(0.0, 0.0, 64.0, 64.0).unwrap();
        let l0 = tree.overlapping_cells(0, &r).unwrap();
        assert_eq!(l0, vec![GridCellId::ROOT]);
        let l1: Vec<_> = tree
            .overlapping_cells(1, &r)
            .unwrap()
            .into_iter()
            .filter(|c| tree.cell_overlap(*c, &r).unwrap() > 0.0)
            .collect();
        assert_eq!(l1.len(), 1, "r is exactly the bottom-left level-1 cell");
        assert_eq!(l1[0], GridCellId::new(1, 0, 0).unwrap());
    }

    #[test]
    fn tree_rejects_bad_inputs() {
        assert!(GridTree::new(space(), MAX_TREE_LEVEL + 1).is_err());
        let flat = Rect::new(0.0, 0.0, 10.0, 0.0).unwrap();
        assert!(GridTree::new(flat, 3).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pack_roundtrips(level in 0u8..=MAX_TREE_LEVEL, seed in 0u64..u64::MAX) {
            let side = 1u64 << level;
            let ix = (seed % side) as u32;
            let iy = ((seed / side.max(1)) % side) as u32;
            let id = GridCellId::new(level, ix, iy).unwrap();
            prop_assert_eq!(GridCellId::unpack(id.pack()).unwrap(), id);
        }

        #[test]
        fn parent_contains_child_rect(level in 1u8..10, seed in 0u64..u64::MAX) {
            let space = Rect::new(0.0, 0.0, 1024.0, 1024.0).unwrap();
            let tree = GridTree::new(space, 10).unwrap();
            let side = 1u64 << level;
            let ix = (seed % side) as u32;
            let iy = ((seed >> 13) % side) as u32;
            let id = GridCellId::new(level, ix, iy).unwrap();
            let parent = id.parent().unwrap();
            let pr = tree.cell_rect(parent).unwrap();
            let cr = tree.cell_rect(id).unwrap();
            prop_assert!(pr.contains_rect(&cr));
            prop_assert!(parent.is_ancestor_of(&id));
        }
    }
}
