//! 2-D points.

use crate::{GeomError, Result};
use serde::{Deserialize, Serialize};

/// A point in the planar data space.
///
/// SEAL's data space is the MBR of all object regions (Section 4.1); we
/// keep coordinates as `f64` "map units" (the paper uses metres-scale
/// units, e.g. the 120×120 running example of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point, validating that both coordinates are finite.
    ///
    /// # Errors
    /// Returns [`GeomError::NonFiniteCoordinate`] on NaN or infinity.
    pub fn new(x: f64, y: f64) -> Result<Self> {
        for v in [x, y] {
            if !v.is_finite() {
                return Err(GeomError::NonFiniteCoordinate { value: v });
            }
        }
        Ok(Point { x, y })
    }

    /// Creates a point without validation. Useful in hot paths where the
    /// inputs were already validated (e.g. grid cell corners derived from
    /// a validated [`crate::Rect`]).
    #[inline]
    pub const fn raw(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::raw(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::raw(self.x.max(other.x), self.y.max(other.y))
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::raw(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_nan_and_infinity() {
        assert!(Point::new(f64::NAN, 0.0).is_err());
        assert!(Point::new(0.0, f64::INFINITY).is_err());
        assert!(Point::new(0.0, f64::NEG_INFINITY).is_err());
        assert!(Point::new(1.5, -2.5).is_ok());
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Point::raw(0.0, 0.0);
        let b = Point::raw(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::raw(1.0, 9.0);
        let b = Point::raw(5.0, 2.0);
        assert_eq!(a.min(&b), Point::raw(1.0, 2.0));
        assert_eq!(a.max(&b), Point::raw(5.0, 9.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::raw(2.0, 3.0));
    }
}
