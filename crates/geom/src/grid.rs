//! Uniform grid partitions of the data space (Section 4.1 of the paper).
//!
//! A [`Grid`] decomposes the space rectangle `R` into `side × side`
//! equally-sized cells satisfying the paper's two properties:
//!
//! 1. **Completeness** — the cells cover the whole space.
//! 2. **Disjointness** — distinct cells share no interior point.
//!
//! Cells are half-open `[x0, x1) × [y0, y1)` except along the top/right
//! border of the space, so every point of the space belongs to exactly
//! one cell. Region-to-cell assignment uses the closed intersection
//! `g ∩ R ≠ ∅` of Definition 4, so a region whose edge lies exactly on a
//! cell boundary is (safely) assigned to both adjacent cells; its overlap
//! *weight* in the far cell is zero, which keeps Lemma 1 exact.

use crate::{GeomError, Rect, Result};
use serde::{Deserialize, Serialize};

/// Identifier of one cell of a [`Grid`], by column (`ix`) and row (`iy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridCell {
    /// Column index, `0 ≤ ix < side`.
    pub ix: u32,
    /// Row index, `0 ≤ iy < side`.
    pub iy: u32,
}

impl GridCell {
    /// Packs the cell into a linear id in row-major order.
    #[inline]
    pub fn linear(&self, side: u32) -> u64 {
        u64::from(self.iy) * u64::from(side) + u64::from(self.ix)
    }

    /// Inverse of [`GridCell::linear`].
    #[inline]
    pub fn from_linear(id: u64, side: u32) -> GridCell {
        let side64 = u64::from(side);
        GridCell {
            ix: (id % side64) as u32,
            iy: (id / side64) as u32,
        }
    }
}

/// A cell together with the area of its intersection with some region —
/// the raw material of the grid signature weights `w(g|o) = |g ∩ o.R|`
/// (Equation 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellOverlap {
    /// Which cell.
    pub cell: GridCell,
    /// `|g ∩ R|`; zero when the region only touches the cell's boundary.
    pub area: f64,
}

/// A uniform `side × side` grid over a space rectangle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    space: Rect,
    side: u32,
    cell_w: f64,
    cell_h: f64,
}

impl Grid {
    /// Builds a grid of `side × side` cells over `space`.
    ///
    /// # Errors
    /// * [`GeomError::ZeroGridSide`] if `side == 0`.
    /// * [`GeomError::DegenerateSpace`] if the space has zero width or
    ///   height (cells would be degenerate and every overlap weight 0).
    pub fn new(space: Rect, side: u32) -> Result<Self> {
        if side == 0 {
            return Err(GeomError::ZeroGridSide);
        }
        if space.width() <= 0.0 || space.height() <= 0.0 {
            return Err(GeomError::DegenerateSpace {
                width: space.width(),
                height: space.height(),
            });
        }
        Ok(Grid {
            space,
            side,
            cell_w: space.width() / f64::from(side),
            cell_h: space.height() / f64::from(side),
        })
    }

    /// The space rectangle this grid partitions.
    #[inline]
    pub fn space(&self) -> Rect {
        self.space
    }

    /// Cells per side (the paper's "granularity" `p` in `p × p`).
    #[inline]
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Total number of cells, `side²`.
    #[inline]
    pub fn cell_count(&self) -> u64 {
        u64::from(self.side) * u64::from(self.side)
    }

    /// Width of each cell.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.cell_w
    }

    /// Height of each cell.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.cell_h
    }

    /// Area of each (interior) cell.
    #[inline]
    pub fn cell_area(&self) -> f64 {
        self.cell_w * self.cell_h
    }

    /// The rectangle of a cell. The top/right border cells extend to the
    /// space boundary exactly (no floating-point gap), preserving
    /// completeness.
    pub fn cell_rect(&self, cell: GridCell) -> Rect {
        let x0 = self.space.min().x + f64::from(cell.ix) * self.cell_w;
        let y0 = self.space.min().y + f64::from(cell.iy) * self.cell_h;
        let x1 = if cell.ix + 1 == self.side {
            self.space.max().x
        } else {
            self.space.min().x + f64::from(cell.ix + 1) * self.cell_w
        };
        let y1 = if cell.iy + 1 == self.side {
            self.space.max().y
        } else {
            self.space.min().y + f64::from(cell.iy + 1) * self.cell_h
        };
        // Clamp guards against FP drift on the last column/row.
        Rect::new(x0.min(x1), y0.min(y1), x1.max(x0), y1.max(y0))
            .expect("cell rects are always valid")
    }

    /// Column index of the cell containing coordinate `x`, clamped to the
    /// grid (regions sticking out of the space are clipped to it).
    #[inline]
    fn col_of(&self, x: f64) -> u32 {
        let raw = ((x - self.space.min().x) / self.cell_w).floor();
        (raw.max(0.0) as u32).min(self.side - 1)
    }

    #[inline]
    fn row_of(&self, y: f64) -> u32 {
        let raw = ((y - self.space.min().y) / self.cell_h).floor();
        (raw.max(0.0) as u32).min(self.side - 1)
    }

    /// The inclusive `(col_lo..=col_hi, row_lo..=row_hi)` ranges of cells
    /// whose closed extent intersects `r`.
    pub fn cell_range(
        &self,
        r: &Rect,
    ) -> (std::ops::RangeInclusive<u32>, std::ops::RangeInclusive<u32>) {
        (
            self.col_of(r.min().x)..=self.col_of(r.max().x),
            self.row_of(r.min().y)..=self.row_of(r.max().y),
        )
    }

    /// Number of cells `r` intersects, without materializing them.
    pub fn overlap_count(&self, r: &Rect) -> u64 {
        let (cols, rows) = self.cell_range(r);
        u64::from(cols.end() - cols.start() + 1) * u64::from(rows.end() - rows.start() + 1)
    }

    /// Enumerates the cells intersecting `r` together with the exact
    /// intersection areas — the grid-based signature of Definition 4 with
    /// the weights of Equation 1.
    pub fn overlaps<'a>(&'a self, r: &'a Rect) -> impl Iterator<Item = CellOverlap> + 'a {
        let (cols, rows) = self.cell_range(r);
        let (c0, c1) = (*cols.start(), *cols.end());
        let (r0, r1) = (*rows.start(), *rows.end());
        (r0..=r1).flat_map(move |iy| {
            (c0..=c1).map(move |ix| {
                let cell = GridCell { ix, iy };
                CellOverlap {
                    cell,
                    area: self.cell_rect(cell).intersection_area(r),
                }
            })
        })
    }

    /// Sum of all overlap areas for `r` clipped to the space. Useful as a
    /// sanity check: it must equal `|r ∩ space|` (tested with proptest).
    pub fn total_overlap_area(&self, r: &Rect) -> f64 {
        self.overlaps(r).map(|c| c.area).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Rect {
        Rect::new(0.0, 0.0, 120.0, 120.0).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            Grid::new(space(), 0),
            Err(GeomError::ZeroGridSide)
        ));
        let degenerate = Rect::new(0.0, 0.0, 0.0, 5.0).unwrap();
        assert!(matches!(
            Grid::new(degenerate, 4),
            Err(GeomError::DegenerateSpace { .. })
        ));
        assert!(Grid::new(space(), 4).is_ok());
    }

    #[test]
    fn figure1_grid_is_4x4_of_30x30_cells() {
        let g = Grid::new(space(), 4).unwrap();
        assert_eq!(g.cell_count(), 16);
        assert_eq!(g.cell_width(), 30.0);
        assert_eq!(g.cell_height(), 30.0);
        assert_eq!(g.cell_area(), 900.0);
    }

    #[test]
    fn cell_rect_covers_space_completely_and_disjointly() {
        let g = Grid::new(space(), 4).unwrap();
        let mut total = 0.0;
        for iy in 0..4 {
            for ix in 0..4 {
                let a = g.cell_rect(GridCell { ix, iy });
                total += a.area();
                for jy in 0..4 {
                    for jx in 0..4 {
                        if (ix, iy) != (jx, jy) {
                            let b = g.cell_rect(GridCell { ix: jx, iy: jy });
                            assert_eq!(
                                a.intersection_area(&b),
                                0.0,
                                "cells ({ix},{iy}) and ({jx},{jy}) overlap"
                            );
                        }
                    }
                }
            }
        }
        assert!((total - g.space().area()).abs() < 1e-9, "completeness");
    }

    #[test]
    fn linear_roundtrip() {
        for side in [1u32, 3, 16, 1024] {
            for &(ix, iy) in &[(0u32, 0u32), (1, 2), (side - 1, side - 1)] {
                if ix < side && iy < side {
                    let c = GridCell { ix, iy };
                    assert_eq!(GridCell::from_linear(c.linear(side), side), c);
                }
            }
        }
    }

    #[test]
    fn overlaps_match_figure5_weights() {
        // Figure 5: object o2 has region R2; its grid signature covers
        // g9,g10,g11,g13,g14,g15 with weights 225,450,375,150,300,250.
        // Reconstruct an R2 consistent with those overlaps: total area
        // 1750. Grid cells are 30x30 = 900 each; bottom row (g13..g15 in
        // the paper's numbering, y in [0,30]) plus middle row (g9..g11,
        // y in [30,60]). Take R2 = [22.5, 20] x [75, 50]:
        //   row y in [30,50] height 20; row y in [20,30] height 10.
        //   col x in [22.5,30] w=7.5; [30,60] w=30; [60,75] w=15.
        // weights: (7.5,30,15)*20 = 150,600,300 and *10 = 75,300,150.
        // (The paper's exact R2 coordinates are not printed; we verify
        // our machinery on this analytically-solvable sibling.)
        let g = Grid::new(space(), 4).unwrap();
        let r2 = Rect::new(22.5, 20.0, 75.0, 50.0).unwrap();
        let got: Vec<CellOverlap> = g.overlaps(&r2).collect();
        assert_eq!(got.len(), 6);
        let area_of = |ix: u32, iy: u32| -> f64 {
            got.iter()
                .find(|c| c.cell == GridCell { ix, iy })
                .map(|c| c.area)
                .unwrap_or(f64::NAN)
        };
        assert_eq!(area_of(0, 0), 75.0);
        assert_eq!(area_of(1, 0), 300.0);
        assert_eq!(area_of(2, 0), 150.0);
        assert_eq!(area_of(0, 1), 150.0);
        assert_eq!(area_of(1, 1), 600.0);
        assert_eq!(area_of(2, 1), 300.0);
        assert!((g.total_overlap_area(&r2) - r2.area()).abs() < 1e-9);
    }

    #[test]
    fn region_outside_space_is_clipped() {
        let g = Grid::new(space(), 4).unwrap();
        let r = Rect::new(-50.0, -50.0, -10.0, -10.0).unwrap();
        // Clamped to the corner cell with zero overlap area.
        let cells: Vec<_> = g.overlaps(&r).collect();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].cell, GridCell { ix: 0, iy: 0 });
        assert_eq!(cells[0].area, 0.0);
    }

    #[test]
    fn boundary_aligned_region() {
        let g = Grid::new(space(), 4).unwrap();
        // Exactly one cell.
        let r = Rect::new(30.0, 30.0, 60.0, 60.0).unwrap();
        let cells: Vec<_> = g.overlaps(&r).collect();
        // Closed intersection touches the neighbours at x=60 / y=60 too.
        let positive: Vec<_> = cells.iter().filter(|c| c.area > 0.0).collect();
        assert_eq!(positive.len(), 1);
        assert_eq!(positive[0].cell, GridCell { ix: 1, iy: 1 });
        assert_eq!(positive[0].area, 900.0);
        assert!((g.total_overlap_area(&r) - 900.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_count_matches_enumeration() {
        let g = Grid::new(space(), 8).unwrap();
        let r = Rect::new(10.0, 5.0, 77.0, 31.0).unwrap();
        assert_eq!(g.overlap_count(&r), g.overlaps(&r).count() as u64);
    }

    #[test]
    fn degenerate_region_gets_one_cell() {
        let g = Grid::new(space(), 4).unwrap();
        let p = Rect::new(45.0, 45.0, 45.0, 45.0).unwrap();
        let cells: Vec<_> = g.overlaps(&p).collect();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].cell, GridCell { ix: 1, iy: 1 });
        assert_eq!(cells[0].area, 0.0);
    }

    #[test]
    fn non_square_space() {
        let wide = Rect::new(0.0, 0.0, 100.0, 10.0).unwrap();
        let g = Grid::new(wide, 5).unwrap();
        assert_eq!(g.cell_width(), 20.0);
        assert_eq!(g.cell_height(), 2.0);
        let r = Rect::new(15.0, 1.0, 55.0, 9.0).unwrap();
        assert!((g.total_overlap_area(&r) - r.area()).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rect_in(space: Rect) -> impl Strategy<Value = Rect> {
        let (x0, x1) = (space.min().x, space.max().x);
        let (y0, y1) = (space.min().y, space.max().y);
        (x0..x1, y0..y1, x0..x1, y0..y1)
            .prop_map(|(a, b, c, d)| Rect::new(a.min(c), b.min(d), a.max(c), b.max(d)).unwrap())
    }

    proptest! {
        #[test]
        fn overlap_areas_sum_to_clipped_region_area(
            r in arb_rect_in(Rect::new(0.0, 0.0, 1000.0, 1000.0).unwrap()),
            side in 1u32..64,
        ) {
            let space = Rect::new(0.0, 0.0, 1000.0, 1000.0).unwrap();
            let g = Grid::new(space, side).unwrap();
            let clipped = r.intersection_area(&space);
            let total = g.total_overlap_area(&r);
            prop_assert!((total - clipped).abs() < 1e-6 * (1.0 + clipped));
        }

        #[test]
        fn every_overlap_cell_intersects_region(
            r in arb_rect_in(Rect::new(0.0, 0.0, 500.0, 500.0).unwrap()),
            side in 1u32..32,
        ) {
            let space = Rect::new(0.0, 0.0, 500.0, 500.0).unwrap();
            let g = Grid::new(space, side).unwrap();
            for ov in g.overlaps(&r) {
                prop_assert!(g.cell_rect(ov.cell).intersects(&r));
                prop_assert!(ov.area >= 0.0);
                prop_assert!(ov.area <= g.cell_rect(ov.cell).area() + 1e-9);
            }
        }

        #[test]
        fn cells_partition_space(side in 1u32..40) {
            let space = Rect::new(-3.0, 2.0, 97.0, 52.0).unwrap();
            let g = Grid::new(space, side).unwrap();
            let mut total = 0.0;
            for iy in 0..side {
                for ix in 0..side {
                    total += g.cell_rect(GridCell { ix, iy }).area();
                }
            }
            prop_assert!((total - space.area()).abs() < 1e-6);
        }
    }
}
