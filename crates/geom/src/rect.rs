//! Axis-aligned rectangles (MBRs) and overlap-based spatial similarity.

use crate::{GeomError, Point, Result};
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle (`min ≤ max` on both axes).
///
/// This is the MBR representation of the paper's regions `o.R` / `q.R`
/// ("We use the well-known minimum bounding rectangle (MBR) to represent
/// region o.R through the bottom-left point and top-right point",
/// Section 2.1). Degenerate rectangles (points, segments) are valid: the
/// MBR of a single geotagged tweet is a point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from its bottom-left `(min_x, min_y)` and
    /// top-right `(max_x, max_y)` corners.
    ///
    /// # Errors
    /// * [`GeomError::NonFiniteCoordinate`] for NaN / infinite inputs.
    /// * [`GeomError::InvertedRect`] if `min > max` on either axis.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Result<Self> {
        for v in [min_x, min_y, max_x, max_y] {
            if !v.is_finite() {
                return Err(GeomError::NonFiniteCoordinate { value: v });
            }
        }
        if min_x > max_x || min_y > max_y {
            return Err(GeomError::InvertedRect {
                min_x,
                min_y,
                max_x,
                max_y,
            });
        }
        Ok(Rect {
            min: Point::raw(min_x, min_y),
            max: Point::raw(max_x, max_y),
        })
    }

    /// Creates a rectangle from two arbitrary corner points, normalizing
    /// their order.
    pub fn from_corners(a: Point, b: Point) -> Result<Self> {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// A rectangle centred at `(cx, cy)` with the given width and height.
    pub fn centered(cx: f64, cy: f64, width: f64, height: f64) -> Result<Self> {
        Rect::new(
            cx - width / 2.0,
            cy - height / 2.0,
            cx + width / 2.0,
            cy + height / 2.0,
        )
    }

    /// The degenerate rectangle containing exactly one point.
    pub fn point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Bottom-left corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Top-right corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width (`max.x - min.x`), never negative.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (`max.y - min.y`), never negative.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area `|R|`. Zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::raw(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Perimeter (used by the R-tree's quadratic split heuristic).
    #[inline]
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// True if the rectangles share any point (boundary touch counts).
    ///
    /// Boundary-touching rectangles have zero intersection *area*, so the
    /// similarity functions treat them as non-overlapping; `intersects`
    /// is the cheap test used by tree traversals and grid assignment.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// True if the rectangles share a region of positive area.
    #[inline]
    pub fn overlaps_positively(&self, other: &Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// True if `other` lies entirely inside `self` (boundaries included).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// True if the point lies inside the rectangle (boundaries included).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// The intersection rectangle, if the two rectangles intersect at all.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        })
    }

    /// Intersection area `|a ∩ b|` (Section 2.1's overlap). Zero when the
    /// rectangles are disjoint or touch only along a boundary.
    #[inline]
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let h = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        w * h
    }

    /// Union area `|a ∪ b| = |a| + |b| − |a ∩ b|` (Definition 1).
    #[inline]
    pub fn union_area(&self, other: &Rect) -> f64 {
        self.area() + other.area() - self.intersection_area(other)
    }

    /// The MBR of the two rectangles (set-union of extents, not the
    /// geometric union — this is what R-tree node MBRs grow by).
    #[inline]
    pub fn mbr_with(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// The MBR of a non-empty iterator of rectangles.
    pub fn mbr_of<'a, I: IntoIterator<Item = &'a Rect>>(rects: I) -> Option<Rect> {
        let mut it = rects.into_iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.mbr_with(r)))
    }

    /// How much `self`'s area would grow if enlarged to cover `other`
    /// (the R-tree insertion heuristic's "least enlargement").
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.mbr_with(other).area() - self.area()
    }

    /// Translates the rectangle by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Result<Rect> {
        Rect::new(
            self.min.x + dx,
            self.min.y + dy,
            self.max.x + dx,
            self.max.y + dy,
        )
    }

    /// Scales the rectangle about its centre by the given factor.
    pub fn scaled(&self, factor: f64) -> Result<Rect> {
        let c = self.center();
        Rect::centered(c.x, c.y, self.width() * factor, self.height() * factor)
    }
}

/// Overlap-based spatial similarity functions (Definition 1 and the Dice
/// extension noted below it).
pub trait SpatialSim {
    /// Spatial Jaccard similarity `|a∩b| / |a∪b|`.
    ///
    /// Degenerate-vs-degenerate comparisons (both areas zero) return 1.0
    /// when the rectangles are equal and 0.0 otherwise, which keeps
    /// reflexivity (`simR(a,a)=1`) without dividing by zero.
    fn jaccard(&self, other: &Self) -> f64;

    /// Spatial Dice similarity `2|a∩b| / (|a| + |b|)`, same degenerate
    /// handling as [`SpatialSim::jaccard`].
    fn dice(&self, other: &Self) -> f64;

    /// Overlap coefficient `|a∩b| / min(|a|, |b|)`.
    fn overlap_coefficient(&self, other: &Self) -> f64;
}

impl SpatialSim for Rect {
    fn jaccard(&self, other: &Rect) -> f64 {
        let union = self.union_area(other);
        if union <= 0.0 {
            // Both degenerate: identical rects are perfectly similar.
            return if self == other { 1.0 } else { 0.0 };
        }
        self.intersection_area(other) / union
    }

    fn dice(&self, other: &Rect) -> f64 {
        let denom = self.area() + other.area();
        if denom <= 0.0 {
            return if self == other { 1.0 } else { 0.0 };
        }
        2.0 * self.intersection_area(other) / denom
    }

    fn overlap_coefficient(&self, other: &Rect) -> f64 {
        let denom = self.area().min(other.area());
        if denom <= 0.0 {
            return if self == other { 1.0 } else { 0.0 };
        }
        self.intersection_area(other) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d).unwrap()
    }

    #[test]
    fn new_validates() {
        assert!(Rect::new(0.0, 0.0, -1.0, 1.0).is_err());
        assert!(Rect::new(0.0, 2.0, 1.0, 1.0).is_err());
        assert!(Rect::new(f64::NAN, 0.0, 1.0, 1.0).is_err());
        assert!(
            Rect::new(0.0, 0.0, 0.0, 0.0).is_ok(),
            "points are valid MBRs"
        );
    }

    #[test]
    fn from_corners_normalizes() {
        let a = Rect::from_corners(Point::raw(5.0, 1.0), Point::raw(2.0, 9.0)).unwrap();
        assert_eq!(a, r(2.0, 1.0, 5.0, 9.0));
    }

    #[test]
    fn area_width_height() {
        let x = r(1.0, 2.0, 4.0, 10.0);
        assert_eq!(x.width(), 3.0);
        assert_eq!(x.height(), 8.0);
        assert_eq!(x.area(), 24.0);
        assert_eq!(x.perimeter(), 22.0);
        assert_eq!(x.center(), Point::raw(2.5, 6.0));
    }

    #[test]
    fn paper_figure1_example_o1_q() {
        // Figure 1: q.R = [60,40]x[120,100] (the query rectangle spans
        // x in [60,120], y in [40,100]); o1.R overlaps it producing
        // |q∩o1| = 1000 and |q∪o1| = 4400 => simR = 0.2272...
        // We reconstruct compatible rectangles: q is 60x60 = 3600,
        // o1 must have area 1800 with overlap 1000:
        let q = r(60.0, 40.0, 120.0, 100.0);
        let o1 = r(10.0, 80.0, 100.0, 100.0); // 90 x 20 = 1800
        assert_eq!(q.intersection_area(&o1), 40.0 * 20.0);
        assert_eq!(q.union_area(&o1), 3600.0 + 1800.0 - 800.0);
        let sim = q.jaccard(&o1);
        assert!((sim - 800.0 / 4600.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_geometry() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(5.0, 5.0, 15.0, 15.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r(5.0, 5.0, 10.0, 10.0));
        assert_eq!(a.intersection_area(&b), 25.0);
        let c = r(20.0, 20.0, 30.0, 30.0);
        assert!(a.intersection(&c).is_none());
        assert_eq!(a.intersection_area(&c), 0.0);
    }

    #[test]
    fn boundary_touch_has_zero_area_but_intersects() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(10.0, 0.0, 20.0, 10.0);
        assert!(a.intersects(&b));
        assert!(!a.overlaps_positively(&b));
        assert_eq!(a.intersection_area(&b), 0.0);
        assert_eq!(a.jaccard(&b), 0.0);
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 8.0, 8.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(outer.contains_point(&Point::raw(0.0, 10.0)));
        assert!(!outer.contains_point(&Point::raw(10.1, 5.0)));
    }

    #[test]
    fn mbr_and_enlargement() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(4.0, 4.0, 6.0, 6.0);
        let m = a.mbr_with(&b);
        assert_eq!(m, r(0.0, 0.0, 6.0, 6.0));
        assert_eq!(a.enlargement(&b), 36.0 - 4.0);
        assert_eq!(a.enlargement(&a), 0.0);
        let all = Rect::mbr_of([&a, &b]).unwrap();
        assert_eq!(all, m);
        assert!(Rect::mbr_of(std::iter::empty::<&Rect>()).is_none());
    }

    #[test]
    fn jaccard_properties() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(5.0, 0.0, 15.0, 10.0);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(a.jaccard(&b), b.jaccard(&a));
        // overlap 50, union 150 => 1/3
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dice_and_overlap_coefficient() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(5.0, 0.0, 15.0, 10.0);
        // dice = 2*50 / 200 = 0.5
        assert!((a.dice(&b) - 0.5).abs() < 1e-12);
        // overlap coefficient = 50 / 100
        assert!((a.overlap_coefficient(&b) - 0.5).abs() < 1e-12);
        // Dice >= Jaccard always.
        assert!(a.dice(&b) >= a.jaccard(&b));
    }

    #[test]
    fn degenerate_similarity() {
        let p = Rect::point(Point::raw(3.0, 3.0));
        let q = Rect::point(Point::raw(4.0, 4.0));
        assert_eq!(p.jaccard(&p), 1.0);
        assert_eq!(p.jaccard(&q), 0.0);
        assert_eq!(p.dice(&p), 1.0);
        assert_eq!(p.overlap_coefficient(&q), 0.0);
        // Degenerate vs non-degenerate: zero intersection area.
        let big = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(big.jaccard(&p), 0.0);
    }

    #[test]
    fn translate_and_scale() {
        let a = r(0.0, 0.0, 2.0, 4.0);
        let t = a.translated(1.0, -1.0).unwrap();
        assert_eq!(t, r(1.0, -1.0, 3.0, 3.0));
        let s = a.scaled(2.0).unwrap();
        assert_eq!(s.width(), 4.0);
        assert_eq!(s.height(), 8.0);
        assert_eq!(s.center(), a.center());
    }
}
