//! Error type for geometry construction and grid partitioning.

use std::fmt;

/// Errors raised by geometry constructors.
///
/// SEAL's search structures are built once over millions of objects, so
/// rather than panicking deep inside index construction we surface
/// malformed inputs (NaN coordinates, inverted rectangles, zero-sized
/// grids) as typed errors the caller can report with context.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// The offending value.
        value: f64,
    },
    /// `min > max` on some axis when building a [`crate::Rect`].
    InvertedRect {
        /// Minimum corner x.
        min_x: f64,
        /// Minimum corner y.
        min_y: f64,
        /// Maximum corner x.
        max_x: f64,
        /// Maximum corner y.
        max_y: f64,
    },
    /// A grid was requested with zero cells per side.
    ZeroGridSide,
    /// A grid was requested over a degenerate (zero width or height) space.
    DegenerateSpace {
        /// Width of the offending space rectangle.
        width: f64,
        /// Height of the offending space rectangle.
        height: f64,
    },
    /// A grid-tree level exceeded [`crate::MAX_TREE_LEVEL`].
    LevelOutOfRange {
        /// The requested level.
        level: u8,
    },
    /// Cell coordinates lay outside the `2^level × 2^level` range.
    CellOutOfRange {
        /// Level of the cell.
        level: u8,
        /// X index of the cell.
        ix: u32,
        /// Y index of the cell.
        iy: u32,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::NonFiniteCoordinate { value } => {
                write!(f, "non-finite coordinate: {value}")
            }
            GeomError::InvertedRect {
                min_x,
                min_y,
                max_x,
                max_y,
            } => write!(
                f,
                "inverted rectangle: min=({min_x},{min_y}) max=({max_x},{max_y})"
            ),
            GeomError::ZeroGridSide => write!(f, "grid must have at least 1 cell per side"),
            GeomError::DegenerateSpace { width, height } => {
                write!(f, "grid space is degenerate: {width} x {height}")
            }
            GeomError::LevelOutOfRange { level } => {
                write!(f, "grid-tree level {level} exceeds the supported maximum")
            }
            GeomError::CellOutOfRange { level, ix, iy } => {
                write!(f, "cell ({ix},{iy}) out of range for level {level}")
            }
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GeomError::NonFiniteCoordinate { value: f64::NAN };
        assert!(e.to_string().contains("non-finite"));
        let e = GeomError::InvertedRect {
            min_x: 1.0,
            min_y: 0.0,
            max_x: 0.0,
            max_y: 2.0,
        };
        assert!(e.to_string().contains("inverted"));
        let e = GeomError::ZeroGridSide;
        assert!(e.to_string().contains("at least 1"));
        let e = GeomError::DegenerateSpace {
            width: 0.0,
            height: 3.0,
        };
        assert!(e.to_string().contains("degenerate"));
        let e = GeomError::LevelOutOfRange { level: 40 };
        assert!(e.to_string().contains("level 40"));
        let e = GeomError::CellOutOfRange {
            level: 2,
            ix: 9,
            iy: 0,
        };
        assert!(e.to_string().contains("(9,0)"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(GeomError::ZeroGridSide);
    }
}
