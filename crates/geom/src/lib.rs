//! # seal-geom — geometry substrate for SEAL
//!
//! The SEAL paper (Fan et al., *SEAL: Spatio-Textual Similarity Search*,
//! PVLDB 2012) models every object and query as a *minimum bounding
//! rectangle* (MBR) over a planar data space, and builds its spatial
//! signatures by partitioning that space into uniform grids and, for the
//! hierarchical hybrid signatures of §5.2, into a quad *grid tree*.
//!
//! This crate provides those primitives from scratch:
//!
//! * [`Point`] — a 2-D point with `f64` coordinates.
//! * [`Rect`] — an axis-aligned rectangle with exact intersection /
//!   union area arithmetic and the overlap-based similarity functions of
//!   Definition 1 (spatial Jaccard) plus the Dice variant the paper
//!   mentions as an easy extension.
//! * [`Grid`] — a uniform `n × n` partition of a space rectangle
//!   (Section 4.1), with completeness and disjointness guarantees and
//!   cell/region intersection enumeration.
//! * [`GridTree`] / [`GridCellId`] — the hierarchical `2^l × 2^l`
//!   partition of Section 4.3/5.2, where each level-`l` cell splits into
//!   four level-`l+1` children.
//!
//! All arithmetic is plain `f64`; degenerate (zero-area) rectangles are
//! representable because real MBRs of point-sets can collapse to points
//! or segments (a Twitter user with a single geotagged tweet has a
//! zero-area active region).
//!
//! ```
//! use seal_geom::{Rect, SpatialSim};
//!
//! let q = Rect::new(0.0, 40.0, 60.0, 100.0).unwrap();
//! let o = Rect::new(20.0, 60.0, 70.0, 110.0).unwrap();
//! let j = q.jaccard(&o);
//! assert!(j > 0.0 && j < 1.0);
//! assert_eq!(q.jaccard(&q), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod grid;
mod gridtree;
mod point;
mod rect;

pub use error::GeomError;
pub use grid::{CellOverlap, Grid, GridCell};
pub use gridtree::{GridCellId, GridTree, MAX_TREE_LEVEL};
pub use point::Point;
pub use rect::{Rect, SpatialSim};

/// Result alias used throughout the geometry crate.
pub type Result<T> = std::result::Result<T, GeomError>;

/// Absolute tolerance used when comparing areas that were computed along
/// different algebraic routes (e.g. a union area versus the sum of cell
/// overlaps). Chosen conservatively for coordinates up to ~10^7 (metres
/// across a continent) where `f64` has ~1e-9 relative precision.
pub const AREA_EPS: f64 = 1e-6;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0).unwrap();
        assert_eq!(r.area(), 1.0);
        let g = Grid::new(r, 2).unwrap();
        assert_eq!(g.cell_count(), 4);
    }
}
