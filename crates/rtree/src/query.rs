//! Overlap queries and the open traversal API.

use crate::node::{LeafEntry, NodeId, NodeKind, RTree};
use seal_geom::Rect;

/// What a traversal visitor decides at each internal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Descend {
    /// Visit this node's children.
    Yes,
    /// Prune the whole subtree.
    No,
}

impl<T> RTree<T> {
    /// All leaf entries whose rectangles intersect `probe` (closed
    /// intersection — boundary touch counts, matching
    /// [`Rect::intersects`]).
    pub fn search_intersecting(&self, probe: &Rect) -> Vec<&LeafEntry<T>> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !self.mbr(id).intersects(probe) {
                continue;
            }
            match self.kind(id) {
                NodeKind::Leaf(entries) => {
                    out.extend(entries.iter().filter(|e| e.rect.intersects(probe)));
                }
                NodeKind::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
        out
    }

    /// All leaf entries with positive-area overlap with `probe`.
    pub fn search_overlapping(&self, probe: &Rect) -> Vec<&LeafEntry<T>> {
        self.search_intersecting(probe)
            .into_iter()
            .filter(|e| e.rect.overlaps_positively(probe))
            .collect()
    }

    /// Generic pruned traversal: `descend` is consulted at every
    /// internal node (given its id) and `on_leaf` receives every reached
    /// leaf node id. The IR-tree baseline uses this to apply its node
    /// bounds: it descends only if the node passes both the spatial
    /// overlap bound and the textual overlap bound (Section 2.3).
    ///
    /// Returns the number of nodes visited (root counts; pruned subtrees
    /// do not), which the benchmarks report as IR-tree node accesses.
    pub fn traverse(
        &self,
        mut descend: impl FnMut(NodeId) -> Descend,
        mut on_leaf: impl FnMut(NodeId, &[LeafEntry<T>]),
    ) -> usize {
        let Some(root) = self.root else {
            return 0;
        };
        let mut visited = 0usize;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            visited += 1;
            match self.kind(id) {
                NodeKind::Leaf(entries) => {
                    if descend(id) == Descend::Yes {
                        on_leaf(id, entries);
                    }
                }
                NodeKind::Internal(children) => {
                    if descend(id) == Descend::Yes {
                        stack.extend(children.iter().copied());
                    }
                }
            }
        }
        visited
    }

    /// Iterates every leaf node id with its entries (index construction
    /// for the IR-tree's per-node inverted files).
    pub fn for_each_leaf(&self, mut f: impl FnMut(NodeId, &[LeafEntry<T>])) {
        self.traverse(|_| Descend::Yes, |id, entries| f(id, entries));
    }

    /// Iterates every node id top-down.
    pub fn for_each_node(&self, mut f: impl FnMut(NodeId)) {
        self.traverse(
            |id| {
                f(id);
                Descend::Yes
            },
            |_, _| {},
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RTreeConfig;

    fn build(n: usize) -> RTree<usize> {
        let items: Vec<(Rect, usize)> = (0..n)
            .map(|i| {
                let x = (i % 30) as f64 * 10.0;
                let y = (i / 30) as f64 * 10.0;
                (Rect::new(x, y, x + 8.0, y + 8.0).unwrap(), i)
            })
            .collect();
        RTree::bulk_load(items, RTreeConfig::with_fanout(8))
    }

    #[test]
    fn search_matches_linear_scan() {
        let t = build(300);
        let probe = Rect::new(35.0, 15.0, 95.0, 55.0).unwrap();
        let mut got: Vec<usize> = t
            .search_intersecting(&probe)
            .iter()
            .map(|e| e.value)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = (0..300)
            .filter(|i| {
                let x = (i % 30) as f64 * 10.0;
                let y = (i / 30) as f64 * 10.0;
                Rect::new(x, y, x + 8.0, y + 8.0)
                    .unwrap()
                    .intersects(&probe)
            })
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn overlapping_excludes_boundary_touch() {
        let t = build(10);
        // Probe touching entry 0's right edge (x=8) exactly.
        let probe = Rect::new(8.0, 0.0, 9.0, 8.0).unwrap();
        let touch: Vec<usize> = t
            .search_intersecting(&probe)
            .iter()
            .map(|e| e.value)
            .collect();
        assert!(touch.contains(&0));
        let positive: Vec<usize> = t
            .search_overlapping(&probe)
            .iter()
            .map(|e| e.value)
            .collect();
        assert!(!positive.contains(&0));
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<usize> = RTree::new(RTreeConfig::default());
        let probe = Rect::new(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!(t.search_intersecting(&probe).is_empty());
        assert_eq!(t.traverse(|_| Descend::Yes, |_, _| {}), 0);
    }

    #[test]
    fn traverse_prunes() {
        let t = build(300);
        // Never descend: only the root is visited.
        let visited = t.traverse(|_| Descend::No, |_, _| panic!("leaf reached"));
        assert_eq!(visited, 1);
        // Always descend: all nodes visited.
        let mut leaves = 0;
        let visited = t.traverse(|_| Descend::Yes, |_, _| leaves += 1);
        assert_eq!(visited, t.node_count());
        assert!(leaves > 0);
    }

    #[test]
    fn for_each_leaf_covers_all_entries() {
        let t = build(100);
        let mut count = 0;
        t.for_each_leaf(|_, entries| count += entries.len());
        assert_eq!(count, 100);
    }

    #[test]
    fn for_each_node_counts() {
        let t = build(100);
        let mut nodes = 0;
        t.for_each_node(|_| nodes += 1);
        assert_eq!(nodes, t.node_count());
    }
}
