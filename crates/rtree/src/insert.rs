//! Guttman insertion with quadratic split.

use crate::node::{LeafEntry, NodeId, NodeKind, RTree};
use seal_geom::Rect;

enum InsertOutcome {
    /// No structural change below; ancestors only need MBR refresh.
    Fit,
    /// The child split; the new sibling must be added to the parent.
    Split(NodeId),
}

impl<T> RTree<T> {
    /// Inserts an entry, splitting nodes on overflow (quadratic split).
    pub fn insert(&mut self, rect: Rect, value: T) {
        self.len += 1;
        let Some(root) = self.root else {
            let id = self.alloc(rect, NodeKind::Leaf(vec![LeafEntry { rect, value }]));
            self.root = Some(id);
            self.height = 1;
            return;
        };
        match self.insert_rec(root, rect, value) {
            InsertOutcome::Fit => {
                self.recompute_mbr(root);
            }
            InsertOutcome::Split(sibling) => {
                // Grow a new root above the old one.
                let old_root = root;
                self.recompute_mbr(old_root);
                let mbr = self.mbr(old_root).mbr_with(&self.mbr(sibling));
                let new_root = self.alloc(mbr, NodeKind::Internal(vec![old_root, sibling]));
                self.root = Some(new_root);
                self.height += 1;
            }
        }
    }

    fn insert_rec(&mut self, node: NodeId, rect: Rect, value: T) -> InsertOutcome {
        match &self.nodes[node.index()].kind {
            NodeKind::Leaf(_) => {
                if let NodeKind::Leaf(entries) = &mut self.nodes[node.index()].kind {
                    entries.push(LeafEntry { rect, value });
                }
                if self.leaf_len(node) > self.config.max_entries {
                    let sibling = self.split_leaf(node);
                    InsertOutcome::Split(sibling)
                } else {
                    self.recompute_mbr(node);
                    InsertOutcome::Fit
                }
            }
            NodeKind::Internal(children) => {
                let chosen = self.choose_subtree(children, &rect);
                match self.insert_rec(chosen, rect, value) {
                    InsertOutcome::Fit => {
                        self.recompute_mbr(node);
                        InsertOutcome::Fit
                    }
                    InsertOutcome::Split(new_child) => {
                        if let NodeKind::Internal(children) = &mut self.nodes[node.index()].kind {
                            children.push(new_child);
                        }
                        if self.internal_len(node) > self.config.max_entries {
                            let sibling = self.split_internal(node);
                            InsertOutcome::Split(sibling)
                        } else {
                            self.recompute_mbr(node);
                            InsertOutcome::Fit
                        }
                    }
                }
            }
        }
    }

    fn leaf_len(&self, id: NodeId) -> usize {
        match &self.nodes[id.index()].kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(_) => unreachable!("leaf_len on internal node"),
        }
    }

    fn internal_len(&self, id: NodeId) -> usize {
        match &self.nodes[id.index()].kind {
            NodeKind::Internal(c) => c.len(),
            NodeKind::Leaf(_) => unreachable!("internal_len on leaf node"),
        }
    }

    /// Guttman's ChooseLeaf criterion: least area enlargement, ties by
    /// smallest area.
    fn choose_subtree(&self, children: &[NodeId], rect: &Rect) -> NodeId {
        let mut best = children[0];
        let mut best_enlargement = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for &c in children {
            let mbr = self.mbr(c);
            let enlargement = mbr.enlargement(rect);
            let area = mbr.area();
            if enlargement < best_enlargement
                || (enlargement == best_enlargement && area < best_area)
            {
                best = c;
                best_enlargement = enlargement;
                best_area = area;
            }
        }
        best
    }

    fn split_leaf(&mut self, node: NodeId) -> NodeId {
        let entries = match &mut self.nodes[node.index()].kind {
            NodeKind::Leaf(e) => std::mem::take(e),
            NodeKind::Internal(_) => unreachable!(),
        };
        let rects: Vec<Rect> = entries.iter().map(|e| e.rect).collect();
        let (left_idx, right_idx) = quadratic_split(&rects, self.config.min_entries);
        let mut left = Vec::with_capacity(left_idx.len());
        let mut right = Vec::with_capacity(right_idx.len());
        let mut take = entries.into_iter().map(Some).collect::<Vec<_>>();
        for i in left_idx {
            left.push(take[i].take().expect("entry taken twice"));
        }
        for i in right_idx {
            right.push(take[i].take().expect("entry taken twice"));
        }
        self.nodes[node.index()].kind = NodeKind::Leaf(left);
        self.recompute_mbr(node);
        let mbr = Rect::mbr_of(right.iter().map(|e| &e.rect)).expect("non-empty split side");
        self.alloc(mbr, NodeKind::Leaf(right))
    }

    fn split_internal(&mut self, node: NodeId) -> NodeId {
        let children = match &mut self.nodes[node.index()].kind {
            NodeKind::Internal(c) => std::mem::take(c),
            NodeKind::Leaf(_) => unreachable!(),
        };
        let rects: Vec<Rect> = children.iter().map(|c| self.mbr(*c)).collect();
        let (left_idx, right_idx) = quadratic_split(&rects, self.config.min_entries);
        let left: Vec<NodeId> = left_idx.iter().map(|&i| children[i]).collect();
        let right: Vec<NodeId> = right_idx.iter().map(|&i| children[i]).collect();
        self.nodes[node.index()].kind = NodeKind::Internal(left);
        self.recompute_mbr(node);
        let mbr = Rect::mbr_of(right.iter().map(|&c| &self.nodes[c.index()].mbr))
            .expect("non-empty split side");
        self.alloc(mbr, NodeKind::Internal(right))
    }
}

/// Guttman's quadratic split over a set of rectangles; returns the index
/// partition `(left, right)`, each side holding at least `min_entries`.
fn quadratic_split(rects: &[Rect], min_entries: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2);

    // PickSeeds: the pair wasting the most area if grouped together.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].mbr_with(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut left = vec![seed_a];
    let mut right = vec![seed_b];
    let mut left_mbr = rects[seed_a];
    let mut right_mbr = rects[seed_b];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

    while let Some(pos) = pick_next(&remaining, rects, &left_mbr, &right_mbr) {
        let idx = remaining.swap_remove(pos);
        // Force-assign when a side needs every remaining entry (this one
        // included) to reach the minimum fill.
        let must_fill_left = left.len() + remaining.len() < min_entries;
        let must_fill_right = right.len() + remaining.len() < min_entries;
        let to_left = if must_fill_left {
            true
        } else if must_fill_right {
            false
        } else {
            let grow_l = left_mbr.enlargement(&rects[idx]);
            let grow_r = right_mbr.enlargement(&rects[idx]);
            if grow_l != grow_r {
                grow_l < grow_r
            } else if left_mbr.area() != right_mbr.area() {
                left_mbr.area() < right_mbr.area()
            } else {
                left.len() <= right.len()
            }
        };
        if to_left {
            left.push(idx);
            left_mbr = left_mbr.mbr_with(&rects[idx]);
        } else {
            right.push(idx);
            right_mbr = right_mbr.mbr_with(&rects[idx]);
        }
    }
    (left, right)
}

/// PickNext: the entry with the greatest preference difference.
fn pick_next(
    remaining: &[usize],
    rects: &[Rect],
    left_mbr: &Rect,
    right_mbr: &Rect,
) -> Option<usize> {
    if remaining.is_empty() {
        return None;
    }
    let mut best_pos = 0;
    let mut best_diff = f64::NEG_INFINITY;
    for (pos, &idx) in remaining.iter().enumerate() {
        let diff = (left_mbr.enlargement(&rects[idx]) - right_mbr.enlargement(&rects[idx])).abs();
        if diff > best_diff {
            best_diff = diff;
            best_pos = pos;
        }
    }
    Some(best_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RTreeConfig;

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        // Deterministic LCG to avoid a rand dependency in unit tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / f64::from(u32::MAX)
        };
        (0..n)
            .map(|_| {
                let x = next() * 1000.0;
                let y = next() * 1000.0;
                let w = next() * 20.0;
                let h = next() * 20.0;
                Rect::new(x, y, x + w, y + h).unwrap()
            })
            .collect()
    }

    fn check_invariants(t: &RTree<usize>) {
        let Some(root) = t.root() else { return };
        fn walk(t: &RTree<usize>, id: NodeId, depth: usize, leaf_depths: &mut Vec<usize>) {
            let mbr = t.mbr(id);
            match t.kind(id) {
                NodeKind::Leaf(entries) => {
                    assert!(!entries.is_empty(), "empty leaf");
                    assert!(entries.len() <= t.config().max_entries, "leaf overflow");
                    for e in entries {
                        assert!(mbr.contains_rect(&e.rect), "leaf MBR violation");
                    }
                    leaf_depths.push(depth);
                }
                NodeKind::Internal(children) => {
                    assert!(!children.is_empty(), "empty internal node");
                    assert!(children.len() <= t.config().max_entries);
                    for &c in children {
                        assert!(mbr.contains_rect(&t.mbr(c)), "internal MBR violation");
                        walk(t, c, depth + 1, leaf_depths);
                    }
                }
            }
        }
        let mut depths = Vec::new();
        walk(t, root, 1, &mut depths);
        let first = depths[0];
        assert!(
            depths.iter().all(|&d| d == first),
            "tree is not height-balanced"
        );
        assert_eq!(first, t.height(), "height bookkeeping wrong");
    }

    #[test]
    fn insert_one() {
        let mut t = RTree::new(RTreeConfig::with_fanout(4));
        t.insert(Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), 0usize);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        check_invariants(&t);
    }

    #[test]
    fn insert_many_small_fanout() {
        let mut t = RTree::new(RTreeConfig::with_fanout(3));
        for (i, r) in random_rects(200, 42).into_iter().enumerate() {
            t.insert(r, i);
            if i % 17 == 0 {
                check_invariants(&t);
            }
        }
        assert_eq!(t.len(), 200);
        check_invariants(&t);
        assert!(t.height() >= 4, "200 entries at fanout 3 must be deep");
    }

    #[test]
    fn insert_many_default_fanout() {
        let mut t = RTree::new(RTreeConfig::default());
        for (i, r) in random_rects(3000, 7).into_iter().enumerate() {
            t.insert(r, i);
        }
        assert_eq!(t.len(), 3000);
        check_invariants(&t);
    }

    #[test]
    fn all_inserted_entries_findable() {
        let rects = random_rects(500, 99);
        let mut t = RTree::new(RTreeConfig::with_fanout(8));
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i);
        }
        for (i, r) in rects.iter().enumerate() {
            let hits = t.search_intersecting(r);
            assert!(
                hits.iter().any(|e| e.value == i),
                "entry {i} not found by its own rect"
            );
        }
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let rects = random_rects(10, 5);
        let (l, r) = quadratic_split(&rects, 4);
        assert!(l.len() >= 4 && r.len() >= 4);
        assert_eq!(l.len() + r.len(), 10);
        let mut all: Vec<usize> = l.iter().chain(r.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_rects_are_fine() {
        let mut t = RTree::new(RTreeConfig::with_fanout(4));
        let r = Rect::new(5.0, 5.0, 6.0, 6.0).unwrap();
        for i in 0..50usize {
            t.insert(r, i);
        }
        assert_eq!(t.len(), 50);
        check_invariants(&t);
        assert_eq!(t.search_intersecting(&r).len(), 50);
    }
}
