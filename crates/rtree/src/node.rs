//! Arena-based R-tree node storage.

use seal_geom::Rect;

/// Identifier of a node in the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One data entry stored in a leaf node.
#[derive(Debug, Clone)]
pub struct LeafEntry<T> {
    /// The entry's bounding rectangle.
    pub rect: Rect,
    /// The payload (object id for the IR-tree baseline).
    pub value: T,
}

/// A node's contents: either leaf entries or child node ids.
#[derive(Debug, Clone)]
pub enum NodeKind<T> {
    /// A leaf holding data entries.
    Leaf(Vec<LeafEntry<T>>),
    /// An internal node holding children.
    Internal(Vec<NodeId>),
}

#[derive(Debug, Clone)]
pub(crate) struct NodeData<T> {
    pub(crate) mbr: Rect,
    pub(crate) kind: NodeKind<T>,
}

/// Fan-out configuration.
///
/// The paper's running example uses "a maximum fanout 3" (Figure 2); the
/// experiments use a disk-page-sized fan-out. Defaults match a 4 KB page
/// of 16-byte MBR entries minus header space.
#[derive(Debug, Clone, Copy)]
pub struct RTreeConfig {
    /// Maximum entries per node (fan-out), ≥ 2.
    pub max_entries: usize,
    /// Minimum entries per node after a split; Guttman recommends
    /// `max_entries / 2` or less. Must satisfy `1 ≤ min ≤ max/2`.
    pub min_entries: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            max_entries: 64,
            min_entries: 26,
        }
    }
}

impl RTreeConfig {
    /// A config with the given fan-out and `min = max * 40%` (clamped).
    pub fn with_fanout(max_entries: usize) -> Self {
        let max = max_entries.max(2);
        RTreeConfig {
            max_entries: max,
            min_entries: (max * 2 / 5).clamp(1, max / 2),
        }
    }
}

/// An R-tree mapping rectangles to payloads.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    pub(crate) nodes: Vec<NodeData<T>>,
    pub(crate) root: Option<NodeId>,
    pub(crate) config: RTreeConfig,
    pub(crate) len: usize,
    pub(crate) height: usize,
}

impl<T> RTree<T> {
    /// An empty tree.
    pub fn new(config: RTreeConfig) -> Self {
        assert!(config.max_entries >= 2, "fan-out must be at least 2");
        assert!(
            (1..=config.max_entries / 2).contains(&config.min_entries),
            "min_entries must be in 1..=max/2"
        );
        RTree {
            nodes: Vec::new(),
            root: None,
            config,
            len: 0,
            height: 0,
        }
    }

    /// Number of data entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 for empty, 1 for a root leaf).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The root node id, if the tree is non-empty.
    #[inline]
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// The configured fan-out limits.
    #[inline]
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// A node's MBR.
    #[inline]
    pub fn mbr(&self, id: NodeId) -> Rect {
        self.nodes[id.index()].mbr
    }

    /// A node's contents.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind<T> {
        &self.nodes[id.index()].kind
    }

    /// Total number of allocated nodes (including any detached by
    /// splits — none in the current implementation).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn alloc(&mut self, mbr: Rect, kind: NodeKind<T>) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many R-tree nodes"));
        self.nodes.push(NodeData { mbr, kind });
        id
    }

    pub(crate) fn recompute_mbr(&mut self, id: NodeId) {
        let mbr = match &self.nodes[id.index()].kind {
            NodeKind::Leaf(entries) => Rect::mbr_of(entries.iter().map(|e| &e.rect)),
            NodeKind::Internal(children) => {
                let rects: Vec<Rect> = children.iter().map(|c| self.mbr(*c)).collect();
                Rect::mbr_of(rects.iter())
            }
        };
        if let Some(m) = mbr {
            self.nodes[id.index()].mbr = m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new(RTreeConfig::default());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 0);
        assert!(t.root().is_none());
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn rejects_bad_min_entries() {
        let _t: RTree<u32> = RTree::new(RTreeConfig {
            max_entries: 4,
            min_entries: 3,
        });
    }

    #[test]
    fn with_fanout_clamps() {
        let c = RTreeConfig::with_fanout(3);
        assert_eq!(c.max_entries, 3);
        assert_eq!(c.min_entries, 1);
        let c = RTreeConfig::with_fanout(10);
        assert_eq!(c.max_entries, 10);
        assert_eq!(c.min_entries, 4);
    }
}
