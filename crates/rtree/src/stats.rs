//! Size and shape statistics (Table 1 reports IR-tree index sizes).

use crate::node::{NodeKind, RTree};
use seal_geom::Rect;

/// Summary statistics of a built R-tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RTreeStats {
    /// Number of data entries.
    pub entries: usize,
    /// Number of nodes (leaf + internal).
    pub nodes: usize,
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Tree height.
    pub height: usize,
    /// Approximate heap bytes of the spatial structure alone (the
    /// IR-tree baseline adds its per-node inverted files on top).
    pub size_bytes: usize,
}

impl<T> RTree<T> {
    /// Computes summary statistics.
    pub fn stats(&self) -> RTreeStats {
        let mut leaves = 0usize;
        let mut size = 0usize;
        let node_overhead = std::mem::size_of::<Rect>() + std::mem::size_of::<usize>();
        for i in 0..self.node_count() {
            let id = crate::node::NodeId(i as u32);
            size += node_overhead;
            match self.kind(id) {
                NodeKind::Leaf(entries) => {
                    leaves += 1;
                    size +=
                        entries.len() * (std::mem::size_of::<Rect>() + std::mem::size_of::<T>());
                }
                NodeKind::Internal(children) => {
                    size += children.len() * std::mem::size_of::<crate::node::NodeId>();
                }
            }
        }
        RTreeStats {
            entries: self.len(),
            nodes: self.node_count(),
            leaves,
            height: self.height(),
            size_bytes: size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RTreeConfig;

    #[test]
    fn stats_of_bulk_loaded_tree() {
        let items: Vec<(Rect, u32)> = (0..256)
            .map(|i| {
                let x = f64::from(i % 16) * 4.0;
                let y = f64::from(i / 16) * 4.0;
                (Rect::new(x, y, x + 3.0, y + 3.0).unwrap(), i)
            })
            .collect();
        let t = RTree::bulk_load(items, RTreeConfig::with_fanout(16));
        let s = t.stats();
        assert_eq!(s.entries, 256);
        assert_eq!(s.leaves, 16, "256 entries at fanout 16 pack 16 leaves");
        assert_eq!(s.height, 2);
        assert!(s.size_bytes > 256 * std::mem::size_of::<Rect>());
        assert_eq!(s.nodes, t.node_count());
    }

    #[test]
    fn stats_of_empty_tree() {
        let t: RTree<u32> = RTree::new(RTreeConfig::default());
        let s = t.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.size_bytes, 0);
    }
}
