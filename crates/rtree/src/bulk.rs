//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs `n` rectangles into `⌈n / max_entries⌉` leaves by sorting
//! on x, slicing into vertical strips of `⌈√(n/M)⌉` leaves each, then
//! sorting each strip on y. Upper levels are built the same way over the
//! node MBRs until a single root remains. This produces the compact,
//! low-overlap tree the IR-tree baseline is measured on.

use crate::node::{LeafEntry, NodeId, NodeKind, RTree, RTreeConfig};
use seal_geom::Rect;

impl<T> RTree<T> {
    /// Bulk-loads a tree from `(rect, value)` pairs using STR.
    ///
    /// An empty input yields an empty tree.
    pub fn bulk_load(items: Vec<(Rect, T)>, config: RTreeConfig) -> Self {
        let mut tree = RTree::new(config);
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();

        // --- Pack leaves. ---
        let mut entries: Vec<LeafEntry<T>> = items
            .into_iter()
            .map(|(rect, value)| LeafEntry { rect, value })
            .collect();
        let m = config.max_entries;
        let leaf_groups = str_partition(&mut entries, m, |e| e.rect.center());
        let mut level: Vec<NodeId> = Vec::with_capacity(leaf_groups.len());
        for group in leaf_groups {
            let mbr = Rect::mbr_of(group.iter().map(|e| &e.rect)).expect("non-empty leaf group");
            level.push(tree.alloc(mbr, NodeKind::Leaf(group)));
        }
        tree.height = 1;

        // --- Pack internal levels until one root remains. ---
        while level.len() > 1 {
            let mut nodes: Vec<(Rect, NodeId)> =
                level.iter().map(|id| (tree.mbr(*id), *id)).collect();
            let groups = str_partition(&mut nodes, m, |(r, _)| r.center());
            let mut next: Vec<NodeId> = Vec::with_capacity(groups.len());
            for group in groups {
                let mbr =
                    Rect::mbr_of(group.iter().map(|(r, _)| r)).expect("non-empty internal group");
                let children = group.into_iter().map(|(_, id)| id).collect();
                next.push(tree.alloc(mbr, NodeKind::Internal(children)));
            }
            level = next;
            tree.height += 1;
        }
        tree.root = Some(level[0]);
        tree
    }
}

/// Splits `items` into groups of at most `m`, tiled by x then y.
fn str_partition<I>(
    items: &mut Vec<I>,
    m: usize,
    center: impl Fn(&I) -> seal_geom::Point,
) -> Vec<Vec<I>> {
    let n = items.len();
    if n <= m {
        return vec![std::mem::take(items)];
    }
    let leaf_count = n.div_ceil(m);
    let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
    let per_strip = n.div_ceil(strip_count);

    // total_cmp: Rect rejects non-finite coordinates, so centers are
    // finite today — but the comparator must stay a total order even
    // if that invariant moves, or sort's contract breaks silently.
    items.sort_by(|a, b| center(a).x.total_cmp(&center(b).x));

    let mut groups = Vec::with_capacity(leaf_count);
    let mut rest = std::mem::take(items);
    while !rest.is_empty() {
        let take = per_strip.min(rest.len());
        let mut strip: Vec<I> = rest.drain(..take).collect();
        strip.sort_by(|a, b| center(a).y.total_cmp(&center(b).y));
        while !strip.is_empty() {
            let take = m.min(strip.len());
            groups.push(strip.drain(..take).collect());
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items(n: usize) -> Vec<(Rect, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = (i / 100) as f64;
                (Rect::new(x, y, x + 0.5, y + 0.5).unwrap(), i)
            })
            .collect()
    }

    #[test]
    fn bulk_load_empty() {
        let t: RTree<usize> = RTree::bulk_load(Vec::new(), RTreeConfig::default());
        assert!(t.is_empty());
    }

    #[test]
    fn bulk_load_single() {
        let t = RTree::bulk_load(grid_items(1), RTreeConfig::default());
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        let root = t.root().unwrap();
        match t.kind(root) {
            NodeKind::Leaf(entries) => assert_eq!(entries.len(), 1),
            NodeKind::Internal(_) => panic!("single entry should be a root leaf"),
        }
    }

    #[test]
    fn bulk_load_respects_fanout() {
        let t = RTree::bulk_load(grid_items(1000), RTreeConfig::with_fanout(8));
        assert_eq!(t.len(), 1000);
        for i in 0..t.node_count() {
            match t.kind(NodeId(i as u32)) {
                NodeKind::Leaf(e) => assert!(e.len() <= 8, "leaf overflow"),
                NodeKind::Internal(c) => assert!(c.len() <= 8, "internal overflow"),
            }
        }
        // 1000 entries at fanout 8 needs height ≥ 4 (8^3 = 512 < 1000).
        assert!(t.height() >= 4);
    }

    #[test]
    fn mbr_invariant_holds() {
        let t = RTree::bulk_load(grid_items(500), RTreeConfig::with_fanout(10));
        fn check(t: &RTree<usize>, id: NodeId) {
            let mbr = t.mbr(id);
            match t.kind(id) {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        assert!(mbr.contains_rect(&e.rect));
                    }
                }
                NodeKind::Internal(children) => {
                    for c in children {
                        assert!(mbr.contains_rect(&t.mbr(*c)));
                        check(t, *c);
                    }
                }
            }
        }
        check(&t, t.root().unwrap());
    }

    #[test]
    fn all_entries_present_exactly_once() {
        let t = RTree::bulk_load(grid_items(777), RTreeConfig::with_fanout(16));
        let mut seen = vec![0u32; 777];
        fn walk(t: &RTree<usize>, id: NodeId, seen: &mut [u32]) {
            match t.kind(id) {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        seen[e.value] += 1;
                    }
                }
                NodeKind::Internal(children) => {
                    for c in children {
                        walk(t, *c, seen);
                    }
                }
            }
        }
        walk(&t, t.root().unwrap(), &mut seen);
        assert!(seen.iter().all(|&c| c == 1));
    }
}
