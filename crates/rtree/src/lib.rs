//! # seal-rtree — an R-tree built from scratch
//!
//! The SEAL paper's strongest baseline extends the IR-tree of Cong et
//! al. (PVLDB 2009): an R-tree whose nodes carry inverted files. This
//! crate provides the underlying R-tree substrate:
//!
//! * **STR bulk loading** (Leutenegger et al.) — the standard way to
//!   build a packed R-tree over a known dataset, used for the IR-tree
//!   baseline's construction.
//! * **Guttman insertion** with the *quadratic split* heuristic — so the
//!   tree also supports incremental updates.
//! * **Overlap queries** and an **open traversal API** (visit nodes,
//!   decide per-node whether to descend) that the IR-tree baseline uses
//!   to apply its spatial/textual overlap bounds at internal nodes.
//!
//! Nodes live in an arena (`Vec<NodeData>`) and are addressed by
//! [`NodeId`], which lets `seal-core` attach per-node inverted files in
//! a parallel map without intrusive pointers.
//!
//! ```
//! use seal_geom::Rect;
//! use seal_rtree::{RTree, RTreeConfig};
//!
//! let items: Vec<(Rect, usize)> = (0..100)
//!     .map(|i| {
//!         let x = f64::from(i as u32 % 10) * 10.0;
//!         let y = f64::from(i as u32 / 10) * 10.0;
//!         (Rect::new(x, y, x + 5.0, y + 5.0).unwrap(), i)
//!     })
//!     .collect();
//! let tree = RTree::bulk_load(items, RTreeConfig::default());
//! let probe = Rect::new(0.0, 0.0, 12.0, 12.0).unwrap();
//! let hits = tree.search_intersecting(&probe);
//! assert!(!hits.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod insert;
mod node;
mod query;
mod stats;

pub use node::{LeafEntry, NodeId, NodeKind, RTree, RTreeConfig};
pub use query::Descend;
pub use stats::RTreeStats;
