//! `seal` — the command-line front end of the SEAL reproduction.
//!
//! ```text
//! seal generate --kind twitter --objects 10000 --out data.tsv
//! seal stats    --data data.tsv
//! seal query    --data data.tsv --region 0,0,50,50 --tokens coffee,mocha \
//!               --tau-r 0.3 --tau-t 0.3 [--filter seal|token|grid|adaptive]
//! ```
//!
//! The data format is the TSV of `seal_datagen::io` (one object per
//! line: `min_x min_y max_x max_y tokens,comma,separated`).

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
