//! The `seal` subcommands.

use crate::args::{parse_region, Args};
use seal_core::{
    BuildOpts, FilterKind, LiveEngine, ObjectStore, Query, QueryEngine, RoiObject, SealEngine,
    ShardedEngine, SimilarityConfig,
};
use seal_datagen::{
    generate_queries, io as dio, twitter_like, usa_like, Dataset, QueryParams, QuerySpec,
    TwitterParams, UsaParams,
};
use seal_text::{TokenId, TokenSet};
use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::sync::Arc;

/// Help text printed on errors and by `seal help`.
pub const USAGE: &str = "\
usage: seal <command> [--option value ...]

commands:
  generate  --kind twitter|usa --out FILE [--objects N] [--seed N]
            synthesize a dataset and write it as TSV
  stats     --data FILE
            print dataset statistics (Table 1's data rows)
  index     --data FILE [--filter seal|token|token-compressed|grid|hash|
            hash-compressed|adaptive|irtree] [--threads N] [--shards N]
            build an index and report build time + size (alias: build;
            --threads 0 = one worker per core, default 1; --shards N>1
            partitions the corpus across N engine shards)
  query     --data FILE --region x0,y0,x1,y1 --tokens a,b,c
            [--tau-r F] [--tau-t F] [--filter ...] [--top-k N]
            run one spatio-textual similarity query
  batch     --data FILE [--queries N] [--threads N] [--shards N]
            [--filter ...] [--tau-r F] [--tau-t F] [--spec large|small]
            [--seed N]
            generate a query workload and serve it in parallel
  ingest    --data FILE [--initial N] [--batch N] [--rounds N]
            [--queries N] [--threads N] [--shards N] [--filter ...]
            [--tau-r F] [--tau-t F] [--spec large|small] [--seed N]
            online ingest: build over the first N objects, then drive
            push -> query -> refresh cycles (generation swaps) over
            the rest, reporting staged visibility and refresh latency
  save      --data FILE --out FILE.seal [--filter ...] [--threads N]
            build an index and persist data + index as one atomic,
            checksummed .seal container
  load      --index FILE.seal [--threads N] [--region x0,y0,x1,y1
            --tokens a,b,c [--tau-r F] [--tau-t F]]
            load a .seal container (fully validated before use) and
            optionally answer one query from it
  serve     --data FILE [--addr 127.0.0.1:7878] [--filter ...]
            [--threads N] [--shards N] [--max-connections N]
            [--max-batch N] [--max-queued N] [--max-staged N]
            [--timeout-secs N] [--seconds N]
            run the HTTP serving tier: /query /push /refresh /status
            /metrics (adaptive query batching, 503 backpressure;
            --shards N>1 serves a partitioned engine with per-shard
            /status detail; --seconds 0 = run until killed)
  loadgen   --addr HOST:PORT [--qps F] [--seconds F] [--clients N]
            [--region x0,y0,x1,y1] [--tokens a,b,c] [--tau-r F]
            [--tau-t F] [--push-every N]
            open-loop load generator against a running serve:
            reports exact client-side p50/p95/p99 latency
  help      show this message";

/// Entry point used by `main` (and by the tests, with captured output).
pub fn run(argv: &[String]) -> Result<(), Box<dyn Error>> {
    if argv.is_empty() || argv[0] == "help" {
        println!("{USAGE}");
        return Ok(());
    }
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "generate" => cmd_generate(&args),
        "stats" => cmd_stats(&args),
        "index" | "build" => cmd_index(&args),
        "query" => cmd_query(&args),
        "batch" => cmd_batch(&args),
        "ingest" => cmd_ingest(&args),
        "save" => cmd_save(&args),
        "load" => cmd_load(&args),
        "serve" => cmd_serve(&args),
        "loadgen" => cmd_loadgen(&args),
        other => Err(format!("unknown command {other:?}").into()),
    }
}

fn cmd_generate(args: &Args) -> Result<(), Box<dyn Error>> {
    let kind = args.required("kind")?;
    let out = args.required("out")?;
    let objects: usize = args.parsed_or("objects", 10_000)?;
    let seed: u64 = args.parsed_or("seed", 2012)?;
    let dataset = match kind {
        "twitter" => twitter_like(&TwitterParams {
            count: objects,
            seed,
            ..TwitterParams::default()
        }),
        "usa" => usa_like(&UsaParams {
            count: objects,
            seed,
            ..UsaParams::default()
        }),
        other => return Err(format!("unknown dataset kind {other:?}").into()),
    };
    let names: Vec<String> = (0..dataset.vocab_size).map(|i| format!("tok{i}")).collect();
    let mut w = BufWriter::new(File::create(out)?);
    dio::write_tsv(&mut w, &dataset, &names)?;
    w.flush()?;
    println!(
        "wrote {} objects ({}, avg area {:.2}, avg tokens {:.1}) to {out}",
        dataset.objects.len(),
        dataset.name,
        dataset.avg_region_area(),
        dataset.avg_token_count(),
    );
    Ok(())
}

/// Loads a TSV dataset into an object store plus the token-name table.
fn load(path: &str) -> Result<(Arc<ObjectStore>, Vec<String>), Box<dyn Error>> {
    let reader = BufReader::new(File::open(path)?);
    let (dataset, names) = dio::read_tsv(reader)?;
    Ok((store_from(&dataset), names))
}

/// A dataset's records as engine objects, in stream order.
fn raw_objects(dataset: &Dataset) -> Vec<RoiObject> {
    dataset
        .objects
        .iter()
        .map(|o| RoiObject::new(o.region, TokenSet::from_ids(o.tokens.iter().copied())))
        .collect()
}

fn store_from(dataset: &Dataset) -> Arc<ObjectStore> {
    Arc::new(ObjectStore::from_objects(
        raw_objects(dataset),
        dataset.vocab_size,
    ))
}

/// A dataset's records as an object store built over token *names*,
/// so the store interns a dictionary and a saved `.seal` container
/// carries it — `load` then resolves query tokens by name without the
/// original TSV.
fn labeled_store_from(
    dataset: &Dataset,
    names: &[String],
) -> Result<Arc<ObjectStore>, Box<dyn Error>> {
    let mut items = Vec::with_capacity(dataset.objects.len());
    for o in &dataset.objects {
        let mut tokens = Vec::with_capacity(o.tokens.len());
        for t in &o.tokens {
            let name = names.get(t.0 as usize).ok_or_else(|| {
                format!(
                    "token id {} out of range of the name table ({} names)",
                    t.0,
                    names.len()
                )
            })?;
            tokens.push(name.as_str());
        }
        items.push((o.region, tokens));
    }
    Ok(Arc::new(ObjectStore::from_labeled(items)))
}

/// Parses the shared workload options (`--queries`, `--tau-r`,
/// `--tau-t`, `--seed`, `--spec`) and generates the anchored query
/// workload `batch` and `ingest` both serve. The spec default differs
/// per command (batch: large regions, ingest: small), hence the
/// parameters.
fn parse_workload(
    args: &Args,
    dataset: &Dataset,
    default_queries: usize,
    default_spec: &str,
) -> Result<Vec<Query>, Box<dyn Error>> {
    let count: usize = args.parsed_or("queries", default_queries)?;
    let tau_r: f64 = args.parsed_or("tau-r", 0.4)?;
    let tau_t: f64 = args.parsed_or("tau-t", 0.4)?;
    let seed: u64 = args.parsed_or("seed", 2012)?;
    let spec = match args.optional("spec").unwrap_or(default_spec) {
        "large" => QuerySpec::LargeRegion,
        "small" => QuerySpec::SmallRegion,
        other => return Err(format!("unknown query spec {other:?}").into()),
    };
    let raw = generate_queries(dataset, &QueryParams { spec, count, seed });
    raw.iter()
        .map(|r| {
            Query::with_token_ids(r.region, r.tokens.iter().copied(), tau_r, tau_t)
                .map_err(|e| format!("invalid thresholds: {e}").into())
        })
        .collect()
}

/// Builds the serving engine every engine-generic command drives: one
/// [`LiveEngine`] arena, or a [`ShardedEngine`] partition when
/// `--shards N` asks for more than one. Everything downstream sees
/// only `Arc<dyn QueryEngine>`.
fn build_engine(
    store: Arc<ObjectStore>,
    kind: FilterKind,
    threads: usize,
    shards: usize,
) -> Arc<dyn QueryEngine> {
    let opts = BuildOpts::with_threads(threads);
    if shards > 1 {
        Arc::new(ShardedEngine::with_opts(
            &store,
            kind,
            SimilarityConfig::default(),
            opts,
            shards,
            None,
        ))
    } else {
        Arc::new(LiveEngine::with_opts(
            store,
            kind,
            SimilarityConfig::default(),
            opts,
        ))
    }
}

/// `"filter"` or `"filter over N shard(s)"` for human-readable
/// banners.
fn engine_label(engine: &dyn QueryEngine) -> String {
    let status = engine.status();
    if status.shards.is_empty() {
        status.filter
    } else {
        format!("{} over {} shard(s)", status.filter, status.shards.len())
    }
}

fn filter_kind(name: &str) -> Result<FilterKind, Box<dyn Error>> {
    Ok(match name {
        "seal" | "hierarchical" => FilterKind::seal_default(),
        "token" => FilterKind::Token,
        "token-compressed" | "tokenc" => FilterKind::TokenCompressed,
        "grid" => FilterKind::Grid { side: 1024 },
        "hash" => FilterKind::HashHybrid {
            side: 1024,
            buckets: Some(1 << 20),
        },
        "hash-compressed" | "hashc" => FilterKind::HashHybridCompressed {
            side: 1024,
            buckets: Some(1 << 20),
        },
        "adaptive" => FilterKind::Adaptive { side: 1024 },
        "irtree" => FilterKind::IrTree { fanout: 64 },
        "keyword" => FilterKind::KeywordFirst,
        "spatial" => FilterKind::SpatialFirst,
        other => return Err(format!("unknown filter {other:?}").into()),
    })
}

fn cmd_stats(args: &Args) -> Result<(), Box<dyn Error>> {
    let (store, _names) = load(args.required("data")?)?;
    let s = store.stats();
    println!("objects:          {}", s.objects);
    println!("vocabulary:       {}", s.vocab_size);
    println!("avg region area:  {:.4}", s.avg_region_area);
    println!("entire space:     {:.1}", s.space_area);
    println!("avg tokens:       {:.2}", s.avg_token_count);
    println!("data bytes:       {}", s.data_bytes);
    Ok(())
}

fn cmd_index(args: &Args) -> Result<(), Box<dyn Error>> {
    let (store, _names) = load(args.required("data")?)?;
    let kind = filter_kind(args.optional("filter").unwrap_or("seal"))?;
    let threads: usize = args.parsed_or("threads", 1)?;
    let shards: usize = args.parsed_or("shards", 1)?;
    let opts = BuildOpts::with_threads(threads);
    let t0 = std::time::Instant::now();
    let engine = build_engine(store, kind, threads, shards);
    let status = engine.status();
    println!(
        "built {} in {:.3}s on {} build thread(s), index size {:.2} MB",
        engine_label(engine.as_ref()),
        t0.elapsed().as_secs_f64(),
        opts.resolved_threads(),
        status.index_bytes as f64 / (1024.0 * 1024.0),
    );
    for (i, s) in status.shards.iter().enumerate() {
        println!("  shard {i}: {} objects", s.objects);
    }
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), Box<dyn Error>> {
    let (store, names) = load(args.required("data")?)?;
    let region = parse_region(args.required("region")?)?;
    let tau_r: f64 = args.parsed_or("tau-r", 0.4)?;
    let tau_t: f64 = args.parsed_or("tau-t", 0.4)?;
    let kind = filter_kind(args.optional("filter").unwrap_or("seal"))?;

    // Resolve query tokens against the dataset's vocabulary.
    let mut ids: Vec<TokenId> = Vec::new();
    let mut unknown: Vec<&str> = Vec::new();
    for t in args.required("tokens")?.split(',').map(str::trim) {
        if t.is_empty() {
            continue;
        }
        match names.iter().position(|n| n == t) {
            Some(i) => ids.push(TokenId(i as u32)),
            None => unknown.push(t),
        }
    }
    if !unknown.is_empty() {
        eprintln!("note: tokens not in the dataset vocabulary: {unknown:?}");
    }

    let engine = SealEngine::build(store.clone(), kind);
    if args.optional("top-k").is_some() {
        let k: usize = args.parsed("top-k")?;
        let top = engine.search_top_k(region, TokenSet::from_ids(ids), k, 0.5);
        println!("top-{k} by combined score:");
        for (id, score) in top {
            println!("  object {:>8}  score {score:.4}", id.0);
        }
        return Ok(());
    }

    let q = Query::with_token_ids(region, ids, tau_r, tau_t)
        .map_err(|e| format!("invalid thresholds: {e}"))?;
    let result = engine.search(&q).sorted();
    println!(
        "{} answers ({} candidates, filter {:?}, verify {:?}, engine {})",
        result.answers.len(),
        result.stats.candidates,
        result.stats.filter_time,
        result.stats.verify_time,
        engine.filter_name(),
    );
    for id in result.answers.iter().take(20) {
        let o = store.get(*id);
        let toks: Vec<&str> = o
            .tokens
            .iter()
            .filter_map(|t| names.get(t.0 as usize).map(String::as_str))
            .collect();
        println!(
            "  object {:>8}  area {:.3}  tokens {}",
            id.0,
            o.region.area(),
            toks.join(",")
        );
    }
    if result.answers.len() > 20 {
        println!("  … and {} more", result.answers.len() - 20);
    }
    Ok(())
}

/// Parallel batch serving: generate a workload anchored on the dataset
/// and drive it through `search_batch`'s work-stealing loop.
fn cmd_batch(args: &Args) -> Result<(), Box<dyn Error>> {
    let path = args.required("data")?;
    let reader = BufReader::new(File::open(path)?);
    let (dataset, _names) = dio::read_tsv(reader)?;
    let store = store_from(&dataset);
    let kind = filter_kind(args.optional("filter").unwrap_or("seal"))?;
    let default_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = args.parsed_or("threads", default_threads)?;
    let shards: usize = args.parsed_or("shards", 1)?;
    let queries = parse_workload(args, &dataset, 200, "large")?;

    let t0 = std::time::Instant::now();
    // The serving thread count also drives the build-side fan-out:
    // a box provisioned to serve N-wide is provisioned to build N-wide.
    let engine = build_engine(store, kind, threads, shards);
    let build_s = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let results = engine.search_batch(&queries, threads);
    let wall = t1.elapsed().as_secs_f64();
    let answers: usize = results.iter().map(|r| r.answers.len()).sum();
    println!(
        "served {} queries on {} threads with {}: {:.1} q/s ({:.3}s wall, {} answers, built in {:.3}s)",
        queries.len(),
        threads,
        engine_label(engine.as_ref()),
        queries.len() as f64 / wall.max(1e-9),
        wall,
        answers,
        build_s,
    );
    Ok(())
}

/// Online ingest: generation 0 over the first `--initial` objects,
/// then `--rounds` cycles of push a batch → serve the workload (staged
/// objects answered from the delta overlay) → `refresh()` (generation
/// swap), reporting per-round qps and refresh latency.
fn cmd_ingest(args: &Args) -> Result<(), Box<dyn Error>> {
    let path = args.required("data")?;
    let reader = BufReader::new(File::open(path)?);
    let (dataset, _names) = dio::read_tsv(reader)?;
    let total = dataset.objects.len();
    let kind = filter_kind(args.optional("filter").unwrap_or("seal"))?;
    let default_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = args.parsed_or("threads", default_threads)?;
    let shards: usize = args.parsed_or("shards", 1)?;
    let initial: usize = args.parsed_or("initial", (total * 9 / 10).max(1))?;
    let initial = initial.min(total);
    let rounds: usize = args.parsed_or("rounds", 5)?;
    // Ceiling division: a floor here would strand up to rounds−1
    // trailing objects outside every round, silently under-ingesting
    // the stream the help text promises to cover.
    let batch: usize = args.parsed_or("batch", (total - initial).div_ceil(rounds.max(1)).max(1))?;
    let objects = raw_objects(&dataset);
    let queries = parse_workload(args, &dataset, 100, "small")?;

    let t0 = std::time::Instant::now();
    let gen0 = Arc::new(ObjectStore::from_objects(
        objects[..initial].to_vec(),
        dataset.vocab_size,
    ));
    let live = build_engine(gen0, kind, threads, shards);
    println!(
        "generation 0: {} objects, {} built in {:.3}s ({} serve thread(s))",
        initial,
        engine_label(live.as_ref()),
        t0.elapsed().as_secs_f64(),
        threads,
    );

    let mut pushed = initial;
    for round in 1..=rounds {
        if pushed >= objects.len() {
            println!("round {round}: stream exhausted");
            break;
        }
        let end = (pushed + batch).min(objects.len());
        live.push_all(objects[pushed..end].to_vec());
        let staged = end - pushed;
        pushed = end;

        // Serve with the delta staged: new objects are answerable now,
        // against the current generation's frozen weights.
        let t1 = std::time::Instant::now();
        let results = live.search_batch(&queries, threads);
        let wall = t1.elapsed().as_secs_f64();
        let answers: usize = results.iter().map(|r| r.answers.len()).sum();

        let stats = live.refresh();
        println!(
            "round {round}: +{staged} staged, {:.1} q/s over {} queries ({answers} answers), \
             refresh {:.3}s -> generation {} ({} objects{})",
            queries.len() as f64 / wall.max(1e-9),
            queries.len(),
            stats.build_seconds,
            stats.generation,
            stats.total,
            if stats.scheme_reused {
                ", HSS selections reused"
            } else {
                ""
            },
        );
    }

    let final_results = live.search_batch(&queries, threads);
    let final_answers: usize = final_results.iter().map(|r| r.answers.len()).sum();
    println!(
        "final: generation {} serving {} objects, {} answers over the workload",
        live.generation(),
        live.len(),
        final_answers,
    );
    Ok(())
}

/// Builds an index over the dataset and persists data + index as one
/// atomic, checksummed `.seal` container.
fn cmd_save(args: &Args) -> Result<(), Box<dyn Error>> {
    let data = args.required("data")?;
    let out = args.required("out")?;
    let kind = filter_kind(args.optional("filter").unwrap_or("seal"))?;
    let threads: usize = args.parsed_or("threads", 1)?;
    let reader = BufReader::new(File::open(data)?);
    let (dataset, names) = dio::read_tsv(reader)?;
    let store = labeled_store_from(&dataset, &names)?;

    let t0 = std::time::Instant::now();
    let engine = SealEngine::build_with_opts(
        store,
        kind,
        SimilarityConfig::default(),
        BuildOpts::with_threads(threads),
    );
    let build_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let bytes = engine.save(std::path::Path::new(out))?;
    println!(
        "saved {} over {} objects to {out}: {:.2} MB in {:.3}s (built in {build_s:.3}s)",
        engine.filter_name(),
        engine.store().len(),
        bytes as f64 / (1024.0 * 1024.0),
        t1.elapsed().as_secs_f64(),
    );
    Ok(())
}

/// Loads a `.seal` container — every section CRC-verified and every
/// count validated before the engine is constructed — and optionally
/// answers one query from it, resolving tokens through the persisted
/// dictionary.
fn cmd_load(args: &Args) -> Result<(), Box<dyn Error>> {
    let path = args.required("index")?;
    let threads: usize = args.parsed_or("threads", 1)?;
    let t0 = std::time::Instant::now();
    let engine = SealEngine::load_with_threads(std::path::Path::new(path), threads)?;
    println!(
        "loaded {} over {} objects from {path} in {:.3}s (index {:.2} MB)",
        engine.filter_name(),
        engine.store().len(),
        t0.elapsed().as_secs_f64(),
        engine.index_bytes() as f64 / (1024.0 * 1024.0),
    );

    let (Some(region), Some(tokens)) = (args.optional("region"), args.optional("tokens")) else {
        return Ok(());
    };
    let region = parse_region(region)?;
    let tau_r: f64 = args.parsed_or("tau-r", 0.4)?;
    let tau_t: f64 = args.parsed_or("tau-t", 0.4)?;
    let dict = engine.store().dictionary();
    let mut ids: Vec<TokenId> = Vec::new();
    let mut unknown: Vec<&str> = Vec::new();
    for t in tokens.split(',').map(str::trim) {
        if t.is_empty() {
            continue;
        }
        match dict.and_then(|d| d.get(t)) {
            Some(id) => ids.push(id),
            None => unknown.push(t),
        }
    }
    if !unknown.is_empty() {
        eprintln!("note: tokens not in the saved dictionary: {unknown:?}");
    }
    let q = Query::with_token_ids(region, ids, tau_r, tau_t)
        .map_err(|e| format!("invalid thresholds: {e}"))?;
    let result = engine.search(&q).sorted();
    println!(
        "{} answers ({} candidates, filter {:?}, verify {:?})",
        result.answers.len(),
        result.stats.candidates,
        result.stats.filter_time,
        result.stats.verify_time,
    );
    for id in result.answers.iter().take(20) {
        let o = engine.store().get(*id);
        let toks: Vec<&str> = o
            .tokens
            .iter()
            .filter_map(|t| dict.and_then(|d| d.name(t)))
            .collect();
        println!(
            "  object {:>8}  area {:.3}  tokens {}",
            id.0,
            o.region.area(),
            toks.join(",")
        );
    }
    if result.answers.len() > 20 {
        println!("  … and {} more", result.answers.len() - 20);
    }
    Ok(())
}

/// Runs the network serving tier: builds the engine over the dataset
/// (one [`LiveEngine`] arena, or a sharded partition with
/// `--shards N`; the dictionary is interned either way, so clients may
/// send token *names*), then serves `/query` `/push` `/refresh`
/// `/status` `/metrics` until killed (or for `--seconds N`, the CI
/// smoke mode).
fn cmd_serve(args: &Args) -> Result<(), Box<dyn Error>> {
    let path = args.required("data")?;
    let reader = BufReader::new(File::open(path)?);
    let (dataset, names) = dio::read_tsv(reader)?;
    let store = labeled_store_from(&dataset, &names)?;
    let kind = filter_kind(args.optional("filter").unwrap_or("seal"))?;
    let threads: usize = args.parsed_or("threads", 0)?;
    let shards: usize = args.parsed_or("shards", 1)?;
    let seconds: u64 = args.parsed_or("seconds", 0)?;
    let cfg = seal_server::ServerConfig {
        addr: args
            .optional("addr")
            .unwrap_or("127.0.0.1:7878")
            .to_string(),
        max_connections: args.parsed_or("max-connections", 128)?,
        threads,
        max_batch: args.parsed_or("max-batch", 64)?,
        max_queued: args.parsed_or("max-queued", 1024)?,
        max_staged: args.parsed_or("max-staged", 1 << 20)?,
        request_timeout: std::time::Duration::from_secs(args.parsed_or("timeout-secs", 10u64)?),
        limits: seal_server::Limits::default(),
    };

    let t0 = std::time::Instant::now();
    let engine = build_engine(store, kind, threads, shards);
    let built = t0.elapsed().as_secs_f64();
    let server = seal_server::Server::spawn(engine.clone(), cfg)?;
    println!(
        "serving {} objects with {} on http://{} (built in {built:.3}s)",
        engine.len(),
        engine_label(engine.as_ref()),
        server.addr(),
    );
    println!("endpoints: /query /push /refresh /status /metrics");
    if seconds == 0 {
        // Daemon mode: serve until the process is killed.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    std::thread::sleep(std::time::Duration::from_secs(seconds));
    println!("{}", server.metrics_json());
    server.shutdown();
    println!("clean shutdown after {seconds}s");
    Ok(())
}

/// Open-loop load generation against a running `serve`, reporting
/// exact client-side latency percentiles (and the server's own view
/// via `/status`).
fn cmd_loadgen(args: &Args) -> Result<(), Box<dyn Error>> {
    let addr = args.required("addr")?;
    let qps: f64 = args.parsed_or("qps", 100.0)?;
    let seconds: f64 = args.parsed_or("seconds", 5.0)?;
    let clients: usize = args.parsed_or("clients", 8)?;
    let region = args.optional("region").unwrap_or("0,0,1000,1000");
    parse_region(region)?; // fail fast on a bad region, client-side
    let tokens = args.optional("tokens").unwrap_or("0,1");
    let tau_r: f64 = args.parsed_or("tau-r", 0.2)?;
    let tau_t: f64 = args.parsed_or("tau-t", 0.2)?;
    let push_every: usize = args.parsed_or("push-every", 0)?;

    let query_target = (
        "GET".to_string(),
        format!("/query?region={region}&tokens={tokens}&tau_r={tau_r}&tau_t={tau_t}"),
        Vec::new(),
    );
    let mut targets = vec![query_target];
    if push_every > 0 {
        // Every push-every-th request stages one object shaped like
        // the query (exercises the ingest path under load).
        let push_body = format!("{} {}\n", region.replace(',', " "), tokens);
        targets = std::iter::repeat_n(targets[0].clone(), push_every.saturating_sub(1).max(1))
            .chain(std::iter::once((
                "POST".to_string(),
                "/push".to_string(),
                push_body.into_bytes(),
            )))
            .collect();
    }

    let mut probe = seal_server::HttpClient::connect(addr)?;
    let before = probe.request("GET", "/status", b"")?;
    if before.status != 200 {
        return Err(format!("server /status answered {}", before.status).into());
    }
    println!("server before: {}", before.text());
    let report = seal_server::client::run_load(
        addr,
        &targets,
        qps,
        std::time::Duration::from_secs_f64(seconds),
        clients,
    )?;
    println!("{}", report.to_json());
    let after = probe.request("GET", "/status", b"")?;
    println!("server after:  {}", after.text());
    if report.ok == 0 {
        return Err("no request succeeded — is the address right?".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("seal-cli-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn generate_stats_index_query_pipeline() {
        let data = temp_path("pipeline.tsv");
        let data_s = data.to_str().unwrap().to_string();
        run(&argv(&format!(
            "generate --kind twitter --objects 500 --seed 7 --out {data_s}"
        )))
        .unwrap();
        run(&argv(&format!("stats --data {data_s}"))).unwrap();
        run(&argv(&format!("index --data {data_s} --filter adaptive"))).unwrap();
        // `build` is an alias of `index`; --threads drives the
        // build-side fan-out (0 = one worker per core).
        run(&argv(&format!(
            "build --data {data_s} --filter seal --threads 4"
        )))
        .unwrap();
        run(&argv(&format!("build --data {data_s} --threads 0"))).unwrap();
        // Sharded build: partitions the same corpus across 4 engines.
        run(&argv(&format!(
            "index --data {data_s} --filter token --shards 4"
        )))
        .unwrap();
        // Query with a huge region and a frequent token: must not error.
        run(&argv(&format!(
            "query --data {data_s} --region 0,0,40000,40000 --tokens tok0 \
             --tau-r 0.01 --tau-t 0.01 --filter token"
        )))
        .unwrap();
        run(&argv(&format!(
            "query --data {data_s} --region 0,0,40000,40000 --tokens tok0 --top-k 5"
        )))
        .unwrap();
        run(&argv(&format!(
            "batch --data {data_s} --queries 20 --threads 4 --filter adaptive \
             --tau-r 0.2 --tau-t 0.2 --spec small"
        )))
        .unwrap();
        run(&argv(&format!(
            "batch --data {data_s} --queries 10 --threads 2 --shards 2 \
             --filter token --tau-r 0.2 --tau-t 0.2 --spec small"
        )))
        .unwrap();
        // Online ingest: 3 push → query → refresh rounds over the
        // last 20% of the stream, generation swaps included.
        run(&argv(&format!(
            "ingest --data {data_s} --initial 400 --batch 30 --rounds 3 \
             --queries 10 --threads 2 --filter seal --tau-r 0.2 --tau-t 0.2"
        )))
        .unwrap();
        run(&argv(&format!(
            "ingest --data {data_s} --initial 450 --queries 5 --filter token"
        )))
        .unwrap();
        // Sharded ingest: per-shard refreshes under one weight epoch.
        run(&argv(&format!(
            "ingest --data {data_s} --initial 400 --batch 50 --rounds 2 \
             --queries 5 --threads 2 --shards 2 --filter token"
        )))
        .unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn save_load_roundtrip_and_corruption() {
        let data = temp_path("persist.tsv");
        let data_s = data.to_str().unwrap().to_string();
        let seal = temp_path("persist.seal");
        let seal_s = seal.to_str().unwrap().to_string();
        run(&argv(&format!(
            "generate --kind twitter --objects 300 --seed 11 --out {data_s}"
        )))
        .unwrap();
        run(&argv(&format!(
            "save --data {data_s} --out {seal_s} --filter adaptive --threads 2"
        )))
        .unwrap();
        run(&argv(&format!("load --index {seal_s} --threads 2"))).unwrap();
        // Query the loaded container; tokens resolve through the
        // persisted dictionary (tok0 exists, zzz is reported unknown).
        run(&argv(&format!(
            "load --index {seal_s} --region 0,0,40000,40000 --tokens tok0,zzz \
             --tau-r 0.01 --tau-t 0.01"
        )))
        .unwrap();

        // A missing container is an error, not a panic.
        assert!(run(&argv("load --index /nonexistent-container.seal")).is_err());
        // A flipped byte anywhere trips a CRC: error, not a panic.
        let pristine = std::fs::read(&seal).unwrap();
        let mut bytes = pristine.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&seal, &bytes).unwrap();
        assert!(run(&argv(&format!("load --index {seal_s}"))).is_err());
        // So is a truncated file.
        std::fs::write(&seal, &pristine[..pristine.len() / 3]).unwrap();
        assert!(run(&argv(&format!("load --index {seal_s}"))).is_err());

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&seal).ok();
    }

    #[test]
    fn ingest_rejects_bad_spec() {
        // Spec validation fires before any dataset work beyond the read.
        let data = temp_path("ingest-bad-spec.tsv");
        let data_s = data.to_str().unwrap().to_string();
        run(&argv(&format!(
            "generate --kind twitter --objects 50 --seed 3 --out {data_s}"
        )))
        .unwrap();
        assert!(run(&argv(&format!("ingest --data {data_s} --spec bogus"))).is_err());
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn serve_and_loadgen_roundtrip() {
        let data = temp_path("serve.tsv");
        let data_s = data.to_str().unwrap().to_string();
        run(&argv(&format!(
            "generate --kind twitter --objects 300 --seed 5 --out {data_s}"
        )))
        .unwrap();
        // A fixed port keeps serve and loadgen in touch; high and
        // PID-free ports collide rarely, and a collision fails loudly.
        let addr = "127.0.0.1:39137";
        let server = std::thread::spawn({
            let data_s = data_s.clone();
            // Box<dyn Error> is not Send; carry the message across.
            move || {
                run(&argv(&format!(
                    "serve --data {data_s} --addr {addr} --filter token \
                     --threads 1 --shards 2 --seconds 3"
                )))
                .map_err(|e| e.to_string())
            }
        });
        // Wait for the listener, then drive a short load.
        let mut up = false;
        for _ in 0..50 {
            std::thread::sleep(std::time::Duration::from_millis(100));
            if seal_server::HttpClient::connect(addr).is_ok() {
                up = true;
                break;
            }
        }
        assert!(up, "serve never bound {addr}");
        run(&argv(&format!(
            "loadgen --addr {addr} --qps 40 --seconds 1 --clients 4 \
             --tokens tok0,tok1 --push-every 10"
        )))
        .unwrap();
        server.join().unwrap().unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn helpful_errors() {
        assert!(run(&argv("bogus")).is_err());
        assert!(run(&argv("generate --kind nope --out /tmp/x")).is_err());
        assert!(run(&argv(
            "query --data /nonexistent-file.tsv --region 0,0,1,1 --tokens a"
        ))
        .is_err());
        run(&argv("help")).unwrap();
        run(&[]).unwrap();
    }

    #[test]
    fn filter_kinds_resolve() {
        for f in [
            "seal",
            "token",
            "token-compressed",
            "tokenc",
            "grid",
            "hash",
            "hash-compressed",
            "hashc",
            "adaptive",
            "irtree",
            "keyword",
            "spatial",
        ] {
            assert!(filter_kind(f).is_ok(), "{f}");
        }
        assert!(filter_kind("nope").is_err());
    }
}
