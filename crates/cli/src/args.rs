//! Minimal `--flag value` argument parsing (no external dependencies,
//! per the project's crate policy).

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: the subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    opts: HashMap<String, String>,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` without a value, or a stray positional.
    Malformed(String),
    /// A required option was not supplied.
    MissingOption(&'static str),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        option: &'static str,
        /// Why it failed.
        reason: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given"),
            ArgError::Malformed(s) => write!(f, "malformed argument {s:?}"),
            ArgError::MissingOption(o) => write!(f, "missing required option --{o}"),
            ArgError::BadValue { option, reason } => {
                write!(f, "bad value for --{option}: {reason}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `subcommand --key value --key value …`.
    pub fn parse(argv: &[String]) -> Result<Self, ArgError> {
        let mut it = argv.iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?.clone();
        let mut opts = HashMap::new();
        while let Some(flag) = it.next() {
            let Some(key) = flag.strip_prefix("--") else {
                return Err(ArgError::Malformed(flag.clone()));
            };
            let value = it
                .next()
                .ok_or_else(|| ArgError::Malformed(format!("--{key} (missing value)")))?;
            opts.insert(key.to_string(), value.clone());
        }
        Ok(Args { command, opts })
    }

    /// A required string option.
    pub fn required(&self, key: &'static str) -> Result<&str, ArgError> {
        self.opts
            .get(key)
            .map(String::as_str)
            .ok_or(ArgError::MissingOption(key))
    }

    /// An optional string option.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// An optional parsed option with a default.
    pub fn parsed_or<T: std::str::FromStr>(
        &self,
        key: &'static str,
        default: T,
    ) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e: T::Err| ArgError::BadValue {
                option: key,
                reason: e.to_string(),
            }),
        }
    }

    /// A required parsed option.
    pub fn parsed<T: std::str::FromStr>(&self, key: &'static str) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        self.required(key)?
            .parse()
            .map_err(|e: T::Err| ArgError::BadValue {
                option: key,
                reason: e.to_string(),
            })
    }
}

/// Parses `x0,y0,x1,y1` into a rectangle.
pub fn parse_region(s: &str) -> Result<seal_geom::Rect, ArgError> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 4 {
        return Err(ArgError::BadValue {
            option: "region",
            reason: format!("expected x0,y0,x1,y1 — got {} fields", parts.len()),
        });
    }
    let mut nums = [0.0f64; 4];
    for (i, p) in parts.iter().enumerate() {
        nums[i] = p.trim().parse().map_err(|e| ArgError::BadValue {
            option: "region",
            reason: format!("{p:?}: {e}"),
        })?;
    }
    seal_geom::Rect::new(nums[0], nums[1], nums[2], nums[3]).map_err(|e| ArgError::BadValue {
        option: "region",
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = Args::parse(&argv("generate --objects 100 --kind twitter")).unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.required("kind").unwrap(), "twitter");
        assert_eq!(a.parsed_or::<usize>("objects", 5).unwrap(), 100);
        assert_eq!(a.parsed_or::<usize>("absent", 7).unwrap(), 7);
        assert!(a.optional("absent").is_none());
    }

    #[test]
    fn rejects_missing_command_and_values() {
        assert_eq!(Args::parse(&[]).unwrap_err(), ArgError::MissingCommand);
        let e = Args::parse(&argv("query --region")).unwrap_err();
        assert!(matches!(e, ArgError::Malformed(_)));
        let e = Args::parse(&argv("query stray")).unwrap_err();
        assert!(matches!(e, ArgError::Malformed(_)));
    }

    #[test]
    fn required_and_parsed_errors() {
        let a = Args::parse(&argv("query --tau-r abc")).unwrap();
        assert_eq!(
            a.required("data").unwrap_err(),
            ArgError::MissingOption("data")
        );
        assert!(matches!(
            a.parsed::<f64>("tau-r").unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }

    #[test]
    fn region_parsing() {
        let r = parse_region("0, 0, 10, 20").unwrap();
        assert_eq!(r.area(), 200.0);
        assert!(parse_region("1,2,3").is_err());
        assert!(parse_region("a,b,c,d").is_err());
        assert!(parse_region("10,0,0,5").is_err(), "inverted rect");
    }
}
