//! Compressed posting arenas served **in place**: quantized bound
//! columns plus object-id columns in one of two codecs — plain LEB128
//! varints ([`IdCodec::Varint`], the legacy on-disk kinds) or
//! delta-coded block bitpacking ([`IdCodec::BlockPacked`], the
//! default) — laid out exactly like the uncompressed columnar CSR form
//! so queries run directly off the compressed bytes.
//!
//! Table 1 is an index-size study: the paper's inverted lists live on
//! disk and their footprint is a first-class metric. Earlier revisions
//! kept one compressed `Bytes` payload per key and fully decoded a
//! list before probing it; this module instead mirrors the in-memory
//! CSR layout (the private `csr` module shared by [`InvertedIndex`]
//! and [`HybridIndex`]) — **one contiguous compressed arena plus a
//! sorted key/offset table** — and serves [`qualifying_into`] probes
//! straight off the arena through a caller-owned scratch buffer.
//! Compressed indexes are a serving mode, not just a storage
//! artifact. Since the uncompressed arenas are themselves columnar
//! (structure-of-arrays), the compressor reads the id and bound
//! columns directly — quantizing one dense `f64` run and
//! varint-encoding one dense `u32` run per group, never striding over
//! interleaved structs.
//!
//! # Arena layout (the index-layout contract)
//!
//! Groups appear in ascending key order, postings within a group in
//! the *same order as the uncompressed CSR group* (descending bound,
//! ties by ascending object id — the `finalize()` order):
//!
//! ```text
//! directory (one entry per key, sorted ascending):
//!   keys:    [k0, k1, ...]
//!   offsets: [byte start of group 0, ..., arena.len()]  len = keys+1
//!   meta:    [(len, scale), ...]            one bound scale per group
//! arena (one contiguous byte buffer):
//!   group i, single-bound: [ q_bound: u16 ×len | ids ]
//!   group i, dual-bound:   [ q_spatial: u16 ×len | q_textual: u16 ×len
//!                          | ids ]
//! ids, IdCodec::Varint:      [ id: varint ×len ]
//! ids, IdCodec::BlockPacked: [ block ×(len/128) | tail ]
//!   block: [ width: u8 (1..=64) | first: varint (absolute id)
//!          | zigzag deltas ×127 at `width` bits, LSB-first,
//!            ceil(127·width/8) bytes ]
//!   tail (len%128 ids, only if > 0):
//!          [ first: varint (absolute id) | zigzag-varint delta
//!          ×(len%128 − 1) ]
//! ```
//!
//! Because the postings keep the descending-bound order *and* the
//! quantization map is monotone, the `u16` bound column is itself
//! non-increasing — so the Lemma 3 qualifying cut runs entirely in the
//! **quantized domain**: the `f64` threshold is lifted once per group
//! to the smallest qualifying `u16` step (`Quantizer::
//! quantize_threshold`) and the cut is the same chunked scan the
//! uncompressed arenas use ([`bound_cut`](crate::bound_cut)'s `u16`
//! twin), with zero
//! dequantization per comparison and zero decoding of postings that
//! fail the threshold. Only the qualifying prefix's **ids** are
//! varint-decoded, into the caller's id scratch buffer (`seal-core`
//! hangs one off its `QueryContext`, keeping the warm serving path
//! allocation-free and mutex-free).
//!
//! Bounds are quantized to `u16` fractions of the group's maximum
//! bound, **rounded up** to the next step: a decompressed bound is
//! never below the true bound, so pruning with it can only widen the
//! candidate superset (the same one-sided-error principle the exact
//! `to_bytes`/`from_bytes` codec relies on, traded for 4× bound
//! compression).
//!
//! # Id codecs
//!
//! Under [`IdCodec::Varint`] object ids are LEB128 varints (≤ 2 bytes
//! for ids below 16 384 instead of a 4-byte word plus padding). Under
//! [`IdCodec::BlockPacked`] — the default since the CSR finalize order
//! (descending bound, ties by **ascending id**) makes equal-bound runs
//! locally sorted — ids are delta-coded and bit-packed in 128-id
//! blocks: each full block stores one bit width, the first id as an
//! absolute varint, and 127 zigzag-encoded deltas packed LSB-first at
//! that width, so an equal-bound run of near-consecutive ids costs a
//! few *bits* per id instead of 1–5 bytes. Deltas are zigzagged
//! because a run boundary (bound drops, id restarts low) produces one
//! negative delta. A partial tail block (fewer than 128 ids) falls
//! back to delta-varint. The block decoder is branch-free per delta
//! (one shift/mask accumulator loop) and decodes into the caller's
//! scratch; [`qualifying_into`] decodes only
//! `ceil(cut/128)` blocks and truncates to the exact cut.
//!
//! Incremental re-encode: [`CompressedInvertedIndex::recompress`]
//! reuses the compressed bytes of every group whose key was *not*
//! folded by the most recent `finalize()` (the CSR core records that
//! key set), so refresh cost is ~linear in the bytes that actually
//! changed rather than the whole corpus.
//!
//! Arenas are validated up front — at [`compress`] time by
//! construction, at deserialization time by a full decode walk in
//! `from_bytes` — so the probe path is infallible.
//!
//! [`qualifying_into`]: CompressedInvertedIndex::qualifying_into
//! [`compress`]: CompressedInvertedIndex::compress

use crate::csr::{bound_cut_u16, column_u16, group_range};
use crate::{HybridIndex, InvertedIndex, ObjId};
use bytes::{BufMut, Bytes, BytesMut};

/// Number of quantization steps for bounds (u16 range).
const QUANT_STEPS: f64 = 65535.0;

/// LEB128 unsigned varint encoding.
fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// LEB128 decoding from a slice, advancing `pos`; `None` on truncation
/// or overflow.
fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if *pos >= buf.len() || shift >= 64 {
            return None;
        }
        let byte = buf[*pos];
        *pos += 1;
        out |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
    }
}

/// How object-id columns are encoded inside a compressed arena. See
/// the [module docs](self) for the byte layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdCodec {
    /// Plain LEB128 varints, one per id (the legacy on-disk kinds).
    Varint,
    /// Delta-coded 128-id blocks, bit-packed at a per-block width;
    /// partial tail as delta-varint. The default.
    BlockPacked,
}

/// Ids per bit-packed block.
pub(crate) const BLOCK_IDS: usize = 128;
/// Deltas per full block (the first id is stored absolute).
pub(crate) const BLOCK_DELTAS: usize = BLOCK_IDS - 1;

/// Zigzag: maps signed deltas onto unsigned so small magnitudes of
/// either sign pack into few bits (run boundaries go negative).
#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Encodes one id column in the block-packed layout (see module docs):
/// full 128-id blocks bit-packed at the block's minimal width, the
/// partial tail delta-varint.
fn put_ids_blockpacked(buf: &mut BytesMut, ids: &[ObjId]) {
    let mut chunks = ids.chunks_exact(BLOCK_IDS);
    for block in &mut chunks {
        let first = block[0];
        let mut deltas = [0u64; BLOCK_DELTAS];
        let mut width = 1u32;
        let mut prev = i64::from(first);
        for (d, &id) in deltas.iter_mut().zip(&block[1..]) {
            let z = zigzag(i64::from(id) - prev);
            prev = i64::from(id);
            *d = z;
            width = width.max(64 - z.leading_zeros());
        }
        buf.put_u8(width as u8);
        put_varint(buf, u64::from(first));
        // LSB-first accumulator; at most 7 leftover bits + 64 new ones
        // are ever in flight, so a u128 never overflows.
        let mut acc = 0u128;
        let mut nbits = 0u32;
        for &z in &deltas {
            acc |= u128::from(z) << nbits;
            nbits += width;
            while nbits >= 8 {
                buf.put_u8((acc & 0xFF) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            buf.put_u8((acc & 0xFF) as u8);
        }
    }
    let tail = chunks.remainder();
    if let Some((&first, rest)) = tail.split_first() {
        put_varint(buf, u64::from(first));
        let mut prev = i64::from(first);
        for &id in rest {
            put_varint(buf, zigzag(i64::from(id) - prev));
            prev = i64::from(id);
        }
    }
}

/// The delta-unpacking mask for a block width (1..=64 bits).
#[inline]
fn width_mask(width: usize) -> u128 {
    if width == 64 {
        u128::from(u64::MAX)
    } else {
        (1u128 << width) - 1
    }
}

/// Walks one block-packed id column starting at `pos`, validating
/// every invariant the infallible decoder later relies on: widths in
/// `1..=64`, enough packed bytes per block, every reconstructed id in
/// `0..=u32::MAX` (checked arithmetic — a hostile delta cannot wrap).
/// Pushes decoded ids into `out` when given. Returns the position
/// after the column, or `None` on any violation.
fn walk_blockpacked(
    bytes: &[u8],
    mut pos: usize,
    len: usize,
    mut out: Option<&mut Vec<ObjId>>,
) -> Option<usize> {
    let max_id = i64::from(u32::MAX);
    for _ in 0..len / BLOCK_IDS {
        let &width_byte = bytes.get(pos)?;
        pos += 1;
        let width = usize::from(width_byte);
        if width == 0 || width > 64 {
            return None;
        }
        let first = get_varint(bytes, &mut pos)?;
        if first > u64::from(u32::MAX) {
            return None;
        }
        if let Some(v) = out.as_deref_mut() {
            v.push(first as ObjId);
        }
        let packed = (BLOCK_DELTAS * width).div_ceil(8);
        if bytes.len() - pos < packed {
            return None;
        }
        let mask = width_mask(width);
        let mut prev = first as i64;
        let mut acc = 0u128;
        let mut nbits = 0usize;
        let mut at = pos;
        for _ in 0..BLOCK_DELTAS {
            while nbits < width {
                acc |= u128::from(bytes[at]) << nbits;
                at += 1;
                nbits += 8;
            }
            let z = (acc & mask) as u64;
            acc >>= width;
            nbits -= width;
            let id = prev.checked_add(unzigzag(z))?;
            if !(0..=max_id).contains(&id) {
                return None;
            }
            prev = id;
            if let Some(v) = out.as_deref_mut() {
                v.push(id as ObjId);
            }
        }
        pos += packed;
    }
    let tail = len % BLOCK_IDS;
    if tail > 0 {
        let first = get_varint(bytes, &mut pos)?;
        if first > u64::from(u32::MAX) {
            return None;
        }
        if let Some(v) = out.as_deref_mut() {
            v.push(first as ObjId);
        }
        let mut prev = first as i64;
        for _ in 1..tail {
            let id = prev.checked_add(unzigzag(get_varint(bytes, &mut pos)?))?;
            if !(0..=max_id).contains(&id) {
                return None;
            }
            prev = id;
            if let Some(v) = out.as_deref_mut() {
                v.push(id as ObjId);
            }
        }
    }
    Some(pos)
}

/// The exact-minimal probe-path decode: unpacks only the
/// `ceil(cut/128)` blocks the qualifying prefix touches (plus the
/// varint tail when the cut reaches it) into `scratch`, then truncates
/// to exactly `cut` ids. Infallible — the arena was validated at
/// construction or load.
fn decode_blockpacked_into(bytes: &[u8], len: usize, cut: usize, scratch: &mut Vec<ObjId>) {
    const VALID: &str = "arena validated at construction";
    let full_blocks = len / BLOCK_IDS;
    let need_blocks = cut.div_ceil(BLOCK_IDS).min(full_blocks);
    let mut pos = 0usize;
    for _ in 0..need_blocks {
        let width = usize::from(bytes[pos]);
        pos += 1;
        let first = get_varint(bytes, &mut pos).expect(VALID);
        scratch.push(first as ObjId);
        let mask = width_mask(width);
        let mut prev = first as i64;
        let mut acc = 0u128;
        let mut nbits = 0usize;
        for _ in 0..BLOCK_DELTAS {
            while nbits < width {
                acc |= u128::from(bytes[pos]) << nbits;
                pos += 1;
                nbits += 8;
            }
            let z = (acc & mask) as u64;
            acc >>= width;
            nbits -= width;
            prev += unzigzag(z);
            scratch.push(prev as ObjId);
        }
        // The per-delta loads consume exactly ceil(127·width/8) bytes,
        // so `pos` already sits at the next block header.
    }
    if cut > full_blocks * BLOCK_IDS {
        let first = get_varint(bytes, &mut pos).expect(VALID);
        scratch.push(first as ObjId);
        let mut prev = i64::from(first as ObjId);
        for _ in 1..len % BLOCK_IDS {
            prev += unzigzag(get_varint(bytes, &mut pos).expect(VALID));
            scratch.push(prev as ObjId);
        }
    }
    scratch.truncate(cut);
}

/// Encodes one id column under `codec`.
fn put_ids(buf: &mut BytesMut, codec: IdCodec, ids: &[ObjId]) {
    match codec {
        IdCodec::Varint => {
            for &id in ids {
                put_varint(buf, u64::from(id));
            }
        }
        IdCodec::BlockPacked => put_ids_blockpacked(buf, ids),
    }
}

/// Decodes a whole id column (both codecs) into `out`, cleared first.
/// Infallible — arenas are validated at construction or load. Used by
/// the full-list paths (`max_object_id`, `decompress`).
fn decode_ids(codec: IdCodec, bytes: &[u8], len: usize, out: &mut Vec<ObjId>) {
    out.clear();
    match codec {
        IdCodec::Varint => {
            let mut pos = 0usize;
            for _ in 0..len {
                let id = get_varint(bytes, &mut pos).expect("arena validated at construction");
                out.push(id as ObjId);
            }
        }
        IdCodec::BlockPacked => {
            walk_blockpacked(bytes, 0, len, Some(out)).expect("arena validated at construction");
        }
    }
}

/// Per-group bound quantizer: maps `[0, scale]` onto `0..=65535`,
/// rounding **up** so the dequantized value never drops below the true
/// bound (superset safety).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Quantizer {
    scale: f64,
}

impl Quantizer {
    /// A quantizer scaled to the group's maximum bound.
    pub(crate) fn for_max(max_bound: f64) -> Self {
        Quantizer {
            scale: max_bound.max(f64::MIN_POSITIVE),
        }
    }

    /// Rebuilds from a serialized scale.
    pub(crate) fn from_scale(scale: f64) -> Self {
        Quantizer {
            scale: scale.max(f64::MIN_POSITIVE),
        }
    }

    /// The serialized scale.
    pub(crate) fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantizes a bound (rounding up; values at or above the scale
    /// saturate to the top step).
    ///
    /// Guarantees `dequantize(quantize(b)) >= b` exactly: the ceil
    /// happens in the `b/scale` domain, where rounding error can land
    /// the round-trip 1 ulp *below* `b` and silently drop an answer
    /// whose bound equals the query threshold — so the step is bumped
    /// until the invariant holds in `f64` arithmetic.
    #[inline]
    pub(crate) fn quantize(&self, bound: f64) -> u16 {
        assert!(
            bound.is_finite(),
            "non-finite bound cannot be quantized for compression"
        );
        if bound >= self.scale {
            return QUANT_STEPS as u16;
        }
        let mut q = ((bound / self.scale) * QUANT_STEPS)
            .ceil()
            .clamp(0.0, QUANT_STEPS) as u16;
        // Terminates: dequantize(65535) == scale > bound on this branch.
        while self.dequantize(q) < bound {
            q += 1;
        }
        q
    }

    /// Dequantizes back to a bound ≥ the original, within one step.
    #[inline]
    pub(crate) fn dequantize(&self, q: u16) -> f64 {
        f64::from(q) / QUANT_STEPS * self.scale
    }

    /// Lifts a query threshold into the quantized domain: the smallest
    /// step `qc` with `dequantize(qc) >= c`, so that
    /// `entry >= qc ⟺ dequantize(entry) >= c` (dequantization is
    /// strictly monotone) and the whole cut can run on raw `u16`s.
    /// `None` when no step qualifies (`c` above the group's scale, or
    /// a NaN threshold) — the qualifying set is empty.
    ///
    /// Exactness matters: the initial ceil estimate can land one step
    /// off in `f64` arithmetic, so it is nudged until minimality holds
    /// exactly — the cut must match the reference
    /// `dequantize(entry) >= c` comparison bit-for-bit.
    #[inline]
    pub(crate) fn quantize_threshold(&self, c: f64) -> Option<u16> {
        if c.is_nan() {
            return None;
        }
        if c <= 0.0 {
            return Some(0);
        }
        if c > self.scale {
            return None;
        }
        let mut q = ((c / self.scale) * QUANT_STEPS)
            .ceil()
            .clamp(0.0, QUANT_STEPS) as u16;
        while q > 0 && self.dequantize(q - 1) >= c {
            q -= 1;
        }
        while self.dequantize(q) < c {
            if q == QUANT_STEPS as u16 {
                return None;
            }
            q += 1;
        }
        Some(q)
    }
}

/// Directory entry for one single-bound group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct GroupMeta {
    /// Postings in the group.
    pub(crate) len: u32,
    /// Bound quantization scale.
    pub(crate) quant: Quantizer,
}

/// Directory entry for one dual-bound group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DualGroupMeta {
    /// Postings in the group.
    pub(crate) len: u32,
    /// Spatial-bound quantization scale.
    pub(crate) spatial: Quantizer,
    /// Textual-bound quantization scale.
    pub(crate) textual: Quantizer,
}

/// The qualifying cut of one compressed group: threshold lifted into
/// the quantized domain once, then the shared chunked `u16` column
/// scan. Zero dequantization per comparison.
#[inline]
fn quantized_cut(col: &[u8], len: usize, quant: Quantizer, c: f64) -> usize {
    match quant.quantize_threshold(c) {
        Some(qc) => bound_cut_u16(col, len, qc),
        None => 0,
    }
}

/// A fully compressed single-bound inverted index, served in place.
///
/// Stores exactly one compressed arena plus the sorted key/offset
/// directory (see the [module docs](self) for the byte layout). Built
/// from a finalized [`InvertedIndex`] whose CSR group order it
/// preserves verbatim.
///
/// ```
/// use seal_index::{CompressedInvertedIndex, InvertedIndex};
///
/// let mut idx: InvertedIndex<u64> = InvertedIndex::new();
/// idx.push(7, 0, 2.0);
/// idx.push(7, 1, 1.0);
/// idx.finalize();
///
/// let compressed = CompressedInvertedIndex::compress(&idx);
/// let mut scratch = Vec::new(); // caller-owned; reuse across probes
/// let hits = compressed.qualifying_into(&7, 1.5, &mut scratch);
/// assert_eq!(hits, &[0]);
/// ```
#[derive(Debug, Clone)]
pub struct CompressedInvertedIndex<K: Ord> {
    /// Sorted keys (one per non-empty group).
    pub(crate) keys: Vec<K>,
    /// Byte offsets into `arena`; `keys.len() + 1` entries.
    pub(crate) offsets: Vec<usize>,
    /// Per-group posting count + quantization scale.
    pub(crate) meta: Vec<GroupMeta>,
    /// The single contiguous compressed arena.
    pub(crate) arena: Bytes,
    /// Total postings across all groups.
    pub(crate) posting_count: usize,
    /// How the id columns are encoded.
    pub(crate) codec: IdCodec,
    /// Generation of the source index this was compressed from (0 when
    /// unknown, e.g. after deserialization) — gates the incremental
    /// [`recompress`](Self::recompress) fast path.
    pub(crate) source_generation: u64,
}

/// Encodes one single-bound group (quantized bound column + id column
/// under `codec`) onto `buf`; returns its directory entry.
fn encode_single_group(
    buf: &mut BytesMut,
    codec: IdCodec,
    bounds: &[f64],
    ids: &[ObjId],
) -> GroupMeta {
    let max = bounds.iter().copied().fold(0.0f64, f64::max);
    let quant = Quantizer::for_max(max);
    for &b in bounds {
        buf.put_u16_le(quant.quantize(b));
    }
    put_ids(buf, codec, ids);
    GroupMeta {
        len: bounds.len() as u32,
        quant,
    }
}

impl<K: Ord + Copy + std::hash::Hash + Sync> CompressedInvertedIndex<K> {
    /// Compresses a finalized [`InvertedIndex`], preserving its CSR
    /// group order. Reads the arena's bound and id columns directly —
    /// one dense `f64` run quantized, one dense `u32` run
    /// varint-encoded per group.
    ///
    /// # Panics
    /// If postings are staged (push without finalize) — the underlying
    /// iterator refuses to silently drop them — or if any bound is
    /// non-finite (unquantizable).
    pub fn compress(index: &InvertedIndex<K>) -> Self {
        Self::compress_with_codec(index, IdCodec::BlockPacked)
    }

    /// [`compress`](Self::compress) with an explicit id codec (the
    /// default is [`IdCodec::BlockPacked`]; benches and the legacy
    /// on-disk kinds use [`IdCodec::Varint`]).
    pub fn compress_with_codec(index: &InvertedIndex<K>, codec: IdCodec) -> Self {
        let mut keys = Vec::with_capacity(index.key_count());
        let mut offsets = Vec::with_capacity(index.key_count() + 1);
        let mut meta = Vec::with_capacity(index.key_count());
        let mut buf = BytesMut::with_capacity(index.posting_count() * 4);
        offsets.push(0);
        let mut posting_count = 0usize;
        for (key, group) in index.iter() {
            meta.push(encode_single_group(
                &mut buf,
                codec,
                group.bounds,
                group.ids,
            ));
            keys.push(key);
            offsets.push(buf.len());
            posting_count += group.len();
        }
        CompressedInvertedIndex {
            keys,
            offsets,
            meta,
            arena: buf.freeze(),
            posting_count,
            codec,
            source_generation: index.generation(),
        }
    }

    /// Re-compresses after a refresh, re-encoding **only** the groups
    /// the most recent `finalize()` folded (the CSR core records that
    /// key set) and byte-copying every untouched group straight out of
    /// `prev`'s arena — cost ~linear in the bytes that changed.
    ///
    /// The fast path applies only when `index` is exactly one
    /// generation ahead of the one `prev` was compressed from (and
    /// `prev` was not deserialized, which loses the provenance);
    /// otherwise this falls back to a full
    /// [`compress_with_codec`](Self::compress_with_codec) under
    /// `prev`'s codec.
    pub fn recompress(index: &InvertedIndex<K>, prev: &Self) -> Self {
        let incremental =
            prev.source_generation != 0 && index.generation() == prev.source_generation + 1;
        if !incremental {
            return Self::compress_with_codec(index, prev.codec);
        }
        let changed: std::collections::HashSet<K> =
            index.last_folded_keys().iter().copied().collect();
        let mut keys = Vec::with_capacity(index.key_count());
        let mut offsets = Vec::with_capacity(index.key_count() + 1);
        let mut meta = Vec::with_capacity(index.key_count());
        let mut buf = BytesMut::with_capacity(prev.arena.len());
        offsets.push(0);
        let mut posting_count = 0usize;
        for (key, group) in index.iter() {
            let reused = !changed.contains(&key)
                && match prev.keys.binary_search(&key) {
                    Ok(i) => {
                        buf.put_slice(&prev.arena.as_slice()[prev.offsets[i]..prev.offsets[i + 1]]);
                        meta.push(prev.meta[i]);
                        true
                    }
                    Err(_) => false,
                };
            if !reused {
                meta.push(encode_single_group(
                    &mut buf,
                    prev.codec,
                    group.bounds,
                    group.ids,
                ));
            }
            keys.push(key);
            offsets.push(buf.len());
            posting_count += group.len();
        }
        CompressedInvertedIndex {
            keys,
            offsets,
            meta,
            arena: buf.freeze(),
            posting_count,
            codec: prev.codec,
            source_generation: index.generation(),
        }
    }

    /// The id codec this arena was encoded with.
    pub fn codec(&self) -> IdCodec {
        self.codec
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Total postings across all groups.
    pub fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Exact heap bytes of the compressed form: arena + directory.
    pub fn size_bytes(&self) -> usize {
        self.arena.len()
            + self.keys.len() * std::mem::size_of::<K>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.meta.len() * std::mem::size_of::<GroupMeta>()
    }

    /// Exact bytes of the **id columns** alone: the arena minus the
    /// fixed 2-bytes-per-posting quantized bound column. This is the
    /// quantity the [`IdCodec`] choice actually changes — bound
    /// columns and directory are codec-invariant.
    pub fn id_column_bytes(&self) -> usize {
        self.arena.len() - 2 * self.posting_count
    }

    /// Length of the list for `key` (0 if absent).
    pub fn list_len(&self, key: &K) -> usize {
        match group_range(&self.keys, &self.offsets, key) {
            Some((i, _)) => self.meta[i].len as usize,
            None => 0,
        }
    }

    /// Number of postings that would qualify at threshold `c` — the
    /// quantized column cut alone, no decoding. This is the
    /// cost-model probe (`|I_c(s)|`) at compressed-column price.
    pub fn qualifying_len(&self, key: &K, c: f64) -> usize {
        match group_range(&self.keys, &self.offsets, key) {
            Some((i, range)) => {
                let m = self.meta[i];
                let len = m.len as usize;
                let bounds = &self.arena.as_slice()[range.start..range.start + 2 * len];
                quantized_cut(bounds, len, m.quant, c)
            }
            None => 0,
        }
    }

    /// Decodes the object ids of the qualifying postings `I_c(key)`
    /// into `scratch` (cleared first) and returns them as a slice —
    /// the same id-slice contract as the uncompressed
    /// [`InvertedIndex::qualifying`], with an id-column decode standing
    /// in for the in-place column suffix.
    ///
    /// The cut runs over the compressed bound column in the quantized
    /// domain; only the qualifying prefix's ids are decoded (bounds
    /// are never dequantized — candidates need ids only): a varint
    /// walk of `cut` ids under [`IdCodec::Varint`], the exact-minimal
    /// `ceil(cut/128)`-block unpack under [`IdCodec::BlockPacked`].
    /// Once `scratch` has grown to the largest qualifying prefix it is
    /// only reused — the warm path performs **zero heap allocations**.
    /// Because quantized bounds only ever round up, the result is a
    /// superset of the uncompressed index's qualifying set (never
    /// missing an answer; each bound inflated by at most one
    /// quantization step).
    pub fn qualifying_into<'a>(&self, key: &K, c: f64, scratch: &'a mut Vec<ObjId>) -> &'a [ObjId] {
        scratch.clear();
        let Some((i, range)) = group_range(&self.keys, &self.offsets, key) else {
            return &[];
        };
        let m = self.meta[i];
        let len = m.len as usize;
        let group = &self.arena.as_slice()[range];
        let bounds = &group[..2 * len];
        let cut = quantized_cut(bounds, len, m.quant, c);
        let ids = &group[2 * len..];
        match self.codec {
            IdCodec::Varint => {
                let mut pos = 0usize;
                for _ in 0..cut {
                    let id = get_varint(ids, &mut pos).expect("arena validated at construction");
                    scratch.push(id as ObjId);
                }
            }
            IdCodec::BlockPacked => decode_blockpacked_into(ids, len, cut, scratch),
        }
        &scratch[..]
    }

    /// The largest object id in the arena (`None` when empty), decoded
    /// group by group. Load paths use this to check a deserialized
    /// index against the store it is being attached to before any
    /// probe indexes a per-object scratch table with an id.
    pub fn max_object_id(&self) -> Option<ObjId> {
        let mut max = None;
        let mut decoded = Vec::new();
        for i in 0..self.keys.len() {
            let len = self.meta[i].len as usize;
            let group = &self.arena.as_slice()[self.offsets[i]..self.offsets[i + 1]];
            decode_ids(self.codec, &group[2 * len..], len, &mut decoded);
            for &id in &decoded {
                max = Some(max.map_or(id, |m: ObjId| m.max(id)));
            }
        }
        max
    }

    /// Decompresses the whole index back to the uncompressed columnar
    /// CSR form (bounds come back rounded up by at most one
    /// quantization step).
    pub fn decompress(&self) -> InvertedIndex<K> {
        let mut out = InvertedIndex::new();
        let mut decoded = Vec::new();
        for (i, key) in self.keys.iter().enumerate() {
            let m = self.meta[i];
            let len = m.len as usize;
            let group = &self.arena.as_slice()[self.offsets[i]..self.offsets[i + 1]];
            let bounds = &group[..2 * len];
            decode_ids(self.codec, &group[2 * len..], len, &mut decoded);
            for (j, &id) in decoded.iter().enumerate() {
                out.push(*key, id, m.quant.dequantize(column_u16(bounds, j)));
            }
        }
        out.finalize();
        out
    }
}

/// A fully compressed dual-bound hybrid index (Section 5.1's lists in
/// their at-rest form), served in place.
///
/// Same arena + directory shape as [`CompressedInvertedIndex`], with
/// two quantized bound columns per group: postings keep the
/// descending-*spatial*-bound order of [`HybridIndex::finalize`], the
/// spatial column is cut in the quantized domain, and the textual
/// bound is checked per surviving posting — also as a raw `u16`
/// compare against the lifted textual threshold — during the prefix
/// decode.
#[derive(Debug, Clone)]
pub struct CompressedHybridIndex<K: Ord> {
    /// Sorted keys (one per non-empty group).
    pub(crate) keys: Vec<K>,
    /// Byte offsets into `arena`; `keys.len() + 1` entries.
    pub(crate) offsets: Vec<usize>,
    /// Per-group posting count + the two quantization scales.
    pub(crate) meta: Vec<DualGroupMeta>,
    /// The single contiguous compressed arena.
    pub(crate) arena: Bytes,
    /// Total postings across all groups.
    pub(crate) posting_count: usize,
    /// How the id columns are encoded.
    pub(crate) codec: IdCodec,
    /// Generation of the source index this was compressed from (0 when
    /// unknown, e.g. after deserialization) — gates the incremental
    /// [`recompress`](Self::recompress) fast path.
    pub(crate) source_generation: u64,
}

/// Encodes one dual-bound group (two quantized bound columns + id
/// column under `codec`) onto `buf`; returns its directory entry.
fn encode_dual_group(
    buf: &mut BytesMut,
    codec: IdCodec,
    spatial_bounds: &[f64],
    textual_bounds: &[f64],
    ids: &[ObjId],
) -> DualGroupMeta {
    let smax = spatial_bounds.iter().copied().fold(0.0f64, f64::max);
    let tmax = textual_bounds.iter().copied().fold(0.0f64, f64::max);
    let spatial = Quantizer::for_max(smax);
    let textual = Quantizer::for_max(tmax);
    for &sb in spatial_bounds {
        buf.put_u16_le(spatial.quantize(sb));
    }
    for &tb in textual_bounds {
        buf.put_u16_le(textual.quantize(tb));
    }
    put_ids(buf, codec, ids);
    DualGroupMeta {
        len: spatial_bounds.len() as u32,
        spatial,
        textual,
    }
}

impl<K: Ord + Copy + std::hash::Hash + Sync> CompressedHybridIndex<K> {
    /// Compresses a finalized [`HybridIndex`], preserving its CSR
    /// group order. Reads the three arena columns directly.
    ///
    /// # Panics
    /// If postings are staged, or any bound is non-finite.
    pub fn compress(index: &HybridIndex<K>) -> Self {
        Self::compress_with_codec(index, IdCodec::BlockPacked)
    }

    /// [`compress`](Self::compress) with an explicit id codec.
    pub fn compress_with_codec(index: &HybridIndex<K>, codec: IdCodec) -> Self {
        let mut keys = Vec::with_capacity(index.key_count());
        let mut offsets = Vec::with_capacity(index.key_count() + 1);
        let mut meta = Vec::with_capacity(index.key_count());
        let mut buf = BytesMut::with_capacity(index.posting_count() * 6);
        offsets.push(0);
        let mut posting_count = 0usize;
        for (key, group) in index.iter() {
            meta.push(encode_dual_group(
                &mut buf,
                codec,
                group.spatial_bounds,
                group.textual_bounds,
                group.ids,
            ));
            keys.push(key);
            offsets.push(buf.len());
            posting_count += group.len();
        }
        CompressedHybridIndex {
            keys,
            offsets,
            meta,
            arena: buf.freeze(),
            posting_count,
            codec,
            source_generation: index.generation(),
        }
    }

    /// Re-compresses after a refresh, byte-copying every group the
    /// most recent `finalize()` did **not** fold — the dual-bound twin
    /// of [`CompressedInvertedIndex::recompress`], with the same
    /// one-generation-ahead gate and full-recompress fallback.
    pub fn recompress(index: &HybridIndex<K>, prev: &Self) -> Self {
        let incremental =
            prev.source_generation != 0 && index.generation() == prev.source_generation + 1;
        if !incremental {
            return Self::compress_with_codec(index, prev.codec);
        }
        let changed: std::collections::HashSet<K> =
            index.last_folded_keys().iter().copied().collect();
        let mut keys = Vec::with_capacity(index.key_count());
        let mut offsets = Vec::with_capacity(index.key_count() + 1);
        let mut meta = Vec::with_capacity(index.key_count());
        let mut buf = BytesMut::with_capacity(prev.arena.len());
        offsets.push(0);
        let mut posting_count = 0usize;
        for (key, group) in index.iter() {
            let reused = !changed.contains(&key)
                && match prev.keys.binary_search(&key) {
                    Ok(i) => {
                        buf.put_slice(&prev.arena.as_slice()[prev.offsets[i]..prev.offsets[i + 1]]);
                        meta.push(prev.meta[i]);
                        true
                    }
                    Err(_) => false,
                };
            if !reused {
                meta.push(encode_dual_group(
                    &mut buf,
                    prev.codec,
                    group.spatial_bounds,
                    group.textual_bounds,
                    group.ids,
                ));
            }
            keys.push(key);
            offsets.push(buf.len());
            posting_count += group.len();
        }
        CompressedHybridIndex {
            keys,
            offsets,
            meta,
            arena: buf.freeze(),
            posting_count,
            codec: prev.codec,
            source_generation: index.generation(),
        }
    }

    /// The id codec this arena was encoded with.
    pub fn codec(&self) -> IdCodec {
        self.codec
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Total postings across all groups.
    pub fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Exact heap bytes of the compressed form: arena + directory.
    pub fn size_bytes(&self) -> usize {
        self.arena.len()
            + self.keys.len() * std::mem::size_of::<K>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.meta.len() * std::mem::size_of::<DualGroupMeta>()
    }

    /// Exact bytes of the **id columns** alone: the arena minus the
    /// two fixed 2-bytes-per-posting quantized bound columns (spatial
    /// and textual). This is the quantity the [`IdCodec`] choice
    /// actually changes.
    pub fn id_column_bytes(&self) -> usize {
        self.arena.len() - 4 * self.posting_count
    }

    /// Length of the list for `key` (0 if absent).
    pub fn list_len(&self, key: &K) -> usize {
        match group_range(&self.keys, &self.offsets, key) {
            Some((i, _)) => self.meta[i].len as usize,
            None => 0,
        }
    }

    /// Decodes the object ids of the postings qualifying under both
    /// thresholds, `I_{c_R, c_T}(key)`, into `scratch` (cleared
    /// first): a quantized-domain cut over the compressed spatial
    /// column, then a raw `u16` textual check per posting during the
    /// prefix decode. Warm calls allocate nothing once `scratch` has
    /// grown.
    pub fn qualifying_into<'a>(
        &self,
        key: &K,
        c_spatial: f64,
        c_textual: f64,
        scratch: &'a mut Vec<ObjId>,
    ) -> &'a [ObjId] {
        scratch.clear();
        let Some((i, range)) = group_range(&self.keys, &self.offsets, key) else {
            return &[];
        };
        let m = self.meta[i];
        let len = m.len as usize;
        let group = &self.arena.as_slice()[range];
        let sbounds = &group[..2 * len];
        let tbounds = &group[2 * len..4 * len];
        let cut = quantized_cut(sbounds, len, m.spatial, c_spatial);
        // Lift the textual threshold once; no step qualifies ⇒ empty.
        let Some(qt) = m.textual.quantize_threshold(c_textual) else {
            return &[];
        };
        let ids = &group[4 * len..];
        match self.codec {
            IdCodec::Varint => {
                let mut pos = 0usize;
                for j in 0..cut {
                    let id = get_varint(ids, &mut pos).expect("arena validated at construction");
                    if column_u16(tbounds, j) >= qt {
                        scratch.push(id as ObjId);
                    }
                }
            }
            IdCodec::BlockPacked => {
                // Block-decode the spatial prefix (positions stay
                // aligned with the textual column), then filter in
                // place — still zero allocations on the warm path.
                decode_blockpacked_into(ids, len, cut, scratch);
                let mut w = 0usize;
                for j in 0..cut {
                    if column_u16(tbounds, j) >= qt {
                        scratch[w] = scratch[j];
                        w += 1;
                    }
                }
                scratch.truncate(w);
            }
        }
        &scratch[..]
    }

    /// The largest object id in the arena (`None` when empty), decoded
    /// group by group — same load-time store check as
    /// [`CompressedInvertedIndex::max_object_id`].
    pub fn max_object_id(&self) -> Option<ObjId> {
        let mut max = None;
        let mut decoded = Vec::new();
        for i in 0..self.keys.len() {
            let len = self.meta[i].len as usize;
            let group = &self.arena.as_slice()[self.offsets[i]..self.offsets[i + 1]];
            decode_ids(self.codec, &group[4 * len..], len, &mut decoded);
            for &id in &decoded {
                max = Some(max.map_or(id, |m: ObjId| m.max(id)));
            }
        }
        max
    }

    /// Decompresses the whole index back to the uncompressed columnar
    /// CSR form (both bounds rounded up by at most one quantization
    /// step).
    pub fn decompress(&self) -> HybridIndex<K> {
        let mut out = HybridIndex::new();
        let mut decoded = Vec::new();
        for (i, key) in self.keys.iter().enumerate() {
            let m = self.meta[i];
            let len = m.len as usize;
            let group = &self.arena.as_slice()[self.offsets[i]..self.offsets[i + 1]];
            let sbounds = &group[..2 * len];
            let tbounds = &group[2 * len..4 * len];
            decode_ids(self.codec, &group[4 * len..], len, &mut decoded);
            for (j, &id) in decoded.iter().enumerate() {
                out.push(
                    *key,
                    id,
                    m.spatial.dequantize(column_u16(sbounds, j)),
                    m.textual.dequantize(column_u16(tbounds, j)),
                );
            }
        }
        out.finalize();
        out
    }
}

/// Walks one serialized group, checking that the bound columns fit,
/// the quantized primary column is non-increasing (the CSR order
/// survived), and exactly `len` ids ≤ `u32::MAX` follow under `codec`
/// (for [`IdCodec::BlockPacked`] that includes block widths in
/// `1..=64`, per-block byte availability, and overflow-checked delta
/// reconstruction). Returns the group's byte length. Shared by the
/// deserializers in [`crate::serialize`] so the probe path can stay
/// infallible.
pub(crate) fn validate_group(
    bytes: &[u8],
    len: usize,
    columns: usize,
    codec: IdCodec,
) -> Option<usize> {
    let header = 2 * len * columns;
    if bytes.len() < header {
        return None;
    }
    let primary = &bytes[..2 * len];
    for j in 1..len {
        if column_u16(primary, j) > column_u16(primary, j - 1) {
            return None;
        }
    }
    match codec {
        IdCodec::Varint => {
            let mut pos = header;
            for _ in 0..len {
                let id = get_varint(bytes, &mut pos)?;
                if id > u64::from(u32::MAX) {
                    return None;
                }
            }
            Some(pos)
        }
        IdCodec::BlockPacked => walk_blockpacked(bytes, header, len, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index(n: u32, spread: f64) -> InvertedIndex<u64> {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for key in 0u64..8 {
            for i in 0..n {
                let hashed = i.wrapping_mul(2_654_435_761).wrapping_mul(i | 1) ^ (key as u32);
                let bound = (f64::from(hashed % 10_000) / 10_000.0) * spread;
                idx.push(key, i * 3, bound);
            }
        }
        idx.finalize();
        idx
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let frozen = buf.freeze();
        let bytes = frozen.as_slice();
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(bytes, &mut pos), Some(v));
        }
        assert_eq!(pos, bytes.len());
        assert_eq!(get_varint(&[], &mut 0), None, "empty buffer");
    }

    #[test]
    fn quantizer_rounds_up_within_one_step() {
        let q = Quantizer::for_max(1000.0);
        for b in [0.0, 0.013, 1.0, 499.9, 999.99, 1000.0] {
            let restored = q.dequantize(q.quantize(b));
            assert!(restored >= b, "{b} lowered to {restored}");
            assert!(restored - b <= 1000.0 / QUANT_STEPS + 1e-9);
        }
        // Saturation: at/above scale maps to the top step exactly.
        assert_eq!(q.quantize(1000.0), QUANT_STEPS as u16);
        assert_eq!(q.dequantize(QUANT_STEPS as u16), 1000.0);
    }

    #[test]
    fn quantizer_roundtrip_never_lands_below_the_bound() {
        // Regression: ceil in the b/scale domain can round-trip 1 ulp
        // *below* b (these exact values did), which would cut a posting
        // whose bound equals the query threshold out of the qualifying
        // prefix — a completeness violation, not just imprecision.
        let q = Quantizer::for_max(669_730.401_440_551_2);
        let b = 206_381.406_227_083_73;
        assert!(q.dequantize(q.quantize(b)) >= b);
        // And broadly, across awkward scale/bound pairs.
        for scale_bits in 1..2000u32 {
            let scale = f64::from(scale_bits) * 335.07 + 0.000_123;
            let quant = Quantizer::for_max(scale);
            for frac in [0.1, 0.30815, 0.5, 0.77777, 0.9999] {
                let bound = scale * frac;
                let restored = quant.dequantize(quant.quantize(bound));
                assert!(restored >= bound, "scale {scale} bound {bound}");
            }
        }
    }

    #[test]
    fn quantize_threshold_is_the_exact_minimal_step() {
        // The quantized-domain cut is correct iff quantize_threshold
        // returns the *smallest* q with dequantize(q) >= c — check
        // minimality and sufficiency across awkward scales.
        for scale_bits in 1..500u32 {
            let scale = f64::from(scale_bits) * 733.13 + 0.000_7;
            let quant = Quantizer::for_max(scale);
            for frac in [0.0, 1e-9, 0.1, 0.30815, 0.5, 0.77777, 0.9999, 1.0] {
                let c = scale * frac;
                let qc = quant.quantize_threshold(c).expect("c <= scale");
                assert!(quant.dequantize(qc) >= c, "insufficient step");
                if qc > 0 {
                    assert!(quant.dequantize(qc - 1) < c, "not minimal");
                }
            }
        }
        let quant = Quantizer::for_max(100.0);
        assert_eq!(quant.quantize_threshold(-5.0), Some(0));
        assert_eq!(quant.quantize_threshold(0.0), Some(0));
        assert_eq!(quant.quantize_threshold(100.0), Some(QUANT_STEPS as u16));
        assert_eq!(quant.quantize_threshold(100.1), None, "above scale");
        assert_eq!(quant.quantize_threshold(f64::NAN), None, "NaN threshold");
    }

    #[test]
    fn arena_is_single_and_contiguous() {
        let idx = sample_index(200, 50.0);
        let c = CompressedInvertedIndex::compress(&idx);
        assert_eq!(c.key_count(), idx.key_count());
        assert_eq!(c.posting_count(), idx.posting_count());
        assert_eq!(c.offsets.len(), c.keys.len() + 1);
        assert_eq!(*c.offsets.last().unwrap(), c.arena.len());
        assert!(c.offsets.windows(2).all(|w| w[0] < w[1]));
        // Keys sorted strictly ascending.
        assert!(c.keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn qualifying_matches_uncompressed_superset_within_a_step() {
        let idx = sample_index(300, 50.0);
        let c = CompressedInvertedIndex::compress(&idx);
        let mut scratch = Vec::new();
        for key in 0u64..8 {
            let step = 50.0 / QUANT_STEPS + 1e-9;
            for thr in [0.0, 1.0, 10.0, 25.0, 49.9] {
                let orig: std::collections::BTreeSet<ObjId> =
                    idx.qualifying(&key, thr).iter().copied().collect();
                let got: std::collections::BTreeSet<ObjId> = c
                    .qualifying_into(&key, thr, &mut scratch)
                    .iter()
                    .copied()
                    .collect();
                assert!(orig.is_subset(&got), "key {key} thr {thr}: lost postings");
                // Anything extra is within one quantization step of the
                // threshold.
                let relaxed: std::collections::BTreeSet<ObjId> =
                    idx.qualifying(&key, thr - step).iter().copied().collect();
                assert!(
                    got.is_subset(&relaxed),
                    "key {key} thr {thr}: over-admitted"
                );
            }
        }
    }

    #[test]
    fn qualifying_len_equals_decoded_len() {
        let idx = sample_index(150, 20.0);
        let c = CompressedInvertedIndex::compress(&idx);
        let mut scratch = Vec::new();
        for key in 0u64..8 {
            for thr in [0.0, 5.0, 19.0, 100.0] {
                assert_eq!(
                    c.qualifying_len(&key, thr),
                    c.qualifying_into(&key, thr, &mut scratch).len()
                );
            }
        }
        assert_eq!(c.qualifying_len(&999, 0.0), 0);
        assert!(c.qualifying_into(&999, 0.0, &mut scratch).is_empty());
        assert_eq!(c.list_len(&0), 150);
        assert_eq!(c.list_len(&999), 0);
    }

    #[test]
    fn scratch_is_reused_without_reallocating() {
        let idx = sample_index(500, 10.0);
        let c = CompressedInvertedIndex::compress(&idx);
        let mut scratch = Vec::new();
        // Warm: decode the largest list once (threshold 0 ⇒ full list).
        let _ = c.qualifying_into(&0, 0.0, &mut scratch);
        let cap = scratch.capacity();
        assert!(cap >= 500);
        for key in 0u64..8 {
            for thr in [0.0, 2.0, 9.0] {
                let _ = c.qualifying_into(&key, thr, &mut scratch);
            }
        }
        assert_eq!(scratch.capacity(), cap, "warm probes must not reallocate");
    }

    #[test]
    fn decompress_roundtrip_preserves_ids_and_never_lowers_bounds() {
        let idx = sample_index(400, 1000.0);
        let back = CompressedInvertedIndex::compress(&idx).decompress();
        assert_eq!(back.posting_count(), idx.posting_count());
        assert_eq!(back.key_count(), idx.key_count());
        let step = 1000.0 / QUANT_STEPS + 1e-9;
        for (key, group) in idx.iter() {
            let mut orig: Vec<(ObjId, f64)> = group.iter().map(|p| (p.object, p.bound)).collect();
            orig.sort_unstable_by_key(|(id, _)| *id);
            let mut rest: Vec<(ObjId, f64)> = back
                .list(&key)
                .unwrap()
                .iter()
                .map(|p| (p.object, p.bound))
                .collect();
            rest.sort_unstable_by_key(|(id, _)| *id);
            for ((ia, ba), (ib, bb)) in orig.iter().zip(rest.iter()) {
                assert_eq!(ia, ib);
                assert!(bb + 1e-12 >= *ba, "bound lowered: {ba} -> {bb}");
                assert!(bb - ba <= step, "bound inflated by more than a step");
            }
        }
    }

    #[test]
    fn compression_shrinks_dense_lists() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for key in 0u64..20 {
            for obj in 0..2_000u32 {
                idx.push(key, obj, f64::from(obj % 97));
            }
        }
        idx.finalize();
        let c = CompressedInvertedIndex::compress(&idx);
        assert!(
            c.size_bytes() * 2 < idx.size_bytes(),
            "compressed {} vs raw {}",
            c.size_bytes(),
            idx.size_bytes()
        );
    }

    #[test]
    fn empty_and_zero_bound_lists() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.finalize();
        let c = CompressedInvertedIndex::compress(&idx);
        assert_eq!(c.key_count(), 0);
        assert_eq!(c.posting_count(), 0);
        let mut scratch = Vec::new();
        assert!(c.qualifying_into(&1, 0.0, &mut scratch).is_empty());

        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(3, 5, 0.0);
        idx.push(3, 9, 0.0);
        idx.finalize();
        let c = CompressedInvertedIndex::compress(&idx);
        assert_eq!(c.qualifying_into(&3, 0.0, &mut scratch).len(), 2);
    }

    #[test]
    #[should_panic(expected = "requires finalize()")]
    fn staged_postings_refuse_to_compress() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 1.0);
        let _ = CompressedInvertedIndex::compress(&idx);
    }

    #[test]
    fn validate_group_accepts_built_groups_and_rejects_corruption() {
        for codec in [IdCodec::Varint, IdCodec::BlockPacked] {
            let idx = sample_index(200, 10.0);
            let c = CompressedInvertedIndex::compress_with_codec(&idx, codec);
            for i in 0..c.keys.len() {
                let bytes = &c.arena.as_slice()[c.offsets[i]..c.offsets[i + 1]];
                assert_eq!(
                    validate_group(bytes, c.meta[i].len as usize, 1, codec),
                    Some(bytes.len())
                );
                // A truncated group fails.
                assert_eq!(
                    validate_group(&bytes[..bytes.len() - 1], c.meta[i].len as usize, 1, codec),
                    None
                );
            }
        }
        // An out-of-order bound column fails.
        let bad = [0u8, 0, 255, 255, 1, 1]; // q0=0 < q1=65535, two ids
        assert_eq!(validate_group(&bad, 2, 1, IdCodec::Varint), None);
    }

    #[test]
    fn zigzag_roundtrips_all_signs() {
        for d in [
            0i64,
            1,
            -1,
            63,
            -64,
            1 << 20,
            -(1 << 20),
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(unzigzag(zigzag(d)), d, "delta {d}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn blockpacked_roundtrips_exact_multiples_and_tails() {
        // Lengths straddling every block-boundary shape: tail-only,
        // exactly one block, block + 1, multiple blocks + tail.
        for n in [1usize, 2, 127, 128, 129, 255, 256, 257, 300] {
            let ids: Vec<ObjId> = (0..n).map(|i| (i as u32).wrapping_mul(7) % 4096).collect();
            let mut buf = BytesMut::new();
            put_ids_blockpacked(&mut buf, &ids);
            let frozen = buf.freeze();
            let mut out = Vec::new();
            let end = walk_blockpacked(frozen.as_slice(), 0, n, Some(&mut out));
            assert_eq!(end, Some(frozen.len()), "len {n}: column length");
            assert_eq!(out, ids, "len {n}: ids");
            // The exact-minimal decoder agrees at every cut.
            for cut in [0, 1, n / 2, n.saturating_sub(1), n] {
                let mut scratch = Vec::new();
                decode_blockpacked_into(frozen.as_slice(), n, cut, &mut scratch);
                assert_eq!(scratch, ids[..cut], "len {n} cut {cut}");
            }
        }
    }

    #[test]
    fn blockpacked_rejects_bad_widths_and_boundary_truncation() {
        // 256 sorted ids -> two full blocks, no tail. First byte of the
        // id column is a block width.
        let ids: Vec<ObjId> = (0..256u32).map(|i| i * 3).collect();
        let mut buf = BytesMut::new();
        put_ids_blockpacked(&mut buf, &ids);
        let good = buf.freeze();
        assert_eq!(
            walk_blockpacked(good.as_slice(), 0, 256, None),
            Some(good.len())
        );
        for bad_width in [0u8, 65, 255] {
            let mut corrupt = good.as_slice().to_vec();
            corrupt[0] = bad_width;
            assert_eq!(
                walk_blockpacked(&corrupt, 0, 256, None),
                None,
                "width {bad_width} must be rejected"
            );
        }
        // Truncation at every byte boundary fails, never panics.
        for cut in 0..good.len() {
            assert_eq!(
                walk_blockpacked(&good.as_slice()[..cut], 0, 256, None),
                None,
                "truncated at {cut}"
            );
        }
    }

    #[test]
    fn blockpacked_rejects_id_overflow_from_hostile_deltas() {
        // A tail block whose second delta pushes the id above u32::MAX
        // must fail the checked reconstruction.
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u64::from(u32::MAX)); // first id: max
        put_varint(&mut buf, zigzag(1)); // +1 overflows the id domain
        let frozen = buf.freeze();
        assert_eq!(walk_blockpacked(frozen.as_slice(), 0, 2, None), None);
    }

    #[test]
    fn blockpacked_matches_varint_codec_answers_and_shrinks_runs() {
        let idx = sample_index(400, 20.0);
        let packed = CompressedInvertedIndex::compress_with_codec(&idx, IdCodec::BlockPacked);
        let varint = CompressedInvertedIndex::compress_with_codec(&idx, IdCodec::Varint);
        assert_eq!(packed.codec(), IdCodec::BlockPacked);
        assert_eq!(varint.codec(), IdCodec::Varint);
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        for key in 0u64..8 {
            for thr in [0.0, 1.0, 5.0, 12.5, 19.9, 100.0] {
                assert_eq!(
                    packed.qualifying_into(&key, thr, &mut s1),
                    varint.qualifying_into(&key, thr, &mut s2),
                    "key {key} thr {thr}"
                );
            }
        }
        assert_eq!(packed.max_object_id(), varint.max_object_id());
        assert_eq!(packed.posting_count(), varint.posting_count());
        // Long equal-bound runs of ascending ids is where bitpacking
        // pays: a dense corpus with few distinct bounds.
        let mut dense: InvertedIndex<u64> = InvertedIndex::new();
        for obj in 0..20_000u32 {
            dense.push(1, obj, f64::from(obj % 4));
        }
        dense.finalize();
        let p = CompressedInvertedIndex::compress_with_codec(&dense, IdCodec::BlockPacked);
        let v = CompressedInvertedIndex::compress_with_codec(&dense, IdCodec::Varint);
        assert!(
            p.arena.len() * 4 < v.arena.len() * 3,
            "blockpacked {} vs varint {}: expected ≥ 25% arena shrink",
            p.arena.len(),
            v.arena.len()
        );
    }

    #[test]
    fn recompress_reuses_unchanged_groups_and_matches_full_rebuild() {
        let mut idx = sample_index(150, 30.0);
        let first = CompressedInvertedIndex::compress(&idx);
        assert_eq!(first.source_generation, idx.generation());
        // Refresh two of the eight keys (plus one brand-new key).
        for i in 0..40u32 {
            idx.push(2, 100_000 + i * 5, f64::from(i));
            idx.push(5, 200_000 + i * 7, f64::from(i) * 0.5);
            idx.push(99, i, 1.0);
        }
        idx.finalize();
        let incremental = CompressedInvertedIndex::recompress(&idx, &first);
        let full = CompressedInvertedIndex::compress(&idx);
        assert_eq!(incremental.keys, full.keys);
        assert_eq!(incremental.offsets, full.offsets);
        assert_eq!(incremental.meta, full.meta);
        assert_eq!(incremental.arena.as_slice(), full.arena.as_slice());
        assert_eq!(incremental.posting_count, full.posting_count);
        assert_eq!(incremental.source_generation, idx.generation());
        // Two generations ahead -> the provenance gate forces the safe
        // full rebuild, which must still be byte-identical.
        for i in 0..10u32 {
            idx.push(3, 300_000 + i, 2.0);
        }
        idx.finalize();
        let behind = CompressedInvertedIndex::recompress(&idx, &first);
        assert_eq!(
            behind.arena.as_slice(),
            CompressedInvertedIndex::compress(&idx).arena.as_slice()
        );
    }
}

#[cfg(test)]
mod dual_tests {
    use super::*;

    fn key(token: u64, cell: u64) -> u128 {
        (u128::from(token) << 64) | u128::from(cell)
    }

    fn sample_hybrid(n: u32) -> HybridIndex<u128> {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        for t in 0u64..4 {
            for g in 0u64..4 {
                for i in 0..n {
                    let h = i.wrapping_mul(2_654_435_761) ^ (t as u32) ^ ((g as u32) << 8);
                    let sb = f64::from(h % 5_000);
                    let tb = f64::from((h >> 8) % 200) / 100.0;
                    idx.push(key(t, g), i, sb, tb);
                }
            }
        }
        idx.finalize();
        idx
    }

    #[test]
    fn dual_qualifying_is_a_superset_of_uncompressed() {
        let idx = sample_hybrid(120);
        let c = CompressedHybridIndex::compress(&idx);
        assert_eq!(c.key_count(), idx.key_count());
        assert_eq!(c.posting_count(), idx.posting_count());
        let mut scratch = Vec::new();
        for t in 0u64..4 {
            for g in 0u64..4 {
                let k = key(t, g);
                for (cr, ct) in [(0.0, 0.0), (1000.0, 0.5), (4000.0, 1.5), (6000.0, 0.1)] {
                    let orig: std::collections::BTreeSet<ObjId> =
                        idx.qualifying(&k, cr, ct).collect();
                    let got: std::collections::BTreeSet<ObjId> = c
                        .qualifying_into(&k, cr, ct, &mut scratch)
                        .iter()
                        .copied()
                        .collect();
                    assert!(
                        orig.is_subset(&got),
                        "key ({t},{g}) thresholds ({cr},{ct}): lost postings"
                    );
                }
            }
        }
    }

    #[test]
    fn dual_figure9_example_survives_compression() {
        // Figure 9's lists: compression may only widen the candidate
        // sets, and here the quantization error is far below the
        // threshold gaps, so the sets are identical.
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(key(1, 10), 0, 2400.0, 1.1);
        idx.push(key(1, 10), 1, 1525.0, 1.9);
        idx.push(key(1, 14), 0, 900.0, 1.7);
        idx.push(key(1, 14), 1, 550.0, 1.9);
        idx.finalize();
        let c = CompressedHybridIndex::compress(&idx);
        let mut scratch = Vec::new();
        assert_eq!(
            c.qualifying_into(&key(1, 14), 600.0, 0.57, &mut scratch),
            &[0]
        );
        assert_eq!(
            c.qualifying_into(&key(1, 10), 600.0, 0.57, &mut scratch),
            &[0, 1]
        );
    }

    #[test]
    fn dual_decompress_roundtrip() {
        let idx = sample_hybrid(60);
        let back = CompressedHybridIndex::compress(&idx).decompress();
        assert_eq!(back.posting_count(), idx.posting_count());
        for t in 0u64..4 {
            let k = key(t, 0);
            let orig: Vec<ObjId> = idx.qualifying(&k, 0.0, 0.0).collect();
            let rest: Vec<ObjId> = back.qualifying(&k, 0.0, 0.0).collect();
            assert_eq!(orig, rest, "full-list order must survive");
        }
    }

    #[test]
    fn dual_compression_shrinks() {
        let idx = sample_hybrid(500);
        let c = CompressedHybridIndex::compress(&idx);
        assert!(
            c.size_bytes() * 2 < idx.size_bytes(),
            "compressed {} vs raw {}",
            c.size_bytes(),
            idx.size_bytes()
        );
    }

    #[test]
    fn dual_blockpacked_matches_varint_codec_answers() {
        let idx = sample_hybrid(300);
        let packed = CompressedHybridIndex::compress_with_codec(&idx, IdCodec::BlockPacked);
        let varint = CompressedHybridIndex::compress_with_codec(&idx, IdCodec::Varint);
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        for t in 0u64..4 {
            for g in 0u64..4 {
                let k = key(t, g);
                for (cr, ct) in [(0.0, 0.0), (500.0, 0.3), (2500.0, 1.0), (4900.0, 1.9)] {
                    assert_eq!(
                        packed.qualifying_into(&k, cr, ct, &mut s1),
                        varint.qualifying_into(&k, cr, ct, &mut s2),
                        "key ({t},{g}) thresholds ({cr},{ct})"
                    );
                }
            }
        }
        assert_eq!(packed.max_object_id(), varint.max_object_id());
    }

    #[test]
    fn dual_recompress_matches_full_rebuild() {
        let mut idx = sample_hybrid(80);
        let first = CompressedHybridIndex::compress(&idx);
        for i in 0..30u32 {
            idx.push(key(1, 2), 50_000 + i, f64::from(i), 0.5);
        }
        idx.finalize();
        let incremental = CompressedHybridIndex::recompress(&idx, &first);
        let full = CompressedHybridIndex::compress(&idx);
        assert_eq!(incremental.keys, full.keys);
        assert_eq!(incremental.meta, full.meta);
        assert_eq!(incremental.arena.as_slice(), full.arena.as_slice());
        assert_eq!(incremental.source_generation, idx.generation());
    }

    #[test]
    fn dual_textual_threshold_above_scale_prunes_everything() {
        let idx = sample_hybrid(40);
        let c = CompressedHybridIndex::compress(&idx);
        let mut scratch = Vec::new();
        // Textual bounds max out below 2.0 in the sample; a threshold
        // far above every scale must lift to None and return nothing.
        assert!(c
            .qualifying_into(&key(0, 0), 0.0, 1e9, &mut scratch)
            .is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_superset_property(
            entries in proptest::collection::vec(
                (0u64..16, 0u32..1_000_000, 0.0f64..1e6), 0..300),
            c in 0.0f64..1e6,
        ) {
            let mut idx: InvertedIndex<u64> = InvertedIndex::new();
            let mut seen = std::collections::HashSet::new();
            for (k, id, b) in entries {
                if seen.insert((k, id)) {
                    idx.push(k, id, b);
                }
            }
            idx.finalize();
            let compressed = CompressedInvertedIndex::compress(&idx);
            let mut scratch = Vec::new();
            for key in 0u64..16 {
                let orig: std::collections::BTreeSet<ObjId> =
                    idx.qualifying(&key, c).iter().copied().collect();
                let got: std::collections::BTreeSet<ObjId> = compressed
                    .qualifying_into(&key, c, &mut scratch)
                    .iter()
                    .copied()
                    .collect();
                prop_assert!(orig.is_subset(&got));
            }
        }

        #[test]
        fn blockpacked_column_roundtrips_arbitrary_ids(
            ids in proptest::collection::vec(0u32..=u32::MAX, 0..400),
        ) {
            // The block codec never requires sorted input — zigzag
            // deltas cover any id sequence bit-exactly.
            let mut buf = BytesMut::new();
            put_ids_blockpacked(&mut buf, &ids);
            let frozen = buf.freeze();
            let mut out = Vec::new();
            let end = walk_blockpacked(frozen.as_slice(), 0, ids.len(), Some(&mut out));
            prop_assert_eq!(end, Some(frozen.len()));
            prop_assert_eq!(out, ids);
        }

        #[test]
        fn quantized_cut_equals_dequantized_reference(
            bounds in proptest::collection::vec(0.0f64..1e5, 1..300),
            frac in 0.0f64..1.2,
        ) {
            // The quantized-domain cut must agree bit-for-bit with the
            // reference comparison `dequantize(entry) >= c`.
            let mut idx: InvertedIndex<u64> = InvertedIndex::new();
            for (i, b) in bounds.iter().enumerate() {
                idx.push(1, i as u32, *b);
            }
            idx.finalize();
            let compressed = CompressedInvertedIndex::compress(&idx);
            let m = compressed.meta[0];
            let len = m.len as usize;
            let col = &compressed.arena.as_slice()[..2 * len];
            let c = m.quant.scale() * frac;
            let reference = (0..len)
                .take_while(|&j| m.quant.dequantize(column_u16(col, j)) >= c)
                .count();
            prop_assert_eq!(compressed.qualifying_len(&1, c), reference);
        }
    }
}
