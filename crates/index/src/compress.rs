//! Compressed posting storage: delta + varint object ids, quantized
//! bounds.
//!
//! Table 1 is an index-size study: the paper's inverted lists live on
//! disk and their footprint is a first-class metric. This module
//! provides the compressed at-rest representation a disk deployment
//! would use:
//!
//! * object ids are sorted ascending, delta-encoded and LEB128-varint
//!   compressed (4–8× smaller than raw `u32`s on dense lists);
//! * threshold bounds are quantized to `u16` fractions of the list's
//!   maximum bound — safe because decompression rounds bounds **up**
//!   to the next quantization step, which can only widen the candidate
//!   superset (the same one-sided-error principle as
//!   [`crate::serialize`]'s exact codec, traded for ~5× bound
//!   compression).
//!
//! A [`CompressedPostingList`] decompresses back to a queryable
//! [`BoundedPostingList`]; round-trip tests assert the superset
//! property posting-by-posting.

use crate::{BoundedPostingList, ObjId, Posting};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// LEB128 unsigned varint encoding.
fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// LEB128 decoding; returns `None` on truncation or overflow.
fn get_varint(buf: &mut impl Buf) -> Option<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        out |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
    }
}

/// Number of quantization steps for bounds (u16 range).
const QUANT_STEPS: f64 = 65535.0;

/// A compressed, immutable posting list.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedPostingList {
    /// Delta-varint ids followed by u16 quantized bounds.
    payload: Bytes,
    /// Number of postings.
    len: usize,
    /// Maximum bound (quantization scale).
    max_bound: f64,
}

/// Errors from decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The payload ended before the declared postings.
    Truncated,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed payload truncated"),
        }
    }
}

impl std::error::Error for CompressError {}

impl CompressedPostingList {
    /// Compresses a finalized posting list.
    pub fn compress(list: &BoundedPostingList) -> Self {
        Self::compress_postings(list.postings())
    }

    /// Compresses a posting slice (e.g. one arena group of an
    /// [`crate::InvertedIndex`]).
    pub fn compress_postings(postings: &[Posting]) -> Self {
        // Sort ids ascending for delta coding; remember each id's bound.
        let mut pairs: Vec<(ObjId, f64)> = postings.iter().map(|p| (p.object, p.bound)).collect();
        pairs.sort_unstable_by_key(|(id, _)| *id);
        let max_bound = pairs
            .iter()
            .map(|(_, b)| *b)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);

        let mut buf = BytesMut::with_capacity(pairs.len() * 3 + 16);
        let mut prev = 0u64;
        for (id, _) in &pairs {
            let v = u64::from(*id);
            put_varint(&mut buf, v - prev);
            prev = v;
        }
        for (_, bound) in &pairs {
            // Round *up* so the decompressed bound is never below the
            // true bound: pruning with a too-low bound only admits
            // extra candidates (safe); too high would drop answers.
            let q = ((bound / max_bound) * QUANT_STEPS).ceil().min(QUANT_STEPS);
            buf.put_u16_le(q as u16);
        }
        CompressedPostingList {
            payload: buf.freeze(),
            len: pairs.len(),
            max_bound,
        }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.payload.len() + std::mem::size_of::<usize>() + std::mem::size_of::<f64>()
    }

    /// Decompresses back to a finalized, queryable list. Bounds come
    /// back rounded up by at most one quantization step.
    pub fn decompress(&self) -> Result<BoundedPostingList, CompressError> {
        let mut buf = self.payload.clone();
        let mut ids = Vec::with_capacity(self.len);
        let mut prev = 0u64;
        for _ in 0..self.len {
            let delta = get_varint(&mut buf).ok_or(CompressError::Truncated)?;
            prev += delta;
            ids.push(prev as ObjId);
        }
        let mut out = BoundedPostingList::new();
        for id in ids {
            if buf.remaining() < 2 {
                return Err(CompressError::Truncated);
            }
            let q = f64::from(buf.get_u16_le());
            let bound = q / QUANT_STEPS * self.max_bound;
            out.push(id, bound);
        }
        out.finalize();
        Ok(out)
    }
}

/// A fully compressed inverted index: every list stored in the
/// delta-varint representation, decompressed on demand.
///
/// This is the at-rest form a disk deployment pages in; the benchmarks
/// report its size next to the in-memory index (the paper's Table 1
/// sizes are disk sizes).
#[derive(Debug, Clone)]
pub struct CompressedInvertedIndex<K: Eq + std::hash::Hash + Ord> {
    lists: std::collections::HashMap<K, CompressedPostingList>,
}

impl<K: Eq + std::hash::Hash + Ord + Copy> CompressedInvertedIndex<K> {
    /// Compresses every list of an [`crate::InvertedIndex`].
    pub fn compress(index: &crate::InvertedIndex<K>) -> Self {
        let lists = index
            .iter()
            .map(|(k, postings)| (k, CompressedPostingList::compress_postings(postings)))
            .collect();
        CompressedInvertedIndex { lists }
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.lists.len()
    }

    /// Total compressed bytes.
    pub fn size_bytes(&self) -> usize {
        self.lists
            .values()
            .map(|l| l.size_bytes() + std::mem::size_of::<K>())
            .sum()
    }

    /// Decompresses one list (the "page-in" operation).
    pub fn list(&self, key: &K) -> Option<Result<BoundedPostingList, CompressError>> {
        self.lists.get(key).map(CompressedPostingList::decompress)
    }

    /// Decompresses the whole index back to queryable form.
    pub fn decompress(&self) -> Result<crate::InvertedIndex<K>, CompressError> {
        let mut out = crate::InvertedIndex::new();
        for (k, clist) in &self.lists {
            let list = clist.decompress()?;
            for p in list.postings() {
                out.push(*k, p.object, p.bound);
            }
        }
        out.finalize();
        Ok(out)
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;

    #[test]
    fn whole_index_roundtrip_is_a_superset() {
        let mut idx: crate::InvertedIndex<u64> = crate::InvertedIndex::new();
        for key in 0u64..50 {
            for obj in 0..(key as u32 % 40 + 1) {
                idx.push(key, obj * 7, f64::from(obj) * 1.5 + f64::from(key as u32));
            }
        }
        idx.finalize();
        let compressed = CompressedInvertedIndex::compress(&idx);
        assert_eq!(compressed.key_count(), idx.key_count());
        let back = compressed.decompress().unwrap();
        assert_eq!(back.posting_count(), idx.posting_count());
        for key in 0u64..50 {
            for c in [0.0, 5.0, 20.0] {
                let orig: std::collections::BTreeSet<u32> =
                    idx.qualifying(&key, c).iter().map(|p| p.object).collect();
                let rest: std::collections::BTreeSet<u32> =
                    back.qualifying(&key, c).iter().map(|p| p.object).collect();
                assert!(orig.is_subset(&rest), "key {key} c {c}");
            }
        }
    }

    #[test]
    fn compressed_index_is_smaller_on_realistic_lists() {
        let mut idx: crate::InvertedIndex<u64> = crate::InvertedIndex::new();
        for key in 0u64..20 {
            for obj in 0..2_000u32 {
                idx.push(key, obj, f64::from(obj % 97));
            }
        }
        idx.finalize();
        let compressed = CompressedInvertedIndex::compress(&idx);
        assert!(
            compressed.size_bytes() * 2 < idx.size_bytes(),
            "compressed {} vs raw {}",
            compressed.size_bytes(),
            idx.size_bytes()
        );
        assert!(compressed.list(&0).is_some());
        assert!(compressed.list(&999).is_none());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_list(n: u32, spread: f64) -> BoundedPostingList {
        let mut l = BoundedPostingList::new();
        for i in 0..n {
            let hashed = i.wrapping_mul(2_654_435_761).wrapping_mul(i | 1);
            let bound = (f64::from(hashed % 10_000) / 10_000.0) * spread;
            l.push(i * 3, bound);
        }
        l.finalize();
        l
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut b = buf.freeze();
        for &v in &values {
            assert_eq!(get_varint(&mut b), Some(v));
        }
        assert_eq!(get_varint(&mut Bytes::new()), None, "empty buffer");
    }

    #[test]
    fn roundtrip_preserves_ids_and_never_lowers_bounds() {
        let original = sample_list(500, 1000.0);
        let compressed = CompressedPostingList::compress(&original);
        let back = compressed.decompress().unwrap();
        assert_eq!(back.len(), original.len());
        // Check per-object: the restored bound must be >= the true
        // bound (superset safety) and within one quantization step.
        let step = 1000.0 / 65535.0 + 1e-9;
        let mut orig: Vec<(ObjId, f64)> = original
            .postings()
            .iter()
            .map(|p| (p.object, p.bound))
            .collect();
        orig.sort_unstable_by_key(|(id, _)| *id);
        let mut restored: Vec<(ObjId, f64)> = back
            .postings()
            .iter()
            .map(|p| (p.object, p.bound))
            .collect();
        restored.sort_unstable_by_key(|(id, _)| *id);
        for ((id_a, bound_a), (id_b, bound_b)) in orig.iter().zip(restored.iter()) {
            assert_eq!(id_a, id_b);
            assert!(
                bound_b + 1e-12 >= *bound_a,
                "bound lowered: {bound_a} -> {bound_b}"
            );
            assert!(
                bound_b - bound_a <= step,
                "bound inflated by more than a step"
            );
        }
    }

    #[test]
    fn qualifying_superset_after_roundtrip() {
        let original = sample_list(300, 50.0);
        let back = CompressedPostingList::compress(&original)
            .decompress()
            .unwrap();
        for c in [0.0, 1.0, 10.0, 25.0, 49.9] {
            let orig: std::collections::BTreeSet<ObjId> =
                original.qualifying(c).iter().map(|p| p.object).collect();
            let rest: std::collections::BTreeSet<ObjId> =
                back.qualifying(c).iter().map(|p| p.object).collect();
            assert!(
                orig.is_subset(&rest),
                "c={c}: compression lost qualifying postings"
            );
        }
    }

    #[test]
    fn compression_shrinks_dense_lists() {
        let original = sample_list(10_000, 100.0);
        let compressed = CompressedPostingList::compress(&original);
        let raw = original.size_bytes();
        assert!(
            compressed.size_bytes() * 3 < raw,
            "compressed {} vs raw {raw}",
            compressed.size_bytes()
        );
    }

    #[test]
    fn empty_list() {
        let mut l = BoundedPostingList::new();
        l.finalize();
        let c = CompressedPostingList::compress(&l);
        assert!(c.is_empty());
        assert_eq!(c.decompress().unwrap().len(), 0);
    }

    #[test]
    fn truncated_payload_errors() {
        let original = sample_list(50, 10.0);
        let mut c = CompressedPostingList::compress(&original);
        c.payload = c.payload.slice(..c.payload.len() / 2);
        assert!(matches!(c.decompress(), Err(CompressError::Truncated)));
    }

    #[test]
    fn zero_bounds_survive() {
        let mut l = BoundedPostingList::new();
        l.push(5, 0.0);
        l.push(9, 0.0);
        l.finalize();
        let back = CompressedPostingList::compress(&l).decompress().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.qualifying(0.0).len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_superset_property(
            entries in proptest::collection::vec((0u32..1_000_000, 0.0f64..1e6), 0..200),
            c in 0.0f64..1e6,
        ) {
            let mut l = BoundedPostingList::new();
            let mut seen = std::collections::HashSet::new();
            for (id, b) in entries {
                if seen.insert(id) {
                    l.push(id, b);
                }
            }
            l.finalize();
            let back = CompressedPostingList::compress(&l).decompress().unwrap();
            let orig: std::collections::BTreeSet<ObjId> =
                l.qualifying(c).iter().map(|p| p.object).collect();
            let rest: std::collections::BTreeSet<ObjId> =
                back.qualifying(c).iter().map(|p| p.object).collect();
            prop_assert!(orig.is_subset(&rest));
        }
    }
}
