//! Compressed posting arenas served **in place**: delta-free varint
//! object ids plus quantized bound columns, laid out exactly like the
//! uncompressed columnar CSR form so queries run directly off the
//! compressed bytes.
//!
//! Table 1 is an index-size study: the paper's inverted lists live on
//! disk and their footprint is a first-class metric. Earlier revisions
//! kept one compressed `Bytes` payload per key and fully decoded a
//! list before probing it; this module instead mirrors the in-memory
//! CSR layout (the private `csr` module shared by [`InvertedIndex`]
//! and [`HybridIndex`]) — **one contiguous compressed arena plus a
//! sorted key/offset table** — and serves [`qualifying_into`] probes
//! straight off the arena through a caller-owned scratch buffer.
//! Compressed indexes are a serving mode, not just a storage
//! artifact. Since the uncompressed arenas are themselves columnar
//! (structure-of-arrays), the compressor reads the id and bound
//! columns directly — quantizing one dense `f64` run and
//! varint-encoding one dense `u32` run per group, never striding over
//! interleaved structs.
//!
//! # Arena layout (the index-layout contract)
//!
//! Groups appear in ascending key order, postings within a group in
//! the *same order as the uncompressed CSR group* (descending bound,
//! ties by ascending object id — the `finalize()` order):
//!
//! ```text
//! directory (one entry per key, sorted ascending):
//!   keys:    [k0, k1, ...]
//!   offsets: [byte start of group 0, ..., arena.len()]  len = keys+1
//!   meta:    [(len, scale), ...]            one bound scale per group
//! arena (one contiguous byte buffer):
//!   group i, single-bound: [ q_bound: u16 ×len | id: varint ×len ]
//!   group i, dual-bound:   [ q_spatial: u16 ×len | q_textual: u16 ×len
//!                          | id: varint ×len ]
//! ```
//!
//! Because the postings keep the descending-bound order *and* the
//! quantization map is monotone, the `u16` bound column is itself
//! non-increasing — so the Lemma 3 qualifying cut runs entirely in the
//! **quantized domain**: the `f64` threshold is lifted once per group
//! to the smallest qualifying `u16` step (`Quantizer::
//! quantize_threshold`) and the cut is the same chunked scan the
//! uncompressed arenas use ([`bound_cut`](crate::bound_cut)'s `u16`
//! twin), with zero
//! dequantization per comparison and zero decoding of postings that
//! fail the threshold. Only the qualifying prefix's **ids** are
//! varint-decoded, into the caller's id scratch buffer (`seal-core`
//! hangs one off its `QueryContext`, keeping the warm serving path
//! allocation-free and mutex-free).
//!
//! Bounds are quantized to `u16` fractions of the group's maximum
//! bound, **rounded up** to the next step: a decompressed bound is
//! never below the true bound, so pruning with it can only widen the
//! candidate superset (the same one-sided-error principle the exact
//! `to_bytes`/`from_bytes` codec relies on, traded for 4× bound
//! compression). Object ids are LEB128 varints (≤ 2 bytes for ids
//! below 16 384 instead of a 4-byte word plus padding).
//!
//! Arenas are validated up front — at [`compress`] time by
//! construction, at deserialization time by a full decode walk in
//! `from_bytes` — so the probe path is infallible.
//!
//! [`qualifying_into`]: CompressedInvertedIndex::qualifying_into
//! [`compress`]: CompressedInvertedIndex::compress

use crate::csr::{bound_cut_u16, column_u16, group_range};
use crate::{HybridIndex, InvertedIndex, ObjId};
use bytes::{BufMut, Bytes, BytesMut};

/// Number of quantization steps for bounds (u16 range).
const QUANT_STEPS: f64 = 65535.0;

/// LEB128 unsigned varint encoding.
fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// LEB128 decoding from a slice, advancing `pos`; `None` on truncation
/// or overflow.
fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if *pos >= buf.len() || shift >= 64 {
            return None;
        }
        let byte = buf[*pos];
        *pos += 1;
        out |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
    }
}

/// Per-group bound quantizer: maps `[0, scale]` onto `0..=65535`,
/// rounding **up** so the dequantized value never drops below the true
/// bound (superset safety).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Quantizer {
    scale: f64,
}

impl Quantizer {
    /// A quantizer scaled to the group's maximum bound.
    pub(crate) fn for_max(max_bound: f64) -> Self {
        Quantizer {
            scale: max_bound.max(f64::MIN_POSITIVE),
        }
    }

    /// Rebuilds from a serialized scale.
    pub(crate) fn from_scale(scale: f64) -> Self {
        Quantizer {
            scale: scale.max(f64::MIN_POSITIVE),
        }
    }

    /// The serialized scale.
    pub(crate) fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantizes a bound (rounding up; values at or above the scale
    /// saturate to the top step).
    ///
    /// Guarantees `dequantize(quantize(b)) >= b` exactly: the ceil
    /// happens in the `b/scale` domain, where rounding error can land
    /// the round-trip 1 ulp *below* `b` and silently drop an answer
    /// whose bound equals the query threshold — so the step is bumped
    /// until the invariant holds in `f64` arithmetic.
    #[inline]
    pub(crate) fn quantize(&self, bound: f64) -> u16 {
        assert!(
            bound.is_finite(),
            "non-finite bound cannot be quantized for compression"
        );
        if bound >= self.scale {
            return QUANT_STEPS as u16;
        }
        let mut q = ((bound / self.scale) * QUANT_STEPS)
            .ceil()
            .clamp(0.0, QUANT_STEPS) as u16;
        // Terminates: dequantize(65535) == scale > bound on this branch.
        while self.dequantize(q) < bound {
            q += 1;
        }
        q
    }

    /// Dequantizes back to a bound ≥ the original, within one step.
    #[inline]
    pub(crate) fn dequantize(&self, q: u16) -> f64 {
        f64::from(q) / QUANT_STEPS * self.scale
    }

    /// Lifts a query threshold into the quantized domain: the smallest
    /// step `qc` with `dequantize(qc) >= c`, so that
    /// `entry >= qc ⟺ dequantize(entry) >= c` (dequantization is
    /// strictly monotone) and the whole cut can run on raw `u16`s.
    /// `None` when no step qualifies (`c` above the group's scale, or
    /// a NaN threshold) — the qualifying set is empty.
    ///
    /// Exactness matters: the initial ceil estimate can land one step
    /// off in `f64` arithmetic, so it is nudged until minimality holds
    /// exactly — the cut must match the reference
    /// `dequantize(entry) >= c` comparison bit-for-bit.
    #[inline]
    pub(crate) fn quantize_threshold(&self, c: f64) -> Option<u16> {
        if c.is_nan() {
            return None;
        }
        if c <= 0.0 {
            return Some(0);
        }
        if c > self.scale {
            return None;
        }
        let mut q = ((c / self.scale) * QUANT_STEPS)
            .ceil()
            .clamp(0.0, QUANT_STEPS) as u16;
        while q > 0 && self.dequantize(q - 1) >= c {
            q -= 1;
        }
        while self.dequantize(q) < c {
            if q == QUANT_STEPS as u16 {
                return None;
            }
            q += 1;
        }
        Some(q)
    }
}

/// Directory entry for one single-bound group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct GroupMeta {
    /// Postings in the group.
    pub(crate) len: u32,
    /// Bound quantization scale.
    pub(crate) quant: Quantizer,
}

/// Directory entry for one dual-bound group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DualGroupMeta {
    /// Postings in the group.
    pub(crate) len: u32,
    /// Spatial-bound quantization scale.
    pub(crate) spatial: Quantizer,
    /// Textual-bound quantization scale.
    pub(crate) textual: Quantizer,
}

/// The qualifying cut of one compressed group: threshold lifted into
/// the quantized domain once, then the shared chunked `u16` column
/// scan. Zero dequantization per comparison.
#[inline]
fn quantized_cut(col: &[u8], len: usize, quant: Quantizer, c: f64) -> usize {
    match quant.quantize_threshold(c) {
        Some(qc) => bound_cut_u16(col, len, qc),
        None => 0,
    }
}

/// A fully compressed single-bound inverted index, served in place.
///
/// Stores exactly one compressed arena plus the sorted key/offset
/// directory (see the [module docs](self) for the byte layout). Built
/// from a finalized [`InvertedIndex`] whose CSR group order it
/// preserves verbatim.
///
/// ```
/// use seal_index::{CompressedInvertedIndex, InvertedIndex};
///
/// let mut idx: InvertedIndex<u64> = InvertedIndex::new();
/// idx.push(7, 0, 2.0);
/// idx.push(7, 1, 1.0);
/// idx.finalize();
///
/// let compressed = CompressedInvertedIndex::compress(&idx);
/// let mut scratch = Vec::new(); // caller-owned; reuse across probes
/// let hits = compressed.qualifying_into(&7, 1.5, &mut scratch);
/// assert_eq!(hits, &[0]);
/// ```
#[derive(Debug, Clone)]
pub struct CompressedInvertedIndex<K: Ord> {
    /// Sorted keys (one per non-empty group).
    pub(crate) keys: Vec<K>,
    /// Byte offsets into `arena`; `keys.len() + 1` entries.
    pub(crate) offsets: Vec<usize>,
    /// Per-group posting count + quantization scale.
    pub(crate) meta: Vec<GroupMeta>,
    /// The single contiguous compressed arena.
    pub(crate) arena: Bytes,
    /// Total postings across all groups.
    pub(crate) posting_count: usize,
}

impl<K: Ord + Copy + std::hash::Hash + Sync> CompressedInvertedIndex<K> {
    /// Compresses a finalized [`InvertedIndex`], preserving its CSR
    /// group order. Reads the arena's bound and id columns directly —
    /// one dense `f64` run quantized, one dense `u32` run
    /// varint-encoded per group.
    ///
    /// # Panics
    /// If postings are staged (push without finalize) — the underlying
    /// iterator refuses to silently drop them — or if any bound is
    /// non-finite (unquantizable).
    pub fn compress(index: &InvertedIndex<K>) -> Self {
        let mut keys = Vec::with_capacity(index.key_count());
        let mut offsets = Vec::with_capacity(index.key_count() + 1);
        let mut meta = Vec::with_capacity(index.key_count());
        let mut buf = BytesMut::with_capacity(index.posting_count() * 4);
        offsets.push(0);
        let mut posting_count = 0usize;
        for (key, group) in index.iter() {
            let max = group.bounds.iter().copied().fold(0.0f64, f64::max);
            let quant = Quantizer::for_max(max);
            for &b in group.bounds {
                buf.put_u16_le(quant.quantize(b));
            }
            for &id in group.ids {
                put_varint(&mut buf, u64::from(id));
            }
            keys.push(key);
            offsets.push(buf.len());
            meta.push(GroupMeta {
                len: group.len() as u32,
                quant,
            });
            posting_count += group.len();
        }
        CompressedInvertedIndex {
            keys,
            offsets,
            meta,
            arena: buf.freeze(),
            posting_count,
        }
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Total postings across all groups.
    pub fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Exact heap bytes of the compressed form: arena + directory.
    pub fn size_bytes(&self) -> usize {
        self.arena.len()
            + self.keys.len() * std::mem::size_of::<K>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.meta.len() * std::mem::size_of::<GroupMeta>()
    }

    /// Length of the list for `key` (0 if absent).
    pub fn list_len(&self, key: &K) -> usize {
        match group_range(&self.keys, &self.offsets, key) {
            Some((i, _)) => self.meta[i].len as usize,
            None => 0,
        }
    }

    /// Number of postings that would qualify at threshold `c` — the
    /// quantized column cut alone, no decoding. This is the
    /// cost-model probe (`|I_c(s)|`) at compressed-column price.
    pub fn qualifying_len(&self, key: &K, c: f64) -> usize {
        match group_range(&self.keys, &self.offsets, key) {
            Some((i, range)) => {
                let m = self.meta[i];
                let len = m.len as usize;
                let bounds = &self.arena.as_slice()[range.start..range.start + 2 * len];
                quantized_cut(bounds, len, m.quant, c)
            }
            None => 0,
        }
    }

    /// Decodes the object ids of the qualifying postings `I_c(key)`
    /// into `scratch` (cleared first) and returns them as a slice —
    /// the same id-slice contract as the uncompressed
    /// [`InvertedIndex::qualifying`], with a varint decode standing in
    /// for the in-place column suffix.
    ///
    /// The cut runs over the compressed bound column in the quantized
    /// domain; only the qualifying prefix's ids are varint-decoded
    /// (bounds are never dequantized — candidates need ids only). Once
    /// `scratch` has grown to the largest qualifying prefix it is only
    /// reused — the warm path performs **zero heap allocations**.
    /// Because quantized bounds only ever round up, the result is a
    /// superset of the uncompressed index's qualifying set (never
    /// missing an answer; each bound inflated by at most one
    /// quantization step).
    pub fn qualifying_into<'a>(&self, key: &K, c: f64, scratch: &'a mut Vec<ObjId>) -> &'a [ObjId] {
        scratch.clear();
        let Some((i, range)) = group_range(&self.keys, &self.offsets, key) else {
            return &[];
        };
        let m = self.meta[i];
        let len = m.len as usize;
        let group = &self.arena.as_slice()[range];
        let bounds = &group[..2 * len];
        let cut = quantized_cut(bounds, len, m.quant, c);
        let ids = &group[2 * len..];
        let mut pos = 0usize;
        for _ in 0..cut {
            let id = get_varint(ids, &mut pos).expect("arena validated at construction");
            scratch.push(id as ObjId);
        }
        &scratch[..]
    }

    /// The largest object id in the arena (`None` when empty), decoded
    /// group by group. Load paths use this to check a deserialized
    /// index against the store it is being attached to before any
    /// probe indexes a per-object scratch table with an id.
    pub fn max_object_id(&self) -> Option<ObjId> {
        let mut max = None;
        for i in 0..self.keys.len() {
            let len = self.meta[i].len as usize;
            let group = &self.arena.as_slice()[self.offsets[i]..self.offsets[i + 1]];
            let ids = &group[2 * len..];
            let mut pos = 0usize;
            for _ in 0..len {
                let id =
                    get_varint(ids, &mut pos).expect("arena validated at construction") as ObjId;
                max = Some(max.map_or(id, |m: ObjId| m.max(id)));
            }
        }
        max
    }

    /// Decompresses the whole index back to the uncompressed columnar
    /// CSR form (bounds come back rounded up by at most one
    /// quantization step).
    pub fn decompress(&self) -> InvertedIndex<K> {
        let mut out = InvertedIndex::new();
        for (i, key) in self.keys.iter().enumerate() {
            let m = self.meta[i];
            let len = m.len as usize;
            let group = &self.arena.as_slice()[self.offsets[i]..self.offsets[i + 1]];
            let bounds = &group[..2 * len];
            let ids = &group[2 * len..];
            let mut pos = 0usize;
            for j in 0..len {
                let id = get_varint(ids, &mut pos).expect("arena validated at construction");
                out.push(*key, id as ObjId, m.quant.dequantize(column_u16(bounds, j)));
            }
        }
        out.finalize();
        out
    }
}

/// A fully compressed dual-bound hybrid index (Section 5.1's lists in
/// their at-rest form), served in place.
///
/// Same arena + directory shape as [`CompressedInvertedIndex`], with
/// two quantized bound columns per group: postings keep the
/// descending-*spatial*-bound order of [`HybridIndex::finalize`], the
/// spatial column is cut in the quantized domain, and the textual
/// bound is checked per surviving posting — also as a raw `u16`
/// compare against the lifted textual threshold — during the prefix
/// decode.
#[derive(Debug, Clone)]
pub struct CompressedHybridIndex<K: Ord> {
    /// Sorted keys (one per non-empty group).
    pub(crate) keys: Vec<K>,
    /// Byte offsets into `arena`; `keys.len() + 1` entries.
    pub(crate) offsets: Vec<usize>,
    /// Per-group posting count + the two quantization scales.
    pub(crate) meta: Vec<DualGroupMeta>,
    /// The single contiguous compressed arena.
    pub(crate) arena: Bytes,
    /// Total postings across all groups.
    pub(crate) posting_count: usize,
}

impl<K: Ord + Copy + std::hash::Hash + Sync> CompressedHybridIndex<K> {
    /// Compresses a finalized [`HybridIndex`], preserving its CSR
    /// group order. Reads the three arena columns directly.
    ///
    /// # Panics
    /// If postings are staged, or any bound is non-finite.
    pub fn compress(index: &HybridIndex<K>) -> Self {
        let mut keys = Vec::with_capacity(index.key_count());
        let mut offsets = Vec::with_capacity(index.key_count() + 1);
        let mut meta = Vec::with_capacity(index.key_count());
        let mut buf = BytesMut::with_capacity(index.posting_count() * 6);
        offsets.push(0);
        let mut posting_count = 0usize;
        for (key, group) in index.iter() {
            let smax = group.spatial_bounds.iter().copied().fold(0.0f64, f64::max);
            let tmax = group.textual_bounds.iter().copied().fold(0.0f64, f64::max);
            let spatial = Quantizer::for_max(smax);
            let textual = Quantizer::for_max(tmax);
            for &sb in group.spatial_bounds {
                buf.put_u16_le(spatial.quantize(sb));
            }
            for &tb in group.textual_bounds {
                buf.put_u16_le(textual.quantize(tb));
            }
            for &id in group.ids {
                put_varint(&mut buf, u64::from(id));
            }
            keys.push(key);
            offsets.push(buf.len());
            meta.push(DualGroupMeta {
                len: group.len() as u32,
                spatial,
                textual,
            });
            posting_count += group.len();
        }
        CompressedHybridIndex {
            keys,
            offsets,
            meta,
            arena: buf.freeze(),
            posting_count,
        }
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Total postings across all groups.
    pub fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Exact heap bytes of the compressed form: arena + directory.
    pub fn size_bytes(&self) -> usize {
        self.arena.len()
            + self.keys.len() * std::mem::size_of::<K>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.meta.len() * std::mem::size_of::<DualGroupMeta>()
    }

    /// Length of the list for `key` (0 if absent).
    pub fn list_len(&self, key: &K) -> usize {
        match group_range(&self.keys, &self.offsets, key) {
            Some((i, _)) => self.meta[i].len as usize,
            None => 0,
        }
    }

    /// Decodes the object ids of the postings qualifying under both
    /// thresholds, `I_{c_R, c_T}(key)`, into `scratch` (cleared
    /// first): a quantized-domain cut over the compressed spatial
    /// column, then a raw `u16` textual check per posting during the
    /// prefix decode. Warm calls allocate nothing once `scratch` has
    /// grown.
    pub fn qualifying_into<'a>(
        &self,
        key: &K,
        c_spatial: f64,
        c_textual: f64,
        scratch: &'a mut Vec<ObjId>,
    ) -> &'a [ObjId] {
        scratch.clear();
        let Some((i, range)) = group_range(&self.keys, &self.offsets, key) else {
            return &[];
        };
        let m = self.meta[i];
        let len = m.len as usize;
        let group = &self.arena.as_slice()[range];
        let sbounds = &group[..2 * len];
        let tbounds = &group[2 * len..4 * len];
        let cut = quantized_cut(sbounds, len, m.spatial, c_spatial);
        // Lift the textual threshold once; no step qualifies ⇒ empty.
        let Some(qt) = m.textual.quantize_threshold(c_textual) else {
            return &[];
        };
        let ids = &group[4 * len..];
        let mut pos = 0usize;
        for j in 0..cut {
            let id = get_varint(ids, &mut pos).expect("arena validated at construction");
            if column_u16(tbounds, j) >= qt {
                scratch.push(id as ObjId);
            }
        }
        &scratch[..]
    }

    /// The largest object id in the arena (`None` when empty), decoded
    /// group by group — same load-time store check as
    /// [`CompressedInvertedIndex::max_object_id`].
    pub fn max_object_id(&self) -> Option<ObjId> {
        let mut max = None;
        for i in 0..self.keys.len() {
            let len = self.meta[i].len as usize;
            let group = &self.arena.as_slice()[self.offsets[i]..self.offsets[i + 1]];
            let ids = &group[4 * len..];
            let mut pos = 0usize;
            for _ in 0..len {
                let id =
                    get_varint(ids, &mut pos).expect("arena validated at construction") as ObjId;
                max = Some(max.map_or(id, |m: ObjId| m.max(id)));
            }
        }
        max
    }

    /// Decompresses the whole index back to the uncompressed columnar
    /// CSR form (both bounds rounded up by at most one quantization
    /// step).
    pub fn decompress(&self) -> HybridIndex<K> {
        let mut out = HybridIndex::new();
        for (i, key) in self.keys.iter().enumerate() {
            let m = self.meta[i];
            let len = m.len as usize;
            let group = &self.arena.as_slice()[self.offsets[i]..self.offsets[i + 1]];
            let sbounds = &group[..2 * len];
            let tbounds = &group[2 * len..4 * len];
            let ids = &group[4 * len..];
            let mut pos = 0usize;
            for j in 0..len {
                let id = get_varint(ids, &mut pos).expect("arena validated at construction");
                out.push(
                    *key,
                    id as ObjId,
                    m.spatial.dequantize(column_u16(sbounds, j)),
                    m.textual.dequantize(column_u16(tbounds, j)),
                );
            }
        }
        out.finalize();
        out
    }
}

/// Walks one serialized group, checking that the bound columns fit,
/// the quantized primary column is non-increasing (the CSR order
/// survived), and exactly `len` varint ids ≤ `u32::MAX` follow.
/// Returns the group's byte length. Shared by the deserializers in
/// [`crate::serialize`] so the probe path can stay infallible.
pub(crate) fn validate_group(bytes: &[u8], len: usize, columns: usize) -> Option<usize> {
    let header = 2 * len * columns;
    if bytes.len() < header {
        return None;
    }
    let primary = &bytes[..2 * len];
    for j in 1..len {
        if column_u16(primary, j) > column_u16(primary, j - 1) {
            return None;
        }
    }
    let mut pos = header;
    for _ in 0..len {
        let id = get_varint(bytes, &mut pos)?;
        if id > u64::from(u32::MAX) {
            return None;
        }
    }
    Some(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index(n: u32, spread: f64) -> InvertedIndex<u64> {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for key in 0u64..8 {
            for i in 0..n {
                let hashed = i.wrapping_mul(2_654_435_761).wrapping_mul(i | 1) ^ (key as u32);
                let bound = (f64::from(hashed % 10_000) / 10_000.0) * spread;
                idx.push(key, i * 3, bound);
            }
        }
        idx.finalize();
        idx
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let frozen = buf.freeze();
        let bytes = frozen.as_slice();
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(bytes, &mut pos), Some(v));
        }
        assert_eq!(pos, bytes.len());
        assert_eq!(get_varint(&[], &mut 0), None, "empty buffer");
    }

    #[test]
    fn quantizer_rounds_up_within_one_step() {
        let q = Quantizer::for_max(1000.0);
        for b in [0.0, 0.013, 1.0, 499.9, 999.99, 1000.0] {
            let restored = q.dequantize(q.quantize(b));
            assert!(restored >= b, "{b} lowered to {restored}");
            assert!(restored - b <= 1000.0 / QUANT_STEPS + 1e-9);
        }
        // Saturation: at/above scale maps to the top step exactly.
        assert_eq!(q.quantize(1000.0), QUANT_STEPS as u16);
        assert_eq!(q.dequantize(QUANT_STEPS as u16), 1000.0);
    }

    #[test]
    fn quantizer_roundtrip_never_lands_below_the_bound() {
        // Regression: ceil in the b/scale domain can round-trip 1 ulp
        // *below* b (these exact values did), which would cut a posting
        // whose bound equals the query threshold out of the qualifying
        // prefix — a completeness violation, not just imprecision.
        let q = Quantizer::for_max(669_730.401_440_551_2);
        let b = 206_381.406_227_083_73;
        assert!(q.dequantize(q.quantize(b)) >= b);
        // And broadly, across awkward scale/bound pairs.
        for scale_bits in 1..2000u32 {
            let scale = f64::from(scale_bits) * 335.07 + 0.000_123;
            let quant = Quantizer::for_max(scale);
            for frac in [0.1, 0.30815, 0.5, 0.77777, 0.9999] {
                let bound = scale * frac;
                let restored = quant.dequantize(quant.quantize(bound));
                assert!(restored >= bound, "scale {scale} bound {bound}");
            }
        }
    }

    #[test]
    fn quantize_threshold_is_the_exact_minimal_step() {
        // The quantized-domain cut is correct iff quantize_threshold
        // returns the *smallest* q with dequantize(q) >= c — check
        // minimality and sufficiency across awkward scales.
        for scale_bits in 1..500u32 {
            let scale = f64::from(scale_bits) * 733.13 + 0.000_7;
            let quant = Quantizer::for_max(scale);
            for frac in [0.0, 1e-9, 0.1, 0.30815, 0.5, 0.77777, 0.9999, 1.0] {
                let c = scale * frac;
                let qc = quant.quantize_threshold(c).expect("c <= scale");
                assert!(quant.dequantize(qc) >= c, "insufficient step");
                if qc > 0 {
                    assert!(quant.dequantize(qc - 1) < c, "not minimal");
                }
            }
        }
        let quant = Quantizer::for_max(100.0);
        assert_eq!(quant.quantize_threshold(-5.0), Some(0));
        assert_eq!(quant.quantize_threshold(0.0), Some(0));
        assert_eq!(quant.quantize_threshold(100.0), Some(QUANT_STEPS as u16));
        assert_eq!(quant.quantize_threshold(100.1), None, "above scale");
        assert_eq!(quant.quantize_threshold(f64::NAN), None, "NaN threshold");
    }

    #[test]
    fn arena_is_single_and_contiguous() {
        let idx = sample_index(200, 50.0);
        let c = CompressedInvertedIndex::compress(&idx);
        assert_eq!(c.key_count(), idx.key_count());
        assert_eq!(c.posting_count(), idx.posting_count());
        assert_eq!(c.offsets.len(), c.keys.len() + 1);
        assert_eq!(*c.offsets.last().unwrap(), c.arena.len());
        assert!(c.offsets.windows(2).all(|w| w[0] < w[1]));
        // Keys sorted strictly ascending.
        assert!(c.keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn qualifying_matches_uncompressed_superset_within_a_step() {
        let idx = sample_index(300, 50.0);
        let c = CompressedInvertedIndex::compress(&idx);
        let mut scratch = Vec::new();
        for key in 0u64..8 {
            let step = 50.0 / QUANT_STEPS + 1e-9;
            for thr in [0.0, 1.0, 10.0, 25.0, 49.9] {
                let orig: std::collections::BTreeSet<ObjId> =
                    idx.qualifying(&key, thr).iter().copied().collect();
                let got: std::collections::BTreeSet<ObjId> = c
                    .qualifying_into(&key, thr, &mut scratch)
                    .iter()
                    .copied()
                    .collect();
                assert!(orig.is_subset(&got), "key {key} thr {thr}: lost postings");
                // Anything extra is within one quantization step of the
                // threshold.
                let relaxed: std::collections::BTreeSet<ObjId> =
                    idx.qualifying(&key, thr - step).iter().copied().collect();
                assert!(
                    got.is_subset(&relaxed),
                    "key {key} thr {thr}: over-admitted"
                );
            }
        }
    }

    #[test]
    fn qualifying_len_equals_decoded_len() {
        let idx = sample_index(150, 20.0);
        let c = CompressedInvertedIndex::compress(&idx);
        let mut scratch = Vec::new();
        for key in 0u64..8 {
            for thr in [0.0, 5.0, 19.0, 100.0] {
                assert_eq!(
                    c.qualifying_len(&key, thr),
                    c.qualifying_into(&key, thr, &mut scratch).len()
                );
            }
        }
        assert_eq!(c.qualifying_len(&999, 0.0), 0);
        assert!(c.qualifying_into(&999, 0.0, &mut scratch).is_empty());
        assert_eq!(c.list_len(&0), 150);
        assert_eq!(c.list_len(&999), 0);
    }

    #[test]
    fn scratch_is_reused_without_reallocating() {
        let idx = sample_index(500, 10.0);
        let c = CompressedInvertedIndex::compress(&idx);
        let mut scratch = Vec::new();
        // Warm: decode the largest list once (threshold 0 ⇒ full list).
        let _ = c.qualifying_into(&0, 0.0, &mut scratch);
        let cap = scratch.capacity();
        assert!(cap >= 500);
        for key in 0u64..8 {
            for thr in [0.0, 2.0, 9.0] {
                let _ = c.qualifying_into(&key, thr, &mut scratch);
            }
        }
        assert_eq!(scratch.capacity(), cap, "warm probes must not reallocate");
    }

    #[test]
    fn decompress_roundtrip_preserves_ids_and_never_lowers_bounds() {
        let idx = sample_index(400, 1000.0);
        let back = CompressedInvertedIndex::compress(&idx).decompress();
        assert_eq!(back.posting_count(), idx.posting_count());
        assert_eq!(back.key_count(), idx.key_count());
        let step = 1000.0 / QUANT_STEPS + 1e-9;
        for (key, group) in idx.iter() {
            let mut orig: Vec<(ObjId, f64)> = group.iter().map(|p| (p.object, p.bound)).collect();
            orig.sort_unstable_by_key(|(id, _)| *id);
            let mut rest: Vec<(ObjId, f64)> = back
                .list(&key)
                .unwrap()
                .iter()
                .map(|p| (p.object, p.bound))
                .collect();
            rest.sort_unstable_by_key(|(id, _)| *id);
            for ((ia, ba), (ib, bb)) in orig.iter().zip(rest.iter()) {
                assert_eq!(ia, ib);
                assert!(bb + 1e-12 >= *ba, "bound lowered: {ba} -> {bb}");
                assert!(bb - ba <= step, "bound inflated by more than a step");
            }
        }
    }

    #[test]
    fn compression_shrinks_dense_lists() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for key in 0u64..20 {
            for obj in 0..2_000u32 {
                idx.push(key, obj, f64::from(obj % 97));
            }
        }
        idx.finalize();
        let c = CompressedInvertedIndex::compress(&idx);
        assert!(
            c.size_bytes() * 2 < idx.size_bytes(),
            "compressed {} vs raw {}",
            c.size_bytes(),
            idx.size_bytes()
        );
    }

    #[test]
    fn empty_and_zero_bound_lists() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.finalize();
        let c = CompressedInvertedIndex::compress(&idx);
        assert_eq!(c.key_count(), 0);
        assert_eq!(c.posting_count(), 0);
        let mut scratch = Vec::new();
        assert!(c.qualifying_into(&1, 0.0, &mut scratch).is_empty());

        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(3, 5, 0.0);
        idx.push(3, 9, 0.0);
        idx.finalize();
        let c = CompressedInvertedIndex::compress(&idx);
        assert_eq!(c.qualifying_into(&3, 0.0, &mut scratch).len(), 2);
    }

    #[test]
    #[should_panic(expected = "requires finalize()")]
    fn staged_postings_refuse_to_compress() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 1.0);
        let _ = CompressedInvertedIndex::compress(&idx);
    }

    #[test]
    fn validate_group_accepts_built_groups_and_rejects_corruption() {
        let idx = sample_index(64, 10.0);
        let c = CompressedInvertedIndex::compress(&idx);
        for i in 0..c.keys.len() {
            let bytes = &c.arena.as_slice()[c.offsets[i]..c.offsets[i + 1]];
            assert_eq!(
                validate_group(bytes, c.meta[i].len as usize, 1),
                Some(bytes.len())
            );
            // A truncated group fails.
            assert_eq!(
                validate_group(&bytes[..bytes.len() - 1], c.meta[i].len as usize, 1),
                None
            );
        }
        // An out-of-order bound column fails.
        let bad = [0u8, 0, 255, 255, 1, 1]; // q0=0 < q1=65535, two ids
        assert_eq!(validate_group(&bad, 2, 1), None);
    }
}

#[cfg(test)]
mod dual_tests {
    use super::*;

    fn key(token: u64, cell: u64) -> u128 {
        (u128::from(token) << 64) | u128::from(cell)
    }

    fn sample_hybrid(n: u32) -> HybridIndex<u128> {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        for t in 0u64..4 {
            for g in 0u64..4 {
                for i in 0..n {
                    let h = i.wrapping_mul(2_654_435_761) ^ (t as u32) ^ ((g as u32) << 8);
                    let sb = f64::from(h % 5_000);
                    let tb = f64::from((h >> 8) % 200) / 100.0;
                    idx.push(key(t, g), i, sb, tb);
                }
            }
        }
        idx.finalize();
        idx
    }

    #[test]
    fn dual_qualifying_is_a_superset_of_uncompressed() {
        let idx = sample_hybrid(120);
        let c = CompressedHybridIndex::compress(&idx);
        assert_eq!(c.key_count(), idx.key_count());
        assert_eq!(c.posting_count(), idx.posting_count());
        let mut scratch = Vec::new();
        for t in 0u64..4 {
            for g in 0u64..4 {
                let k = key(t, g);
                for (cr, ct) in [(0.0, 0.0), (1000.0, 0.5), (4000.0, 1.5), (6000.0, 0.1)] {
                    let orig: std::collections::BTreeSet<ObjId> =
                        idx.qualifying(&k, cr, ct).collect();
                    let got: std::collections::BTreeSet<ObjId> = c
                        .qualifying_into(&k, cr, ct, &mut scratch)
                        .iter()
                        .copied()
                        .collect();
                    assert!(
                        orig.is_subset(&got),
                        "key ({t},{g}) thresholds ({cr},{ct}): lost postings"
                    );
                }
            }
        }
    }

    #[test]
    fn dual_figure9_example_survives_compression() {
        // Figure 9's lists: compression may only widen the candidate
        // sets, and here the quantization error is far below the
        // threshold gaps, so the sets are identical.
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(key(1, 10), 0, 2400.0, 1.1);
        idx.push(key(1, 10), 1, 1525.0, 1.9);
        idx.push(key(1, 14), 0, 900.0, 1.7);
        idx.push(key(1, 14), 1, 550.0, 1.9);
        idx.finalize();
        let c = CompressedHybridIndex::compress(&idx);
        let mut scratch = Vec::new();
        assert_eq!(
            c.qualifying_into(&key(1, 14), 600.0, 0.57, &mut scratch),
            &[0]
        );
        assert_eq!(
            c.qualifying_into(&key(1, 10), 600.0, 0.57, &mut scratch),
            &[0, 1]
        );
    }

    #[test]
    fn dual_decompress_roundtrip() {
        let idx = sample_hybrid(60);
        let back = CompressedHybridIndex::compress(&idx).decompress();
        assert_eq!(back.posting_count(), idx.posting_count());
        for t in 0u64..4 {
            let k = key(t, 0);
            let orig: Vec<ObjId> = idx.qualifying(&k, 0.0, 0.0).collect();
            let rest: Vec<ObjId> = back.qualifying(&k, 0.0, 0.0).collect();
            assert_eq!(orig, rest, "full-list order must survive");
        }
    }

    #[test]
    fn dual_compression_shrinks() {
        let idx = sample_hybrid(500);
        let c = CompressedHybridIndex::compress(&idx);
        assert!(
            c.size_bytes() * 2 < idx.size_bytes(),
            "compressed {} vs raw {}",
            c.size_bytes(),
            idx.size_bytes()
        );
    }

    #[test]
    fn dual_textual_threshold_above_scale_prunes_everything() {
        let idx = sample_hybrid(40);
        let c = CompressedHybridIndex::compress(&idx);
        let mut scratch = Vec::new();
        // Textual bounds max out below 2.0 in the sample; a threshold
        // far above every scale must lift to None and return nothing.
        assert!(c
            .qualifying_into(&key(0, 0), 0.0, 1e9, &mut scratch)
            .is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_superset_property(
            entries in proptest::collection::vec(
                (0u64..16, 0u32..1_000_000, 0.0f64..1e6), 0..300),
            c in 0.0f64..1e6,
        ) {
            let mut idx: InvertedIndex<u64> = InvertedIndex::new();
            let mut seen = std::collections::HashSet::new();
            for (k, id, b) in entries {
                if seen.insert((k, id)) {
                    idx.push(k, id, b);
                }
            }
            idx.finalize();
            let compressed = CompressedInvertedIndex::compress(&idx);
            let mut scratch = Vec::new();
            for key in 0u64..16 {
                let orig: std::collections::BTreeSet<ObjId> =
                    idx.qualifying(&key, c).iter().copied().collect();
                let got: std::collections::BTreeSet<ObjId> = compressed
                    .qualifying_into(&key, c, &mut scratch)
                    .iter()
                    .copied()
                    .collect();
                prop_assert!(orig.is_subset(&got));
            }
        }

        #[test]
        fn quantized_cut_equals_dequantized_reference(
            bounds in proptest::collection::vec(0.0f64..1e5, 1..300),
            frac in 0.0f64..1.2,
        ) {
            // The quantized-domain cut must agree bit-for-bit with the
            // reference comparison `dequantize(entry) >= c`.
            let mut idx: InvertedIndex<u64> = InvertedIndex::new();
            for (i, b) in bounds.iter().enumerate() {
                idx.push(1, i as u32, *b);
            }
            idx.finalize();
            let compressed = CompressedInvertedIndex::compress(&idx);
            let m = compressed.meta[0];
            let len = m.len as usize;
            let col = &compressed.arena.as_slice()[..2 * len];
            let c = m.quant.scale() * frac;
            let reference = (0..len)
                .take_while(|&j| m.quant.dequantize(column_u16(col, j)) >= c)
                .count();
            prop_assert_eq!(compressed.qualifying_len(&1, c), reference);
        }
    }
}
