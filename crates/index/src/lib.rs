//! # seal-index — threshold-bounded inverted indexes for SEAL
//!
//! SEAL's filtering algorithms (Sections 3–5 of the paper) all run on
//! inverted indexes whose posting lists are *augmented with threshold
//! bounds* (Lemma 3): each posting `(o, c_s(o))` stores the maximum
//! signature-similarity threshold for which element `s` still lies in
//! `o`'s signature prefix. Lists are sorted in **descending bound
//! order**, so, given a query threshold `c`, the qualifying postings
//! `I_c(s) = {o ∈ I(s) | c_s(o) ≥ c}` are exactly a list prefix that a
//! binary search finds in `O(log n)` — the "Inverted Index with
//! Threshold Bounds" of Section 4.2.
//!
//! The crate provides:
//!
//! * [`Posting`] / [`BoundedPostingList`] — single-bound lists for the
//!   textual filter (`TokenInv`) and the grid filter (`GridInv`).
//! * [`DualPosting`] — the hybrid postings of Section 5.1 (`HashInv`,
//!   `HierarchicalInv`) carrying both a spatial and a textual bound;
//!   pruned if *either* falls below its threshold.
//! * [`InvertedIndex`] / [`HybridIndex`] — keyed collections of the
//!   above with byte-level size accounting (Table 1 reports index
//!   sizes) and binary serialization.
//! * [`CompressedInvertedIndex`] / [`CompressedHybridIndex`] — the
//!   same lists in one compressed arena (quantized bound columns +
//!   varint ids), served in place through a caller-owned scratch
//!   buffer; see [`compress`] for the layout
//!   contract.
//!
//! Object identifiers are bare `u32`s here ([`ObjId`]); the `seal-core`
//! crate wraps them in its typed `ObjectId`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
mod csr;
mod hybrid;
mod inverted;
mod list;
pub mod parallel;
mod posting;
mod serialize;

pub use compress::{CompressedHybridIndex, CompressedInvertedIndex};
pub use hybrid::HybridIndex;
pub use inverted::InvertedIndex;
pub use list::BoundedPostingList;
pub use posting::{DualPosting, Posting};
pub use serialize::{IndexCodecError, IndexKey};

/// A dense object identifier (row number in the object store).
pub type ObjId = u32;
