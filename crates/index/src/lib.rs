//! # seal-index — threshold-bounded inverted indexes for SEAL
//!
//! SEAL's filtering algorithms (Sections 3–5 of the paper) all run on
//! inverted indexes whose posting lists are *augmented with threshold
//! bounds* (Lemma 3): each posting `(o, c_s(o))` stores the maximum
//! signature-similarity threshold for which element `s` still lies in
//! `o`'s signature prefix. Lists are sorted in **descending bound
//! order**, so, given a query threshold `c`, the qualifying postings
//! `I_c(s) = {o ∈ I(s) | c_s(o) ≥ c}` are exactly a list prefix that a
//! binary search finds in `O(log n)` — the "Inverted Index with
//! Threshold Bounds" of Section 4.2.
//!
//! The crate provides:
//!
//! * [`InvertedIndex`] / [`HybridIndex`] — keyed posting collections
//!   frozen into **columnar (structure-of-arrays) arenas**: one id
//!   column plus one (or two) bound columns per arena, so the
//!   qualifying cut scans a dense bound column ([`bound_cut`], chunked
//!   and auto-vectorizable) and returns ids straight from the id
//!   column. Byte-level size accounting (Table 1 reports index sizes)
//!   and binary serialization included.
//! * [`Posting`] / [`DualPosting`] — the logical posting structs, used
//!   for staging/sorting and as materialized rows of the columnar
//!   views ([`PostingsView`] / [`DualPostingsView`]).
//! * [`BoundedPostingList`] — a standalone single-bound list in the
//!   same columnar form.
//! * [`CompressedInvertedIndex`] / [`CompressedHybridIndex`] — the
//!   same lists in one compressed arena (quantized `u16` bound
//!   columns + an id column per [`IdCodec`]: delta-coded bit-packed
//!   128-id blocks by default, legacy varints for old files), served
//!   in place through a caller-owned id scratch buffer; see
//!   [`compress`] for the layout contract.
//! * [`bound_cut`] — the one shared qualifying-cut path: every probe
//!   (uncompressed, compressed, standalone list) goes through it or
//!   its quantized twin.
//!
//! Object identifiers are bare `u32`s here ([`ObjId`]); the `seal-core`
//! crate wraps them in its typed `ObjectId`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod columns;
pub mod compress;
pub mod container;
mod csr;
mod hybrid;
mod inverted;
mod list;
pub mod parallel;
mod posting;
mod serialize;

pub use columns::{DualPostingsView, PostingsView};
pub use compress::{CompressedHybridIndex, CompressedInvertedIndex, IdCodec};
pub use container::{stream_file, Container, ContainerError, ContainerWriter, RawSections};
pub use csr::bound_cut;
pub use hybrid::HybridIndex;
pub use inverted::InvertedIndex;
pub use list::BoundedPostingList;
pub use posting::{DualPosting, Posting};
pub use serialize::{IndexCodecError, IndexKey};

/// A dense object identifier (row number in the object store).
pub type ObjId = u32;
