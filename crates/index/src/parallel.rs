//! Build-side thread pool: the atomic-counter work-stealing loop the
//! query path uses (`SealEngine::search_batch`), packaged for *build*
//! work — per-token `HSS-Greedy` selections, per-group staged sorts
//! inside `finalize`, and any other embarrassingly parallel fan-out.
//!
//! No external dependencies: plain `std::thread::scope` workers pulling
//! task indexes from a shared [`AtomicUsize`]. Skewed per-task costs
//! (Zipf token frequencies make some groups orders of magnitude larger
//! than others) therefore cannot idle a thread the way static chunking
//! can. With one thread (or fewer than two tasks) every helper
//! degenerates to a plain sequential loop — no threads spawned, no
//! synchronization touched — so `threads = 1` is always safe to call
//! from inside another worker.
//!
//! Determinism contract: each task index is claimed by exactly one
//! worker and the task function sees only its own index, so any
//! deterministic per-task function produces results independent of the
//! thread count — the property `bench_build` and the parallel-build
//! determinism tests assert end to end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a requested thread count: `0` means "use every core"
/// (`std::thread::available_parallelism`), anything else is taken
/// literally. Always returns at least 1.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// The effective worker count for `tasks` parallel tasks: `requested`
/// resolves through [`resolve_threads`] (`0` = one worker per core),
/// then clamps to the task count and to at least one.
///
/// This is the **single** thread-count rule for every fan-out in the
/// workspace — the work-stealing loops below and `seal-core`'s
/// `search_batch` all route through it, so the "0 means all cores"
/// convention cannot drift between the build side and the query side
/// again.
pub fn worker_count(requested: usize, tasks: usize) -> usize {
    resolve_threads(requested).clamp(1, tasks.max(1))
}

/// Runs `task(i)` for every `i in 0..count` across `threads` workers
/// (work stealing over a shared atomic counter). Each index is claimed
/// by exactly one worker. `threads <= 1` or `count < 2` runs inline on
/// the calling thread.
pub fn for_each_index(count: usize, threads: usize, task: impl Fn(usize) + Sync) {
    let threads = worker_count(threads, count);
    if threads <= 1 || count < 2 {
        for i in 0..count {
            task(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                task(i);
            });
        }
    });
}

/// Maps `f` over `0..count` across `threads` workers and returns the
/// results in index order. The work-stealing loop guarantees every
/// index is computed exactly once, so the output is identical to the
/// sequential `(0..count).map(f).collect()` whenever `f` is
/// deterministic — only wall-clock time depends on `threads`.
pub fn map_indexed<T: Send>(count: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = worker_count(threads, count);
    if threads <= 1 || count < 2 {
        return (0..count).map(f).collect();
    }
    // Mutex<Option<T>> rather than OnceLock<T>: it is Sync for any
    // T: Send, and each slot is written exactly once by the worker
    // that claimed its index, so the locks are uncontended.
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    for_each_index(count, threads, |i| {
        *slots[i].lock().expect("slot write cannot poison") = Some(f(i));
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot write cannot poison")
                .expect("every slot filled by the work loop")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn worker_count_clamps_to_tasks() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(worker_count(0, 1000), cores.min(1000));
        assert_eq!(worker_count(8, 3), 3);
        assert_eq!(worker_count(1, 100), 1);
        assert_eq!(worker_count(4, 0), 1);
        assert_eq!(worker_count(0, 0), 1);
    }

    #[test]
    fn for_each_visits_every_index_once() {
        for threads in [1usize, 2, 8] {
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            for_each_index(hits.len(), threads, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_results_come_back_in_index_order() {
        for threads in [1usize, 3, 16] {
            let out = map_indexed(257, threads, |i| i * i);
            assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_task_are_fine() {
        for_each_index(0, 4, |_| panic!("no tasks"));
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i + 1), vec![1]);
    }
}
