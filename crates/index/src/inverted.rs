//! Keyed inverted index over threshold-bounded postings, stored as
//! parallel id/bound columns in a single contiguous arena (columnar
//! CSR layout) once finalized.

use crate::columns::{PostingsView, SingleColumns};
use crate::csr::CsrCore;
use crate::{ObjId, Posting};
use serde::{Deserialize, Serialize};
use std::hash::Hash;

/// An inverted index: signature element → threshold-bounded posting
/// list. Keys are `u64`-like packed signature elements (token ids, grid
/// cell ids, or hashed hybrid elements).
///
/// # Layout
///
/// A thin wrapper over the shared frozen-CSR container: one id column
/// and one bound column (structure-of-arrays), plus a sorted key table
/// with row offsets. [`finalize`](InvertedIndex::finalize) sorts each
/// per-key group in **descending bound order** (ties broken by object
/// id for determinism), so the qualifying prefix `I_c(k)` of Lemma 3
/// is one [`bound_cut`](crate::bound_cut) of the group's span of the
/// bound column, and [`qualifying`](InvertedIndex::qualifying) returns
/// the matching span of the **id column** — the probe never touches a
/// byte it does not use.
///
/// The paper keeps inverted lists on disk with an in-memory offset map;
/// we keep everything in memory but report exact byte sizes of the
/// arena layout via [`size_bytes`](InvertedIndex::size_bytes) so
/// Table 1's relative index sizes can be reproduced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedIndex<K: Eq + Hash + Ord> {
    core: CsrCore<K, SingleColumns>,
}

impl<K: Eq + Hash + Ord + Copy> Default for InvertedIndex<K> {
    fn default() -> Self {
        InvertedIndex {
            core: CsrCore::default(),
        }
    }
}

fn cmp_posting(a: &Posting, b: &Posting) -> std::cmp::Ordering {
    crate::csr::desc_f64(a.bound, b.bound).then(a.object.cmp(&b.object))
}

impl<K: Eq + Hash + Ord + Copy + Sync> InvertedIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a posting for `key`. Not visible to queries until
    /// [`finalize`](Self::finalize).
    ///
    /// # Panics
    /// If `bound` is NaN: a NaN bound would poison the descending sort
    /// and break every bound cut, so it is rejected here, at insert
    /// time, rather than corrupting queries later.
    pub fn push(&mut self, key: K, object: ObjId, bound: f64) {
        crate::csr::check_bound(bound, "bound");
        self.core.push(key, Posting::new(object, bound));
    }

    /// Compacts all postings into the contiguous columnar arena
    /// (groups in descending bound order). Must be called after the
    /// last [`push`](Self::push) and before querying; pushing after a
    /// finalize and re-finalizing **merges** the new postings in —
    /// only the staged postings are sorted, frozen groups are merged,
    /// never re-sorted, so streaming push → finalize cycles pay for
    /// the delta rather than the whole index.
    pub fn finalize(&mut self) {
        self.core.finalize(cmp_posting);
    }

    /// [`finalize`](Self::finalize) with the staged per-group sorts
    /// fanned out over `threads` workers (0 = all cores). The result
    /// is bit-identical for every thread count; only build wall-clock
    /// changes.
    pub fn finalize_with_threads(&mut self, threads: usize) {
        self.core.finalize_with_threads(cmp_posting, threads);
    }

    /// Rebuilds a frozen index from validated columnar parts (the SoA
    /// codec's direct load path — `crate::serialize` has already
    /// checked every CSR invariant).
    pub(crate) fn from_frozen_parts(
        keys: Vec<K>,
        offsets: Vec<usize>,
        arena: SingleColumns,
    ) -> Self {
        InvertedIndex {
            core: CsrCore::from_frozen(keys, offsets, arena),
        }
    }

    /// True when every pushed posting is in the frozen arena (no
    /// staged postings awaiting [`finalize`](Self::finalize)).
    pub fn is_finalized(&self) -> bool {
        self.core.is_finalized()
    }

    /// The generation of the frozen arena: 0 before the first
    /// finalize, then +1 for every finalize that folded staged
    /// postings in (no-op finalizes do not count). Generation-swapping
    /// serving layers use this to name the arena a reader snapshot
    /// captured.
    pub fn generation(&self) -> u64 {
        self.core.generation()
    }

    /// The sorted keys the most recent folding finalize touched —
    /// every other group's arena bytes are identical to the previous
    /// generation's. Incremental re-encoders
    /// ([`crate::CompressedInvertedIndex::recompress`]) re-pack only
    /// these groups. Empty before the first finalize and after a
    /// codec load (provenance unknown).
    pub fn last_folded_keys(&self) -> &[K] {
        self.core.last_folded_keys()
    }

    /// Generation-aware re-finalize: merges any staged postings into
    /// the frozen arena ([`finalize_with_threads`]
    /// semantics — staged-only sorts, frozen groups merged, never
    /// re-sorted) and returns the generation now being served.
    ///
    /// The streaming entry point for callers whose posting bounds do
    /// **not** shift with the corpus (externally managed weights,
    /// uniform weights, raw spatial areas): push a delta, call this,
    /// and the returned generation names the new frozen arena. The
    /// engine-level `LiveEngine` cannot use it for its signature
    /// indexes — idf-derived bounds change with every corpus change,
    /// so its refresh rebuilds postings — but its generation counter
    /// follows the same "one bump per folding freeze" convention.
    ///
    /// [`finalize_with_threads`]: Self::finalize_with_threads
    pub fn refinalize_generation(&mut self, threads: usize) -> u64 {
        self.finalize_with_threads(threads);
        self.core.generation()
    }

    /// The full list for a key, if any, as a columnar view
    /// (descending bound order).
    pub fn list(&self, key: &K) -> Option<PostingsView<'_>> {
        let span = self.core.group_span(key)?;
        let a = self.core.arena();
        Some(PostingsView {
            ids: &a.ids[span.clone()],
            bounds: &a.bounds[span],
        })
    }

    /// The object ids of the qualifying postings `I_c(key)` (empty
    /// slice if the key is absent): one [`bound_cut`](crate::bound_cut)
    /// over the group's bound column, then the matching prefix of the
    /// id column — returned in place, no copy, no struct striding.
    #[inline]
    pub fn qualifying(&self, key: &K, c: f64) -> &[ObjId] {
        debug_assert!(self.core.is_finalized(), "query on non-finalized index");
        match self.core.group_span(key) {
            Some(span) => {
                let a = self.core.arena();
                let cut = crate::csr::bound_cut(&a.bounds[span.clone()], c);
                &a.ids[span.start..span.start + cut]
            }
            None => &[],
        }
    }

    /// `|I_c(key)|` — the qualifying-prefix length without touching
    /// the id column at all (the §4.3 cost-model probe): the chunked
    /// [`bound_cut`](crate::bound_cut) over the bound column alone.
    #[inline]
    pub fn qualifying_len(&self, key: &K, c: f64) -> usize {
        debug_assert!(self.core.is_finalized(), "query on non-finalized index");
        match self.core.group_span(key) {
            Some(span) => crate::csr::bound_cut(&self.core.arena().bounds[span], c),
            None => 0,
        }
    }

    /// Number of distinct keys (frozen plus staged).
    pub fn key_count(&self) -> usize {
        self.core.key_count()
    }

    /// Total number of postings across all lists.
    pub fn posting_count(&self) -> usize {
        self.core.posting_count()
    }

    /// Length of the **frozen** list for `key` (0 if absent) — the
    /// `|I(g)|` used by the cost model of Section 4.3. Matches exactly
    /// what a probe can scan: postings staged since the last
    /// [`finalize`](Self::finalize) are not counted, because
    /// [`qualifying`](Self::qualifying) cannot return them.
    pub fn list_len(&self, key: &K) -> usize {
        self.core.group_span(key).map(|s| s.len()).unwrap_or(0)
    }

    /// Exact heap size in bytes of the frozen layout: the id and bound
    /// columns plus the key table and CSR offsets (plus any staged
    /// postings not yet folded in).
    pub fn size_bytes(&self) -> usize {
        self.core.size_bytes()
    }

    /// The largest object id in the **frozen** arena (`None` when
    /// empty). Load paths use this to check a deserialized index
    /// against the store it is being attached to before any probe
    /// indexes a per-object scratch table with an id.
    pub fn max_object_id(&self) -> Option<ObjId> {
        self.core.arena().ids.iter().copied().max()
    }

    /// Iterates `(key, group view)` in ascending key order.
    ///
    /// # Panics
    /// If postings are staged (push without a following
    /// [`finalize`](Self::finalize)): iteration sees only the frozen
    /// arena and would silently drop the staged postings.
    pub fn iter(&self) -> impl Iterator<Item = (K, PostingsView<'_>)> + '_ {
        let a = self.core.arena();
        self.core.iter_spans().map(move |(k, span)| {
            (
                k,
                PostingsView {
                    ids: &a.ids[span.clone()],
                    bounds: &a.bounds[span],
                },
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe() {
        // Figure 4's textual inverted index (keys are token ids).
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        // t4 -> {o3, o6}
        idx.push(4, 2, 1.3);
        idx.push(4, 5, 1.3);
        // t1 -> {o1, o2, o5}
        idx.push(1, 0, 1.9);
        idx.push(1, 1, 1.9);
        idx.push(1, 4, 1.7);
        idx.finalize();
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.posting_count(), 5);
        assert_eq!(idx.list_len(&4), 2);
        assert_eq!(idx.list_len(&99), 0);
        assert_eq!(idx.qualifying(&1, 1.8), &[0, 1]);
        assert_eq!(idx.qualifying_len(&1, 1.8), 2);
        assert!(idx.qualifying(&99, 0.0).is_empty());
        assert_eq!(idx.qualifying_len(&99, 0.0), 0);
    }

    #[test]
    fn size_bytes_grows_with_postings() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        let empty = idx.size_bytes();
        idx.push(1, 0, 1.0);
        idx.push(1, 1, 1.0);
        idx.push(2, 0, 1.0);
        assert!(idx.size_bytes() > empty);
        assert_eq!(idx.posting_count(), 3);
    }

    #[test]
    fn iter_covers_all_keys() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(10, 0, 1.0);
        idx.push(20, 1, 2.0);
        idx.finalize();
        let keys: Vec<u64> = idx.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![10, 20], "iteration is key-sorted");
    }

    #[test]
    fn arena_is_contiguous_and_grouped() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for key in [3u64, 1, 2] {
            for obj in 0..4u32 {
                idx.push(key, obj, f64::from(obj));
            }
        }
        idx.finalize();
        // Groups come back in key order with descending bounds, and
        // every view's columns are row-aligned.
        let groups: Vec<(u64, Vec<f64>)> =
            idx.iter().map(|(k, v)| (k, v.bounds.to_vec())).collect();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, 1);
        assert_eq!(groups[2].0, 3);
        for (_, bounds) in &groups {
            assert!(bounds.windows(2).all(|w| w[0] >= w[1]));
        }
        for (_, v) in idx.iter() {
            assert_eq!(v.ids.len(), v.bounds.len(), "columns row-aligned");
        }
        // Total column size equals the posting count: one arena.
        let total: usize = idx.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, idx.posting_count());
    }

    #[test]
    fn qualifying_returns_the_id_column_prefix() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 9, 3.0);
        idx.push(1, 4, 2.0);
        idx.push(1, 7, 1.0);
        idx.finalize();
        let view = idx.list(&1).unwrap();
        assert_eq!(view.ids, &[9, 4, 7]);
        assert_eq!(view.bounds, &[3.0, 2.0, 1.0]);
        let q = idx.qualifying(&1, 2.0);
        assert_eq!(q, &view.ids[..2], "prefix of the id column, in place");
        assert_eq!(idx.qualifying_len(&1, 2.0), q.len());
    }

    #[test]
    fn push_after_finalize_merges_on_refinalize() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 5.0);
        idx.finalize();
        assert!(idx.is_finalized());
        idx.push(1, 1, 9.0);
        idx.push(2, 2, 1.0);
        assert!(!idx.is_finalized());
        idx.finalize();
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.posting_count(), 3);
        assert_eq!(
            idx.qualifying(&1, 0.0),
            &[1, 0],
            "merged list re-sorted by bound"
        );
    }

    #[test]
    #[should_panic(expected = "NaN bound rejected at insert time")]
    fn nan_bound_rejected_at_insert() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, f64::NAN);
    }

    #[test]
    fn refinalize_generation_tracks_folding_freezes() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        assert_eq!(idx.generation(), 0);
        idx.push(1, 0, 1.0);
        assert_eq!(idx.refinalize_generation(1), 1);
        // Nothing staged: the freeze is a no-op and the generation —
        // and therefore the served arena — is unchanged.
        assert_eq!(idx.refinalize_generation(4), 1);
        idx.push(1, 1, 2.0);
        assert_eq!(idx.refinalize_generation(0), 2);
        assert_eq!(idx.generation(), 2);
        assert_eq!(idx.list_len(&1), 2);
    }

    #[test]
    fn list_len_counts_only_queryable_postings() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 1.0);
        idx.finalize();
        idx.push(1, 1, 2.0); // staged, invisible to probes
        assert_eq!(idx.list_len(&1), 1, "staged posting not counted");
        assert_eq!(idx.list_len(&1), idx.list(&1).unwrap().len());
        idx.finalize();
        assert_eq!(idx.list_len(&1), 2);
    }
}
