//! Keyed inverted index over [`BoundedPostingList`]s.

use crate::{BoundedPostingList, ObjId, Posting};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// An inverted index: signature element → threshold-bounded posting
/// list. Keys are `u64`-like packed signature elements (token ids, grid
/// cell ids, or hashed hybrid elements).
///
/// The paper keeps inverted lists on disk with an in-memory offset map;
/// we keep everything in memory but report exact byte sizes via
/// [`size_bytes`](InvertedIndex::size_bytes) so Table 1's relative index
/// sizes can be reproduced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedIndex<K: Eq + Hash> {
    lists: HashMap<K, BoundedPostingList>,
    posting_count: usize,
}

impl<K: Eq + Hash + Copy> Default for InvertedIndex<K> {
    fn default() -> Self {
        InvertedIndex {
            lists: HashMap::new(),
            posting_count: 0,
        }
    }
}

impl<K: Eq + Hash + Copy> InvertedIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a posting for `key`.
    pub fn push(&mut self, key: K, object: ObjId, bound: f64) {
        self.lists.entry(key).or_default().push(object, bound);
        self.posting_count += 1;
    }

    /// Finalizes all lists (sorts by descending bound). Must be called
    /// after the last [`push`](Self::push) and before querying.
    pub fn finalize(&mut self) {
        for list in self.lists.values_mut() {
            list.finalize();
        }
    }

    /// The full list for a key, if any.
    pub fn list(&self, key: &K) -> Option<&BoundedPostingList> {
        self.lists.get(key)
    }

    /// The qualifying postings `I_c(key)` (empty slice if the key is
    /// absent).
    pub fn qualifying(&self, key: &K, c: f64) -> &[Posting] {
        self.lists
            .get(key)
            .map(|l| l.qualifying(c))
            .unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.lists.len()
    }

    /// Total number of postings across all lists.
    pub fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Length of the list for `key` (0 if absent) — the `|I(g)|` used by
    /// the cost model of Section 4.3.
    pub fn list_len(&self, key: &K) -> usize {
        self.lists.get(key).map(|l| l.len()).unwrap_or(0)
    }

    /// Approximate heap size in bytes: postings plus per-key map
    /// overhead.
    pub fn size_bytes(&self) -> usize {
        let posting_bytes: usize = self.lists.values().map(|l| l.size_bytes()).sum();
        let key_bytes = self.lists.len()
            * (std::mem::size_of::<K>() + std::mem::size_of::<BoundedPostingList>());
        posting_bytes + key_bytes
    }

    /// Iterates `(key, list)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &BoundedPostingList)> {
        self.lists.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe() {
        // Figure 4's textual inverted index (keys are token ids).
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        // t4 -> {o3, o6}
        idx.push(4, 2, 1.3);
        idx.push(4, 5, 1.3);
        // t1 -> {o1, o2, o5}
        idx.push(1, 0, 1.9);
        idx.push(1, 1, 1.9);
        idx.push(1, 4, 1.7);
        idx.finalize();
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.posting_count(), 5);
        assert_eq!(idx.list_len(&4), 2);
        assert_eq!(idx.list_len(&99), 0);
        let q = idx.qualifying(&1, 1.8);
        let ids: Vec<ObjId> = q.iter().map(|p| p.object).collect();
        assert_eq!(ids, vec![0, 1]);
        assert!(idx.qualifying(&99, 0.0).is_empty());
    }

    #[test]
    fn size_bytes_grows_with_postings() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        let empty = idx.size_bytes();
        idx.push(1, 0, 1.0);
        idx.push(1, 1, 1.0);
        idx.push(2, 0, 1.0);
        assert!(idx.size_bytes() > empty);
        assert_eq!(idx.posting_count(), 3);
    }

    #[test]
    fn iter_covers_all_keys() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(10, 0, 1.0);
        idx.push(20, 1, 2.0);
        idx.finalize();
        let mut keys: Vec<u64> = idx.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![10, 20]);
    }
}
