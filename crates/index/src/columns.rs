//! Columnar (structure-of-arrays) posting storage — the frozen-arena
//! form behind [`crate::InvertedIndex`] and [`crate::HybridIndex`].
//!
//! The paper's pruning rule is a threshold cut over a *bound* column
//! (`bound ≥ c`); everything else a probe touches is the *id* column.
//! Storing postings as an array of structs interleaves the two, so a
//! `partition_point` probe strides over ids it never reads and a
//! qualifying-prefix copy strides over bounds it never reads. The
//! frozen arenas therefore keep **parallel columns**:
//!
//! ```text
//! single-bound: ids: [o0, o1, ...]        bounds:  [b0, b1, ...]
//! dual-bound:   ids: [o0, o1, ...]        spatial: [s0, s1, ...]
//!                                         textual: [t0, t1, ...]
//! ```
//!
//! Row `j` of every column belongs to the same posting. The bound
//! column is a dense `f64` run the chunked scan in
//! [`crate::bound_cut`] can compare 16-per-iteration, and the id
//! column is a dense `u32` run a qualifying prefix can be returned
//! from (uncompressed) or memcpy'd out of (scratch decode) without
//! touching a single bound.
//!
//! Staged postings (between `push` and `finalize`) remain ordinary
//! structs ([`Posting`] / [`DualPosting`]) — sorting small staged runs
//! as structs is simpler and the staging map is never probed. The
//! [`PostingColumns`] trait is the bridge: the shared CSR machinery
//! sorts/merges *items* while splicing *columns*.

use crate::{DualPosting, ObjId, Posting};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A columnar posting store the CSR core can splice: append items,
/// copy ranges from another store of the same shape, and account for
/// heap use. Implemented by [`SingleColumns`], [`DualColumns`], and —
/// for tests and degenerate single-column uses — any `Vec<T>`.
pub(crate) trait PostingColumns: Default + Clone + std::fmt::Debug + Send + Sync {
    /// The logical posting a row represents (the staging/sort unit).
    type Item: Copy + Send + Sync;

    /// Number of rows.
    fn len(&self) -> usize;

    /// A store with room for `n` rows in every column.
    fn with_capacity(n: usize) -> Self;

    /// Materializes row `i` as an item (merge comparisons only — the
    /// probe path never materializes items).
    fn get(&self, i: usize) -> Self::Item;

    /// Appends one item as a new row.
    fn push_item(&mut self, item: Self::Item);

    /// Appends `src[range]` column-by-column (bulk copies, no
    /// per-item work).
    fn extend_from_range(&mut self, src: &Self, range: Range<usize>);

    /// Appends a run of items (a sorted staged group).
    fn extend_from_items(&mut self, items: &[Self::Item]);

    /// Trims every column's capacity to its length.
    fn shrink_to_fit(&mut self);

    /// Capacity-based heap bytes across all columns.
    fn heap_bytes(&self) -> usize;
}

/// Degenerate single-column store: lets the CSR machinery be exercised
/// (and tested) with plain values.
impl<T: Copy + Send + Sync + std::fmt::Debug> PostingColumns for Vec<T> {
    type Item = T;

    fn len(&self) -> usize {
        Vec::len(self)
    }

    fn with_capacity(n: usize) -> Self {
        Vec::with_capacity(n)
    }

    fn get(&self, i: usize) -> T {
        self[i]
    }

    fn push_item(&mut self, item: T) {
        self.push(item);
    }

    fn extend_from_range(&mut self, src: &Self, range: Range<usize>) {
        self.extend_from_slice(&src[range]);
    }

    fn extend_from_items(&mut self, items: &[T]) {
        self.extend_from_slice(items);
    }

    fn shrink_to_fit(&mut self) {
        Vec::shrink_to_fit(self);
    }

    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

/// The single-bound frozen arena: one id column, one bound column.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct SingleColumns {
    /// Object ids, row-aligned with `bounds`.
    pub(crate) ids: Vec<ObjId>,
    /// Threshold bounds (non-increasing within each finalized group).
    pub(crate) bounds: Vec<f64>,
}

impl PostingColumns for SingleColumns {
    type Item = Posting;

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn with_capacity(n: usize) -> Self {
        SingleColumns {
            ids: Vec::with_capacity(n),
            bounds: Vec::with_capacity(n),
        }
    }

    fn get(&self, i: usize) -> Posting {
        Posting::new(self.ids[i], self.bounds[i])
    }

    fn push_item(&mut self, item: Posting) {
        self.ids.push(item.object);
        self.bounds.push(item.bound);
    }

    fn extend_from_range(&mut self, src: &Self, range: Range<usize>) {
        self.ids.extend_from_slice(&src.ids[range.clone()]);
        self.bounds.extend_from_slice(&src.bounds[range]);
    }

    fn extend_from_items(&mut self, items: &[Posting]) {
        self.ids.extend(items.iter().map(|p| p.object));
        self.bounds.extend(items.iter().map(|p| p.bound));
    }

    fn shrink_to_fit(&mut self) {
        self.ids.shrink_to_fit();
        self.bounds.shrink_to_fit();
    }

    fn heap_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<ObjId>()
            + self.bounds.capacity() * std::mem::size_of::<f64>()
    }
}

/// The dual-bound frozen arena: one id column, two bound columns.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct DualColumns {
    /// Object ids, row-aligned with both bound columns.
    pub(crate) ids: Vec<ObjId>,
    /// Spatial bounds (non-increasing within each finalized group —
    /// the cut axis).
    pub(crate) spatial: Vec<f64>,
    /// Textual bounds (checked per surviving row, unordered).
    pub(crate) textual: Vec<f64>,
}

impl PostingColumns for DualColumns {
    type Item = DualPosting;

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn with_capacity(n: usize) -> Self {
        DualColumns {
            ids: Vec::with_capacity(n),
            spatial: Vec::with_capacity(n),
            textual: Vec::with_capacity(n),
        }
    }

    fn get(&self, i: usize) -> DualPosting {
        DualPosting::new(self.ids[i], self.spatial[i], self.textual[i])
    }

    fn push_item(&mut self, item: DualPosting) {
        self.ids.push(item.object);
        self.spatial.push(item.spatial_bound);
        self.textual.push(item.textual_bound);
    }

    fn extend_from_range(&mut self, src: &Self, range: Range<usize>) {
        self.ids.extend_from_slice(&src.ids[range.clone()]);
        self.spatial.extend_from_slice(&src.spatial[range.clone()]);
        self.textual.extend_from_slice(&src.textual[range]);
    }

    fn extend_from_items(&mut self, items: &[DualPosting]) {
        self.ids.extend(items.iter().map(|p| p.object));
        self.spatial.extend(items.iter().map(|p| p.spatial_bound));
        self.textual.extend(items.iter().map(|p| p.textual_bound));
    }

    fn shrink_to_fit(&mut self) {
        self.ids.shrink_to_fit();
        self.spatial.shrink_to_fit();
        self.textual.shrink_to_fit();
    }

    fn heap_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<ObjId>()
            + (self.spatial.capacity() + self.textual.capacity()) * std::mem::size_of::<f64>()
    }
}

/// Columnar view of one single-bound posting group: row `j` of `ids`
/// and `bounds` describe the same posting. Returned by
/// [`InvertedIndex::list`](crate::InvertedIndex::list) and
/// [`InvertedIndex::iter`](crate::InvertedIndex::iter); consumers read
/// whichever column they need instead of striding over interleaved
/// structs.
#[derive(Debug, Clone, Copy)]
pub struct PostingsView<'a> {
    /// Object ids.
    pub ids: &'a [ObjId],
    /// Threshold bounds, non-increasing (ties broken by ascending id).
    pub bounds: &'a [f64],
}

impl<'a> PostingsView<'a> {
    /// Number of postings in the group.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the group is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Row `i` materialized as a [`Posting`].
    pub fn get(&self, i: usize) -> Posting {
        Posting::new(self.ids[i], self.bounds[i])
    }

    /// Iterates rows as materialized [`Posting`]s (convenience for
    /// consumers that genuinely need both columns per row).
    pub fn iter(&self) -> impl Iterator<Item = Posting> + 'a {
        self.ids
            .iter()
            .zip(self.bounds)
            .map(|(&object, &bound)| Posting::new(object, bound))
    }
}

/// Columnar view of one dual-bound posting group (see
/// [`PostingsView`]; same alignment contract with two bound columns).
#[derive(Debug, Clone, Copy)]
pub struct DualPostingsView<'a> {
    /// Object ids.
    pub ids: &'a [ObjId],
    /// Spatial bounds, non-increasing (the group's sort axis).
    pub spatial_bounds: &'a [f64],
    /// Textual bounds (unordered).
    pub textual_bounds: &'a [f64],
}

impl<'a> DualPostingsView<'a> {
    /// Number of postings in the group.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the group is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Row `i` materialized as a [`DualPosting`].
    pub fn get(&self, i: usize) -> DualPosting {
        DualPosting::new(self.ids[i], self.spatial_bounds[i], self.textual_bounds[i])
    }

    /// Iterates rows as materialized [`DualPosting`]s.
    pub fn iter(&self) -> impl Iterator<Item = DualPosting> + 'a {
        self.ids
            .iter()
            .zip(self.spatial_bounds)
            .zip(self.textual_bounds)
            .map(|((&object, &sb), &tb)| DualPosting::new(object, sb, tb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_columns_roundtrip_items() {
        let mut c = SingleColumns::default();
        c.push_item(Posting::new(3, 9.5));
        c.push_item(Posting::new(7, 1.0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Posting::new(3, 9.5));
        let mut d = SingleColumns::with_capacity(4);
        d.extend_from_range(&c, 1..2);
        assert_eq!(d.get(0), Posting::new(7, 1.0));
        d.extend_from_items(&[Posting::new(9, 2.0)]);
        assert_eq!(d.len(), 2);
        assert!(d.heap_bytes() >= 2 * (4 + 8));
    }

    #[test]
    fn dual_columns_roundtrip_items() {
        let mut c = DualColumns::default();
        c.push_item(DualPosting::new(1, 100.0, 0.5));
        c.push_item(DualPosting::new(2, 50.0, 0.9));
        assert_eq!(c.get(1), DualPosting::new(2, 50.0, 0.9));
        let mut d = DualColumns::with_capacity(2);
        d.extend_from_range(&c, 0..2);
        d.shrink_to_fit();
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(0), DualPosting::new(1, 100.0, 0.5));
        assert!(d.heap_bytes() >= 2 * (4 + 8 + 8));
    }

    #[test]
    fn views_align_rows() {
        let ids = [5u32, 6];
        let bounds = [2.0f64, 1.0];
        let v = PostingsView {
            ids: &ids,
            bounds: &bounds,
        };
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.get(1), Posting::new(6, 1.0));
        let all: Vec<Posting> = v.iter().collect();
        assert_eq!(all, vec![Posting::new(5, 2.0), Posting::new(6, 1.0)]);

        let spatial = [9.0f64, 4.0];
        let textual = [0.1f64, 0.2];
        let d = DualPostingsView {
            ids: &ids,
            spatial_bounds: &spatial,
            textual_bounds: &textual,
        };
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.get(0), DualPosting::new(5, 9.0, 0.1));
        assert_eq!(d.iter().count(), 2);
    }
}
