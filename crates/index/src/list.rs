//! A standalone posting list sorted by threshold bound, stored as
//! parallel id/bound columns (the same SoA contract as the CSR
//! arenas).

use crate::ObjId;
use serde::{Deserialize, Serialize};

/// A posting list sorted in descending bound order (Section 4.2: "We
/// store bound c_s(o) for each object o in inverted list I(s), and sort
/// the objects in descending order of the bounds").
///
/// Stored as two parallel columns — `ids` and `bounds` — so the read
/// path never materializes posting structs: the qualifying cut runs
/// over the bound column alone ([`crate::bound_cut`], the chunked scan
/// shared with the CSR arenas) and [`qualifying`] returns the matching
/// prefix of the id column in place.
///
/// Build with [`push`](BoundedPostingList::push) +
/// [`finalize`](BoundedPostingList::finalize); query with
/// [`qualifying`], which costs `O(log n + |I_c(s)|)` (or one chunked
/// scan for short lists).
///
/// [`qualifying`]: BoundedPostingList::qualifying
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BoundedPostingList {
    ids: Vec<ObjId>,
    bounds: Vec<f64>,
    finalized: bool,
}

impl BoundedPostingList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a posting (unsorted until [`finalize`](Self::finalize)).
    ///
    /// # Panics
    /// If `bound` is NaN (rejected at insert time; see
    /// the shared CSR core's invariants).
    pub fn push(&mut self, object: ObjId, bound: f64) {
        crate::csr::check_bound(bound, "bound");
        self.ids.push(object);
        self.bounds.push(bound);
        self.finalized = false;
    }

    /// Sorts postings by descending bound (ties broken by object id for
    /// determinism) and marks the list queryable. The sort runs over a
    /// permutation, then gathers both columns once.
    pub fn finalize(&mut self) {
        let mut perm: Vec<u32> = (0..self.ids.len() as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            crate::csr::desc_f64(self.bounds[a as usize], self.bounds[b as usize])
                .then(self.ids[a as usize].cmp(&self.ids[b as usize]))
        });
        self.ids = perm.iter().map(|&i| self.ids[i as usize]).collect();
        self.bounds = perm.iter().map(|&i| self.bounds[i as usize]).collect();
        self.finalized = true;
    }

    /// Number of postings.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no postings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The object id column (descending bound order once finalized).
    #[inline]
    pub fn ids(&self) -> &[ObjId] {
        &self.ids
    }

    /// The bound column, row-aligned with [`ids`](Self::ids)
    /// (non-increasing once finalized).
    #[inline]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// The object ids of the qualifying prefix
    /// `I_c(s) = {o | c_s(o) ≥ c}` (Lemma 3), returned in place from
    /// the id column.
    ///
    /// # Panics
    /// In debug builds, if the list was not finalized.
    pub fn qualifying(&self, c: f64) -> &[ObjId] {
        debug_assert!(self.finalized, "query on non-finalized posting list");
        let cut = crate::bound_cut(&self.bounds, c);
        &self.ids[..cut]
    }

    /// `|I_c(s)|` — the qualifying-prefix length, from the bound
    /// column alone.
    pub fn qualifying_len(&self, c: f64) -> usize {
        debug_assert!(self.finalized, "query on non-finalized posting list");
        crate::bound_cut(&self.bounds, c)
    }

    /// Heap bytes used by the two columns (index-size accounting).
    pub fn size_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<ObjId>()
            + self.bounds.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualifying_is_a_prefix_cut() {
        // Figure 5's list for g14: o1 (bound 900), o2 (bound 550).
        let mut l = BoundedPostingList::new();
        l.push(1, 550.0);
        l.push(0, 900.0);
        l.finalize();
        assert_eq!(l.ids()[0], 0, "descending bound order");
        assert_eq!(l.bounds(), &[900.0, 550.0]);
        let q = l.qualifying(600.0);
        assert_eq!(q, &[0]);
        assert_eq!(l.qualifying(550.0).len(), 2, "bounds are inclusive");
        assert_eq!(l.qualifying(901.0).len(), 0);
        assert_eq!(l.qualifying(0.0).len(), 2);
        assert_eq!(l.qualifying_len(600.0), 1);
    }

    #[test]
    fn ties_break_by_object_id() {
        let mut l = BoundedPostingList::new();
        l.push(9, 5.0);
        l.push(3, 5.0);
        l.push(6, 5.0);
        l.finalize();
        assert_eq!(l.ids(), &[3, 6, 9]);
    }

    #[test]
    fn empty_list() {
        let mut l = BoundedPostingList::new();
        l.finalize();
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert!(l.qualifying(1.0).is_empty());
        assert_eq!(l.size_bytes(), 0);
    }

    #[test]
    fn size_accounting() {
        let mut l = BoundedPostingList::new();
        l.push(0, 1.0);
        l.push(1, 2.0);
        assert_eq!(
            l.size_bytes(),
            2 * (std::mem::size_of::<ObjId>() + std::mem::size_of::<f64>())
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn qualifying_equals_linear_scan(
            bounds in proptest::collection::vec(0.0f64..1000.0, 0..64),
            c in 0.0f64..1000.0,
        ) {
            let mut l = BoundedPostingList::new();
            for (i, b) in bounds.iter().enumerate() {
                l.push(i as ObjId, *b);
            }
            l.finalize();
            let fast: std::collections::BTreeSet<ObjId> =
                l.qualifying(c).iter().copied().collect();
            let slow: std::collections::BTreeSet<ObjId> = bounds
                .iter()
                .enumerate()
                .filter(|(_, b)| **b >= c)
                .map(|(i, _)| i as ObjId)
                .collect();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn bounds_are_nonincreasing_after_finalize(
            bounds in proptest::collection::vec(0.0f64..100.0, 0..64),
        ) {
            let mut l = BoundedPostingList::new();
            for (i, b) in bounds.iter().enumerate() {
                l.push(i as ObjId, *b);
            }
            l.finalize();
            prop_assert!(l.bounds().windows(2).all(|w| w[0] >= w[1]));
            prop_assert_eq!(l.ids().len(), l.bounds().len());
        }
    }
}
