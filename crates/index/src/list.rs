//! Posting lists sorted by threshold bound.

use crate::{ObjId, Posting};
use serde::{Deserialize, Serialize};

/// A posting list sorted in descending bound order (Section 4.2: "We
/// store bound c_s(o) for each object o in inverted list I(s), and sort
/// the objects in descending order of the bounds").
///
/// Build with [`push`](BoundedPostingList::push) +
/// [`finalize`](BoundedPostingList::finalize); query with
/// [`qualifying`](BoundedPostingList::qualifying), which binary-searches
/// the cut point so probing costs `O(log n + |I_c(s)|)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BoundedPostingList {
    postings: Vec<Posting>,
    finalized: bool,
}

impl BoundedPostingList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a posting (unsorted until [`finalize`](Self::finalize)).
    ///
    /// # Panics
    /// If `bound` is NaN (rejected at insert time; see
    /// the shared CSR core's invariants).
    pub fn push(&mut self, object: ObjId, bound: f64) {
        crate::csr::check_bound(bound, "bound");
        self.postings.push(Posting::new(object, bound));
        self.finalized = false;
    }

    /// Sorts postings by descending bound (ties broken by object id for
    /// determinism) and marks the list queryable.
    pub fn finalize(&mut self) {
        self.postings
            .sort_by(|a, b| crate::csr::desc_f64(a.bound, b.bound).then(a.object.cmp(&b.object)));
        self.finalized = true;
    }

    /// Number of postings.
    #[inline]
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True if no postings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// All postings (descending bound order once finalized).
    #[inline]
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// The qualifying prefix `I_c(s) = {o | c_s(o) ≥ c}` (Lemma 3).
    ///
    /// # Panics
    /// In debug builds, if the list was not finalized.
    pub fn qualifying(&self, c: f64) -> &[Posting] {
        debug_assert!(self.finalized, "query on non-finalized posting list");
        // Descending order: find first index with bound < c.
        let cut = self.postings.partition_point(|p| p.bound >= c);
        &self.postings[..cut]
    }

    /// Heap bytes used by the postings (index-size accounting).
    pub fn size_bytes(&self) -> usize {
        self.postings.len() * std::mem::size_of::<Posting>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualifying_is_a_prefix_cut() {
        // Figure 5's list for g14: o1 (bound 900), o2 (bound 550).
        let mut l = BoundedPostingList::new();
        l.push(1, 550.0);
        l.push(0, 900.0);
        l.finalize();
        assert_eq!(l.postings()[0].object, 0, "descending bound order");
        let q = l.qualifying(600.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].object, 0);
        assert_eq!(l.qualifying(550.0).len(), 2, "bounds are inclusive");
        assert_eq!(l.qualifying(901.0).len(), 0);
        assert_eq!(l.qualifying(0.0).len(), 2);
    }

    #[test]
    fn ties_break_by_object_id() {
        let mut l = BoundedPostingList::new();
        l.push(9, 5.0);
        l.push(3, 5.0);
        l.push(6, 5.0);
        l.finalize();
        let ids: Vec<ObjId> = l.postings().iter().map(|p| p.object).collect();
        assert_eq!(ids, vec![3, 6, 9]);
    }

    #[test]
    fn empty_list() {
        let mut l = BoundedPostingList::new();
        l.finalize();
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert!(l.qualifying(1.0).is_empty());
        assert_eq!(l.size_bytes(), 0);
    }

    #[test]
    fn size_accounting() {
        let mut l = BoundedPostingList::new();
        l.push(0, 1.0);
        l.push(1, 2.0);
        assert_eq!(l.size_bytes(), 2 * std::mem::size_of::<Posting>());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn qualifying_equals_linear_scan(
            bounds in proptest::collection::vec(0.0f64..1000.0, 0..64),
            c in 0.0f64..1000.0,
        ) {
            let mut l = BoundedPostingList::new();
            for (i, b) in bounds.iter().enumerate() {
                l.push(i as ObjId, *b);
            }
            l.finalize();
            let fast: std::collections::BTreeSet<ObjId> =
                l.qualifying(c).iter().map(|p| p.object).collect();
            let slow: std::collections::BTreeSet<ObjId> = bounds
                .iter()
                .enumerate()
                .filter(|(_, b)| **b >= c)
                .map(|(i, _)| i as ObjId)
                .collect();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn bounds_are_nonincreasing_after_finalize(
            bounds in proptest::collection::vec(0.0f64..100.0, 0..64),
        ) {
            let mut l = BoundedPostingList::new();
            for (i, b) in bounds.iter().enumerate() {
                l.push(i as ObjId, *b);
            }
            l.finalize();
            let ps = l.postings();
            prop_assert!(ps.windows(2).all(|w| w[0].bound >= w[1].bound));
        }
    }
}
