//! Posting entries — the *logical* posting structs.
//!
//! Since the SoA refactor these are the staging/sort unit and the
//! materialized row of the columnar views, **not** the frozen storage
//! format: finalized arenas keep parallel id/bound columns (see
//! [`crate::InvertedIndex`]) and the probe path reads columns, never
//! structs.

use crate::ObjId;
use serde::{Deserialize, Serialize};

/// A posting with a single threshold bound (Lemma 3's `c_s(o)`).
///
/// For the textual index the bound is the residual token weight
/// `Σ_{j≥i} w(t_j)`; for the grid index it is the residual grid weight.
/// Either way the pruning rule is identical: given a query threshold
/// `c`, the posting qualifies iff `bound ≥ c`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Posting {
    /// The object this posting refers to.
    pub object: ObjId,
    /// The maximum threshold for which the element is still in the
    /// object's signature prefix.
    pub bound: f64,
}

impl Posting {
    /// Convenience constructor.
    #[inline]
    pub fn new(object: ObjId, bound: f64) -> Self {
        Posting { object, bound }
    }
}

/// A posting with both spatial and textual threshold bounds — the hybrid
/// lists of Section 5.1 ("we augment both spatial and textual threshold
/// bounds for each object o in each inverted list").
///
/// The object can be pruned if *either* `c_T > textual_bound` or
/// `c_R > spatial_bound`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualPosting {
    /// The object this posting refers to.
    pub object: ObjId,
    /// Spatial threshold bound `c^R_h(o)`.
    pub spatial_bound: f64,
    /// Textual threshold bound `c^T_h(o)`.
    pub textual_bound: f64,
}

impl DualPosting {
    /// Convenience constructor.
    #[inline]
    pub fn new(object: ObjId, spatial_bound: f64, textual_bound: f64) -> Self {
        DualPosting {
            object,
            spatial_bound,
            textual_bound,
        }
    }

    /// The pruning test of Section 5.1: survives iff both bounds meet
    /// their thresholds.
    #[inline]
    pub fn qualifies(&self, c_spatial: f64, c_textual: f64) -> bool {
        self.spatial_bound >= c_spatial && self.textual_bound >= c_textual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posting_construction() {
        let p = Posting::new(7, 900.0);
        assert_eq!(p.object, 7);
        assert_eq!(p.bound, 900.0);
    }

    #[test]
    fn dual_posting_qualification() {
        // Figure 9's list for (t1, g14): o1 with bounds 900/1.7.
        let p = DualPosting::new(0, 900.0, 1.7);
        assert!(p.qualifies(600.0, 0.57));
        assert!(!p.qualifies(901.0, 0.57), "spatial bound fails");
        assert!(!p.qualifies(600.0, 1.8), "textual bound fails");
        assert!(p.qualifies(900.0, 1.7), "bounds are inclusive");
    }
}
