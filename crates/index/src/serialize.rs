//! Compact binary serialization of the inverted indexes.
//!
//! The paper's indexes are disk-resident; this codec provides the byte
//! layout a disk deployment would use (and lets the benchmarks persist
//! built indexes between runs). Layout, little-endian:
//!
//! ```text
//! magic:u32  version:u8  kind:u8  key_count:u64
//! kind 1 (single) / 2 (dual), exact:
//!   repeat key_count times:
//!     key:u128  len:u64
//!     repeat len times:
//!       object:u32  bound(s): f64 [f64]
//! kind 3 (compressed single) / 4 (compressed dual):
//!   arena_len:u64
//!   repeat key_count times:
//!     key:u128  len:u32  scale:f64 [t_scale:f64]
//!   arena bytes (the in-memory compressed arena, verbatim — see
//!   crate::compress for the group layout; byte offsets are rebuilt
//!   by the validation walk at load time)
//! ```
//!
//! The compressed kinds persist the serving form **as-is**: encoding
//! is a directory dump plus one arena memcpy, and decoding revalidates
//! every group (bound columns in order, varints well-formed and
//! `u32`-sized) so the in-place probe path stays infallible.

use crate::compress::{
    validate_group, CompressedHybridIndex, CompressedInvertedIndex, DualGroupMeta, GroupMeta,
    Quantizer,
};
use crate::{HybridIndex, InvertedIndex, ObjId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::hash::Hash;

const MAGIC: u32 = 0x5EA1_1D8E;
const VERSION: u8 = 1;
const KIND_SINGLE: u8 = 1;
const KIND_DUAL: u8 = 2;
const KIND_COMPRESSED_SINGLE: u8 = 3;
const KIND_COMPRESSED_DUAL: u8 = 4;

/// Errors produced when decoding serialized indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexCodecError {
    /// The magic number did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Wrong index kind (single-bound vs dual-bound).
    BadKind(u8),
    /// The buffer ended before the declared contents.
    Truncated,
    /// A compressed payload failed validation (out-of-order bound
    /// column, malformed or oversized varint, misaligned group).
    Corrupt,
}

impl fmt::Display for IndexCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexCodecError::BadMagic => write!(f, "bad magic number"),
            IndexCodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            IndexCodecError::BadKind(k) => write!(f, "unexpected index kind {k}"),
            IndexCodecError::Truncated => write!(f, "buffer truncated"),
            IndexCodecError::Corrupt => write!(f, "compressed payload corrupt"),
        }
    }
}

impl std::error::Error for IndexCodecError {}

/// Keys that can round-trip through the codec's `u128` slot.
pub trait IndexKey: Eq + Hash + Ord + Copy + Sync {
    /// Widens the key to 128 bits.
    fn to_u128(self) -> u128;
    /// Narrows a 128-bit value back to the key type.
    fn from_u128(v: u128) -> Self;
}

impl IndexKey for u32 {
    fn to_u128(self) -> u128 {
        u128::from(self)
    }
    fn from_u128(v: u128) -> Self {
        v as u32
    }
}

impl IndexKey for u64 {
    fn to_u128(self) -> u128 {
        u128::from(self)
    }
    fn from_u128(v: u128) -> Self {
        v as u64
    }
}

impl IndexKey for u128 {
    fn to_u128(self) -> u128 {
        self
    }
    fn from_u128(v: u128) -> Self {
        v
    }
}

fn check_remaining(buf: &impl Buf, need: usize) -> Result<(), IndexCodecError> {
    if buf.remaining() < need {
        Err(IndexCodecError::Truncated)
    } else {
        Ok(())
    }
}

impl<K: IndexKey> InvertedIndex<K> {
    /// Serializes the index to bytes.
    ///
    /// # Panics
    /// If postings have been pushed since the last
    /// [`finalize`](InvertedIndex::finalize): only the frozen arena is
    /// serialized, so encoding a half-staged index would silently drop
    /// data.
    pub fn to_bytes(&self) -> Bytes {
        assert!(
            self.is_finalized(),
            "InvertedIndex::to_bytes requires finalize() after the last push"
        );
        let mut buf = BytesMut::with_capacity(64 + self.posting_count() * 12);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_SINGLE);
        buf.put_u64_le(self.key_count() as u64);
        for (key, postings) in self.iter() {
            buf.put_u128_le(key.to_u128());
            buf.put_u64_le(postings.len() as u64);
            for p in postings {
                buf.put_u32_le(p.object);
                buf.put_f64_le(p.bound);
            }
        }
        buf.freeze()
    }

    /// Decodes an index from bytes; the result is finalized and ready to
    /// query.
    pub fn from_bytes(mut buf: impl Buf) -> Result<Self, IndexCodecError> {
        let key_count = check_header(&mut buf, KIND_SINGLE)?;
        let mut idx = InvertedIndex::new();
        for _ in 0..key_count {
            check_remaining(&buf, 16 + 8)?;
            let key = K::from_u128(buf.get_u128_le());
            let len = buf.get_u64_le() as usize;
            check_remaining(&buf, len * 12)?;
            for _ in 0..len {
                let object: ObjId = buf.get_u32_le();
                let bound = buf.get_f64_le();
                idx.push(key, object, bound);
            }
        }
        idx.finalize();
        Ok(idx)
    }
}

impl<K: IndexKey> HybridIndex<K> {
    /// Serializes the hybrid index to bytes.
    ///
    /// # Panics
    /// If postings have been pushed since the last
    /// [`finalize`](HybridIndex::finalize): only the frozen arena is
    /// serialized, so encoding a half-staged index would silently drop
    /// data.
    pub fn to_bytes(&self) -> Bytes {
        assert!(
            self.is_finalized(),
            "HybridIndex::to_bytes requires finalize() after the last push"
        );
        let mut buf = BytesMut::with_capacity(64 + self.posting_count() * 20);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_DUAL);
        buf.put_u64_le(self.key_count() as u64);
        for (key, postings) in self.iter() {
            buf.put_u128_le(key.to_u128());
            buf.put_u64_le(postings.len() as u64);
            for p in postings {
                buf.put_u32_le(p.object);
                buf.put_f64_le(p.spatial_bound);
                buf.put_f64_le(p.textual_bound);
            }
        }
        buf.freeze()
    }

    /// Decodes a hybrid index from bytes (finalized, ready to query).
    pub fn from_bytes(mut buf: impl Buf) -> Result<Self, IndexCodecError> {
        let key_count = check_header(&mut buf, KIND_DUAL)?;
        let mut idx = HybridIndex::new();
        for _ in 0..key_count {
            check_remaining(&buf, 16 + 8)?;
            let key = K::from_u128(buf.get_u128_le());
            let len = buf.get_u64_le() as usize;
            check_remaining(&buf, len * 20)?;
            for _ in 0..len {
                let object: ObjId = buf.get_u32_le();
                let sb = buf.get_f64_le();
                let tb = buf.get_f64_le();
                idx.push(key, object, sb, tb);
            }
        }
        idx.finalize();
        Ok(idx)
    }
}

fn check_header(buf: &mut impl Buf, expect_kind: u8) -> Result<u64, IndexCodecError> {
    check_remaining(buf, 4 + 1 + 1 + 8)?;
    if buf.get_u32_le() != MAGIC {
        return Err(IndexCodecError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(IndexCodecError::BadVersion(version));
    }
    let kind = buf.get_u8();
    if kind != expect_kind {
        return Err(IndexCodecError::BadKind(kind));
    }
    Ok(buf.get_u64_le())
}

/// A deserialized quantizer scale, rejected unless finite and positive.
fn checked_scale(scale: f64) -> Result<Quantizer, IndexCodecError> {
    if !scale.is_finite() || scale <= 0.0 {
        return Err(IndexCodecError::Corrupt);
    }
    Ok(Quantizer::from_scale(scale))
}

/// Shared untrusted-input decode for both compressed kinds: header,
/// overflow-checked directory sizing (a corrupt count must fail, not
/// abort on a huge allocation), per-key meta parse, sorted-key check,
/// arena copy, and the full validation walk that rebuilds the byte
/// offsets so the probe path stays infallible. `meta_bytes` is the
/// per-entry directory size after the key; `columns` the number of
/// `u16` bound columns per group.
#[allow(clippy::type_complexity)]
fn decode_compressed<K: IndexKey, M>(
    mut buf: impl Buf,
    kind: u8,
    meta_bytes: usize,
    columns: usize,
    parse_meta: impl Fn(&mut dyn Buf) -> Result<M, IndexCodecError>,
    len_of: impl Fn(&M) -> usize,
) -> Result<(Vec<K>, Vec<usize>, Vec<M>, Bytes, usize), IndexCodecError> {
    let key_count = check_header(&mut buf, kind)? as usize;
    check_remaining(&buf, 8)?;
    let arena_len = buf.get_u64_le() as usize;
    let directory = key_count
        .checked_mul(16 + meta_bytes)
        .ok_or(IndexCodecError::Truncated)?;
    check_remaining(&buf, directory)?;
    let mut keys = Vec::with_capacity(key_count);
    let mut meta = Vec::with_capacity(key_count);
    for _ in 0..key_count {
        keys.push(K::from_u128(buf.get_u128_le()));
        meta.push(parse_meta(&mut buf)?);
    }
    if !keys.windows(2).all(|w| w[0] < w[1]) {
        return Err(IndexCodecError::Corrupt);
    }
    check_remaining(&buf, arena_len)?;
    let mut raw = vec![0u8; arena_len];
    buf.copy_to_slice(&mut raw);
    let arena = Bytes::from(raw);
    let mut offsets = Vec::with_capacity(key_count + 1);
    offsets.push(0usize);
    let mut pos = 0usize;
    let mut posting_count = 0usize;
    for m in &meta {
        let group = &arena.as_slice()[pos..];
        let consumed = validate_group(group, len_of(m), columns).ok_or(IndexCodecError::Corrupt)?;
        pos += consumed;
        offsets.push(pos);
        posting_count += len_of(m);
    }
    if pos != arena.len() {
        return Err(IndexCodecError::Corrupt);
    }
    Ok((keys, offsets, meta, arena, posting_count))
}

impl<K: IndexKey> CompressedInvertedIndex<K> {
    /// Serializes the compressed index: the directory, then the arena
    /// verbatim. This *is* the at-rest form — no recompression happens.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.keys.len() * 28 + self.arena.len());
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_COMPRESSED_SINGLE);
        buf.put_u64_le(self.keys.len() as u64);
        buf.put_u64_le(self.arena.len() as u64);
        for (key, m) in self.keys.iter().zip(&self.meta) {
            buf.put_u128_le(key.to_u128());
            buf.put_u32_le(m.len);
            buf.put_f64_le(m.quant.scale());
        }
        buf.put_slice(self.arena.as_slice());
        buf.freeze()
    }

    /// Decodes a compressed index and validates the whole arena (keys
    /// sorted, bound columns non-increasing, varints well-formed), so
    /// the returned index can serve probes infallibly.
    pub fn from_bytes(buf: impl Buf) -> Result<Self, IndexCodecError> {
        let (keys, offsets, meta, arena, posting_count) = decode_compressed(
            buf,
            KIND_COMPRESSED_SINGLE,
            4 + 8,
            1,
            |b| {
                let len = b.get_u32_le();
                Ok(GroupMeta {
                    len,
                    quant: checked_scale(b.get_f64_le())?,
                })
            },
            |m: &GroupMeta| m.len as usize,
        )?;
        Ok(CompressedInvertedIndex {
            keys,
            offsets,
            meta,
            arena,
            posting_count,
        })
    }
}

impl<K: IndexKey> CompressedHybridIndex<K> {
    /// Serializes the compressed hybrid index (directory + arena
    /// verbatim).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.keys.len() * 36 + self.arena.len());
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_COMPRESSED_DUAL);
        buf.put_u64_le(self.keys.len() as u64);
        buf.put_u64_le(self.arena.len() as u64);
        for (key, m) in self.keys.iter().zip(&self.meta) {
            buf.put_u128_le(key.to_u128());
            buf.put_u32_le(m.len);
            buf.put_f64_le(m.spatial.scale());
            buf.put_f64_le(m.textual.scale());
        }
        buf.put_slice(self.arena.as_slice());
        buf.freeze()
    }

    /// Decodes and fully validates a compressed hybrid index.
    pub fn from_bytes(buf: impl Buf) -> Result<Self, IndexCodecError> {
        let (keys, offsets, meta, arena, posting_count) = decode_compressed(
            buf,
            KIND_COMPRESSED_DUAL,
            4 + 16,
            2,
            |b| {
                let len = b.get_u32_le();
                Ok(DualGroupMeta {
                    len,
                    spatial: checked_scale(b.get_f64_le())?,
                    textual: checked_scale(b.get_f64_le())?,
                })
            },
            |m: &DualGroupMeta| m.len as usize,
        )?;
        Ok(CompressedHybridIndex {
            keys,
            offsets,
            meta,
            arena,
            posting_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_roundtrip() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(7, 0, 3.5);
        idx.push(7, 1, 1.25);
        idx.push(42, 2, 9.0);
        idx.finalize();
        let bytes = idx.to_bytes();
        let back: InvertedIndex<u64> = InvertedIndex::from_bytes(bytes).unwrap();
        assert_eq!(back.key_count(), 2);
        assert_eq!(back.posting_count(), 3);
        assert_eq!(back.qualifying(&7, 2.0).len(), 1);
        assert_eq!(back.qualifying(&7, 0.0).len(), 2);
        assert_eq!(back.qualifying(&42, 9.0)[0].object, 2);
    }

    #[test]
    fn dual_roundtrip() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(1u128 << 70, 0, 900.0, 1.7);
        idx.push(1u128 << 70, 1, 550.0, 1.9);
        idx.finalize();
        let back: HybridIndex<u128> = HybridIndex::from_bytes(idx.to_bytes()).unwrap();
        let got: Vec<u32> = back
            .qualifying(&(1u128 << 70), 600.0, 0.5)
            .map(|p| p.object)
            .collect();
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn refinalized_index_roundtrips() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(7, 0, 3.5);
        idx.finalize();
        idx.push(7, 1, 9.0);
        idx.push(8, 2, 1.0);
        idx.finalize();
        let back: InvertedIndex<u64> = InvertedIndex::from_bytes(idx.to_bytes()).unwrap();
        assert_eq!(back.key_count(), 2);
        assert_eq!(back.posting_count(), 3);
        assert_eq!(back.qualifying(&7, 4.0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "requires finalize()")]
    fn staged_postings_refuse_to_serialize() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 1.0);
        idx.finalize();
        idx.push(2, 1, 1.0); // staged, not finalized
        let _ = idx.to_bytes();
    }

    #[test]
    fn rejects_garbage() {
        let garbage = Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14]);
        assert_eq!(
            InvertedIndex::<u64>::from_bytes(garbage).unwrap_err(),
            IndexCodecError::BadMagic
        );
    }

    #[test]
    fn rejects_wrong_kind() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 1.0);
        idx.finalize();
        let bytes = idx.to_bytes();
        assert_eq!(
            HybridIndex::<u64>::from_bytes(bytes).unwrap_err(),
            IndexCodecError::BadKind(KIND_SINGLE)
        );
    }

    #[test]
    fn rejects_truncated() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for i in 0..10 {
            idx.push(1, i, f64::from(i));
        }
        idx.finalize();
        let bytes = idx.to_bytes();
        let cut = bytes.slice(..bytes.len() - 5);
        assert_eq!(
            InvertedIndex::<u64>::from_bytes(cut).unwrap_err(),
            IndexCodecError::Truncated
        );
    }

    #[test]
    fn empty_index_roundtrip() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.finalize();
        let back: InvertedIndex<u32> = InvertedIndex::from_bytes(idx.to_bytes()).unwrap();
        assert_eq!(back.key_count(), 0);
    }

    #[test]
    fn error_display() {
        assert!(IndexCodecError::BadMagic.to_string().contains("magic"));
        assert!(IndexCodecError::Truncated.to_string().contains("truncated"));
        assert!(IndexCodecError::BadVersion(9).to_string().contains('9'));
        assert!(IndexCodecError::BadKind(3).to_string().contains('3'));
        assert!(IndexCodecError::Corrupt.to_string().contains("corrupt"));
    }

    fn sample_compressed() -> CompressedInvertedIndex<u64> {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for key in 0u64..10 {
            for obj in 0..(20 + key as u32 * 7) {
                idx.push(key, obj * 3, f64::from(obj % 13) * 1.5);
            }
        }
        idx.finalize();
        CompressedInvertedIndex::compress(&idx)
    }

    #[test]
    fn compressed_single_roundtrip_serves_identically() {
        let c = sample_compressed();
        let bytes = c.to_bytes();
        let back: CompressedInvertedIndex<u64> =
            CompressedInvertedIndex::from_bytes(bytes).unwrap();
        assert_eq!(back.key_count(), c.key_count());
        assert_eq!(back.posting_count(), c.posting_count());
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        for key in 0u64..10 {
            for thr in [0.0, 3.0, 9.0, 100.0] {
                assert_eq!(
                    c.qualifying_into(&key, thr, &mut s1),
                    back.qualifying_into(&key, thr, &mut s2),
                    "key {key} thr {thr}"
                );
            }
        }
    }

    #[test]
    fn compressed_dual_roundtrip_serves_identically() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        for k in 0u128..6 {
            for obj in 0..40u32 {
                idx.push(
                    k << 64,
                    obj,
                    f64::from(obj % 11) * 100.0,
                    f64::from(obj % 7) / 3.0,
                );
            }
        }
        idx.finalize();
        let c = CompressedHybridIndex::compress(&idx);
        let back: CompressedHybridIndex<u128> =
            CompressedHybridIndex::from_bytes(c.to_bytes()).unwrap();
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        for k in 0u128..6 {
            for (cr, ct) in [(0.0, 0.0), (500.0, 1.0), (1001.0, 0.5)] {
                assert_eq!(
                    c.qualifying_into(&(k << 64), cr, ct, &mut s1),
                    back.qualifying_into(&(k << 64), cr, ct, &mut s2),
                );
            }
        }
    }

    #[test]
    fn compressed_rejects_wrong_kind_and_truncation() {
        let c = sample_compressed();
        let bytes = c.to_bytes();
        assert_eq!(
            InvertedIndex::<u64>::from_bytes(bytes.clone()).unwrap_err(),
            IndexCodecError::BadKind(KIND_COMPRESSED_SINGLE)
        );
        assert_eq!(
            CompressedHybridIndex::<u64>::from_bytes(bytes.clone()).unwrap_err(),
            IndexCodecError::BadKind(KIND_COMPRESSED_SINGLE)
        );
        let cut = bytes.slice(..bytes.len() - 3);
        assert_eq!(
            CompressedInvertedIndex::<u64>::from_bytes(cut).unwrap_err(),
            IndexCodecError::Truncated
        );
    }

    #[test]
    fn compressed_rejects_corrupt_bound_column() {
        let c = sample_compressed();
        let mut raw = c.to_bytes().as_slice().to_vec();
        // Arena begins after header (14) + arena_len (8) + directory
        // (key_count × 28). Break the first group's non-increasing
        // bound column: zero the first u16, max the second.
        let arena_at = 14 + 8 + c.key_count() * 28;
        raw[arena_at] = 0;
        raw[arena_at + 1] = 0;
        raw[arena_at + 2] = 0xFF;
        raw[arena_at + 3] = 0xFF;
        assert_eq!(
            CompressedInvertedIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
            IndexCodecError::Corrupt
        );
    }

    #[test]
    fn compressed_rejects_huge_key_count_without_allocating() {
        // A corrupt header declaring 2^60 keys must error out, not
        // abort on a multi-exabyte Vec reservation.
        let mut raw = Vec::new();
        raw.put_u32_le(MAGIC);
        raw.put_u8(VERSION);
        raw.put_u8(KIND_COMPRESSED_SINGLE);
        raw.put_u64_le(1u64 << 60);
        raw.put_u64_le(0); // arena_len
        assert_eq!(
            CompressedInvertedIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
            IndexCodecError::Truncated
        );
        raw[5] = KIND_COMPRESSED_DUAL;
        assert_eq!(
            CompressedHybridIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
            IndexCodecError::Truncated
        );
    }

    #[test]
    fn compressed_empty_roundtrip() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.finalize();
        let c = CompressedInvertedIndex::compress(&idx);
        let back: CompressedInvertedIndex<u32> =
            CompressedInvertedIndex::from_bytes(c.to_bytes()).unwrap();
        assert_eq!(back.key_count(), 0);
        assert_eq!(back.posting_count(), 0);
    }
}
