//! Compact binary serialization of the inverted indexes.
//!
//! The paper's indexes are disk-resident; this codec provides the byte
//! layout a disk deployment would use (and lets the benchmarks persist
//! built indexes between runs). Layout, little-endian:
//!
//! ```text
//! magic:u32  version:u8  kind:u8  key_count:u64
//! repeat key_count times:
//!   key:u128  len:u64
//!   repeat len times:
//!     object:u32  bound(s): f64 [f64]
//! ```

use crate::{HybridIndex, InvertedIndex, ObjId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::hash::Hash;

const MAGIC: u32 = 0x5EA1_1D8E;
const VERSION: u8 = 1;
const KIND_SINGLE: u8 = 1;
const KIND_DUAL: u8 = 2;

/// Errors produced when decoding serialized indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexCodecError {
    /// The magic number did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Wrong index kind (single-bound vs dual-bound).
    BadKind(u8),
    /// The buffer ended before the declared contents.
    Truncated,
}

impl fmt::Display for IndexCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexCodecError::BadMagic => write!(f, "bad magic number"),
            IndexCodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            IndexCodecError::BadKind(k) => write!(f, "unexpected index kind {k}"),
            IndexCodecError::Truncated => write!(f, "buffer truncated"),
        }
    }
}

impl std::error::Error for IndexCodecError {}

/// Keys that can round-trip through the codec's `u128` slot.
pub trait IndexKey: Eq + Hash + Ord + Copy {
    /// Widens the key to 128 bits.
    fn to_u128(self) -> u128;
    /// Narrows a 128-bit value back to the key type.
    fn from_u128(v: u128) -> Self;
}

impl IndexKey for u32 {
    fn to_u128(self) -> u128 {
        u128::from(self)
    }
    fn from_u128(v: u128) -> Self {
        v as u32
    }
}

impl IndexKey for u64 {
    fn to_u128(self) -> u128 {
        u128::from(self)
    }
    fn from_u128(v: u128) -> Self {
        v as u64
    }
}

impl IndexKey for u128 {
    fn to_u128(self) -> u128 {
        self
    }
    fn from_u128(v: u128) -> Self {
        v
    }
}

fn check_remaining(buf: &impl Buf, need: usize) -> Result<(), IndexCodecError> {
    if buf.remaining() < need {
        Err(IndexCodecError::Truncated)
    } else {
        Ok(())
    }
}

impl<K: IndexKey> InvertedIndex<K> {
    /// Serializes the index to bytes.
    ///
    /// # Panics
    /// If postings have been pushed since the last
    /// [`finalize`](InvertedIndex::finalize): only the frozen arena is
    /// serialized, so encoding a half-staged index would silently drop
    /// data.
    pub fn to_bytes(&self) -> Bytes {
        assert!(
            self.is_finalized(),
            "InvertedIndex::to_bytes requires finalize() after the last push"
        );
        let mut buf = BytesMut::with_capacity(64 + self.posting_count() * 12);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_SINGLE);
        buf.put_u64_le(self.key_count() as u64);
        for (key, postings) in self.iter() {
            buf.put_u128_le(key.to_u128());
            buf.put_u64_le(postings.len() as u64);
            for p in postings {
                buf.put_u32_le(p.object);
                buf.put_f64_le(p.bound);
            }
        }
        buf.freeze()
    }

    /// Decodes an index from bytes; the result is finalized and ready to
    /// query.
    pub fn from_bytes(mut buf: impl Buf) -> Result<Self, IndexCodecError> {
        check_remaining(&buf, 4 + 1 + 1 + 8)?;
        if buf.get_u32_le() != MAGIC {
            return Err(IndexCodecError::BadMagic);
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(IndexCodecError::BadVersion(version));
        }
        let kind = buf.get_u8();
        if kind != KIND_SINGLE {
            return Err(IndexCodecError::BadKind(kind));
        }
        let key_count = buf.get_u64_le();
        let mut idx = InvertedIndex::new();
        for _ in 0..key_count {
            check_remaining(&buf, 16 + 8)?;
            let key = K::from_u128(buf.get_u128_le());
            let len = buf.get_u64_le() as usize;
            check_remaining(&buf, len * 12)?;
            for _ in 0..len {
                let object: ObjId = buf.get_u32_le();
                let bound = buf.get_f64_le();
                idx.push(key, object, bound);
            }
        }
        idx.finalize();
        Ok(idx)
    }
}

impl<K: IndexKey> HybridIndex<K> {
    /// Serializes the hybrid index to bytes.
    ///
    /// # Panics
    /// If postings have been pushed since the last
    /// [`finalize`](HybridIndex::finalize): only the frozen arena is
    /// serialized, so encoding a half-staged index would silently drop
    /// data.
    pub fn to_bytes(&self) -> Bytes {
        assert!(
            self.is_finalized(),
            "HybridIndex::to_bytes requires finalize() after the last push"
        );
        let mut buf = BytesMut::with_capacity(64 + self.posting_count() * 20);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_DUAL);
        buf.put_u64_le(self.key_count() as u64);
        for (key, postings) in self.iter() {
            buf.put_u128_le(key.to_u128());
            buf.put_u64_le(postings.len() as u64);
            for p in postings {
                buf.put_u32_le(p.object);
                buf.put_f64_le(p.spatial_bound);
                buf.put_f64_le(p.textual_bound);
            }
        }
        buf.freeze()
    }

    /// Decodes a hybrid index from bytes (finalized, ready to query).
    pub fn from_bytes(mut buf: impl Buf) -> Result<Self, IndexCodecError> {
        check_remaining(&buf, 4 + 1 + 1 + 8)?;
        if buf.get_u32_le() != MAGIC {
            return Err(IndexCodecError::BadMagic);
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(IndexCodecError::BadVersion(version));
        }
        let kind = buf.get_u8();
        if kind != KIND_DUAL {
            return Err(IndexCodecError::BadKind(kind));
        }
        let key_count = buf.get_u64_le();
        let mut idx = HybridIndex::new();
        for _ in 0..key_count {
            check_remaining(&buf, 16 + 8)?;
            let key = K::from_u128(buf.get_u128_le());
            let len = buf.get_u64_le() as usize;
            check_remaining(&buf, len * 20)?;
            for _ in 0..len {
                let object: ObjId = buf.get_u32_le();
                let sb = buf.get_f64_le();
                let tb = buf.get_f64_le();
                idx.push(key, object, sb, tb);
            }
        }
        idx.finalize();
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_roundtrip() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(7, 0, 3.5);
        idx.push(7, 1, 1.25);
        idx.push(42, 2, 9.0);
        idx.finalize();
        let bytes = idx.to_bytes();
        let back: InvertedIndex<u64> = InvertedIndex::from_bytes(bytes).unwrap();
        assert_eq!(back.key_count(), 2);
        assert_eq!(back.posting_count(), 3);
        assert_eq!(back.qualifying(&7, 2.0).len(), 1);
        assert_eq!(back.qualifying(&7, 0.0).len(), 2);
        assert_eq!(back.qualifying(&42, 9.0)[0].object, 2);
    }

    #[test]
    fn dual_roundtrip() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(1u128 << 70, 0, 900.0, 1.7);
        idx.push(1u128 << 70, 1, 550.0, 1.9);
        idx.finalize();
        let back: HybridIndex<u128> = HybridIndex::from_bytes(idx.to_bytes()).unwrap();
        let got: Vec<u32> = back
            .qualifying(&(1u128 << 70), 600.0, 0.5)
            .map(|p| p.object)
            .collect();
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn refinalized_index_roundtrips() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(7, 0, 3.5);
        idx.finalize();
        idx.push(7, 1, 9.0);
        idx.push(8, 2, 1.0);
        idx.finalize();
        let back: InvertedIndex<u64> = InvertedIndex::from_bytes(idx.to_bytes()).unwrap();
        assert_eq!(back.key_count(), 2);
        assert_eq!(back.posting_count(), 3);
        assert_eq!(back.qualifying(&7, 4.0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "requires finalize()")]
    fn staged_postings_refuse_to_serialize() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 1.0);
        idx.finalize();
        idx.push(2, 1, 1.0); // staged, not finalized
        let _ = idx.to_bytes();
    }

    #[test]
    fn rejects_garbage() {
        let garbage = Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14]);
        assert_eq!(
            InvertedIndex::<u64>::from_bytes(garbage).unwrap_err(),
            IndexCodecError::BadMagic
        );
    }

    #[test]
    fn rejects_wrong_kind() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 1.0);
        idx.finalize();
        let bytes = idx.to_bytes();
        assert_eq!(
            HybridIndex::<u64>::from_bytes(bytes).unwrap_err(),
            IndexCodecError::BadKind(KIND_SINGLE)
        );
    }

    #[test]
    fn rejects_truncated() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for i in 0..10 {
            idx.push(1, i, f64::from(i));
        }
        idx.finalize();
        let bytes = idx.to_bytes();
        let cut = bytes.slice(..bytes.len() - 5);
        assert_eq!(
            InvertedIndex::<u64>::from_bytes(cut).unwrap_err(),
            IndexCodecError::Truncated
        );
    }

    #[test]
    fn empty_index_roundtrip() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.finalize();
        let back: InvertedIndex<u32> = InvertedIndex::from_bytes(idx.to_bytes()).unwrap();
        assert_eq!(back.key_count(), 0);
    }

    #[test]
    fn error_display() {
        assert!(IndexCodecError::BadMagic.to_string().contains("magic"));
        assert!(IndexCodecError::Truncated.to_string().contains("truncated"));
        assert!(IndexCodecError::BadVersion(9).to_string().contains('9'));
        assert!(IndexCodecError::BadKind(3).to_string().contains('3'));
    }
}
