//! Compact binary serialization of the inverted indexes.
//!
//! The paper's indexes are disk-resident; this codec provides the byte
//! layout a disk deployment would use (and lets the benchmarks persist
//! built indexes between runs). Layout, little-endian:
//!
//! ```text
//! magic:u32  version:u8  kind:u8  key_count:u64
//! kind 5 (SoA single) / 6 (SoA dual) — the current write format:
//!   posting_count:u64
//!   directory, repeat key_count times:  key:u128  len:u64
//!   id column:      object:u32  ×posting_count
//!   bound column:   bound:f64   ×posting_count
//!   [kind 6 adds a second bound column: spatial ×n, then textual ×n]
//! kind 1 (legacy AoS single) / 2 (legacy AoS dual), read-only:
//!   repeat key_count times:
//!     key:u128  len:u64
//!     repeat len times:
//!       object:u32  bound(s): f64 [f64]
//! kind 3 (compressed single) / 4 (compressed dual), varint ids:
//! kind 7 (compressed single) / 8 (compressed dual), block-packed ids:
//!   arena_len:u64
//!   repeat key_count times:
//!     key:u128  len:u32  scale:f64 [t_scale:f64]
//!   arena bytes (the in-memory compressed arena, verbatim — see
//!   crate::compress for the group layout; byte offsets are rebuilt
//!   by the validation walk at load time)
//! ```
//!
//! The SoA kinds persist the serving form **as-is**: whole columns are
//! dumped in group order (the arena's column layout), and loading
//! rebuilds the frozen arena directly — no per-posting re-push, no
//! re-sort — after a full validation walk (keys strictly ascending,
//! offsets consistent, bounds NaN-free and in finalize order) so the
//! probe path stays infallible. The legacy AoS kinds (the pre-SoA
//! write format) still **load**: their interleaved records are
//! transposed into columns on read via the ordinary push + finalize
//! path, so indexes serialized by older builds keep answering
//! identically under the SoA engine. [`InvertedIndex::to_bytes_aos`] /
//! [`HybridIndex::to_bytes_aos`] keep the legacy writer available for
//! migration tests and downgrade paths.
//!
//! The compressed kinds likewise persist their serving form as-is:
//! encoding is a directory dump plus one arena memcpy, and decoding
//! revalidates every group (bound columns in order, id columns
//! well-formed under the kind's [`IdCodec`] and `u32`-sized — for the
//! block-packed kinds 7/8 that includes block widths in `1..=64` and
//! overflow-checked delta reconstruction). Kind selection on write
//! follows the arena's codec: block-packed arenas (the
//! [`CompressedInvertedIndex::compress`] default) write kinds 7/8,
//! varint arenas write the legacy kinds 3/4, and both load.

use crate::columns::{DualColumns, SingleColumns};
use crate::compress::{
    validate_group, CompressedHybridIndex, CompressedInvertedIndex, DualGroupMeta, GroupMeta,
    IdCodec, Quantizer,
};
use crate::{HybridIndex, InvertedIndex, ObjId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::hash::Hash;

pub(crate) const MAGIC: u32 = 0x5EA1_1D8E;
const VERSION: u8 = 1;
const KIND_SINGLE: u8 = 1;
const KIND_DUAL: u8 = 2;
const KIND_COMPRESSED_SINGLE: u8 = 3;
const KIND_COMPRESSED_DUAL: u8 = 4;
const KIND_SOA_SINGLE: u8 = 5;
const KIND_SOA_DUAL: u8 = 6;
const KIND_PACKED_SINGLE: u8 = 7;
const KIND_PACKED_DUAL: u8 = 8;

/// Errors produced when decoding serialized indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexCodecError {
    /// The magic number did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Wrong index kind (single-bound vs dual-bound).
    BadKind(u8),
    /// The buffer ended before the declared contents.
    Truncated,
    /// A payload failed validation (out-of-order bound column, NaN
    /// bound, inconsistent counts, malformed or oversized varint,
    /// misaligned group). Carries where and what so a CLI failure is
    /// a diagnosable one-liner.
    Corrupt {
        /// Which part of the payload failed (directory, columns,
        /// arena, …).
        section: &'static str,
        /// Byte offset *within that section* of the offending datum.
        offset: usize,
        /// Expected-vs-found detail.
        detail: String,
    },
}

/// Shorthand constructor for [`IndexCodecError::Corrupt`].
fn corrupt(section: &'static str, offset: usize, detail: impl Into<String>) -> IndexCodecError {
    IndexCodecError::Corrupt {
        section,
        offset,
        detail: detail.into(),
    }
}

impl fmt::Display for IndexCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexCodecError::BadMagic => write!(f, "bad magic number"),
            IndexCodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            IndexCodecError::BadKind(k) => write!(f, "unexpected index kind {k}"),
            IndexCodecError::Truncated => write!(f, "buffer truncated"),
            IndexCodecError::Corrupt {
                section,
                offset,
                detail,
            } => {
                write!(f, "payload corrupt: {section} at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for IndexCodecError {}

/// Keys that can round-trip through the codec's `u128` slot.
pub trait IndexKey: Eq + Hash + Ord + Copy + Sync {
    /// Widens the key to 128 bits.
    fn to_u128(self) -> u128;
    /// Narrows a 128-bit value back to the key type.
    fn from_u128(v: u128) -> Self;
}

impl IndexKey for u32 {
    fn to_u128(self) -> u128 {
        u128::from(self)
    }
    fn from_u128(v: u128) -> Self {
        // seal-lint: allow(persisted-narrowing-cast) — narrowing is this trait's contract; writers only ever widen a real u32
        v as u32
    }
}

impl IndexKey for u64 {
    fn to_u128(self) -> u128 {
        u128::from(self)
    }
    fn from_u128(v: u128) -> Self {
        v as u64
    }
}

impl IndexKey for u128 {
    fn to_u128(self) -> u128 {
        self
    }
    fn from_u128(v: u128) -> Self {
        v
    }
}

fn check_remaining(buf: &impl Buf, need: usize) -> Result<(), IndexCodecError> {
    if buf.remaining() < need {
        Err(IndexCodecError::Truncated)
    } else {
        Ok(())
    }
}

/// Reads and validates the shared header, returning `(kind,
/// key_count)` for the caller to dispatch on.
fn read_header(buf: &mut impl Buf) -> Result<(u8, u64), IndexCodecError> {
    check_remaining(buf, 4 + 1 + 1 + 8)?;
    if buf.get_u32_le() != MAGIC {
        return Err(IndexCodecError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(IndexCodecError::BadVersion(version));
    }
    let kind = buf.get_u8();
    Ok((kind, buf.get_u64_le()))
}

/// Reads the SoA directory shared by kinds 5/6: keys + per-group lens,
/// returning `(keys, offsets)` with every count overflow-checked (a
/// corrupt header must error, not abort on a huge allocation) and the
/// strictly-ascending key invariant verified.
fn read_soa_directory<K: IndexKey>(
    buf: &mut impl Buf,
    key_count: usize,
    posting_count: usize,
) -> Result<(Vec<K>, Vec<usize>), IndexCodecError> {
    let directory = key_count
        .checked_mul(16 + 8)
        .ok_or(IndexCodecError::Truncated)?;
    check_remaining(buf, directory)?;
    let mut keys = Vec::with_capacity(key_count);
    let mut offsets = Vec::with_capacity(key_count + 1);
    offsets.push(0usize);
    let mut total = 0usize;
    for i in 0..key_count {
        keys.push(K::from_u128(buf.get_u128_le()));
        let raw_len = buf.get_u64_le();
        let len = usize::try_from(raw_len).map_err(|_| {
            corrupt(
                "soa directory",
                i * (16 + 8) + 16,
                format!("group length {raw_len} exceeds the address space"),
            )
        })?;
        total = total.checked_add(len).ok_or_else(|| {
            corrupt(
                "soa directory",
                i * (16 + 8) + 16,
                "summed group lengths overflow",
            )
        })?;
        offsets.push(total);
    }
    if let Some(i) = keys.windows(2).position(|w| w[0] >= w[1]) {
        return Err(corrupt(
            "soa directory",
            (i + 1) * (16 + 8),
            "keys not strictly ascending",
        ));
    }
    if total != posting_count {
        return Err(corrupt(
            "soa directory",
            0,
            format!("directory lengths sum to {total}, header declares {posting_count} postings"),
        ));
    }
    Ok((keys, offsets))
}

/// Validates one loaded group against the finalize order the probe
/// path depends on: the primary bound column non-increasing under
/// `total_cmp`, ties in ascending-id order, no NaN anywhere in either
/// bound column (`extra` is the dual form's unordered second column).
fn validate_soa_group(
    ids: &[ObjId],
    primary: &[f64],
    extra: Option<&[f64]>,
    span: std::ops::Range<usize>,
) -> Result<(), IndexCodecError> {
    for j in span.clone() {
        if primary[j].is_nan() || extra.is_some_and(|col| col[j].is_nan()) {
            return Err(corrupt("posting columns", j, "NaN bound"));
        }
        if j > span.start {
            match primary[j - 1].total_cmp(&primary[j]) {
                std::cmp::Ordering::Less => {
                    return Err(corrupt(
                        "posting columns",
                        j,
                        format!(
                            "bound column increases: {} then {}",
                            primary[j - 1],
                            primary[j]
                        ),
                    ))
                }
                std::cmp::Ordering::Equal if ids[j - 1] > ids[j] => {
                    return Err(corrupt(
                        "posting columns",
                        j,
                        format!("tie order violated: id {} before {}", ids[j - 1], ids[j]),
                    ))
                }
                _ => {}
            }
        }
    }
    Ok(())
}

impl<K: IndexKey> InvertedIndex<K> {
    /// Serializes the index in the SoA column format (kind 5): the
    /// directory, then the id column, then the bound column — the
    /// frozen arena's own layout, so loading is a validation walk plus
    /// bulk column reads rather than a re-sort.
    ///
    /// # Panics
    /// If postings have been pushed since the last
    /// [`finalize`](InvertedIndex::finalize): only the frozen arena is
    /// serialized, so encoding a half-staged index would silently drop
    /// data.
    pub fn to_bytes(&self) -> Bytes {
        assert!(
            self.is_finalized(),
            "InvertedIndex::to_bytes requires finalize() after the last push"
        );
        let mut buf =
            BytesMut::with_capacity(64 + self.key_count() * 24 + self.posting_count() * 12);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_SOA_SINGLE);
        buf.put_u64_le(self.key_count() as u64);
        buf.put_u64_le(self.posting_count() as u64);
        for (key, group) in self.iter() {
            buf.put_u128_le(key.to_u128());
            buf.put_u64_le(group.len() as u64);
        }
        // Groups are arena-contiguous in key order, so these loops
        // emit each column exactly as it sits in memory.
        for (_, group) in self.iter() {
            for &id in group.ids {
                buf.put_u32_le(id);
            }
        }
        for (_, group) in self.iter() {
            for &b in group.bounds {
                buf.put_f64_le(b);
            }
        }
        buf.freeze()
    }

    /// Serializes in the legacy interleaved (AoS) format (kind 1) —
    /// the pre-SoA write format, kept for migration tests and
    /// downgrade paths. [`from_bytes`](Self::from_bytes) reads both.
    ///
    /// # Panics
    /// If postings are staged (same contract as
    /// [`to_bytes`](Self::to_bytes)).
    pub fn to_bytes_aos(&self) -> Bytes {
        assert!(
            self.is_finalized(),
            "InvertedIndex::to_bytes_aos requires finalize() after the last push"
        );
        let mut buf = BytesMut::with_capacity(64 + self.posting_count() * 12);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_SINGLE);
        buf.put_u64_le(self.key_count() as u64);
        for (key, group) in self.iter() {
            buf.put_u128_le(key.to_u128());
            buf.put_u64_le(group.len() as u64);
            for (&id, &b) in group.ids.iter().zip(group.bounds) {
                buf.put_u32_le(id);
                buf.put_f64_le(b);
            }
        }
        buf.freeze()
    }

    /// Decodes an index from bytes; the result is finalized and ready
    /// to query. Accepts the SoA format (kind 5, loaded directly into
    /// the frozen arena after validation) and the legacy AoS format
    /// (kind 1, transposed into columns on read).
    pub fn from_bytes(mut buf: impl Buf) -> Result<Self, IndexCodecError> {
        let (kind, key_count) = read_header(&mut buf)?;
        match kind {
            KIND_SOA_SINGLE => Self::decode_soa(
                buf,
                usize::try_from(key_count).map_err(|_| IndexCodecError::Truncated)?,
            ),
            KIND_SINGLE => Self::decode_aos(buf, key_count),
            other => Err(IndexCodecError::BadKind(other)),
        }
    }

    fn decode_soa(mut buf: impl Buf, key_count: usize) -> Result<Self, IndexCodecError> {
        check_remaining(&buf, 8)?;
        let posting_count = usize::try_from(buf.get_u64_le())
            .map_err(|_| corrupt("header", 0, "posting count exceeds the address space"))?;
        let (keys, offsets) = read_soa_directory::<K>(&mut buf, key_count, posting_count)?;
        let column_bytes = posting_count
            .checked_mul(4 + 8)
            .ok_or(IndexCodecError::Truncated)?;
        check_remaining(&buf, column_bytes)?;
        let mut ids = Vec::with_capacity(posting_count);
        for _ in 0..posting_count {
            ids.push(buf.get_u32_le());
        }
        let mut bounds = Vec::with_capacity(posting_count);
        for _ in 0..posting_count {
            bounds.push(buf.get_f64_le());
        }
        for w in offsets.windows(2) {
            validate_soa_group(&ids, &bounds, None, w[0]..w[1])?;
        }
        Ok(InvertedIndex::from_frozen_parts(
            keys,
            offsets,
            SingleColumns { ids, bounds },
        ))
    }

    fn decode_aos(mut buf: impl Buf, key_count: u64) -> Result<Self, IndexCodecError> {
        let mut idx = InvertedIndex::new();
        for _ in 0..key_count {
            check_remaining(&buf, 16 + 8)?;
            let key = K::from_u128(buf.get_u128_le());
            let len = usize::try_from(buf.get_u64_le()).map_err(|_| IndexCodecError::Truncated)?;
            check_remaining(&buf, len.checked_mul(12).ok_or(IndexCodecError::Truncated)?)?;
            for _ in 0..len {
                let object: ObjId = buf.get_u32_le();
                let bound = buf.get_f64_le();
                if bound.is_nan() {
                    return Err(corrupt("aos postings", idx.posting_count(), "NaN bound"));
                }
                idx.push(key, object, bound);
            }
        }
        idx.finalize();
        Ok(idx)
    }
}

impl<K: IndexKey> HybridIndex<K> {
    /// Serializes the hybrid index in the SoA column format (kind 6):
    /// directory, id column, spatial column, textual column.
    ///
    /// # Panics
    /// If postings have been pushed since the last
    /// [`finalize`](HybridIndex::finalize): only the frozen arena is
    /// serialized, so encoding a half-staged index would silently drop
    /// data.
    pub fn to_bytes(&self) -> Bytes {
        assert!(
            self.is_finalized(),
            "HybridIndex::to_bytes requires finalize() after the last push"
        );
        let mut buf =
            BytesMut::with_capacity(64 + self.key_count() * 24 + self.posting_count() * 20);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_SOA_DUAL);
        buf.put_u64_le(self.key_count() as u64);
        buf.put_u64_le(self.posting_count() as u64);
        for (key, group) in self.iter() {
            buf.put_u128_le(key.to_u128());
            buf.put_u64_le(group.len() as u64);
        }
        for (_, group) in self.iter() {
            for &id in group.ids {
                buf.put_u32_le(id);
            }
        }
        for (_, group) in self.iter() {
            for &sb in group.spatial_bounds {
                buf.put_f64_le(sb);
            }
        }
        for (_, group) in self.iter() {
            for &tb in group.textual_bounds {
                buf.put_f64_le(tb);
            }
        }
        buf.freeze()
    }

    /// Serializes in the legacy interleaved (AoS) format (kind 2) —
    /// kept for migration tests and downgrade paths.
    ///
    /// # Panics
    /// If postings are staged.
    pub fn to_bytes_aos(&self) -> Bytes {
        assert!(
            self.is_finalized(),
            "HybridIndex::to_bytes_aos requires finalize() after the last push"
        );
        let mut buf = BytesMut::with_capacity(64 + self.posting_count() * 20);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_DUAL);
        buf.put_u64_le(self.key_count() as u64);
        for (key, group) in self.iter() {
            buf.put_u128_le(key.to_u128());
            buf.put_u64_le(group.len() as u64);
            for ((&id, &sb), &tb) in group
                .ids
                .iter()
                .zip(group.spatial_bounds)
                .zip(group.textual_bounds)
            {
                buf.put_u32_le(id);
                buf.put_f64_le(sb);
                buf.put_f64_le(tb);
            }
        }
        buf.freeze()
    }

    /// Decodes a hybrid index from bytes (finalized, ready to query).
    /// Accepts the SoA format (kind 6) and the legacy AoS format
    /// (kind 2, transposed on read).
    pub fn from_bytes(mut buf: impl Buf) -> Result<Self, IndexCodecError> {
        let (kind, key_count) = read_header(&mut buf)?;
        match kind {
            KIND_SOA_DUAL => Self::decode_soa(
                buf,
                usize::try_from(key_count).map_err(|_| IndexCodecError::Truncated)?,
            ),
            KIND_DUAL => Self::decode_aos(buf, key_count),
            other => Err(IndexCodecError::BadKind(other)),
        }
    }

    fn decode_soa(mut buf: impl Buf, key_count: usize) -> Result<Self, IndexCodecError> {
        check_remaining(&buf, 8)?;
        let posting_count = usize::try_from(buf.get_u64_le())
            .map_err(|_| corrupt("header", 0, "posting count exceeds the address space"))?;
        let (keys, offsets) = read_soa_directory::<K>(&mut buf, key_count, posting_count)?;
        let column_bytes = posting_count
            .checked_mul(4 + 8 + 8)
            .ok_or(IndexCodecError::Truncated)?;
        check_remaining(&buf, column_bytes)?;
        let mut ids = Vec::with_capacity(posting_count);
        for _ in 0..posting_count {
            ids.push(buf.get_u32_le());
        }
        let mut spatial = Vec::with_capacity(posting_count);
        for _ in 0..posting_count {
            spatial.push(buf.get_f64_le());
        }
        let mut textual = Vec::with_capacity(posting_count);
        for _ in 0..posting_count {
            textual.push(buf.get_f64_le());
        }
        for w in offsets.windows(2) {
            validate_soa_group(&ids, &spatial, Some(&textual), w[0]..w[1])?;
        }
        Ok(HybridIndex::from_frozen_parts(
            keys,
            offsets,
            DualColumns {
                ids,
                spatial,
                textual,
            },
        ))
    }

    fn decode_aos(mut buf: impl Buf, key_count: u64) -> Result<Self, IndexCodecError> {
        let mut idx = HybridIndex::new();
        for _ in 0..key_count {
            check_remaining(&buf, 16 + 8)?;
            let key = K::from_u128(buf.get_u128_le());
            let len = usize::try_from(buf.get_u64_le()).map_err(|_| IndexCodecError::Truncated)?;
            check_remaining(&buf, len.checked_mul(20).ok_or(IndexCodecError::Truncated)?)?;
            for _ in 0..len {
                let object: ObjId = buf.get_u32_le();
                let sb = buf.get_f64_le();
                let tb = buf.get_f64_le();
                if sb.is_nan() || tb.is_nan() {
                    return Err(corrupt("aos postings", idx.posting_count(), "NaN bound"));
                }
                idx.push(key, object, sb, tb);
            }
        }
        idx.finalize();
        Ok(idx)
    }
}

/// A deserialized quantizer scale, rejected unless finite and positive.
fn checked_scale(scale: f64) -> Result<Quantizer, IndexCodecError> {
    if !scale.is_finite() || scale <= 0.0 {
        return Err(corrupt(
            "group meta",
            0,
            format!("quantizer scale {scale} is not finite and positive"),
        ));
    }
    Ok(Quantizer::from_scale(scale))
}

/// Shared untrusted-input decode for the compressed kinds: header,
/// overflow-checked directory sizing (a corrupt count must fail, not
/// abort on a huge allocation), per-key meta parse, sorted-key check,
/// arena copy, and the full validation walk that rebuilds the byte
/// offsets so the probe path stays infallible. `kinds` is the
/// `(varint, block-packed)` kind-byte pair this index shape accepts —
/// the matched kind selects the [`IdCodec`] the validation walk and
/// the returned index use. `meta_bytes` is the per-entry directory
/// size after the key; `columns` the number of `u16` bound columns per
/// group.
#[allow(clippy::type_complexity)]
fn decode_compressed<K: IndexKey, M>(
    mut buf: impl Buf,
    kinds: (u8, u8),
    meta_bytes: usize,
    columns: usize,
    parse_meta: impl Fn(&mut dyn Buf) -> Result<M, IndexCodecError>,
    len_of: impl Fn(&M) -> usize,
) -> Result<(Vec<K>, Vec<usize>, Vec<M>, Bytes, usize, IdCodec), IndexCodecError> {
    let (kind, raw_key_count) = read_header(&mut buf)?;
    let codec = match kind {
        k if k == kinds.0 => IdCodec::Varint,
        k if k == kinds.1 => IdCodec::BlockPacked,
        other => return Err(IndexCodecError::BadKind(other)),
    };
    let key_count = usize::try_from(raw_key_count).map_err(|_| IndexCodecError::Truncated)?;
    check_remaining(&buf, 8)?;
    let arena_len = usize::try_from(buf.get_u64_le()).map_err(|_| IndexCodecError::Truncated)?;
    let directory = key_count
        .checked_mul(16 + meta_bytes)
        .ok_or(IndexCodecError::Truncated)?;
    check_remaining(&buf, directory)?;
    let mut keys = Vec::with_capacity(key_count);
    let mut meta = Vec::with_capacity(key_count);
    for _ in 0..key_count {
        keys.push(K::from_u128(buf.get_u128_le()));
        meta.push(parse_meta(&mut buf)?);
    }
    if let Some(i) = keys.windows(2).position(|w| w[0] >= w[1]) {
        return Err(corrupt(
            "compressed directory",
            (i + 1) * (16 + meta_bytes),
            "keys not strictly ascending",
        ));
    }
    check_remaining(&buf, arena_len)?;
    let mut raw = vec![0u8; arena_len];
    buf.copy_to_slice(&mut raw);
    let arena = Bytes::from(raw);
    let mut offsets = Vec::with_capacity(key_count + 1);
    offsets.push(0usize);
    let mut pos = 0usize;
    let mut posting_count = 0usize;
    for m in &meta {
        let group = &arena.as_slice()[pos..];
        let consumed = validate_group(group, len_of(m), columns, codec).ok_or_else(|| {
            corrupt(
                "compressed arena",
                pos,
                "group failed validation (bound order, id-column form, or size)",
            )
        })?;
        pos += consumed;
        offsets.push(pos);
        posting_count += len_of(m);
    }
    if pos != arena.len() {
        return Err(corrupt(
            "compressed arena",
            pos,
            format!(
                "groups end at byte {pos}, arena declares {} bytes",
                arena.len()
            ),
        ));
    }
    Ok((keys, offsets, meta, arena, posting_count, codec))
}

impl<K: IndexKey> CompressedInvertedIndex<K> {
    /// Serializes the compressed index: the directory, then the arena
    /// verbatim. This *is* the at-rest form — no recompression happens;
    /// the kind byte records the arena's id codec (kind 7 block-packed,
    /// kind 3 legacy varint).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.keys.len() * 28 + self.arena.len());
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(match self.codec {
            IdCodec::Varint => KIND_COMPRESSED_SINGLE,
            IdCodec::BlockPacked => KIND_PACKED_SINGLE,
        });
        buf.put_u64_le(self.keys.len() as u64);
        buf.put_u64_le(self.arena.len() as u64);
        for (key, m) in self.keys.iter().zip(&self.meta) {
            buf.put_u128_le(key.to_u128());
            buf.put_u32_le(m.len);
            buf.put_f64_le(m.quant.scale());
        }
        buf.put_slice(self.arena.as_slice());
        buf.freeze()
    }

    /// Decodes a compressed index (kind 3 varint or kind 7
    /// block-packed) and validates the whole arena (keys sorted, bound
    /// columns non-increasing, id columns well-formed), so the
    /// returned index can serve probes infallibly.
    pub fn from_bytes(buf: impl Buf) -> Result<Self, IndexCodecError> {
        let (keys, offsets, meta, arena, posting_count, codec) = decode_compressed(
            buf,
            (KIND_COMPRESSED_SINGLE, KIND_PACKED_SINGLE),
            4 + 8,
            1,
            |b| {
                let len = b.get_u32_le();
                Ok(GroupMeta {
                    len,
                    quant: checked_scale(b.get_f64_le())?,
                })
            },
            // seal-lint: allow(persisted-narrowing-cast) — len is u32; u32→usize never truncates on supported 64-bit targets
            |m: &GroupMeta| m.len as usize,
        )?;
        Ok(CompressedInvertedIndex {
            keys,
            offsets,
            meta,
            arena,
            posting_count,
            codec,
            source_generation: 0,
        })
    }
}

impl<K: IndexKey> CompressedHybridIndex<K> {
    /// Serializes the compressed hybrid index (directory + arena
    /// verbatim; kind 8 block-packed, kind 4 legacy varint).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.keys.len() * 36 + self.arena.len());
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(match self.codec {
            IdCodec::Varint => KIND_COMPRESSED_DUAL,
            IdCodec::BlockPacked => KIND_PACKED_DUAL,
        });
        buf.put_u64_le(self.keys.len() as u64);
        buf.put_u64_le(self.arena.len() as u64);
        for (key, m) in self.keys.iter().zip(&self.meta) {
            buf.put_u128_le(key.to_u128());
            buf.put_u32_le(m.len);
            buf.put_f64_le(m.spatial.scale());
            buf.put_f64_le(m.textual.scale());
        }
        buf.put_slice(self.arena.as_slice());
        buf.freeze()
    }

    /// Decodes and fully validates a compressed hybrid index (kind 4
    /// varint or kind 8 block-packed).
    pub fn from_bytes(buf: impl Buf) -> Result<Self, IndexCodecError> {
        let (keys, offsets, meta, arena, posting_count, codec) = decode_compressed(
            buf,
            (KIND_COMPRESSED_DUAL, KIND_PACKED_DUAL),
            4 + 16,
            2,
            |b| {
                let len = b.get_u32_le();
                Ok(DualGroupMeta {
                    len,
                    spatial: checked_scale(b.get_f64_le())?,
                    textual: checked_scale(b.get_f64_le())?,
                })
            },
            // seal-lint: allow(persisted-narrowing-cast) — len is u32; u32→usize never truncates on supported 64-bit targets
            |m: &DualGroupMeta| m.len as usize,
        )?;
        Ok(CompressedHybridIndex {
            keys,
            offsets,
            meta,
            arena,
            posting_count,
            codec,
            source_generation: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_roundtrip() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(7, 0, 3.5);
        idx.push(7, 1, 1.25);
        idx.push(42, 2, 9.0);
        idx.finalize();
        let bytes = idx.to_bytes();
        let back: InvertedIndex<u64> = InvertedIndex::from_bytes(bytes).unwrap();
        assert_eq!(back.key_count(), 2);
        assert_eq!(back.posting_count(), 3);
        assert_eq!(back.qualifying(&7, 2.0).len(), 1);
        assert_eq!(back.qualifying(&7, 0.0).len(), 2);
        assert_eq!(back.qualifying(&42, 9.0), &[2]);
        assert!(back.is_finalized());
        assert_eq!(back.generation(), 1);
    }

    #[test]
    fn dual_roundtrip() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(1u128 << 70, 0, 900.0, 1.7);
        idx.push(1u128 << 70, 1, 550.0, 1.9);
        idx.finalize();
        let back: HybridIndex<u128> = HybridIndex::from_bytes(idx.to_bytes()).unwrap();
        let got: Vec<u32> = back.qualifying(&(1u128 << 70), 600.0, 0.5).collect();
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn legacy_aos_bytes_load_and_answer_identically() {
        // The migration contract: kind 1/2 files written by the AoS
        // writer load under the SoA engine and serve the same answers
        // as the SoA codec.
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for key in 0u64..6 {
            for obj in 0..40u32 {
                idx.push(key, obj * 7 % 41, f64::from(obj % 13) * 1.5);
            }
        }
        idx.finalize();
        let from_aos: InvertedIndex<u64> = InvertedIndex::from_bytes(idx.to_bytes_aos()).unwrap();
        let from_soa: InvertedIndex<u64> = InvertedIndex::from_bytes(idx.to_bytes()).unwrap();
        assert_eq!(from_aos.posting_count(), from_soa.posting_count());
        for key in 0u64..6 {
            for thr in [0.0, 3.0, 9.0, 100.0] {
                assert_eq!(
                    from_aos.qualifying(&key, thr),
                    from_soa.qualifying(&key, thr),
                    "key {key} thr {thr}"
                );
                assert_eq!(from_aos.qualifying(&key, thr), idx.qualifying(&key, thr));
            }
        }

        let mut h: HybridIndex<u64> = HybridIndex::new();
        for key in 0u64..4 {
            for obj in 0..25u32 {
                h.push(key, obj, f64::from(obj % 7) * 10.0, f64::from(obj % 3));
            }
        }
        h.finalize();
        let from_aos: HybridIndex<u64> = HybridIndex::from_bytes(h.to_bytes_aos()).unwrap();
        for key in 0u64..4 {
            let a: Vec<ObjId> = from_aos.qualifying(&key, 30.0, 1.0).collect();
            let b: Vec<ObjId> = h.qualifying(&key, 30.0, 1.0).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn refinalized_index_roundtrips() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(7, 0, 3.5);
        idx.finalize();
        idx.push(7, 1, 9.0);
        idx.push(8, 2, 1.0);
        idx.finalize();
        let back: InvertedIndex<u64> = InvertedIndex::from_bytes(idx.to_bytes()).unwrap();
        assert_eq!(back.key_count(), 2);
        assert_eq!(back.posting_count(), 3);
        assert_eq!(back.qualifying(&7, 4.0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "requires finalize()")]
    fn staged_postings_refuse_to_serialize() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 1.0);
        idx.finalize();
        idx.push(2, 1, 1.0); // staged, not finalized
        let _ = idx.to_bytes();
    }

    #[test]
    fn rejects_garbage() {
        let garbage = Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14]);
        assert_eq!(
            InvertedIndex::<u64>::from_bytes(garbage).unwrap_err(),
            IndexCodecError::BadMagic
        );
    }

    #[test]
    fn rejects_wrong_kind() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 1.0);
        idx.finalize();
        assert_eq!(
            HybridIndex::<u64>::from_bytes(idx.to_bytes()).unwrap_err(),
            IndexCodecError::BadKind(KIND_SOA_SINGLE)
        );
        assert_eq!(
            HybridIndex::<u64>::from_bytes(idx.to_bytes_aos()).unwrap_err(),
            IndexCodecError::BadKind(KIND_SINGLE)
        );
    }

    #[test]
    fn rejects_truncated() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for i in 0..10 {
            idx.push(1, i, f64::from(i));
        }
        idx.finalize();
        for bytes in [idx.to_bytes(), idx.to_bytes_aos()] {
            let cut = bytes.slice(..bytes.len() - 5);
            assert_eq!(
                InvertedIndex::<u64>::from_bytes(cut).unwrap_err(),
                IndexCodecError::Truncated
            );
        }
    }

    #[test]
    fn soa_rejects_out_of_order_and_nan_bounds() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 5.0);
        idx.push(1, 1, 3.0);
        idx.finalize();
        let bytes = idx.to_bytes();
        // Bound column starts after header(14) + posting_count(8) +
        // directory(24) + id column(2×4). Swap the two bounds so the
        // column increases.
        let col_at = 14 + 8 + 24 + 8;
        let mut raw = bytes.as_slice().to_vec();
        let (a, b) = (col_at, col_at + 8);
        for i in 0..8 {
            raw.swap(a + i, b + i);
        }
        assert!(
            matches!(
                InvertedIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
                IndexCodecError::Corrupt { .. }
            ),
            "increasing bound column must be rejected"
        );
        // NaN bound in an otherwise ordered column.
        let mut raw = bytes.as_slice().to_vec();
        raw[col_at..col_at + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(
            matches!(
                InvertedIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
                IndexCodecError::Corrupt { .. }
            ),
            "NaN bound must be rejected"
        );
    }

    #[test]
    fn soa_rejects_tie_order_violation() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        idx.push(1, 0, 5.0);
        idx.push(1, 1, 5.0);
        idx.finalize();
        let bytes = idx.to_bytes();
        // Equal bounds: ids must be ascending. Swap the two u32 ids.
        let ids_at = 14 + 8 + 24;
        let mut raw = bytes.as_slice().to_vec();
        let (a, b) = (ids_at, ids_at + 4);
        for i in 0..4 {
            raw.swap(a + i, b + i);
        }
        assert!(matches!(
            InvertedIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
            IndexCodecError::Corrupt { .. }
        ));
    }

    #[test]
    fn soa_rejects_inconsistent_counts_without_allocating() {
        // A huge declared key/posting count must error out before any
        // allocation sized from it.
        let mut raw = Vec::new();
        raw.put_u32_le(MAGIC);
        raw.put_u8(VERSION);
        raw.put_u8(KIND_SOA_SINGLE);
        raw.put_u64_le(1u64 << 60); // key_count
        raw.put_u64_le(0); // posting_count
        assert_eq!(
            InvertedIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
            IndexCodecError::Truncated
        );
        // Directory says 2 postings, header says 1.
        let mut raw = Vec::new();
        raw.put_u32_le(MAGIC);
        raw.put_u8(VERSION);
        raw.put_u8(KIND_SOA_SINGLE);
        raw.put_u64_le(1);
        raw.put_u64_le(1);
        raw.put_u128_le(9);
        raw.put_u64_le(2);
        raw.put_u32_le(0);
        raw.put_u32_le(1);
        raw.put_f64_le(1.0);
        raw.put_f64_le(0.5);
        assert!(matches!(
            InvertedIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
            IndexCodecError::Corrupt { .. }
        ));
    }

    #[test]
    fn empty_index_roundtrip() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.finalize();
        let back: InvertedIndex<u32> = InvertedIndex::from_bytes(idx.to_bytes()).unwrap();
        assert_eq!(back.key_count(), 0);
        let back: InvertedIndex<u32> = InvertedIndex::from_bytes(idx.to_bytes_aos()).unwrap();
        assert_eq!(back.key_count(), 0);
    }

    #[test]
    fn error_display() {
        assert!(IndexCodecError::BadMagic.to_string().contains("magic"));
        assert!(IndexCodecError::Truncated.to_string().contains("truncated"));
        assert!(IndexCodecError::BadVersion(9).to_string().contains('9'));
        assert!(IndexCodecError::BadKind(3).to_string().contains('3'));
        let c = corrupt("posting columns", 17, "NaN bound");
        let msg = c.to_string();
        assert!(msg.contains("corrupt"), "{msg}");
        assert!(
            msg.contains("posting columns") && msg.contains("17") && msg.contains("NaN"),
            "structured detail must surface in Display: {msg}"
        );
    }

    fn sample_compressed() -> CompressedInvertedIndex<u64> {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for key in 0u64..10 {
            for obj in 0..(20 + key as u32 * 7) {
                idx.push(key, obj * 3, f64::from(obj % 13) * 1.5);
            }
        }
        idx.finalize();
        CompressedInvertedIndex::compress(&idx)
    }

    #[test]
    fn compressed_single_roundtrip_serves_identically() {
        let c = sample_compressed();
        let bytes = c.to_bytes();
        let back: CompressedInvertedIndex<u64> =
            CompressedInvertedIndex::from_bytes(bytes).unwrap();
        assert_eq!(back.key_count(), c.key_count());
        assert_eq!(back.posting_count(), c.posting_count());
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        for key in 0u64..10 {
            for thr in [0.0, 3.0, 9.0, 100.0] {
                assert_eq!(
                    c.qualifying_into(&key, thr, &mut s1),
                    back.qualifying_into(&key, thr, &mut s2),
                    "key {key} thr {thr}"
                );
            }
        }
    }

    #[test]
    fn compressed_dual_roundtrip_serves_identically() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        for k in 0u128..6 {
            for obj in 0..40u32 {
                idx.push(
                    k << 64,
                    obj,
                    f64::from(obj % 11) * 100.0,
                    f64::from(obj % 7) / 3.0,
                );
            }
        }
        idx.finalize();
        let c = CompressedHybridIndex::compress(&idx);
        let back: CompressedHybridIndex<u128> =
            CompressedHybridIndex::from_bytes(c.to_bytes()).unwrap();
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        for k in 0u128..6 {
            for (cr, ct) in [(0.0, 0.0), (500.0, 1.0), (1001.0, 0.5)] {
                assert_eq!(
                    c.qualifying_into(&(k << 64), cr, ct, &mut s1),
                    back.qualifying_into(&(k << 64), cr, ct, &mut s2),
                );
            }
        }
    }

    #[test]
    fn compressed_rejects_wrong_kind_and_truncation() {
        // compress() defaults to BlockPacked, so the sample is kind 7.
        let c = sample_compressed();
        let bytes = c.to_bytes();
        assert_eq!(bytes.as_slice()[5], KIND_PACKED_SINGLE);
        assert_eq!(
            InvertedIndex::<u64>::from_bytes(bytes.clone()).unwrap_err(),
            IndexCodecError::BadKind(KIND_PACKED_SINGLE)
        );
        assert_eq!(
            CompressedHybridIndex::<u64>::from_bytes(bytes.clone()).unwrap_err(),
            IndexCodecError::BadKind(KIND_PACKED_SINGLE)
        );
        let cut = bytes.slice(..bytes.len() - 3);
        assert_eq!(
            CompressedInvertedIndex::<u64>::from_bytes(cut).unwrap_err(),
            IndexCodecError::Truncated
        );
    }

    #[test]
    fn both_codec_kinds_roundtrip_and_agree() {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for key in 0u64..6 {
            for obj in 0..300u32 {
                idx.push(key, obj * 2, f64::from(obj % 5));
            }
        }
        idx.finalize();
        let packed = CompressedInvertedIndex::compress_with_codec(&idx, IdCodec::BlockPacked);
        let varint = CompressedInvertedIndex::compress_with_codec(&idx, IdCodec::Varint);
        assert_eq!(packed.to_bytes().as_slice()[5], KIND_PACKED_SINGLE);
        assert_eq!(varint.to_bytes().as_slice()[5], KIND_COMPRESSED_SINGLE);
        let p: CompressedInvertedIndex<u64> =
            CompressedInvertedIndex::from_bytes(packed.to_bytes()).unwrap();
        let v: CompressedInvertedIndex<u64> =
            CompressedInvertedIndex::from_bytes(varint.to_bytes()).unwrap();
        assert_eq!(p.codec(), IdCodec::BlockPacked);
        assert_eq!(v.codec(), IdCodec::Varint);
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        for key in 0u64..6 {
            for thr in [0.0, 1.0, 3.5, 4.0] {
                assert_eq!(
                    p.qualifying_into(&key, thr, &mut s1),
                    v.qualifying_into(&key, thr, &mut s2),
                    "key {key} thr {thr}"
                );
            }
        }
    }

    #[test]
    fn packed_kind_rejects_bad_block_width_behind_valid_header() {
        // Corrupt the first block's width byte in a kind-7 payload:
        // the arena validation walk must produce a typed error.
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for obj in 0..256u32 {
            idx.push(1, obj, 1.0);
        }
        idx.finalize();
        let c = CompressedInvertedIndex::compress(&idx);
        let bytes = c.to_bytes();
        // Arena starts after header (14) + arena_len (8) + directory
        // (1 key × 28); the id column follows the 2-byte×256 bound
        // column, and its first byte is the block width.
        let width_at = 14 + 8 + 28 + 2 * 256;
        for bad in [0u8, 65, 255] {
            let mut raw = bytes.as_slice().to_vec();
            raw[width_at] = bad;
            assert!(
                matches!(
                    CompressedInvertedIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
                    IndexCodecError::Corrupt { .. }
                ),
                "width {bad} must be rejected"
            );
        }
    }

    #[test]
    fn compressed_rejects_corrupt_bound_column() {
        let c = sample_compressed();
        let mut raw = c.to_bytes().as_slice().to_vec();
        // Arena begins after header (14) + arena_len (8) + directory
        // (key_count × 28). Break the first group's non-increasing
        // bound column: zero the first u16, max the second.
        let arena_at = 14 + 8 + c.key_count() * 28;
        raw[arena_at] = 0;
        raw[arena_at + 1] = 0;
        raw[arena_at + 2] = 0xFF;
        raw[arena_at + 3] = 0xFF;
        assert!(matches!(
            CompressedInvertedIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
            IndexCodecError::Corrupt { .. }
        ));
    }

    #[test]
    fn compressed_rejects_huge_key_count_without_allocating() {
        // A corrupt header declaring 2^60 keys must error out, not
        // abort on a multi-exabyte Vec reservation.
        let mut raw = Vec::new();
        raw.put_u32_le(MAGIC);
        raw.put_u8(VERSION);
        raw.put_u8(KIND_COMPRESSED_SINGLE);
        raw.put_u64_le(1u64 << 60);
        raw.put_u64_le(0); // arena_len
        assert_eq!(
            CompressedInvertedIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
            IndexCodecError::Truncated
        );
        raw[5] = KIND_COMPRESSED_DUAL;
        assert_eq!(
            CompressedHybridIndex::<u64>::from_bytes(&raw[..]).unwrap_err(),
            IndexCodecError::Truncated
        );
    }

    #[test]
    fn compressed_empty_roundtrip() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.finalize();
        let c = CompressedInvertedIndex::compress(&idx);
        let back: CompressedInvertedIndex<u32> =
            CompressedInvertedIndex::from_bytes(c.to_bytes()).unwrap();
        assert_eq!(back.key_count(), 0);
        assert_eq!(back.posting_count(), 0);
    }
}
