//! Keyed hybrid index over dual-bounded postings (Section 5), stored
//! as parallel id/spatial/textual columns in a single contiguous arena
//! (columnar CSR layout) once finalized.

use crate::columns::{DualColumns, DualPostingsView};
use crate::csr::CsrCore;
use crate::{DualPosting, ObjId};
use serde::{Deserialize, Serialize};
use std::hash::Hash;

/// The hybrid inverted index of Sections 5.1/5.2: hash-based hybrid
/// signature element `(t, g)` → dual-bounded posting list.
///
/// Keys are packed `(token, grid-cell)` pairs; `seal-core` packs them as
/// `u128 = (token as u128) << 64 | cell`.
///
/// A thin wrapper over the same frozen-CSR container as
/// [`crate::InvertedIndex`], with one id column and **two** bound
/// columns. Each group is sorted by descending *spatial* bound — the
/// axis with the most distinct values, so the cut is deepest on
/// average — and the textual bound column is checked row-by-row for
/// the surviving prefix. The probe touches the spatial column for the
/// cut, the textual column for the per-row check, and the id column
/// for the survivors; never an interleaved struct.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridIndex<K: Eq + Hash + Ord> {
    core: CsrCore<K, DualColumns>,
}

impl<K: Eq + Hash + Ord + Copy> Default for HybridIndex<K> {
    fn default() -> Self {
        HybridIndex {
            core: CsrCore::default(),
        }
    }
}

fn cmp_dual(a: &DualPosting, b: &DualPosting) -> std::cmp::Ordering {
    crate::csr::desc_f64(a.spatial_bound, b.spatial_bound).then(a.object.cmp(&b.object))
}

impl<K: Eq + Hash + Ord + Copy + Sync> HybridIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a posting for `key` with the two bounds of Section 5.1.
    ///
    /// # Panics
    /// If either bound is NaN — rejected at insert time so the
    /// descending spatial sort and both qualifying comparisons stay
    /// well-defined.
    pub fn push(&mut self, key: K, object: ObjId, spatial_bound: f64, textual_bound: f64) {
        crate::csr::check_bound(spatial_bound, "spatial bound");
        crate::csr::check_bound(textual_bound, "textual bound");
        self.core
            .push(key, DualPosting::new(object, spatial_bound, textual_bound));
    }

    /// Compacts all postings into the contiguous columnar arena
    /// (groups in descending spatial-bound order). Must be called
    /// before querying; pushing after a finalize and re-finalizing
    /// **merges** the new postings in — staged postings are sorted,
    /// frozen groups merged, never re-sorted.
    pub fn finalize(&mut self) {
        self.core.finalize(cmp_dual);
    }

    /// [`finalize`](Self::finalize) with the staged per-group sorts
    /// fanned out over `threads` workers (0 = all cores). The result
    /// is bit-identical for every thread count.
    pub fn finalize_with_threads(&mut self, threads: usize) {
        self.core.finalize_with_threads(cmp_dual, threads);
    }

    /// Rebuilds a frozen index from validated columnar parts (the SoA
    /// codec's direct load path — `crate::serialize` has already
    /// checked every CSR invariant).
    pub(crate) fn from_frozen_parts(keys: Vec<K>, offsets: Vec<usize>, arena: DualColumns) -> Self {
        HybridIndex {
            core: CsrCore::from_frozen(keys, offsets, arena),
        }
    }

    /// True when every pushed posting is in the frozen arena (no
    /// staged postings awaiting [`finalize`](Self::finalize)).
    pub fn is_finalized(&self) -> bool {
        self.core.is_finalized()
    }

    /// The generation of the frozen arena: 0 before the first
    /// finalize, then +1 for every finalize that folded staged
    /// postings in (no-op finalizes do not count).
    pub fn generation(&self) -> u64 {
        self.core.generation()
    }

    /// The sorted keys the most recent folding finalize touched —
    /// every other group's arena bytes are identical to the previous
    /// generation's. Incremental re-encoders
    /// ([`crate::CompressedHybridIndex::recompress`]) re-pack only
    /// these groups. Empty before the first finalize and after a
    /// codec load.
    pub fn last_folded_keys(&self) -> &[K] {
        self.core.last_folded_keys()
    }

    /// Generation-aware re-finalize: merges staged postings into the
    /// frozen arena and returns the generation now being served. For
    /// the applicability caveat (bounds must not depend on corpus
    /// statistics) see
    /// [`InvertedIndex::refinalize_generation`](crate::InvertedIndex::refinalize_generation).
    pub fn refinalize_generation(&mut self, threads: usize) -> u64 {
        self.finalize_with_threads(threads);
        self.core.generation()
    }

    /// The largest object id in the **frozen** arena (`None` when
    /// empty). Load paths use this to check a deserialized index
    /// against the store it is being attached to before any probe
    /// indexes a per-object scratch table with an id.
    pub fn max_object_id(&self) -> Option<ObjId> {
        self.core.arena().ids.iter().copied().max()
    }

    /// The full list for a key, if any, as a columnar view (descending
    /// spatial-bound order).
    pub fn list(&self, key: &K) -> Option<DualPostingsView<'_>> {
        let span = self.core.group_span(key)?;
        let a = self.core.arena();
        Some(DualPostingsView {
            ids: &a.ids[span.clone()],
            spatial_bounds: &a.spatial[span.clone()],
            textual_bounds: &a.textual[span],
        })
    }

    /// Iterates the object ids qualifying under both thresholds,
    /// `I_{c_R, c_T}(key)`: one [`bound_cut`](crate::bound_cut) over
    /// the spatial column, then a textual-column check per surviving
    /// row, yielding ids from the id column.
    #[inline]
    pub fn qualifying<'a>(
        &'a self,
        key: &K,
        c_spatial: f64,
        c_textual: f64,
    ) -> impl Iterator<Item = ObjId> + 'a {
        debug_assert!(self.core.is_finalized(), "query on non-finalized index");
        let (ids, spatial, textual) = match self.core.group_span(key) {
            Some(span) => {
                let a = self.core.arena();
                (
                    &a.ids[span.clone()],
                    &a.spatial[span.clone()],
                    &a.textual[span],
                )
            }
            None => (&[][..], &[][..], &[][..]),
        };
        let cut = crate::csr::bound_cut(spatial, c_spatial);
        ids[..cut]
            .iter()
            .zip(&textual[..cut])
            .filter(move |&(_, &tb)| tb >= c_textual)
            .map(|(&id, _)| id)
    }

    /// `|I_{c_R}(key)|` before the textual check — the spatial-cut
    /// length alone, costed without touching the id or textual
    /// columns.
    #[inline]
    pub fn qualifying_len(&self, key: &K, c_spatial: f64) -> usize {
        debug_assert!(self.core.is_finalized(), "query on non-finalized index");
        match self.core.group_span(key) {
            Some(span) => crate::csr::bound_cut(&self.core.arena().spatial[span], c_spatial),
            None => 0,
        }
    }

    /// Number of distinct keys (hash buckets actually populated).
    pub fn key_count(&self) -> usize {
        self.core.key_count()
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.core.posting_count()
    }

    /// Exact heap size in bytes of the frozen layout (the three
    /// columns + key table + offsets, plus any staged postings).
    pub fn size_bytes(&self) -> usize {
        self.core.size_bytes()
    }

    /// Iterates `(key, group view)` in ascending key order.
    ///
    /// # Panics
    /// If postings are staged (push without a following
    /// [`finalize`](Self::finalize)): iteration sees only the frozen
    /// arena and would silently drop the staged postings.
    pub fn iter(&self) -> impl Iterator<Item = (K, DualPostingsView<'_>)> + '_ {
        let a = self.core.arena();
        self.core.iter_spans().map(move |(k, span)| {
            (
                k,
                DualPostingsView {
                    ids: &a.ids[span.clone()],
                    spatial_bounds: &a.spatial[span.clone()],
                    textual_bounds: &a.textual[span],
                },
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(token: u64, cell: u64) -> u128 {
        (u128::from(token) << 64) | u128::from(cell)
    }

    #[test]
    fn figure9_example() {
        // Figure 9's inverted lists (token t1 = 1, grids by number):
        // (t1,g10): o1 2400/1.1, o2 1525/1.9
        // (t1,g11): o5 1100/1.7, o1 1075/1.9
        // (t1,g14): o1 900/1.7,  o2 550/1.9
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(key(1, 10), 0, 2400.0, 1.1);
        idx.push(key(1, 10), 1, 1525.0, 1.9);
        idx.push(key(1, 11), 4, 1100.0, 1.7);
        idx.push(key(1, 11), 0, 1075.0, 1.9);
        idx.push(key(1, 14), 0, 900.0, 1.7);
        idx.push(key(1, 14), 1, 550.0, 1.9);
        idx.finalize();

        // cR = 600, cT = 0.57: the (t1,g14) list returns only o1, as the
        // paper notes ("the inverted list of element (t1, g14) only
        // returns o1").
        let got: Vec<ObjId> = idx.qualifying(&key(1, 14), 600.0, 0.57).collect();
        assert_eq!(got, vec![0]);

        // (t1,g10): o1's textual bound 1.1 ≥ 0.57 and o2 1.9 ≥ 0.57 —
        // both qualify spatially too.
        let got: Vec<ObjId> = idx.qualifying(&key(1, 10), 600.0, 0.57).collect();
        assert_eq!(got, vec![0, 1]);

        assert_eq!(idx.key_count(), 3);
        assert_eq!(idx.posting_count(), 6);
        assert_eq!(idx.qualifying(&key(9, 9), 0.0, 0.0).count(), 0);
        assert_eq!(idx.qualifying_len(&key(1, 10), 600.0), 2);
        assert_eq!(idx.qualifying_len(&key(9, 9), 0.0), 0);
    }

    #[test]
    fn spatial_cut_and_textual_filter() {
        // Sorted by spatial bound; textual bound prunes within the cut.
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(key(1, 1), 4, 1100.0, 1.7);
        idx.push(key(1, 1), 0, 1075.0, 1.9);
        idx.finalize();
        let got: Vec<ObjId> = idx.qualifying(&key(1, 1), 600.0, 1.8).collect();
        assert_eq!(got, vec![0], "o5's textual bound 1.7 < 1.8 is pruned");
        let got: Vec<ObjId> = idx.qualifying(&key(1, 1), 1090.0, 0.0).collect();
        assert_eq!(got, vec![4], "spatial cut drops o1");
    }

    #[test]
    fn list_view_columns_are_row_aligned() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(key(1, 1), 4, 1100.0, 1.7);
        idx.push(key(1, 1), 0, 1075.0, 1.9);
        idx.finalize();
        let v = idx.list(&key(1, 1)).unwrap();
        assert_eq!(v.ids, &[4, 0]);
        assert_eq!(v.spatial_bounds, &[1100.0, 1075.0]);
        assert_eq!(v.textual_bounds, &[1.7, 1.9]);
        assert_eq!(v.get(1), DualPosting::new(0, 1075.0, 1.9));
    }

    #[test]
    #[should_panic(expected = "NaN spatial bound rejected at insert time")]
    fn nan_spatial_bound_rejected_at_insert() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(key(1, 1), 0, f64::NAN, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN textual bound rejected at insert time")]
    fn nan_textual_bound_rejected_at_insert() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(key(1, 1), 0, 1.0, f64::NAN);
    }

    #[test]
    fn size_accounting() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        let base = idx.size_bytes();
        idx.push(key(1, 1), 0, 1.0, 1.0);
        assert!(idx.size_bytes() > base);
    }

    #[test]
    fn refinalize_generation_tracks_folding_freezes() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        assert_eq!(idx.generation(), 0);
        idx.push(key(1, 1), 0, 1.0, 1.0);
        assert_eq!(idx.refinalize_generation(1), 1);
        assert_eq!(idx.refinalize_generation(2), 1, "no-op freeze");
        idx.push(key(1, 2), 1, 2.0, 0.5);
        assert_eq!(idx.refinalize_generation(0), 2);
        assert_eq!(idx.posting_count(), 2);
    }

    #[test]
    fn iteration() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(key(1, 2), 0, 1.0, 1.0);
        idx.push(key(3, 4), 1, 1.0, 1.0);
        idx.finalize();
        assert_eq!(idx.iter().count(), 2);
        let total: usize = idx.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, idx.posting_count(), "arena holds every posting");
    }
}
