//! Keyed hybrid index over [`DualPostingList`]s (Section 5).

use crate::{DualPosting, DualPostingList, ObjId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// The hybrid inverted index of Sections 5.1/5.2: hash-based hybrid
/// signature element `(t, g)` → dual-bounded posting list.
///
/// Keys are packed `(token, grid-cell)` pairs; `seal-core` packs them as
/// `u128 = (token as u128) << 64 | cell`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridIndex<K: Eq + Hash> {
    lists: HashMap<K, DualPostingList>,
    posting_count: usize,
}

impl<K: Eq + Hash + Copy> Default for HybridIndex<K> {
    fn default() -> Self {
        HybridIndex {
            lists: HashMap::new(),
            posting_count: 0,
        }
    }
}

impl<K: Eq + Hash + Copy> HybridIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a posting for `key` with the two bounds of Section 5.1.
    pub fn push(&mut self, key: K, object: ObjId, spatial_bound: f64, textual_bound: f64) {
        self.lists
            .entry(key)
            .or_default()
            .push(object, spatial_bound, textual_bound);
        self.posting_count += 1;
    }

    /// Finalizes all lists. Must be called before querying.
    pub fn finalize(&mut self) {
        for list in self.lists.values_mut() {
            list.finalize();
        }
    }

    /// The full list for a key, if any.
    pub fn list(&self, key: &K) -> Option<&DualPostingList> {
        self.lists.get(key)
    }

    /// Iterates the postings qualifying under both thresholds,
    /// `I_{c_R, c_T}(key)`.
    pub fn qualifying<'a>(
        &'a self,
        key: &K,
        c_spatial: f64,
        c_textual: f64,
    ) -> Box<dyn Iterator<Item = &'a DualPosting> + 'a> {
        match self.lists.get(key) {
            Some(l) => Box::new(l.qualifying(c_spatial, c_textual)),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Number of distinct keys (hash buckets actually populated).
    pub fn key_count(&self) -> usize {
        self.lists.len()
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        let posting_bytes: usize = self.lists.values().map(|l| l.size_bytes()).sum();
        let key_bytes = self.lists.len()
            * (std::mem::size_of::<K>() + std::mem::size_of::<DualPostingList>());
        posting_bytes + key_bytes
    }

    /// Iterates `(key, list)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &DualPostingList)> {
        self.lists.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(token: u64, cell: u64) -> u128 {
        (u128::from(token) << 64) | u128::from(cell)
    }

    #[test]
    fn figure9_example() {
        // Figure 9's inverted lists (token t1 = 1, grids by number):
        // (t1,g10): o1 2400/1.1, o2 1525/1.9
        // (t1,g11): o5 1100/1.7, o1 1075/1.9
        // (t1,g14): o1 900/1.7,  o2 550/1.9
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(key(1, 10), 0, 2400.0, 1.1);
        idx.push(key(1, 10), 1, 1525.0, 1.9);
        idx.push(key(1, 11), 4, 1100.0, 1.7);
        idx.push(key(1, 11), 0, 1075.0, 1.9);
        idx.push(key(1, 14), 0, 900.0, 1.7);
        idx.push(key(1, 14), 1, 550.0, 1.9);
        idx.finalize();

        // cR = 600, cT = 0.57: the (t1,g14) list returns only o1, as the
        // paper notes ("the inverted list of element (t1, g14) only
        // returns o1").
        let got: Vec<ObjId> = idx
            .qualifying(&key(1, 14), 600.0, 0.57)
            .map(|p| p.object)
            .collect();
        assert_eq!(got, vec![0]);

        // (t1,g10): o1's textual bound 1.1 ≥ 0.57 and o2 1.9 ≥ 0.57 —
        // both qualify spatially too.
        let got: Vec<ObjId> = idx
            .qualifying(&key(1, 10), 600.0, 0.57)
            .map(|p| p.object)
            .collect();
        assert_eq!(got, vec![0, 1]);

        assert_eq!(idx.key_count(), 3);
        assert_eq!(idx.posting_count(), 6);
        assert_eq!(idx.qualifying(&key(9, 9), 0.0, 0.0).count(), 0);
    }

    #[test]
    fn size_accounting() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        let base = idx.size_bytes();
        idx.push(key(1, 1), 0, 1.0, 1.0);
        assert!(idx.size_bytes() > base);
    }

    #[test]
    fn iteration() {
        let mut idx: HybridIndex<u128> = HybridIndex::new();
        idx.push(key(1, 2), 0, 1.0, 1.0);
        idx.push(key(3, 4), 1, 1.0, 1.0);
        idx.finalize();
        assert_eq!(idx.iter().count(), 2);
    }
}
