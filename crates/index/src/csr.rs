//! The shared frozen-CSR container behind [`crate::InvertedIndex`] and
//! [`crate::HybridIndex`].
//!
//! Building appends into a per-key staging map; [`CsrCore::finalize`]
//! compacts everything into **one contiguous postings arena** plus a
//! sorted key table with CSR offsets:
//!
//! ```text
//! keys:    [k0, k1, k2, ...]          sorted ascending
//! offsets: [0, |I(k0)|, |I(k0)|+|I(k1)|, ...]   len = keys.len() + 1
//! arena:   [ I(k0) postings | I(k1) postings | ... ]
//! ```
//!
//! A probe is one binary search over `keys` plus whatever cut the
//! wrapper performs on the group slice — no pointer chasing, no
//! per-list heap objects, and the whole read path is `&self`
//! (shared-nothing across query threads). The wrappers choose the
//! per-group sort order (descending bound vs. descending spatial
//! bound) via the comparator passed to [`finalize`](CsrCore::finalize).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// A keyed collection of posting groups in the frozen-CSR layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CsrCore<K: Eq + Hash + Ord, P> {
    /// Postings pushed since the last finalize, keyed for grouping.
    staging: HashMap<K, Vec<P>>,
    /// Sorted keys of the frozen arena.
    keys: Vec<K>,
    /// CSR offsets into `arena`; `keys.len() + 1` entries.
    offsets: Vec<usize>,
    /// All postings, grouped by key.
    arena: Vec<P>,
    posting_count: usize,
}

impl<K: Eq + Hash + Ord + Copy, P: Copy> Default for CsrCore<K, P> {
    fn default() -> Self {
        CsrCore {
            staging: HashMap::new(),
            keys: Vec::new(),
            offsets: vec![0],
            arena: Vec::new(),
            posting_count: 0,
        }
    }
}

impl<K: Eq + Hash + Ord + Copy, P: Copy> CsrCore<K, P> {
    /// Appends a posting for `key`. Not visible to queries until
    /// [`finalize`](Self::finalize).
    pub(crate) fn push(&mut self, key: K, posting: P) {
        self.staging.entry(key).or_default().push(posting);
        self.posting_count += 1;
    }

    /// Compacts all postings into the contiguous arena: groups sorted
    /// by key, postings within a group ordered by `cmp`. Re-finalizing
    /// after further pushes merges the new postings in.
    pub(crate) fn finalize(&mut self, cmp: impl Fn(&P, &P) -> std::cmp::Ordering) {
        if self.staging.is_empty() {
            return;
        }
        // Fold any previously frozen arena back into the staging map so
        // repeated build/finalize cycles compose.
        for i in 0..self.keys.len() {
            let group = &self.arena[self.offsets[i]..self.offsets[i + 1]];
            self.staging
                .entry(self.keys[i])
                .or_default()
                .extend_from_slice(group);
        }
        let mut entries: Vec<(K, Vec<P>)> = self.staging.drain().collect();
        entries.sort_unstable_by_key(|e| e.0);
        self.keys = Vec::with_capacity(entries.len());
        self.offsets = Vec::with_capacity(entries.len() + 1);
        self.offsets.push(0);
        self.arena = Vec::with_capacity(self.posting_count);
        for (key, mut group) in entries {
            group.sort_unstable_by(&cmp);
            self.keys.push(key);
            self.arena.extend_from_slice(&group);
            self.offsets.push(self.arena.len());
        }
    }

    /// True when every pushed posting is in the frozen arena.
    pub(crate) fn is_finalized(&self) -> bool {
        self.staging.is_empty()
    }

    /// The frozen posting group for `key` (None if absent or only in
    /// staging).
    #[inline]
    pub(crate) fn group(&self, key: &K) -> Option<&[P]> {
        let i = self.keys.binary_search(key).ok()?;
        Some(&self.arena[self.offsets[i]..self.offsets[i + 1]])
    }

    /// Number of distinct keys (frozen plus staged).
    pub(crate) fn key_count(&self) -> usize {
        self.keys.len()
            + self
                .staging
                .keys()
                .filter(|k| self.keys.binary_search(k).is_err())
                .count()
    }

    /// Total number of postings ever pushed.
    pub(crate) fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Exact heap size in bytes: arena + key table + offsets, plus any
    /// staged postings not yet folded in.
    pub(crate) fn size_bytes(&self) -> usize {
        let arena = self.arena.len() * std::mem::size_of::<P>();
        let table = self.keys.len() * std::mem::size_of::<K>()
            + self.offsets.len() * std::mem::size_of::<usize>();
        let staged: usize = self
            .staging
            .values()
            .map(|v| {
                std::mem::size_of::<K>()
                    + std::mem::size_of::<Vec<P>>()
                    + v.len() * std::mem::size_of::<P>()
            })
            .sum();
        arena + table + staged
    }

    /// Iterates `(key, postings)` groups in ascending key order.
    ///
    /// # Panics
    /// If postings are staged: iteration sees only the frozen arena,
    /// so consumers (serializers, compressors) would silently drop the
    /// staged postings.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (K, &[P])> + '_ {
        assert!(
            self.is_finalized(),
            "iteration requires finalize() after the last push"
        );
        (0..self.keys.len()).map(move |i| {
            (
                self.keys[i],
                &self.arena[self.offsets[i]..self.offsets[i + 1]],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_value(a: &u32, b: &u32) -> std::cmp::Ordering {
        b.cmp(a) // descending
    }

    #[test]
    fn groups_are_key_sorted_and_cmp_ordered() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        for (k, v) in [(9u64, 1u32), (2, 5), (9, 7), (2, 3), (5, 4)] {
            c.push(k, v);
        }
        c.finalize(by_value);
        let got: Vec<(u64, Vec<u32>)> = c.iter().map(|(k, g)| (k, g.to_vec())).collect();
        assert_eq!(got, vec![(2, vec![5, 3]), (5, vec![4]), (9, vec![7, 1])]);
        assert_eq!(c.key_count(), 3);
        assert_eq!(c.posting_count(), 5);
        assert!(c.group(&5).is_some());
        assert!(c.group(&6).is_none());
    }

    #[test]
    fn refinalize_merges() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        c.push(1, 10);
        c.finalize(by_value);
        c.push(1, 20);
        assert!(!c.is_finalized());
        c.finalize(by_value);
        assert_eq!(c.group(&1).unwrap(), &[20, 10]);
    }

    #[test]
    #[should_panic(expected = "requires finalize()")]
    fn staged_iteration_panics() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        c.push(1, 1);
        let _ = c.iter().count();
    }
}
