//! The shared frozen-CSR container behind [`crate::InvertedIndex`] and
//! [`crate::HybridIndex`], plus the **one shared bound-cut path** every
//! qualifying probe in the crate goes through.
//!
//! Building appends into a per-key staging map; [`CsrCore::finalize`]
//! compacts everything into **one contiguous columnar arena**
//! (structure-of-arrays — see [`crate::columns`]) plus a sorted key
//! table with CSR offsets:
//!
//! ```text
//! keys:    [k0, k1, k2, ...]          sorted ascending
//! offsets: [0, |I(k0)|, |I(k0)|+|I(k1)|, ...]   len = keys.len() + 1
//! columns: ids    [ I(k0) | I(k1) | ... ]       row-aligned parallel
//!          bounds [ I(k0) | I(k1) | ... ]       columns, one span per
//!          ...                                  group
//! ```
//!
//! A probe is one binary search over `keys` plus one [`bound_cut`] over
//! the group's span of the bound column — no pointer chasing, no
//! per-list heap objects, no struct striding, and the whole read path
//! is `&self` (shared-nothing across query threads). The wrappers
//! choose the per-group sort order (descending bound vs. descending
//! spatial bound) via the comparator passed to
//! [`finalize`](CsrCore::finalize).
//!
//! The same `keys`/`offsets` directory shape backs the compressed
//! arena of [`crate::compress`]: there the offsets are *byte* offsets
//! into one compressed byte arena instead of row offsets into the
//! columns, but the lookup ([`group_range`]), the sorted-key
//! invariant, and the cut ([`bound_cut_u16`] over the quantized bound
//! column) are the same machinery.
//!
//! Re-finalizing is **incremental**: a frozen group is already in
//! comparator order, so [`CsrCore::finalize`] sorts only the *staged*
//! postings (kept as plain structs — the sort unit) and
//! two-pointer-merges each staged run against its frozen group while
//! splicing new columns — `O(staged·log staged + total)` comparator
//! work instead of re-sorting everything. Frozen groups are never
//! re-sorted; repeated push → finalize cycles (streaming ingest) pay
//! for the delta, not the index.
//!
//! # Invariants
//!
//! 1. **Sorted keys.** `keys` is strictly ascending; [`group_range`]
//!    binary-searches it. `finalize` establishes this by sorting the
//!    drained staging entries and key-merging them with the (already
//!    sorted) frozen key table.
//! 2. **Staged postings are an error for whole-index consumers.**
//!    Between a `push` and the next `finalize`, postings live only in
//!    the staging map; probes cannot see them (by design — queries
//!    read the frozen arena only), and [`CsrCore::iter_spans`]
//!    *panics* rather than silently dropping them, because its
//!    consumers (serializers, compressors) would otherwise persist a
//!    truncated index.
//! 3. **Bounds are never NaN.** The wrappers call [`check_bound`] at
//!    insert time, so the descending sort inside `finalize` is a total
//!    order ([`desc_f64`] via `f64::total_cmp`) and every [`bound_cut`]
//!    over a bound column is well-defined. A NaN bound would otherwise
//!    poison the sort and silently corrupt the qualifying-prefix
//!    property.
//! 4. **Columns are row-aligned.** Every column of the arena has the
//!    same length and row `j` of each describes the same posting; all
//!    splicing goes through [`crate::columns::PostingColumns`], which
//!    appends to every column in lockstep.

use crate::columns::PostingColumns;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;
use std::ops::Range;

/// Rejects NaN threshold bounds at insert time (invariant 3): panics
/// with a message naming the offending slot. Infinities are allowed —
/// they order fine under `total_cmp` — but NaN has no place in a bound
/// column that gets cut.
#[inline]
pub(crate) fn check_bound(bound: f64, what: &str) {
    assert!(!bound.is_nan(), "NaN {what} rejected at insert time");
}

/// Descending total order over bound values. Safe as a sort comparator
/// because [`check_bound`] keeps NaN out of the arena; `total_cmp`
/// makes the order total without an `unwrap_or(Equal)` escape hatch.
#[inline]
pub(crate) fn desc_f64(a: f64, b: f64) -> std::cmp::Ordering {
    b.total_cmp(&a)
}

/// Lists at or below this length are cut by the chunked scan; longer
/// ones fall back to `partition_point`. At 256 the scan's worst case
/// (all rows qualify) costs about what one branchy binary search does,
/// while the common case (selective threshold, early chunk exit) is a
/// handful of vector compares.
const SCAN_MAX: usize = 256;

/// Bounds compared per scan iteration. 16 `f64`s = two cache lines =
/// four AVX2 lanes' worth of branch-free compares per loop trip.
const LANES: usize = 16;

/// The qualifying-prefix length of a **non-increasing** bound column at
/// threshold `c` — the one cut every probe in this crate goes through
/// (uncompressed single and dual arenas, [`crate::BoundedPostingList`],
/// and, via its private `u16` twin, the compressed arenas).
///
/// Equivalent to `bounds.partition_point(|&b| b >= c)` (the column is
/// sorted, so the count of qualifying bounds *is* the partition
/// point), but short lists — the common case for per-key posting
/// groups — take a chunked branch-free scan instead: 16 bounds are
/// compared per iteration with a pure `b >= c` accumulate the
/// compiler auto-vectorizes, and a chunk that is not all-qualifying
/// ends the scan (the boundary is inside it). Lists longer than 256
/// rows use `partition_point`, so a length-only probe of a huge list
/// stays `O(log n)`.
///
/// Requires a NaN-free column (the indexes reject NaN bounds at
/// insert time); a NaN threshold `c` yields 0, matching
/// `partition_point`.
#[inline]
pub fn bound_cut(bounds: &[f64], c: f64) -> usize {
    if bounds.len() > SCAN_MAX {
        return bounds.partition_point(|&b| b >= c);
    }
    let mut count = 0usize;
    let mut chunks = bounds.chunks_exact(LANES);
    for chunk in &mut chunks {
        let mut hits = 0usize;
        for &b in chunk {
            hits += usize::from(b >= c);
        }
        count += hits;
        if hits < LANES {
            // Sorted column: the qualifying prefix ends inside this
            // chunk, and `hits` counted exactly its rows.
            return count;
        }
    }
    for &b in chunks.remainder() {
        count += usize::from(b >= c);
    }
    count
}

/// Reads the `j`-th entry of a little-endian `u16` column (the
/// compressed arenas' quantized bound columns).
#[inline]
pub(crate) fn column_u16(col: &[u8], j: usize) -> u16 {
    u16::from_le_bytes([col[2 * j], col[2 * j + 1]])
}

/// [`bound_cut`] over a little-endian `u16` column of `len` entries:
/// the qualifying-prefix length at *quantized* threshold `qc`
/// (`entry ≥ qc`). The compressed probe path quantizes the `f64`
/// threshold once per group and then cuts entirely in the integer
/// domain — same chunked scan, no dequantization per comparison.
#[inline]
pub(crate) fn bound_cut_u16(col: &[u8], len: usize, qc: u16) -> usize {
    debug_assert!(col.len() >= 2 * len, "column shorter than its row count");
    if len > SCAN_MAX {
        let mut lo = 0usize;
        let mut hi = len;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if column_u16(col, mid) >= qc {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }
    let mut count = 0usize;
    let mut j = 0usize;
    while j + LANES <= len {
        let mut hits = 0usize;
        for k in 0..LANES {
            hits += usize::from(column_u16(col, j + k) >= qc);
        }
        count += hits;
        if hits < LANES {
            return count;
        }
        j += LANES;
    }
    while j < len {
        count += usize::from(column_u16(col, j) >= qc);
        j += 1;
    }
    count
}

/// The shared directory lookup: binary-searches `keys` (invariant 1)
/// and returns the group's index plus its `offsets[i]..offsets[i+1]`
/// range. Used by [`CsrCore::group_span`] (row offsets) and by the
/// compressed indexes of [`crate::compress`] (byte offsets).
#[inline]
pub(crate) fn group_range<K: Ord>(
    keys: &[K],
    offsets: &[usize],
    key: &K,
) -> Option<(usize, Range<usize>)> {
    let i = keys.binary_search(key).ok()?;
    Some((i, offsets[i]..offsets[i + 1]))
}

/// Two-pointer merge of a frozen column range with a sorted staged run
/// into `out` (stable: frozen wins ties, preserving positions of
/// already-served postings). At most `frozen + staged - 1` comparator
/// calls — the incremental-finalize cost the comparator-counting test
/// in this module pins down. Frozen rows are read through
/// [`PostingColumns::get`] only while both runs are live; the tails
/// are bulk column copies.
fn merge_group<C: PostingColumns>(
    out: &mut C,
    frozen: &C,
    range: Range<usize>,
    staged: &[C::Item],
    cmp: &impl Fn(&C::Item, &C::Item) -> std::cmp::Ordering,
) {
    let mut i = range.start;
    let mut j = 0usize;
    while i < range.end && j < staged.len() {
        let f = frozen.get(i);
        if cmp(&f, &staged[j]) != std::cmp::Ordering::Greater {
            out.push_item(f);
            i += 1;
        } else {
            out.push_item(staged[j]);
            j += 1;
        }
    }
    out.extend_from_range(frozen, i..range.end);
    out.extend_from_items(&staged[j..]);
}

/// A keyed collection of posting groups in the frozen-CSR columnar
/// layout. `C` chooses the column set ([`crate::columns`]); staged
/// postings are held as `C::Item` structs until the next finalize.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CsrCore<K: Eq + Hash + Ord, C: PostingColumns> {
    /// Postings pushed since the last finalize, keyed for grouping.
    staging: HashMap<K, Vec<C::Item>>,
    /// Sorted keys of the frozen arena.
    keys: Vec<K>,
    /// CSR row offsets into the arena columns; `keys.len() + 1`
    /// entries.
    offsets: Vec<usize>,
    /// All postings, grouped by key, one parallel column per field.
    arena: C,
    posting_count: usize,
    /// Which frozen arena is being served: bumped by every finalize
    /// that folds staged postings in, untouched by no-op finalizes.
    /// Generation-swapping callers (online ingest) use this to tell
    /// "the arena I captured" from "the arena after the next freeze".
    generation: u64,
    /// The keys the most recent folding finalize touched (sorted
    /// ascending); every other group's bytes are unchanged from the
    /// previous generation. Incremental re-encoders
    /// ([`CompressedInvertedIndex::recompress`]
    /// (crate::CompressedInvertedIndex::recompress)) re-pack only
    /// these. Empty before the first finalize and after `from_frozen`.
    last_folded: Vec<K>,
}

impl<K: Eq + Hash + Ord + Copy, C: PostingColumns> Default for CsrCore<K, C> {
    fn default() -> Self {
        CsrCore {
            staging: HashMap::new(),
            keys: Vec::new(),
            offsets: vec![0],
            arena: C::default(),
            posting_count: 0,
            generation: 0,
            last_folded: Vec::new(),
        }
    }
}

impl<K: Eq + Hash + Ord + Copy, C: PostingColumns> CsrCore<K, C> {
    /// Appends a posting for `key`. Not visible to queries until
    /// [`finalize`](Self::finalize).
    pub(crate) fn push(&mut self, key: K, posting: C::Item) {
        self.staging.entry(key).or_default().push(posting);
        self.posting_count += 1;
    }

    /// Rebuilds a frozen core from already-validated parts (the SoA
    /// codec's direct load path). The caller guarantees the CSR
    /// invariants: strictly ascending keys, offsets covering exactly
    /// the arena, groups in comparator order, NaN-free bounds.
    /// Generation starts at 1, matching a build that finalized once.
    pub(crate) fn from_frozen(keys: Vec<K>, offsets: Vec<usize>, arena: C) -> Self {
        debug_assert_eq!(offsets.len(), keys.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), arena.len());
        let posting_count = arena.len();
        CsrCore {
            staging: HashMap::new(),
            keys,
            offsets,
            arena,
            posting_count,
            generation: 1,
            last_folded: Vec::new(),
        }
    }

    /// Compacts all postings into the contiguous columnar arena:
    /// groups sorted by key, postings within a group ordered by `cmp`.
    /// Re-finalizing after further pushes **merges** the new postings
    /// in: only the staged groups are sorted, each is then
    /// two-pointer-merged with its already-ordered frozen group
    /// (comparator work `O(staged·log staged + total)`, never a
    /// re-sort of frozen postings). Single-threaded; see
    /// [`finalize_with_threads`](Self::finalize_with_threads).
    pub(crate) fn finalize(&mut self, cmp: impl Fn(&C::Item, &C::Item) -> std::cmp::Ordering + Sync)
    where
        K: Sync,
    {
        self.finalize_with_threads(cmp, 1);
    }

    /// [`finalize`](Self::finalize) with the staged per-group sorts
    /// fanned out over `threads` workers (work stealing over group
    /// indexes — group sizes are Zipf-skewed, so static chunking would
    /// idle threads). `threads` follows the
    /// [`resolve_threads`](crate::parallel::resolve_threads)
    /// convention: 0 = all cores, 1 = inline. The merge/splice pass is
    /// sequential (it is a memcpy-bound walk of the columns); results
    /// are bit-identical for every thread count.
    pub(crate) fn finalize_with_threads(
        &mut self,
        cmp: impl Fn(&C::Item, &C::Item) -> std::cmp::Ordering + Sync,
        threads: usize,
    ) where
        K: Sync,
    {
        if self.staging.is_empty() {
            return;
        }
        // Sort only the staged groups (the frozen arena is already in
        // comparator order). Mutex per group gives the work-stealing
        // workers mutable access to disjoint entries without unsafe;
        // each lock is taken exactly once, uncontended.
        let mut staged: Vec<(K, std::sync::Mutex<Vec<C::Item>>)> = self
            .staging
            .drain()
            .map(|(k, v)| (k, std::sync::Mutex::new(v)))
            .collect();
        staged.sort_unstable_by_key(|e| e.0);
        crate::parallel::for_each_index(staged.len(), threads, |i| {
            staged[i]
                .1
                .lock()
                .expect("group sort cannot poison")
                .sort_unstable_by(&cmp);
        });
        let staged: Vec<(K, Vec<C::Item>)> = staged
            .into_iter()
            .map(|(k, m)| (k, m.into_inner().expect("group sort cannot poison")))
            .collect();

        // Merge the sorted staged runs with the frozen arena: walk both
        // key tables in tandem, splicing groups into fresh columns.
        let old_keys = std::mem::take(&mut self.keys);
        let old_offsets = std::mem::take(&mut self.offsets);
        let old_arena = std::mem::take(&mut self.arena);
        let mut keys: Vec<K> = Vec::with_capacity(old_keys.len() + staged.len());
        let mut offsets: Vec<usize> = Vec::with_capacity(old_keys.len() + staged.len() + 2);
        offsets.push(0);
        let mut arena = C::with_capacity(self.posting_count);
        let (mut fi, mut si) = (0usize, 0usize);
        while fi < old_keys.len() || si < staged.len() {
            let frozen_next = old_keys.get(fi).copied();
            let staged_next = staged.get(si).map(|e| e.0);
            match (frozen_next, staged_next) {
                (Some(fk), Some(sk)) if fk == sk => {
                    merge_group(
                        &mut arena,
                        &old_arena,
                        old_offsets[fi]..old_offsets[fi + 1],
                        &staged[si].1,
                        &cmp,
                    );
                    keys.push(fk);
                    fi += 1;
                    si += 1;
                }
                (Some(fk), sk) if sk.is_none_or(|sk| fk < sk) => {
                    // Untouched frozen group: copied, never compared.
                    arena.extend_from_range(&old_arena, old_offsets[fi]..old_offsets[fi + 1]);
                    keys.push(fk);
                    fi += 1;
                }
                _ => {
                    arena.extend_from_items(&staged[si].1);
                    keys.push(staged[si].0);
                    si += 1;
                }
            }
            offsets.push(arena.len());
        }
        // Shared keys make the reserved capacities overshoot; trim so
        // capacity-based size accounting stays exact for frozen state.
        keys.shrink_to_fit();
        offsets.shrink_to_fit();
        arena.shrink_to_fit();
        self.keys = keys;
        self.offsets = offsets;
        self.arena = arena;
        self.generation += 1;
        self.last_folded = staged.iter().map(|e| e.0).collect();
    }

    /// True when every pushed posting is in the frozen arena.
    pub(crate) fn is_finalized(&self) -> bool {
        self.staging.is_empty()
    }

    /// The generation of the frozen arena: 0 before the first
    /// finalize, then +1 per finalize that folded staged postings.
    /// No-op finalizes (nothing staged) do not bump it, so equal
    /// generations mean byte-identical frozen state.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// The sorted keys the most recent folding finalize touched; every
    /// other group's arena bytes are identical to the previous
    /// generation's. Empty before the first finalize and after a
    /// frozen-parts load (where provenance is unknown).
    pub(crate) fn last_folded_keys(&self) -> &[K] {
        &self.last_folded
    }

    /// The frozen arena's row span for `key` (None if absent or only
    /// in staging). Wrappers slice whichever columns they need.
    #[inline]
    pub(crate) fn group_span(&self, key: &K) -> Option<Range<usize>> {
        let (_, range) = group_range(&self.keys, &self.offsets, key)?;
        Some(range)
    }

    /// The frozen columnar arena (row spans come from
    /// [`group_span`](Self::group_span) / [`iter_spans`](Self::iter_spans)).
    #[inline]
    pub(crate) fn arena(&self) -> &C {
        &self.arena
    }

    /// Number of distinct keys (frozen plus staged).
    pub(crate) fn key_count(&self) -> usize {
        self.keys.len()
            + self
                .staging
                .keys()
                .filter(|k| self.keys.binary_search(k).is_err())
                .count()
    }

    /// Total number of postings ever pushed.
    pub(crate) fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Exact heap size in bytes: arena columns + key table + offsets,
    /// plus any staged postings not yet folded in. All terms are
    /// **capacity**-based: a staging `Vec` owns its whole
    /// growth-doubled allocation, not just the initialized prefix, so
    /// `len`-based accounting undercounted pre-finalize heap use
    /// (visible in `table1` when sizing a mid-build index). Frozen
    /// columns are trimmed to exact size by `finalize`, so for a
    /// finalized index capacity and length agree.
    pub(crate) fn size_bytes(&self) -> usize {
        let arena = self.arena.heap_bytes();
        let table = self.keys.capacity() * std::mem::size_of::<K>()
            + self.offsets.capacity() * std::mem::size_of::<usize>();
        let staged: usize = self
            .staging
            .values()
            .map(|v| {
                std::mem::size_of::<K>()
                    + std::mem::size_of::<Vec<C::Item>>()
                    + v.capacity() * std::mem::size_of::<C::Item>()
            })
            .sum();
        arena + table + staged
    }

    /// Iterates `(key, row span)` groups in ascending key order.
    ///
    /// # Panics
    /// If postings are staged: iteration sees only the frozen arena,
    /// so consumers (serializers, compressors) would silently drop the
    /// staged postings.
    pub(crate) fn iter_spans(&self) -> impl Iterator<Item = (K, Range<usize>)> + '_ {
        assert!(
            self.is_finalized(),
            "iteration requires finalize() after the last push"
        );
        (0..self.keys.len()).map(move |i| (self.keys[i], self.offsets[i]..self.offsets[i + 1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_value(a: &u32, b: &u32) -> std::cmp::Ordering {
        b.cmp(a) // descending
    }

    /// Collects `(key, rows)` for a frozen core backed by a plain
    /// `Vec` column (the degenerate test store).
    fn groups(c: &CsrCore<u64, Vec<u32>>) -> Vec<(u64, Vec<u32>)> {
        c.iter_spans()
            .map(|(k, span)| (k, c.arena()[span].to_vec()))
            .collect()
    }

    #[test]
    fn groups_are_key_sorted_and_cmp_ordered() {
        let mut c: CsrCore<u64, Vec<u32>> = CsrCore::default();
        for (k, v) in [(9u64, 1u32), (2, 5), (9, 7), (2, 3), (5, 4)] {
            c.push(k, v);
        }
        c.finalize(by_value);
        assert_eq!(
            groups(&c),
            vec![(2, vec![5, 3]), (5, vec![4]), (9, vec![7, 1])]
        );
        assert_eq!(c.key_count(), 3);
        assert_eq!(c.posting_count(), 5);
        assert!(c.group_span(&5).is_some());
        assert!(c.group_span(&6).is_none());
    }

    #[test]
    fn refinalize_merges() {
        let mut c: CsrCore<u64, Vec<u32>> = CsrCore::default();
        c.push(1, 10);
        c.finalize(by_value);
        c.push(1, 20);
        assert!(!c.is_finalized());
        c.finalize(by_value);
        let span = c.group_span(&1).unwrap();
        assert_eq!(&c.arena()[span], &[20, 10]);
    }

    #[test]
    #[should_panic(expected = "requires finalize()")]
    fn staged_iteration_panics() {
        let mut c: CsrCore<u64, Vec<u32>> = CsrCore::default();
        c.push(1, 1);
        let _ = c.iter_spans().count();
    }

    #[test]
    fn desc_f64_is_total_and_descending() {
        let mut v = [1.0f64, f64::INFINITY, 0.0, 3.5, f64::NEG_INFINITY];
        v.sort_by(|a, b| desc_f64(*a, *b));
        assert_eq!(v[0], f64::INFINITY);
        assert_eq!(v[4], f64::NEG_INFINITY);
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    #[should_panic(expected = "NaN bound rejected at insert time")]
    fn check_bound_rejects_nan() {
        check_bound(f64::NAN, "bound");
    }

    #[test]
    fn check_bound_accepts_finite_and_infinite() {
        check_bound(0.0, "bound");
        check_bound(-1.5, "bound");
        check_bound(f64::INFINITY, "bound");
    }

    #[test]
    fn refinalize_merges_instead_of_resorting() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Freeze one large group, then splice in a single staged
        // posting. A full re-sort would cost O(n log n) comparator
        // calls; the merge path pays at most `staged·log staged`
        // (= 0 here) plus one pass over the merged group.
        const FROZEN: usize = 4096;
        let mut c: CsrCore<u64, Vec<u32>> = CsrCore::default();
        for v in 0..FROZEN as u32 {
            c.push(7, v);
        }
        c.finalize(by_value);
        c.push(7, 9_999_999); // sorts to the front (descending)
        let calls = AtomicUsize::new(0);
        c.finalize(|a: &u32, b: &u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            by_value(a, b)
        });
        let calls = calls.load(Ordering::Relaxed);
        // Merge bound: ≤ frozen + staged − 1. Re-sort would need at
        // least n·log₂(n)/2 ≈ 24k comparisons for n = 4097.
        assert!(
            calls <= FROZEN + 1,
            "re-finalize made {calls} comparator calls — frozen group re-sorted?"
        );
        let span = c.group_span(&7).unwrap();
        assert_eq!(span.len(), FROZEN + 1);
        assert_eq!(c.arena()[span.start], 9_999_999);
    }

    #[test]
    fn refinalize_leaves_untouched_groups_uncompared() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Staged postings for key 1 only: key 2's frozen group must be
        // copied without a single comparator call.
        let mut c: CsrCore<u64, Vec<u32>> = CsrCore::default();
        for v in 0..64u32 {
            c.push(1, v);
            c.push(2, v);
        }
        c.finalize(by_value);
        c.push(1, 1000);
        let calls = AtomicUsize::new(0);
        c.finalize(|a: &u32, b: &u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            by_value(a, b)
        });
        assert!(
            calls.load(Ordering::Relaxed) <= 64,
            "untouched group paid comparator calls"
        );
        assert_eq!(c.group_span(&2).unwrap().len(), 64);
    }

    #[test]
    fn merge_keeps_frozen_prefix_stable() {
        // Staged postings all order *after* the frozen ones: the merged
        // group must be exactly [frozen..., staged...] with the frozen
        // prefix byte-identical (the merge never reorders it).
        let mut c: CsrCore<u64, Vec<u32>> = CsrCore::default();
        for v in [90u32, 70, 50] {
            c.push(3, v);
        }
        c.finalize(by_value);
        let span = c.group_span(&3).unwrap();
        let frozen: Vec<u32> = c.arena()[span].to_vec();
        for v in [40u32, 20] {
            c.push(3, v);
        }
        c.finalize(by_value);
        let span = c.group_span(&3).unwrap();
        let merged = &c.arena()[span];
        assert_eq!(&merged[..frozen.len()], &frozen[..], "frozen prefix moved");
        assert_eq!(&merged[frozen.len()..], &[40, 20]);
    }

    #[test]
    fn finalize_with_threads_matches_sequential() {
        // Many Zipf-ish groups, staged + frozen interleavings: every
        // thread count must produce the identical arena.
        let build = |threads: usize| {
            let mut c: CsrCore<u64, Vec<u32>> = CsrCore::default();
            for i in 0..2000u32 {
                c.push(u64::from(i % 37), i.wrapping_mul(2_654_435_761));
            }
            c.finalize_with_threads(by_value, threads);
            for i in 0..500u32 {
                c.push(u64::from(i % 53), i.wrapping_mul(40_503) ^ 0xAAAA);
            }
            c.finalize_with_threads(by_value, threads);
            groups(&c)
        };
        let sequential = build(1);
        for threads in [2usize, 4, 8, 0] {
            assert_eq!(build(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn merge_group_is_stable_and_complete() {
        let frozen: Vec<u32> = vec![9, 7, 7, 3];
        let staged = [8u32, 7, 2];
        let mut out: Vec<u32> = Vec::new();
        merge_group(&mut out, &frozen, 0..frozen.len(), &staged, &by_value);
        assert_eq!(out, vec![9, 8, 7, 7, 7, 3, 2]);
        // Ties: frozen's 7s must come before staged's 7 — check by
        // merging marked values.
        let frozen: Vec<(u32, char)> = vec![(7, 'f')];
        let staged = [(7u32, 's')];
        let mut out: Vec<(u32, char)> = Vec::new();
        merge_group(&mut out, &frozen, 0..1, &staged, &|a: &(u32, char), b| {
            b.0.cmp(&a.0)
        });
        assert_eq!(out, vec![(7, 'f'), (7, 's')]);
    }

    #[test]
    fn size_bytes_counts_staged_capacity() {
        let mut c: CsrCore<u64, Vec<u32>> = CsrCore::default();
        c.push(1, 1);
        let one = c.size_bytes();
        // The staging Vec's capacity (≥ its len) is what the heap
        // actually holds; pushing within capacity must not shrink the
        // report, and the report must cover at least the capacity.
        let cap = 1 + c.staging[&1].capacity() - c.staging[&1].len();
        for v in 0..cap as u32 {
            c.push(1, v);
        }
        assert!(c.size_bytes() >= one);
        let staged_bytes = c.staging[&1].capacity() * std::mem::size_of::<u32>();
        assert!(c.size_bytes() >= staged_bytes);
    }

    #[test]
    fn generation_counts_folding_finalizes_only() {
        let mut c: CsrCore<u64, Vec<u32>> = CsrCore::default();
        assert_eq!(c.generation(), 0);
        c.finalize(by_value); // nothing staged: no-op, no bump
        assert_eq!(c.generation(), 0);
        c.push(1, 1);
        c.finalize(by_value);
        assert_eq!(c.generation(), 1);
        c.finalize(by_value); // idempotent freeze: still generation 1
        assert_eq!(c.generation(), 1);
        c.push(2, 2);
        c.push(1, 3);
        c.finalize(by_value);
        assert_eq!(c.generation(), 2);
    }

    #[test]
    fn from_frozen_serves_like_a_finalized_build() {
        let core = CsrCore::<u64, Vec<u32>>::from_frozen(vec![2, 9], vec![0, 2, 3], vec![5, 3, 7]);
        assert!(core.is_finalized());
        assert_eq!(core.generation(), 1);
        assert_eq!(core.posting_count(), 3);
        assert_eq!(groups(&core), vec![(2, vec![5, 3]), (9, vec![7])]);
    }

    #[test]
    fn group_range_matches_offsets() {
        let keys = [2u64, 5, 9];
        let offsets = [0usize, 3, 3, 7];
        assert_eq!(group_range(&keys, &offsets, &2), Some((0, 0..3)));
        assert_eq!(group_range(&keys, &offsets, &5), Some((1, 3..3)));
        assert_eq!(group_range(&keys, &offsets, &9), Some((2, 3..7)));
        assert_eq!(group_range(&keys, &offsets, &4), None);
    }

    /// Oracle for both cut variants.
    fn pp(bounds: &[f64], c: f64) -> usize {
        bounds.partition_point(|&b| b >= c)
    }

    #[test]
    fn bound_cut_matches_partition_point_on_adversarial_columns() {
        // Ties, all-pass, all-fail, lengths not divisible by the lane
        // width, and lengths straddling the scan/binary-search cutover.
        let mk = |len: usize| -> Vec<f64> {
            (0..len)
                .map(|i| ((len - i) / 3) as f64) // runs of equal bounds
                .collect()
        };
        for len in [0usize, 1, 5, 15, 16, 17, 31, 33, 100, 255, 256, 257, 1000] {
            let col = mk(len);
            let max = col.first().copied().unwrap_or(0.0);
            for c in [
                -1.0,
                0.0,
                0.5,
                1.0,
                max / 2.0,
                max / 2.0 + 0.5,
                max,
                max + 1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ] {
                assert_eq!(bound_cut(&col, c), pp(&col, c), "len {len} c {c}");
            }
            assert_eq!(bound_cut(&col, f64::NAN), pp(&col, f64::NAN), "NaN c");
        }
        // All-pass / all-fail at both sides of the cutover.
        for len in [37usize, 256, 300] {
            let col = vec![5.0; len];
            assert_eq!(bound_cut(&col, 5.0), len, "all-pass (ties) len {len}");
            assert_eq!(bound_cut(&col, 5.1), 0, "all-fail len {len}");
            assert_eq!(bound_cut(&col, 4.9), len);
        }
    }

    #[test]
    fn bound_cut_u16_matches_linear_oracle() {
        let mk = |len: usize| -> Vec<u8> {
            let mut col = Vec::with_capacity(2 * len);
            for i in 0..len {
                let v = ((len - i) as u16 / 3).saturating_mul(7);
                col.extend_from_slice(&v.to_le_bytes());
            }
            col
        };
        for len in [0usize, 1, 7, 16, 17, 63, 255, 256, 257, 513] {
            let col = mk(len);
            let vals: Vec<u16> = (0..len).map(|j| column_u16(&col, j)).collect();
            for qc in [0u16, 1, 3, 7, 14, 100, 600, u16::MAX] {
                let oracle = vals.partition_point(|&v| v >= qc);
                assert_eq!(bound_cut_u16(&col, len, qc), oracle, "len {len} qc {qc}");
            }
        }
    }
}
