//! The shared frozen-CSR container behind [`crate::InvertedIndex`] and
//! [`crate::HybridIndex`].
//!
//! Building appends into a per-key staging map; [`CsrCore::finalize`]
//! compacts everything into **one contiguous postings arena** plus a
//! sorted key table with CSR offsets:
//!
//! ```text
//! keys:    [k0, k1, k2, ...]          sorted ascending
//! offsets: [0, |I(k0)|, |I(k0)|+|I(k1)|, ...]   len = keys.len() + 1
//! arena:   [ I(k0) postings | I(k1) postings | ... ]
//! ```
//!
//! A probe is one binary search over `keys` plus whatever cut the
//! wrapper performs on the group slice — no pointer chasing, no
//! per-list heap objects, and the whole read path is `&self`
//! (shared-nothing across query threads). The wrappers choose the
//! per-group sort order (descending bound vs. descending spatial
//! bound) via the comparator passed to [`finalize`](CsrCore::finalize).
//!
//! The same `keys`/`offsets` directory shape backs the compressed
//! arena of [`crate::compress`]: there the offsets are *byte* offsets
//! into one compressed byte arena instead of element offsets into a
//! posting arena, but the lookup ([`group_range`]) and the sorted-key
//! invariant are identical, so both forms share this module's
//! machinery.
//!
//! # Invariants
//!
//! 1. **Sorted keys.** `keys` is strictly ascending; [`group_range`]
//!    binary-searches it. `finalize` establishes this by sorting the
//!    drained staging entries.
//! 2. **Staged postings are an error for whole-index consumers.**
//!    Between a `push` and the next `finalize`, postings live only in
//!    the staging map; probes cannot see them (by design — queries
//!    read the frozen arena only), and [`CsrCore::iter`] *panics*
//!    rather than silently dropping them, because its consumers
//!    (serializers, compressors) would otherwise persist a truncated
//!    index.
//! 3. **Bounds are never NaN.** The wrappers call [`check_bound`] at
//!    insert time, so the descending sort inside `finalize` is a total
//!    order ([`desc_f64`] via `f64::total_cmp`) and every
//!    `partition_point` cut over a bound column is well-defined. A NaN
//!    bound would otherwise poison the sort and silently corrupt the
//!    qualifying-prefix property.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Rejects NaN threshold bounds at insert time (invariant 3): panics
/// with a message naming the offending slot. Infinities are allowed —
/// they order fine under `total_cmp` — but NaN has no place in a bound
/// column that gets `partition_point`-cut.
#[inline]
pub(crate) fn check_bound(bound: f64, what: &str) {
    assert!(!bound.is_nan(), "NaN {what} rejected at insert time");
}

/// Descending total order over bound values. Safe as a sort comparator
/// because [`check_bound`] keeps NaN out of the arena; `total_cmp`
/// makes the order total without an `unwrap_or(Equal)` escape hatch.
#[inline]
pub(crate) fn desc_f64(a: f64, b: f64) -> std::cmp::Ordering {
    b.total_cmp(&a)
}

/// The shared directory lookup: binary-searches `keys` (invariant 1)
/// and returns the group's index plus its `offsets[i]..offsets[i+1]`
/// range. Used by [`CsrCore::group`] (element offsets) and by the
/// compressed indexes of [`crate::compress`] (byte offsets).
#[inline]
pub(crate) fn group_range<K: Ord>(
    keys: &[K],
    offsets: &[usize],
    key: &K,
) -> Option<(usize, std::ops::Range<usize>)> {
    let i = keys.binary_search(key).ok()?;
    Some((i, offsets[i]..offsets[i + 1]))
}

/// A keyed collection of posting groups in the frozen-CSR layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CsrCore<K: Eq + Hash + Ord, P> {
    /// Postings pushed since the last finalize, keyed for grouping.
    staging: HashMap<K, Vec<P>>,
    /// Sorted keys of the frozen arena.
    keys: Vec<K>,
    /// CSR offsets into `arena`; `keys.len() + 1` entries.
    offsets: Vec<usize>,
    /// All postings, grouped by key.
    arena: Vec<P>,
    posting_count: usize,
}

impl<K: Eq + Hash + Ord + Copy, P: Copy> Default for CsrCore<K, P> {
    fn default() -> Self {
        CsrCore {
            staging: HashMap::new(),
            keys: Vec::new(),
            offsets: vec![0],
            arena: Vec::new(),
            posting_count: 0,
        }
    }
}

impl<K: Eq + Hash + Ord + Copy, P: Copy> CsrCore<K, P> {
    /// Appends a posting for `key`. Not visible to queries until
    /// [`finalize`](Self::finalize).
    pub(crate) fn push(&mut self, key: K, posting: P) {
        self.staging.entry(key).or_default().push(posting);
        self.posting_count += 1;
    }

    /// Compacts all postings into the contiguous arena: groups sorted
    /// by key, postings within a group ordered by `cmp`. Re-finalizing
    /// after further pushes merges the new postings in.
    pub(crate) fn finalize(&mut self, cmp: impl Fn(&P, &P) -> std::cmp::Ordering) {
        if self.staging.is_empty() {
            return;
        }
        // Fold any previously frozen arena back into the staging map so
        // repeated build/finalize cycles compose.
        for i in 0..self.keys.len() {
            let group = &self.arena[self.offsets[i]..self.offsets[i + 1]];
            self.staging
                .entry(self.keys[i])
                .or_default()
                .extend_from_slice(group);
        }
        let mut entries: Vec<(K, Vec<P>)> = self.staging.drain().collect();
        entries.sort_unstable_by_key(|e| e.0);
        self.keys = Vec::with_capacity(entries.len());
        self.offsets = Vec::with_capacity(entries.len() + 1);
        self.offsets.push(0);
        self.arena = Vec::with_capacity(self.posting_count);
        for (key, mut group) in entries {
            group.sort_unstable_by(&cmp);
            self.keys.push(key);
            self.arena.extend_from_slice(&group);
            self.offsets.push(self.arena.len());
        }
    }

    /// True when every pushed posting is in the frozen arena.
    pub(crate) fn is_finalized(&self) -> bool {
        self.staging.is_empty()
    }

    /// The frozen posting group for `key` (None if absent or only in
    /// staging).
    #[inline]
    pub(crate) fn group(&self, key: &K) -> Option<&[P]> {
        let (_, range) = group_range(&self.keys, &self.offsets, key)?;
        Some(&self.arena[range])
    }

    /// Number of distinct keys (frozen plus staged).
    pub(crate) fn key_count(&self) -> usize {
        self.keys.len()
            + self
                .staging
                .keys()
                .filter(|k| self.keys.binary_search(k).is_err())
                .count()
    }

    /// Total number of postings ever pushed.
    pub(crate) fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Exact heap size in bytes: arena + key table + offsets, plus any
    /// staged postings not yet folded in.
    pub(crate) fn size_bytes(&self) -> usize {
        let arena = self.arena.len() * std::mem::size_of::<P>();
        let table = self.keys.len() * std::mem::size_of::<K>()
            + self.offsets.len() * std::mem::size_of::<usize>();
        let staged: usize = self
            .staging
            .values()
            .map(|v| {
                std::mem::size_of::<K>()
                    + std::mem::size_of::<Vec<P>>()
                    + v.len() * std::mem::size_of::<P>()
            })
            .sum();
        arena + table + staged
    }

    /// Iterates `(key, postings)` groups in ascending key order.
    ///
    /// # Panics
    /// If postings are staged: iteration sees only the frozen arena,
    /// so consumers (serializers, compressors) would silently drop the
    /// staged postings.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (K, &[P])> + '_ {
        assert!(
            self.is_finalized(),
            "iteration requires finalize() after the last push"
        );
        (0..self.keys.len()).map(move |i| {
            (
                self.keys[i],
                &self.arena[self.offsets[i]..self.offsets[i + 1]],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_value(a: &u32, b: &u32) -> std::cmp::Ordering {
        b.cmp(a) // descending
    }

    #[test]
    fn groups_are_key_sorted_and_cmp_ordered() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        for (k, v) in [(9u64, 1u32), (2, 5), (9, 7), (2, 3), (5, 4)] {
            c.push(k, v);
        }
        c.finalize(by_value);
        let got: Vec<(u64, Vec<u32>)> = c.iter().map(|(k, g)| (k, g.to_vec())).collect();
        assert_eq!(got, vec![(2, vec![5, 3]), (5, vec![4]), (9, vec![7, 1])]);
        assert_eq!(c.key_count(), 3);
        assert_eq!(c.posting_count(), 5);
        assert!(c.group(&5).is_some());
        assert!(c.group(&6).is_none());
    }

    #[test]
    fn refinalize_merges() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        c.push(1, 10);
        c.finalize(by_value);
        c.push(1, 20);
        assert!(!c.is_finalized());
        c.finalize(by_value);
        assert_eq!(c.group(&1).unwrap(), &[20, 10]);
    }

    #[test]
    #[should_panic(expected = "requires finalize()")]
    fn staged_iteration_panics() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        c.push(1, 1);
        let _ = c.iter().count();
    }

    #[test]
    fn desc_f64_is_total_and_descending() {
        let mut v = [1.0f64, f64::INFINITY, 0.0, 3.5, f64::NEG_INFINITY];
        v.sort_by(|a, b| desc_f64(*a, *b));
        assert_eq!(v[0], f64::INFINITY);
        assert_eq!(v[4], f64::NEG_INFINITY);
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    #[should_panic(expected = "NaN bound rejected at insert time")]
    fn check_bound_rejects_nan() {
        check_bound(f64::NAN, "bound");
    }

    #[test]
    fn check_bound_accepts_finite_and_infinite() {
        check_bound(0.0, "bound");
        check_bound(-1.5, "bound");
        check_bound(f64::INFINITY, "bound");
    }

    #[test]
    fn group_range_matches_offsets() {
        let keys = [2u64, 5, 9];
        let offsets = [0usize, 3, 3, 7];
        assert_eq!(group_range(&keys, &offsets, &2), Some((0, 0..3)));
        assert_eq!(group_range(&keys, &offsets, &5), Some((1, 3..3)));
        assert_eq!(group_range(&keys, &offsets, &9), Some((2, 3..7)));
        assert_eq!(group_range(&keys, &offsets, &4), None);
    }
}
