//! The shared frozen-CSR container behind [`crate::InvertedIndex`] and
//! [`crate::HybridIndex`].
//!
//! Building appends into a per-key staging map; [`CsrCore::finalize`]
//! compacts everything into **one contiguous postings arena** plus a
//! sorted key table with CSR offsets:
//!
//! ```text
//! keys:    [k0, k1, k2, ...]          sorted ascending
//! offsets: [0, |I(k0)|, |I(k0)|+|I(k1)|, ...]   len = keys.len() + 1
//! arena:   [ I(k0) postings | I(k1) postings | ... ]
//! ```
//!
//! A probe is one binary search over `keys` plus whatever cut the
//! wrapper performs on the group slice — no pointer chasing, no
//! per-list heap objects, and the whole read path is `&self`
//! (shared-nothing across query threads). The wrappers choose the
//! per-group sort order (descending bound vs. descending spatial
//! bound) via the comparator passed to [`finalize`](CsrCore::finalize).
//!
//! The same `keys`/`offsets` directory shape backs the compressed
//! arena of [`crate::compress`]: there the offsets are *byte* offsets
//! into one compressed byte arena instead of element offsets into a
//! posting arena, but the lookup ([`group_range`]) and the sorted-key
//! invariant are identical, so both forms share this module's
//! machinery.
//!
//! Re-finalizing is **incremental**: a frozen group is already in
//! comparator order, so [`CsrCore::finalize`] sorts only the *staged*
//! postings and two-pointer-merges each staged run against its frozen
//! group while splicing the new arena — `O(staged·log staged + total)`
//! comparator work instead of re-sorting everything. Frozen groups are
//! never re-sorted; repeated push → finalize cycles (streaming ingest)
//! pay for the delta, not the index.
//!
//! # Invariants
//!
//! 1. **Sorted keys.** `keys` is strictly ascending; [`group_range`]
//!    binary-searches it. `finalize` establishes this by sorting the
//!    drained staging entries and key-merging them with the (already
//!    sorted) frozen key table.
//! 2. **Staged postings are an error for whole-index consumers.**
//!    Between a `push` and the next `finalize`, postings live only in
//!    the staging map; probes cannot see them (by design — queries
//!    read the frozen arena only), and [`CsrCore::iter`] *panics*
//!    rather than silently dropping them, because its consumers
//!    (serializers, compressors) would otherwise persist a truncated
//!    index.
//! 3. **Bounds are never NaN.** The wrappers call [`check_bound`] at
//!    insert time, so the descending sort inside `finalize` is a total
//!    order ([`desc_f64`] via `f64::total_cmp`) and every
//!    `partition_point` cut over a bound column is well-defined. A NaN
//!    bound would otherwise poison the sort and silently corrupt the
//!    qualifying-prefix property.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Rejects NaN threshold bounds at insert time (invariant 3): panics
/// with a message naming the offending slot. Infinities are allowed —
/// they order fine under `total_cmp` — but NaN has no place in a bound
/// column that gets `partition_point`-cut.
#[inline]
pub(crate) fn check_bound(bound: f64, what: &str) {
    assert!(!bound.is_nan(), "NaN {what} rejected at insert time");
}

/// Descending total order over bound values. Safe as a sort comparator
/// because [`check_bound`] keeps NaN out of the arena; `total_cmp`
/// makes the order total without an `unwrap_or(Equal)` escape hatch.
#[inline]
pub(crate) fn desc_f64(a: f64, b: f64) -> std::cmp::Ordering {
    b.total_cmp(&a)
}

/// The shared directory lookup: binary-searches `keys` (invariant 1)
/// and returns the group's index plus its `offsets[i]..offsets[i+1]`
/// range. Used by [`CsrCore::group`] (element offsets) and by the
/// compressed indexes of [`crate::compress`] (byte offsets).
#[inline]
pub(crate) fn group_range<K: Ord>(
    keys: &[K],
    offsets: &[usize],
    key: &K,
) -> Option<(usize, std::ops::Range<usize>)> {
    let i = keys.binary_search(key).ok()?;
    Some((i, offsets[i]..offsets[i + 1]))
}

/// Two-pointer merge of two comparator-ordered runs into `out`
/// (stable: `frozen` wins ties, preserving positions of already-served
/// postings). At most `frozen.len() + staged.len() - 1` comparator
/// calls — the incremental-finalize cost the comparator-counting test
/// in this module pins down.
fn merge_runs<P: Copy>(
    out: &mut Vec<P>,
    frozen: &[P],
    staged: &[P],
    cmp: &impl Fn(&P, &P) -> std::cmp::Ordering,
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < frozen.len() && j < staged.len() {
        if cmp(&frozen[i], &staged[j]) != std::cmp::Ordering::Greater {
            out.push(frozen[i]);
            i += 1;
        } else {
            out.push(staged[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&frozen[i..]);
    out.extend_from_slice(&staged[j..]);
}

/// A keyed collection of posting groups in the frozen-CSR layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CsrCore<K: Eq + Hash + Ord, P> {
    /// Postings pushed since the last finalize, keyed for grouping.
    staging: HashMap<K, Vec<P>>,
    /// Sorted keys of the frozen arena.
    keys: Vec<K>,
    /// CSR offsets into `arena`; `keys.len() + 1` entries.
    offsets: Vec<usize>,
    /// All postings, grouped by key.
    arena: Vec<P>,
    posting_count: usize,
    /// Which frozen arena is being served: bumped by every finalize
    /// that folds staged postings in, untouched by no-op finalizes.
    /// Generation-swapping callers (online ingest) use this to tell
    /// "the arena I captured" from "the arena after the next freeze".
    generation: u64,
}

impl<K: Eq + Hash + Ord + Copy, P: Copy> Default for CsrCore<K, P> {
    fn default() -> Self {
        CsrCore {
            staging: HashMap::new(),
            keys: Vec::new(),
            offsets: vec![0],
            arena: Vec::new(),
            posting_count: 0,
            generation: 0,
        }
    }
}

impl<K: Eq + Hash + Ord + Copy, P: Copy> CsrCore<K, P> {
    /// Appends a posting for `key`. Not visible to queries until
    /// [`finalize`](Self::finalize).
    pub(crate) fn push(&mut self, key: K, posting: P) {
        self.staging.entry(key).or_default().push(posting);
        self.posting_count += 1;
    }

    /// Compacts all postings into the contiguous arena: groups sorted
    /// by key, postings within a group ordered by `cmp`. Re-finalizing
    /// after further pushes **merges** the new postings in: only the
    /// staged groups are sorted, each is then two-pointer-merged with
    /// its already-ordered frozen group (comparator work
    /// `O(staged·log staged + total)`, never a re-sort of frozen
    /// postings). Single-threaded; see
    /// [`finalize_with_threads`](Self::finalize_with_threads).
    pub(crate) fn finalize(&mut self, cmp: impl Fn(&P, &P) -> std::cmp::Ordering + Sync)
    where
        K: Sync,
        P: Send,
    {
        self.finalize_with_threads(cmp, 1);
    }

    /// [`finalize`](Self::finalize) with the staged per-group sorts
    /// fanned out over `threads` workers (work stealing over group
    /// indexes — group sizes are Zipf-skewed, so static chunking would
    /// idle threads). `threads` follows the
    /// [`resolve_threads`](crate::parallel::resolve_threads)
    /// convention: 0 = all cores, 1 = inline. The merge/splice pass is
    /// sequential (it is a memcpy-bound walk of the arena); results
    /// are bit-identical for every thread count.
    pub(crate) fn finalize_with_threads(
        &mut self,
        cmp: impl Fn(&P, &P) -> std::cmp::Ordering + Sync,
        threads: usize,
    ) where
        K: Sync,
        P: Send,
    {
        if self.staging.is_empty() {
            return;
        }
        // Sort only the staged groups (the frozen arena is already in
        // comparator order). Mutex per group gives the work-stealing
        // workers mutable access to disjoint entries without unsafe;
        // each lock is taken exactly once, uncontended.
        let mut staged: Vec<(K, std::sync::Mutex<Vec<P>>)> = self
            .staging
            .drain()
            .map(|(k, v)| (k, std::sync::Mutex::new(v)))
            .collect();
        staged.sort_unstable_by_key(|e| e.0);
        crate::parallel::for_each_index(staged.len(), threads, |i| {
            staged[i]
                .1
                .lock()
                .expect("group sort cannot poison")
                .sort_unstable_by(&cmp);
        });
        let staged: Vec<(K, Vec<P>)> = staged
            .into_iter()
            .map(|(k, m)| (k, m.into_inner().expect("group sort cannot poison")))
            .collect();

        // Merge the sorted staged runs with the frozen arena: walk both
        // key tables in tandem, splicing groups into a fresh arena.
        let old_keys = std::mem::take(&mut self.keys);
        let old_offsets = std::mem::take(&mut self.offsets);
        let old_arena = std::mem::take(&mut self.arena);
        let mut keys: Vec<K> = Vec::with_capacity(old_keys.len() + staged.len());
        let mut offsets: Vec<usize> = Vec::with_capacity(old_keys.len() + staged.len() + 2);
        offsets.push(0);
        let mut arena: Vec<P> = Vec::with_capacity(self.posting_count);
        let (mut fi, mut si) = (0usize, 0usize);
        while fi < old_keys.len() || si < staged.len() {
            let frozen_next = old_keys.get(fi).copied();
            let staged_next = staged.get(si).map(|e| e.0);
            match (frozen_next, staged_next) {
                (Some(fk), Some(sk)) if fk == sk => {
                    let frozen = &old_arena[old_offsets[fi]..old_offsets[fi + 1]];
                    merge_runs(&mut arena, frozen, &staged[si].1, &cmp);
                    keys.push(fk);
                    fi += 1;
                    si += 1;
                }
                (Some(fk), sk) if sk.is_none_or(|sk| fk < sk) => {
                    // Untouched frozen group: copied, never compared.
                    arena.extend_from_slice(&old_arena[old_offsets[fi]..old_offsets[fi + 1]]);
                    keys.push(fk);
                    fi += 1;
                }
                _ => {
                    arena.extend_from_slice(&staged[si].1);
                    keys.push(staged[si].0);
                    si += 1;
                }
            }
            offsets.push(arena.len());
        }
        // Shared keys make the reserved capacities overshoot; trim so
        // capacity-based size accounting stays exact for frozen state.
        keys.shrink_to_fit();
        offsets.shrink_to_fit();
        self.keys = keys;
        self.offsets = offsets;
        self.arena = arena;
        self.generation += 1;
    }

    /// True when every pushed posting is in the frozen arena.
    pub(crate) fn is_finalized(&self) -> bool {
        self.staging.is_empty()
    }

    /// The generation of the frozen arena: 0 before the first
    /// finalize, then +1 per finalize that folded staged postings.
    /// No-op finalizes (nothing staged) do not bump it, so equal
    /// generations mean byte-identical frozen state.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// The frozen posting group for `key` (None if absent or only in
    /// staging).
    #[inline]
    pub(crate) fn group(&self, key: &K) -> Option<&[P]> {
        let (_, range) = group_range(&self.keys, &self.offsets, key)?;
        Some(&self.arena[range])
    }

    /// Number of distinct keys (frozen plus staged).
    pub(crate) fn key_count(&self) -> usize {
        self.keys.len()
            + self
                .staging
                .keys()
                .filter(|k| self.keys.binary_search(k).is_err())
                .count()
    }

    /// Total number of postings ever pushed.
    pub(crate) fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Exact heap size in bytes: arena + key table + offsets, plus any
    /// staged postings not yet folded in. All terms are
    /// **capacity**-based: a staging `Vec` owns its whole growth-doubled
    /// allocation, not just the initialized prefix, so `len`-based
    /// accounting undercounted pre-finalize heap use (visible in
    /// `table1` when sizing a mid-build index). Frozen vectors are
    /// trimmed to exact size by `finalize`, so for a finalized index
    /// capacity and length agree.
    pub(crate) fn size_bytes(&self) -> usize {
        let arena = self.arena.capacity() * std::mem::size_of::<P>();
        let table = self.keys.capacity() * std::mem::size_of::<K>()
            + self.offsets.capacity() * std::mem::size_of::<usize>();
        let staged: usize = self
            .staging
            .values()
            .map(|v| {
                std::mem::size_of::<K>()
                    + std::mem::size_of::<Vec<P>>()
                    + v.capacity() * std::mem::size_of::<P>()
            })
            .sum();
        arena + table + staged
    }

    /// Iterates `(key, postings)` groups in ascending key order.
    ///
    /// # Panics
    /// If postings are staged: iteration sees only the frozen arena,
    /// so consumers (serializers, compressors) would silently drop the
    /// staged postings.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (K, &[P])> + '_ {
        assert!(
            self.is_finalized(),
            "iteration requires finalize() after the last push"
        );
        (0..self.keys.len()).map(move |i| {
            (
                self.keys[i],
                &self.arena[self.offsets[i]..self.offsets[i + 1]],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_value(a: &u32, b: &u32) -> std::cmp::Ordering {
        b.cmp(a) // descending
    }

    #[test]
    fn groups_are_key_sorted_and_cmp_ordered() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        for (k, v) in [(9u64, 1u32), (2, 5), (9, 7), (2, 3), (5, 4)] {
            c.push(k, v);
        }
        c.finalize(by_value);
        let got: Vec<(u64, Vec<u32>)> = c.iter().map(|(k, g)| (k, g.to_vec())).collect();
        assert_eq!(got, vec![(2, vec![5, 3]), (5, vec![4]), (9, vec![7, 1])]);
        assert_eq!(c.key_count(), 3);
        assert_eq!(c.posting_count(), 5);
        assert!(c.group(&5).is_some());
        assert!(c.group(&6).is_none());
    }

    #[test]
    fn refinalize_merges() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        c.push(1, 10);
        c.finalize(by_value);
        c.push(1, 20);
        assert!(!c.is_finalized());
        c.finalize(by_value);
        assert_eq!(c.group(&1).unwrap(), &[20, 10]);
    }

    #[test]
    #[should_panic(expected = "requires finalize()")]
    fn staged_iteration_panics() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        c.push(1, 1);
        let _ = c.iter().count();
    }

    #[test]
    fn desc_f64_is_total_and_descending() {
        let mut v = [1.0f64, f64::INFINITY, 0.0, 3.5, f64::NEG_INFINITY];
        v.sort_by(|a, b| desc_f64(*a, *b));
        assert_eq!(v[0], f64::INFINITY);
        assert_eq!(v[4], f64::NEG_INFINITY);
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    #[should_panic(expected = "NaN bound rejected at insert time")]
    fn check_bound_rejects_nan() {
        check_bound(f64::NAN, "bound");
    }

    #[test]
    fn check_bound_accepts_finite_and_infinite() {
        check_bound(0.0, "bound");
        check_bound(-1.5, "bound");
        check_bound(f64::INFINITY, "bound");
    }

    #[test]
    fn refinalize_merges_instead_of_resorting() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Freeze one large group, then splice in a single staged
        // posting. A full re-sort would cost O(n log n) comparator
        // calls; the merge path pays at most `staged·log staged`
        // (= 0 here) plus one pass over the merged group.
        const FROZEN: usize = 4096;
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        for v in 0..FROZEN as u32 {
            c.push(7, v);
        }
        c.finalize(by_value);
        c.push(7, 9_999_999); // sorts to the front (descending)
        let calls = AtomicUsize::new(0);
        c.finalize(|a: &u32, b: &u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            by_value(a, b)
        });
        let calls = calls.load(Ordering::Relaxed);
        // Merge bound: ≤ frozen + staged − 1. Re-sort would need at
        // least n·log₂(n)/2 ≈ 24k comparisons for n = 4097.
        assert!(
            calls <= FROZEN + 1,
            "re-finalize made {calls} comparator calls — frozen group re-sorted?"
        );
        assert_eq!(c.group(&7).unwrap().len(), FROZEN + 1);
        assert_eq!(c.group(&7).unwrap()[0], 9_999_999);
    }

    #[test]
    fn refinalize_leaves_untouched_groups_uncompared() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Staged postings for key 1 only: key 2's frozen group must be
        // copied without a single comparator call.
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        for v in 0..64u32 {
            c.push(1, v);
            c.push(2, v);
        }
        c.finalize(by_value);
        c.push(1, 1000);
        let calls = AtomicUsize::new(0);
        c.finalize(|a: &u32, b: &u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            by_value(a, b)
        });
        assert!(
            calls.load(Ordering::Relaxed) <= 64,
            "untouched group paid comparator calls"
        );
        assert_eq!(c.group(&2).unwrap().len(), 64);
    }

    #[test]
    fn merge_keeps_frozen_prefix_stable() {
        // Staged postings all order *after* the frozen ones: the merged
        // group must be exactly [frozen..., staged...] with the frozen
        // prefix byte-identical (the merge never reorders it).
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        for v in [90u32, 70, 50] {
            c.push(3, v);
        }
        c.finalize(by_value);
        let frozen: Vec<u32> = c.group(&3).unwrap().to_vec();
        for v in [40u32, 20] {
            c.push(3, v);
        }
        c.finalize(by_value);
        let merged = c.group(&3).unwrap();
        assert_eq!(&merged[..frozen.len()], &frozen[..], "frozen prefix moved");
        assert_eq!(&merged[frozen.len()..], &[40, 20]);
    }

    #[test]
    fn finalize_with_threads_matches_sequential() {
        // Many Zipf-ish groups, staged + frozen interleavings: every
        // thread count must produce the identical arena.
        let build = |threads: usize| {
            let mut c: CsrCore<u64, u32> = CsrCore::default();
            for i in 0..2000u32 {
                c.push(u64::from(i % 37), i.wrapping_mul(2_654_435_761));
            }
            c.finalize_with_threads(by_value, threads);
            for i in 0..500u32 {
                c.push(u64::from(i % 53), i.wrapping_mul(40_503) ^ 0xAAAA);
            }
            c.finalize_with_threads(by_value, threads);
            c.iter()
                .map(|(k, g)| (k, g.to_vec()))
                .collect::<Vec<(u64, Vec<u32>)>>()
        };
        let sequential = build(1);
        for threads in [2usize, 4, 8, 0] {
            assert_eq!(build(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn merge_runs_is_stable_and_complete() {
        let frozen = [9u32, 7, 7, 3];
        let staged = [8u32, 7, 2];
        let mut out = Vec::new();
        merge_runs(&mut out, &frozen, &staged, &by_value);
        assert_eq!(out, vec![9, 8, 7, 7, 7, 3, 2]);
        // Ties: frozen's 7s must come before staged's 7 — check by
        // merging marked values.
        let frozen = [(7u32, 'f')];
        let staged = [(7u32, 's')];
        let mut out = Vec::new();
        merge_runs(&mut out, &frozen, &staged, &|a: &(u32, char), b| {
            b.0.cmp(&a.0)
        });
        assert_eq!(out, vec![(7, 'f'), (7, 's')]);
    }

    #[test]
    fn size_bytes_counts_staged_capacity() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        c.push(1, 1);
        let one = c.size_bytes();
        // The staging Vec's capacity (≥ its len) is what the heap
        // actually holds; pushing within capacity must not shrink the
        // report, and the report must cover at least the capacity.
        let cap = 1 + c.staging[&1].capacity() - c.staging[&1].len();
        for v in 0..cap as u32 {
            c.push(1, v);
        }
        assert!(c.size_bytes() >= one);
        let staged_bytes = c.staging[&1].capacity() * std::mem::size_of::<u32>();
        assert!(c.size_bytes() >= staged_bytes);
    }

    #[test]
    fn generation_counts_folding_finalizes_only() {
        let mut c: CsrCore<u64, u32> = CsrCore::default();
        assert_eq!(c.generation(), 0);
        c.finalize(by_value); // nothing staged: no-op, no bump
        assert_eq!(c.generation(), 0);
        c.push(1, 1);
        c.finalize(by_value);
        assert_eq!(c.generation(), 1);
        c.finalize(by_value); // idempotent freeze: still generation 1
        assert_eq!(c.generation(), 1);
        c.push(2, 2);
        c.push(1, 3);
        c.finalize(by_value);
        assert_eq!(c.generation(), 2);
    }

    #[test]
    fn group_range_matches_offsets() {
        let keys = [2u64, 5, 9];
        let offsets = [0usize, 3, 3, 7];
        assert_eq!(group_range(&keys, &offsets, &2), Some((0, 0..3)));
        assert_eq!(group_range(&keys, &offsets, &5), Some((1, 3..3)));
        assert_eq!(group_range(&keys, &offsets, &9), Some((2, 3..7)));
        assert_eq!(group_range(&keys, &offsets, &4), None);
    }
}
