//! The `.seal` durable container: a checksummed, section-addressed
//! single-file format with crash-safe atomic writes.
//!
//! A container is a flat byte string laid out as
//!
//! ```text
//! header    10 B   magic u32 | version u8 | flags u8 | section_count u32
//! directory 22 B × section_count
//!                  kind u16 | offset u64 | len u64 | crc32 u32
//! payloads  contiguous section bytes, in directory order
//! footer    16 B   file_len u64 | dir_crc u32 | footer_magic u32
//! ```
//!
//! (all integers little-endian). Every byte of the file is covered by
//! a CRC: payloads by their directory entry's per-section CRC32, the
//! header and directory themselves by the footer's `dir_crc`, and the
//! footer by its own magic plus the `file_len` echo — so any single
//! bit flip anywhere in the file is detected before a payload is
//! handed to a decoder.
//!
//! # Hardened parsing
//!
//! [`Container::parse`] is written for *untrusted* bytes: every
//! declared count and length is validated against the bytes actually
//! present **before** any allocation is sized from it, section ranges
//! must be contiguous, in order and in bounds (checked arithmetic, no
//! overlap, no gaps), and every failure is a typed [`ContainerError`]
//! — never a panic, never an oversized `Vec::with_capacity`.
//!
//! # Streaming load
//!
//! [`stream_file`] applies the exact same validation pipeline directly
//! to a file handle, but **overlaps I/O with verification**: the
//! footer and directory are validated first (one seek to the tail,
//! one to the head), then the caller thread reads payloads
//! sequentially in file order and hands each one to a pool worker the
//! moment its bytes land, so per-section CRC checks and decoding run
//! concurrently with the remaining reads. Earlier sections are
//! published to later decoders through [`RawSections`], matching the
//! writer's push order (e.g. engine metadata lands before the index
//! payloads that need it).
//!
//! # Crash-safe writes
//!
//! [`ContainerWriter::write_atomic`] serializes to `<path>.tmp`,
//! fsyncs, then atomically renames over the destination (fsyncing the
//! parent directory afterwards, best effort). A crash at any point
//! leaves either the previous container or the complete new one on
//! disk — never a torn file — and a stale `.tmp` from a crashed save
//! is simply overwritten by the next attempt.
//!
//! Section *kinds* are opaque `u16` tags at this layer; `seal-core`
//! defines the engine's taxonomy (store, dictionary, engine metadata,
//! scheme, index payloads). The legacy raw codec blobs (kinds 1–6 of
//! the `serialize` codec) remain loadable directly through each index
//! type's `from_bytes` — the compatibility entry point for pre-container
//! files; [`looks_like_legacy_codec`] distinguishes the two formats.

use crate::IndexCodecError;
use std::fmt;
use std::fs::File;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Mutex, OnceLock};

/// First four bytes of every `.seal` container.
pub const CONTAINER_MAGIC: u32 = 0x5EA1_C0DE;
/// Last four bytes of every `.seal` container.
pub const FOOTER_MAGIC: u32 = 0x5EA1_F007;
/// Current container format version.
pub const CONTAINER_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 10;
/// Size of one directory entry in bytes.
pub const DIR_ENTRY_LEN: usize = 22;
/// Fixed footer size in bytes.
pub const FOOTER_LEN: usize = 16;

/// IEEE CRC-32 lookup table (reflected polynomial 0xEDB88320),
/// computed at compile time so the checksum needs no runtime setup
/// and no external crate.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // seal-lint: allow(persisted-narrowing-cast) — compile-time table index in 0..256
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG polynomial) of a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // seal-lint: allow(persisted-narrowing-cast) — masked to 8 bits, always a table index
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// True when `bytes` start with the **legacy** raw index codec magic
/// (the `serialize` codec's kinds 1–6) rather than a container — used
/// to route pre-container files to the compatibility `from_bytes`
/// entry points and to produce a helpful error otherwise.
pub fn looks_like_legacy_codec(bytes: &[u8]) -> bool {
    bytes.len() >= 4
        && u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) == crate::serialize::MAGIC
}

/// Why a container failed to parse, verify, decode or persist.
///
/// Every malformed input maps to exactly one of these variants; the
/// load path never panics on untrusted bytes.
#[derive(Debug)]
pub enum ContainerError {
    /// The file is shorter than its fixed framing requires.
    Truncated {
        /// Bytes the current parse step needed.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The leading magic is not [`CONTAINER_MAGIC`].
    BadMagic {
        /// The four bytes found, as a little-endian `u32`.
        found: u32,
    },
    /// The format version is not supported by this build.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The trailing magic is not [`FOOTER_MAGIC`].
    BadFooterMagic {
        /// The four bytes found, as a little-endian `u32`.
        found: u32,
    },
    /// The footer's recorded file length disagrees with the bytes
    /// present (truncation or trailing garbage).
    LengthMismatch {
        /// Length recorded in the footer.
        declared: u64,
        /// Length of the byte string handed to the parser.
        actual: u64,
    },
    /// The header/directory CRC in the footer does not match.
    DirectoryChecksum {
        /// CRC recorded in the footer.
        expected: u32,
        /// CRC computed over the bytes present.
        found: u32,
    },
    /// The declared section count does not fit in the file — the
    /// allocation-cap check (`count × entry size` validated against
    /// the bytes present *before* any `Vec::with_capacity`).
    OversizedDirectory {
        /// Declared section count.
        sections: u64,
        /// Bytes available between header and footer.
        available: usize,
    },
    /// A directory entry is malformed (out of bounds, overlapping,
    /// out of order, or leaving unaccounted bytes).
    BadSectionTable {
        /// Index of the offending entry.
        index: usize,
        /// What was expected vs found.
        detail: String,
    },
    /// A payload's CRC32 does not match its directory entry.
    SectionChecksum {
        /// Section kind tag.
        kind: u16,
        /// CRC recorded in the directory.
        expected: u32,
        /// CRC computed over the payload bytes.
        found: u32,
    },
    /// The same section kind appears twice.
    DuplicateSection {
        /// The duplicated kind tag.
        kind: u16,
    },
    /// A section the decoder requires is absent.
    MissingSection {
        /// The missing kind tag.
        kind: u16,
    },
    /// A section payload failed to decode (the engine-level sections:
    /// store, dictionary, metadata, scheme).
    Section {
        /// Human-readable section name.
        section: &'static str,
        /// Byte offset within the section payload.
        offset: usize,
        /// Expected-vs-found detail.
        detail: String,
    },
    /// An index payload failed the `serialize` codec.
    Codec(IndexCodecError),
    /// An I/O failure while reading or atomically writing the file.
    Io(std::io::Error),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::Truncated { need, have } => {
                write!(f, "container truncated: need {need} bytes, have {have}")
            }
            ContainerError::BadMagic { found } => {
                write!(f, "not a .seal container (magic {found:#010x})")
            }
            ContainerError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported container version {found} (expected {CONTAINER_VERSION})"
                )
            }
            ContainerError::BadFooterMagic { found } => {
                write!(f, "container footer corrupt (magic {found:#010x})")
            }
            ContainerError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "container length mismatch: footer declares {declared} bytes, file has {actual}"
                )
            }
            ContainerError::DirectoryChecksum { expected, found } => {
                write!(
                    f,
                    "container directory checksum mismatch: expected {expected:#010x}, \
                     found {found:#010x}"
                )
            }
            ContainerError::OversizedDirectory {
                sections,
                available,
            } => {
                write!(
                    f,
                    "container declares {sections} sections but only {available} bytes follow \
                     the header"
                )
            }
            ContainerError::BadSectionTable { index, detail } => {
                write!(f, "container section table entry {index}: {detail}")
            }
            ContainerError::SectionChecksum {
                kind,
                expected,
                found,
            } => {
                write!(
                    f,
                    "section kind {kind} checksum mismatch: expected {expected:#010x}, \
                     found {found:#010x}"
                )
            }
            ContainerError::DuplicateSection { kind } => {
                write!(f, "section kind {kind} appears more than once")
            }
            ContainerError::MissingSection { kind } => {
                write!(f, "required section kind {kind} is missing")
            }
            ContainerError::Section {
                section,
                offset,
                detail,
            } => {
                write!(f, "section {section:?} corrupt at byte {offset}: {detail}")
            }
            ContainerError::Codec(e) => write!(f, "index payload: {e}"),
            ContainerError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Codec(e) => Some(e),
            ContainerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IndexCodecError> for ContainerError {
    fn from(e: IndexCodecError) -> Self {
        ContainerError::Codec(e)
    }
}

impl From<std::io::Error> for ContainerError {
    fn from(e: std::io::Error) -> Self {
        ContainerError::Io(e)
    }
}

/// Assembles a container from `(kind, payload)` sections and persists
/// it atomically.
#[derive(Default)]
pub struct ContainerWriter {
    sections: Vec<(u16, Vec<u8>)>,
}

impl ContainerWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ContainerWriter::default()
    }

    /// Appends a section. Sections are laid out (and must be decoded)
    /// in push order; each kind may appear at most once, which
    /// [`finish`](Self::finish) enforces by construction of the
    /// callers and [`Container::parse`] re-checks on load.
    pub fn push_section(&mut self, kind: u16, payload: Vec<u8>) {
        self.sections.push((kind, payload));
    }

    /// Serializes the container to bytes: header, directory with
    /// per-section CRCs, contiguous payloads, CRC-protected footer.
    /// The output is a pure function of the pushed sections, so equal
    /// section bytes always produce equal container bytes.
    pub fn finish(self) -> Vec<u8> {
        let dir_len = self.sections.len() * DIR_ENTRY_LEN;
        let payload_len: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let total = HEADER_LEN + dir_len + payload_len + FOOTER_LEN;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&CONTAINER_MAGIC.to_le_bytes());
        out.push(CONTAINER_VERSION);
        out.push(0); // flags, reserved
        let count = u32::try_from(self.sections.len()).expect("section count fits u32");
        out.extend_from_slice(&count.to_le_bytes());
        let mut offset = HEADER_LEN + dir_len;
        for (kind, payload) in &self.sections {
            out.extend_from_slice(&kind.to_le_bytes());
            out.extend_from_slice(&(offset as u64).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            offset += payload.len();
        }
        let dir_crc = crc32(&out);
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out.extend_from_slice(&(total as u64).to_le_bytes());
        out.extend_from_slice(&dir_crc.to_le_bytes());
        out.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
        debug_assert_eq!(out.len(), total);
        out
    }

    /// Serializes and writes the container to `path` **crash-safely**:
    /// the bytes go to [`temp_path_for`]`(path)` first, are fsynced,
    /// and are renamed over the destination only once fully on disk
    /// (then the parent directory is fsynced, best effort). A failure
    /// at any step leaves an existing file at `path` untouched.
    /// Returns the container size in bytes.
    pub fn write_atomic(self, path: &Path) -> Result<u64, ContainerError> {
        let bytes = self.finish();
        let tmp = temp_path_for(path);
        let write = (|| -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, path)?;
            // Make the rename itself durable. Not all platforms allow
            // opening a directory for sync; failing to fsync the
            // parent weakens durability, not atomicity, so best
            // effort is the right trade here.
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    if let Ok(d) = File::open(dir) {
                        let _ = d.sync_all();
                    }
                }
            }
            Ok(())
        })();
        if let Err(e) = write {
            // Best-effort cleanup; the temp file is ignored by loads
            // and overwritten by the next save either way.
            let _ = std::fs::remove_file(&tmp);
            return Err(ContainerError::Io(e));
        }
        Ok(bytes.len() as u64)
    }
}

/// The deterministic scratch path a save writes before renaming:
/// `<path>.tmp`. Deterministic so a crashed save's leftover is
/// reclaimed (overwritten) by the next save instead of accumulating.
pub fn temp_path_for(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// One parsed section: a validated, CRC-checked window into the
/// container bytes.
#[derive(Debug, Clone, Copy)]
pub struct Section<'a> {
    /// The section's kind tag.
    pub kind: u16,
    /// Byte offset of the payload within the container.
    pub offset: usize,
    /// The payload bytes.
    pub payload: &'a [u8],
}

/// A parsed, fully verified container: framing validated, every
/// section CRC checked. Borrowing (rather than copying) the input
/// keeps the parse allocation proportional to the section *count*,
/// never the payload sizes.
#[derive(Debug)]
pub struct Container<'a> {
    sections: Vec<Section<'a>>,
}

impl<'a> Container<'a> {
    /// [`parse_with_threads`](Self::parse_with_threads) on one thread.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, ContainerError> {
        Self::parse_with_threads(bytes, 1)
    }

    /// Parses and verifies a container, fanning the per-section CRC
    /// checks out over `threads` workers of the shared
    /// [`crate::parallel`] pool (0 = one per core) — each section is
    /// dispatched to a worker as it is sliced out of the buffer.
    ///
    /// # Errors
    /// A typed [`ContainerError`] for any malformed input: this
    /// function never panics and never sizes an allocation from an
    /// unvalidated count, no matter the bytes.
    pub fn parse_with_threads(bytes: &'a [u8], threads: usize) -> Result<Self, ContainerError> {
        if bytes.len() < HEADER_LEN + FOOTER_LEN {
            return Err(ContainerError::Truncated {
                need: HEADER_LEN + FOOTER_LEN,
                have: bytes.len(),
            });
        }
        let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if magic != CONTAINER_MAGIC {
            return Err(ContainerError::BadMagic { found: magic });
        }
        if bytes[4] != CONTAINER_VERSION {
            return Err(ContainerError::BadVersion { found: bytes[4] });
        }
        // bytes[5] is the flags byte, reserved (ignored when zero or
        // not; covered by the directory CRC like the rest).
        // seal-lint: allow(persisted-narrowing-cast) — u32 → usize is lossless on 64-bit targets
        let section_count = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;

        // Footer first: it vouches for the header + directory, so a
        // flipped bit in the framing is caught before the framing is
        // trusted.
        let foot = &bytes[bytes.len() - FOOTER_LEN..];
        let declared = u64::from_le_bytes(foot[0..8].try_into().expect("8-byte slice"));
        let dir_crc = u32::from_le_bytes(foot[8..12].try_into().expect("4-byte slice"));
        let footer_magic = u32::from_le_bytes(foot[12..16].try_into().expect("4-byte slice"));
        if footer_magic != FOOTER_MAGIC {
            return Err(ContainerError::BadFooterMagic {
                found: footer_magic,
            });
        }
        if declared != bytes.len() as u64 {
            return Err(ContainerError::LengthMismatch {
                declared,
                actual: bytes.len() as u64,
            });
        }

        // The allocation cap: the directory must fit in the bytes
        // actually present before `section_count` sizes anything.
        let body = bytes.len() - HEADER_LEN - FOOTER_LEN;
        let dir_bytes = section_count
            .checked_mul(DIR_ENTRY_LEN)
            .filter(|&n| n <= body)
            .ok_or(ContainerError::OversizedDirectory {
                sections: section_count as u64,
                available: body,
            })?;
        let dir_end = HEADER_LEN + dir_bytes;
        let found_crc = crc32(&bytes[..dir_end]);
        if found_crc != dir_crc {
            return Err(ContainerError::DirectoryChecksum {
                expected: dir_crc,
                found: found_crc,
            });
        }

        // Directory entries: contiguous, ascending, in bounds.
        let payload_end = bytes.len() - FOOTER_LEN;
        let mut checked: Vec<(Section<'a>, u32)> = Vec::with_capacity(section_count);
        let mut cursor = dir_end;
        for index in 0..section_count {
            let e = &bytes[HEADER_LEN + index * DIR_ENTRY_LEN..][..DIR_ENTRY_LEN];
            let kind = u16::from_le_bytes([e[0], e[1]]);
            let offset = u64::from_le_bytes(e[2..10].try_into().expect("8-byte slice"));
            let len = u64::from_le_bytes(e[10..18].try_into().expect("8-byte slice"));
            let crc = u32::from_le_bytes(e[18..22].try_into().expect("4-byte slice"));
            let (Ok(offset), Ok(len)) = (usize::try_from(offset), usize::try_from(len)) else {
                return Err(ContainerError::BadSectionTable {
                    index,
                    detail: format!("offset {offset} / len {len} exceed the address space"),
                });
            };
            if offset != cursor {
                return Err(ContainerError::BadSectionTable {
                    index,
                    detail: format!("expected contiguous offset {cursor}, found {offset}"),
                });
            }
            let Some(end) = offset.checked_add(len).filter(|&e| e <= payload_end) else {
                return Err(ContainerError::BadSectionTable {
                    index,
                    detail: format!(
                        "payload [{offset}, {offset}+{len}) overruns the payload area \
                         (ends at {payload_end})"
                    ),
                });
            };
            if checked.iter().any(|(s, _)| s.kind == kind) {
                return Err(ContainerError::DuplicateSection { kind });
            }
            checked.push((
                Section {
                    kind,
                    offset,
                    payload: &bytes[offset..end],
                },
                crc,
            ));
            cursor = end;
        }
        if cursor != payload_end {
            return Err(ContainerError::BadSectionTable {
                index: section_count,
                detail: format!(
                    "sections end at {cursor} but the payload area ends at {payload_end} \
                     (unaccounted bytes)"
                ),
            });
        }

        // Per-section CRCs, one worker per section slice.
        let threads = crate::parallel::resolve_threads(threads);
        let mismatches: Vec<Option<(u16, u32, u32)>> =
            crate::parallel::map_indexed(checked.len(), threads, |i| {
                let (s, expected) = &checked[i];
                let found = crc32(s.payload);
                (found != *expected).then_some((s.kind, *expected, found))
            });
        if let Some((kind, expected, found)) = mismatches.into_iter().flatten().next() {
            return Err(ContainerError::SectionChecksum {
                kind,
                expected,
                found,
            });
        }

        Ok(Container {
            sections: checked.into_iter().map(|(s, _)| s).collect(),
        })
    }

    /// The sections in file order.
    pub fn sections(&self) -> &[Section<'a>] {
        &self.sections
    }

    /// The payload of the section with the given kind, if present.
    pub fn section(&self, kind: u16) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.payload)
    }

    /// The payload of a section the decoder cannot proceed without.
    ///
    /// # Errors
    /// [`ContainerError::MissingSection`] when absent.
    pub fn require(&self, kind: u16) -> Result<&'a [u8], ContainerError> {
        self.section(kind)
            .ok_or(ContainerError::MissingSection { kind })
    }
}

/// The payloads already read off disk during a [`stream_file`] parse,
/// visible to the decode hook for cross-section lookups (e.g. an
/// index payload whose decoder needs the engine-metadata section).
///
/// Payloads are published in file order, so by the time a section's
/// hook runs, every section the writer laid out *before* it is
/// guaranteed visible; later sections may or may not be, depending on
/// how far the reader has advanced.
pub struct RawSections<'a> {
    kinds: &'a [u16],
    slots: &'a [OnceLock<Vec<u8>>],
}

impl RawSections<'_> {
    /// The raw (CRC-unverified-by-the-caller, already-read) payload of
    /// the section with the given kind, if its bytes have landed.
    /// Returns `None` for unknown kinds and for sections not yet read.
    pub fn raw(&self, kind: u16) -> Option<&[u8]> {
        self.kinds
            .iter()
            .position(|&k| k == kind)
            .and_then(|i| self.slots[i].get())
            .map(Vec::as_slice)
    }
}

/// One fully validated directory entry of a streaming parse.
struct StreamEntry {
    kind: u16,
    len: usize,
    crc: u32,
}

/// Parses a `.seal` container **streaming from disk**: the framing
/// (footer, header, directory) is validated up front exactly as in
/// [`Container::parse`], then each section payload is handed to a
/// worker of the shared [`crate::parallel`] pool as soon as its bytes
/// are read, so CRC verification and `decode` overlap with the
/// remaining file I/O instead of waiting for the whole file.
///
/// `decode` is called once per section with `(kind, payload, raw)`
/// where `raw` exposes previously read sections (see [`RawSections`]);
/// results come back as `(kind, T)` pairs in file order. `threads`
/// follows the usual convention (0 = one per core); one thread reads,
/// the rest verify/decode, and the reader helps drain the queue once
/// the last payload is in memory.
///
/// # Errors
/// A typed [`ContainerError`] for any malformed input — the same
/// guarantees as [`Container::parse`]: never a panic, never an
/// allocation sized from an unvalidated count. When several sections
/// fail, the error for the lowest-offset section wins
/// (deterministically, regardless of worker scheduling).
pub fn stream_file<T, F>(
    path: &Path,
    threads: usize,
    decode: F,
) -> Result<Vec<(u16, T)>, ContainerError>
where
    T: Send,
    F: Fn(u16, &[u8], &RawSections<'_>) -> Result<T, ContainerError> + Sync,
{
    let mut file = File::open(path)?;
    let actual = file.metadata()?.len();
    let Ok(file_len) = usize::try_from(actual) else {
        return Err(ContainerError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "container larger than the address space",
        )));
    };
    if file_len < HEADER_LEN + FOOTER_LEN {
        return Err(ContainerError::Truncated {
            need: HEADER_LEN + FOOTER_LEN,
            have: file_len,
        });
    }

    // Footer first, exactly as in the buffered parse: it vouches for
    // the header and directory before either is trusted.
    let mut foot = [0u8; FOOTER_LEN];
    file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
    file.read_exact(&mut foot)?;
    let declared = u64::from_le_bytes(foot[0..8].try_into().expect("8-byte slice"));
    let dir_crc = u32::from_le_bytes(foot[8..12].try_into().expect("4-byte slice"));
    let footer_magic = u32::from_le_bytes(foot[12..16].try_into().expect("4-byte slice"));
    if footer_magic != FOOTER_MAGIC {
        return Err(ContainerError::BadFooterMagic {
            found: footer_magic,
        });
    }
    if declared != actual {
        return Err(ContainerError::LengthMismatch { declared, actual });
    }

    file.seek(SeekFrom::Start(0))?;
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header)?;
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != CONTAINER_MAGIC {
        return Err(ContainerError::BadMagic { found: magic });
    }
    if header[4] != CONTAINER_VERSION {
        return Err(ContainerError::BadVersion { found: header[4] });
    }
    let count_u32 = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    let section_count = usize::try_from(count_u32).expect("u32 fits usize");

    // Allocation cap before the directory read is sized.
    let body = file_len - HEADER_LEN - FOOTER_LEN;
    let dir_bytes = section_count
        .checked_mul(DIR_ENTRY_LEN)
        .filter(|&n| n <= body)
        .ok_or(ContainerError::OversizedDirectory {
            sections: u64::from(count_u32),
            available: body,
        })?;
    let mut dir = vec![0u8; dir_bytes];
    file.read_exact(&mut dir)?;
    // The footer's CRC covers header + directory as one span.
    let mut framing = Vec::with_capacity(HEADER_LEN + dir_bytes);
    framing.extend_from_slice(&header);
    framing.extend_from_slice(&dir);
    let found_crc = crc32(&framing);
    if found_crc != dir_crc {
        return Err(ContainerError::DirectoryChecksum {
            expected: dir_crc,
            found: found_crc,
        });
    }

    // Directory entries: contiguous, ascending, in bounds — the same
    // invariants `Container::parse` enforces.
    let payload_end = file_len - FOOTER_LEN;
    let dir_end = HEADER_LEN + dir_bytes;
    let mut entries: Vec<StreamEntry> = Vec::with_capacity(section_count);
    let mut cursor = dir_end;
    for index in 0..section_count {
        let e = &dir[index * DIR_ENTRY_LEN..][..DIR_ENTRY_LEN];
        let kind = u16::from_le_bytes([e[0], e[1]]);
        let offset = u64::from_le_bytes(e[2..10].try_into().expect("8-byte slice"));
        let len = u64::from_le_bytes(e[10..18].try_into().expect("8-byte slice"));
        let crc = u32::from_le_bytes(e[18..22].try_into().expect("4-byte slice"));
        let (Ok(offset), Ok(len)) = (usize::try_from(offset), usize::try_from(len)) else {
            return Err(ContainerError::BadSectionTable {
                index,
                detail: format!("offset {offset} / len {len} exceed the address space"),
            });
        };
        if offset != cursor {
            return Err(ContainerError::BadSectionTable {
                index,
                detail: format!("expected contiguous offset {cursor}, found {offset}"),
            });
        }
        let Some(end) = offset.checked_add(len).filter(|&e| e <= payload_end) else {
            return Err(ContainerError::BadSectionTable {
                index,
                detail: format!(
                    "payload [{offset}, {offset}+{len}) overruns the payload area \
                     (ends at {payload_end})"
                ),
            });
        };
        if entries.iter().any(|s| s.kind == kind) {
            return Err(ContainerError::DuplicateSection { kind });
        }
        entries.push(StreamEntry { kind, len, crc });
        cursor = end;
    }
    if cursor != payload_end {
        return Err(ContainerError::BadSectionTable {
            index: section_count,
            detail: format!(
                "sections end at {cursor} but the payload area ends at {payload_end} \
                 (unaccounted bytes)"
            ),
        });
    }

    // Streaming phase: the caller thread reads payloads in file order
    // and publishes each through a `OnceLock`, dispatching its index
    // to the worker queue the moment the bytes land. Workers CRC-check
    // and decode while the reader keeps pulling the next section.
    let kinds: Vec<u16> = entries.iter().map(|e| e.kind).collect();
    let slots: Vec<OnceLock<Vec<u8>>> = (0..section_count).map(|_| OnceLock::new()).collect();
    let results: Vec<Mutex<Option<Result<T, ContainerError>>>> =
        (0..section_count).map(|_| Mutex::new(None)).collect();
    let workers = crate::parallel::resolve_threads(threads)
        .saturating_sub(1)
        .min(section_count);
    let (tx, rx) = mpsc::channel::<usize>();
    let rx = Mutex::new(rx);
    let mut read_error: Option<std::io::Error> = None;

    let work = |i: usize| {
        let raw = RawSections {
            kinds: &kinds,
            slots: &slots,
        };
        let payload = slots[i].get().expect("payload published before dispatch");
        let entry = &entries[i];
        let found = crc32(payload);
        let res = if found == entry.crc {
            decode(entry.kind, payload, &raw)
        } else {
            Err(ContainerError::SectionChecksum {
                kind: entry.kind,
                expected: entry.crc,
                found,
            })
        };
        *results[i].lock().expect("result slot lock") = Some(res);
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = rx.lock().expect("queue lock").recv();
                match next {
                    Ok(i) => work(i),
                    Err(_) => break,
                }
            });
        }
        for (i, entry) in entries.iter().enumerate() {
            let mut payload = vec![0u8; entry.len];
            if let Err(e) = file.read_exact(&mut payload) {
                read_error = Some(e);
                break;
            }
            slots[i]
                .set(payload)
                .expect("each slot is set exactly once");
            let _ = tx.send(i);
        }
        // Reading done (or failed): close the queue so workers exit
        // once drained, and help drain it from this thread meanwhile.
        drop(tx);
        loop {
            let next = rx.lock().expect("queue lock").recv();
            match next {
                Ok(i) => work(i),
                Err(_) => break,
            }
        }
    });

    if let Some(e) = read_error {
        return Err(ContainerError::Io(e));
    }
    // Deterministic error selection: the lowest-offset failing section
    // wins, regardless of which worker hit it first.
    let mut out = Vec::with_capacity(section_count);
    for (i, entry) in entries.iter().enumerate() {
        let slot = results[i]
            .lock()
            .expect("result slot lock")
            .take()
            .expect("every dispatched section is decoded before the scope exits");
        out.push((entry.kind, slot?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ContainerWriter::new();
        w.push_section(1, vec![1, 2, 3, 4, 5]);
        w.push_section(2, Vec::new());
        w.push_section(7, vec![0xAB; 100]);
        w.finish()
    }

    #[test]
    fn crc32_known_vectors() {
        // The standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_preserves_sections() {
        let bytes = sample();
        for threads in [1usize, 2, 0] {
            let c = Container::parse_with_threads(&bytes, threads).expect("valid container");
            assert_eq!(c.sections().len(), 3);
            assert_eq!(c.section(1), Some(&[1u8, 2, 3, 4, 5][..]));
            assert_eq!(c.section(2), Some(&[][..]));
            assert_eq!(c.section(7).map(<[u8]>::len), Some(100));
            assert!(c.section(3).is_none());
            assert!(matches!(
                c.require(3),
                Err(ContainerError::MissingSection { kind: 3 })
            ));
        }
    }

    #[test]
    fn finish_is_deterministic() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn empty_container_roundtrips() {
        let bytes = ContainerWriter::new().finish();
        assert_eq!(bytes.len(), HEADER_LEN + FOOTER_LEN);
        let c = Container::parse(&bytes).expect("empty container is valid");
        assert!(c.sections().is_empty());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    Container::parse(&bad).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample();
        for len in 0..bytes.len() {
            assert!(
                Container::parse(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn oversized_section_count_is_rejected_before_allocation() {
        let mut bytes = sample();
        // Declare u32::MAX sections; the directory CRC will also
        // mismatch, but the count check must fire safely regardless of
        // field order — so patch the CRC to keep the framing "valid".
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        match Container::parse(&bytes) {
            Err(
                ContainerError::OversizedDirectory { .. }
                | ContainerError::DirectoryChecksum { .. },
            ) => {}
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn legacy_codec_magic_is_distinguished() {
        let legacy = 0x5EA1_1D8Eu32.to_le_bytes();
        assert!(looks_like_legacy_codec(&legacy));
        assert!(!looks_like_legacy_codec(&sample()));
        assert!(!looks_like_legacy_codec(&[1, 2]));
        assert!(matches!(
            Container::parse(&legacy),
            Err(ContainerError::Truncated { .. })
        ));
    }

    #[test]
    fn temp_path_is_deterministic() {
        let p = Path::new("/tmp/x/index.seal");
        assert_eq!(temp_path_for(p), PathBuf::from("/tmp/x/index.seal.tmp"));
        assert_eq!(temp_path_for(p), temp_path_for(p));
    }

    #[test]
    fn atomic_write_then_parse() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("seal-container-test-{}.seal", std::process::id()));
        let mut w = ContainerWriter::new();
        w.push_section(4, vec![9, 9, 9]);
        let n = w.write_atomic(&path).expect("atomic write");
        let bytes = std::fs::read(&path).expect("read back");
        assert_eq!(bytes.len() as u64, n);
        assert!(
            !temp_path_for(&path).exists(),
            "temp file must be renamed away"
        );
        let c = Container::parse(&bytes).expect("parse written container");
        assert_eq!(c.section(4), Some(&[9u8, 9, 9][..]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_atomic_write_leaves_destination_untouched() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("seal-container-keep-{}.seal", std::process::id()));
        let mut w = ContainerWriter::new();
        w.push_section(1, vec![1]);
        w.write_atomic(&path).expect("initial save");
        let original = std::fs::read(&path).expect("read original");
        // Sabotage the scratch path: a *directory* at `<path>.tmp`
        // makes File::create fail, simulating a save that dies before
        // the rename.
        let tmp = temp_path_for(&path);
        std::fs::create_dir(&tmp).expect("plant blocking dir");
        let mut w2 = ContainerWriter::new();
        w2.push_section(1, vec![2]);
        assert!(matches!(w2.write_atomic(&path), Err(ContainerError::Io(_))));
        assert_eq!(
            std::fs::read(&path).expect("destination intact"),
            original,
            "failed save must never clobber the existing container"
        );
        std::fs::remove_dir(&tmp).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_file_matches_buffered_parse() {
        let bytes = sample();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("seal-stream-parity-{}.seal", std::process::id()));
        std::fs::write(&path, &bytes).expect("write sample");
        let parsed = Container::parse(&bytes).expect("buffered parse");
        for threads in [1usize, 2, 0] {
            let streamed = stream_file(&path, threads, |_, payload, _| Ok(payload.to_vec()))
                .expect("streamed parse");
            assert_eq!(streamed.len(), parsed.sections().len());
            for ((kind, payload), section) in streamed.iter().zip(parsed.sections()) {
                assert_eq!(*kind, section.kind);
                assert_eq!(payload.as_slice(), section.payload);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_file_sees_earlier_sections_and_reports_typed_errors() {
        let bytes = sample();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("seal-stream-raw-{}.seal", std::process::id()));
        std::fs::write(&path, &bytes).expect("write sample");
        // Kinds are pushed 1, 2, 7 — so when kind 7 decodes, kinds 1
        // and 2 are guaranteed published; an unknown kind is None.
        stream_file(&path, 1, |kind, _, raw| {
            if kind == 7 {
                assert_eq!(raw.raw(1), Some(&[1u8, 2, 3, 4, 5][..]));
                assert_eq!(raw.raw(2), Some(&[][..]));
                assert!(raw.raw(999).is_none());
            }
            Ok(())
        })
        .expect("stream with raw lookups");
        // A decode-hook error surfaces as the lowest failing section.
        let err = stream_file(&path, 0, |kind, _, _| {
            if kind == 1 || kind == 7 {
                Err(ContainerError::MissingSection { kind })
            } else {
                Ok(())
            }
        })
        .expect_err("hook errors must propagate");
        assert!(
            matches!(err, ContainerError::MissingSection { kind: 1 }),
            "lowest-offset failure must win, got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_file_detects_corruption_and_truncation() {
        let bytes = sample();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("seal-stream-corrupt-{}.seal", std::process::id()));
        // Flip one payload bit (inside section 7's 0xAB run).
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - FOOTER_LEN - 10] ^= 0x01;
        std::fs::write(&path, &bad).expect("write corrupt");
        let err = stream_file(&path, 0, |_, _, _| Ok(())).expect_err("must detect flip");
        assert!(
            matches!(err, ContainerError::SectionChecksum { kind: 7, .. }),
            "expected payload checksum failure, got {err:?}"
        );
        // Every truncation is a typed error through the streaming path.
        for len in [0, 5, HEADER_LEN, n - FOOTER_LEN, n - 1] {
            std::fs::write(&path, &bytes[..len]).expect("write truncated");
            assert!(
                stream_file(&path, 1, |_, _, _| Ok(())).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_diagnosable() {
        let e = ContainerError::SectionChecksum {
            kind: 6,
            expected: 0xDEAD_BEEF,
            found: 0x0BAD_F00D,
        };
        let msg = e.to_string();
        assert!(msg.contains("kind 6"), "{msg}");
        assert!(msg.contains("0xdeadbeef"), "{msg}");
        let e = ContainerError::Section {
            section: "store",
            offset: 42,
            detail: "expected 7 objects, found count 9".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("store") && msg.contains("42"), "{msg}");
        let codec: ContainerError = IndexCodecError::Truncated.into();
        assert!(std::error::Error::source(&codec).is_some());
    }
}
