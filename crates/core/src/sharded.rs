//! Sharded serving: partition the corpus across N [`LiveEngine`]
//! shards behind the [`QueryEngine`] boundary.
//!
//! # Partitioning
//!
//! Objects route to shards by a **locality-preserving spatial
//! partitioner**: a uniform [`seal_geom::Grid`] over the corpus space,
//! cells mapped to shards in contiguous row-major runs cut so each run
//! holds roughly 1/N of the initial corpus mass, each object routed by
//! the cell of its region's center. Spatially close objects
//! land on the same shard, so a query MBR touches few shards — the
//! Social-Hash argument (co-locate what is queried together) applied
//! to spatial locality. A hotspot cell too heavy for one run (a dense
//! city at continental scale) is split across the shards its mass
//! interval covers, objects dealt through the interval by a per-cell
//! counter so each shard receives exactly its proportional share — the
//! one place balance is bought with fan-out, and only for queries that
//! actually hit the hotspot. Should the assignment still come out
//! badly skewed (one shard holding > 1.5× its fair share — possible
//! when the initial mass map no longer matches what is pushed) the
//! engine falls back to **round-robin** by global id: worse fan-out,
//! perfect balance. The policy is frozen at construction so pushes
//! route deterministically forever after.
//!
//! # Exactness
//!
//! Sharding never changes answers, only where the work happens:
//!
//! * Every shard-local store carries **injected global artifacts**
//!   ([`CorpusArtifacts`]): the whole corpus's idf weights, token
//!   order, space MBR and vocabulary. Filter bounds and verification
//!   therefore judge similarity exactly as a single engine over the
//!   union would, so a shard's answers are the global answers
//!   restricted to its objects.
//! * Probes fan out only to shards whose **covering MBR** (the bound
//!   of every region ever routed there) intersects the query region.
//!   Skipping is exact: thresholds are validated strictly positive and
//!   both spatial similarity functions need positive overlap area, so
//!   a shard disjoint from `q.region` cannot contribute an answer.
//! * Shard-local ids remap through a stable **global id map** — global
//!   ids are assigned in push order, exactly the ids a single engine
//!   over the same push sequence would assign.
//!
//! # Per-shard refresh
//!
//! [`refresh`](ShardedEngine::refresh) recomputes the global artifacts
//! over every shard's frozen objects plus its staged *prefix*, then
//! rebuilds shards in parallel. The expensive work — store extension,
//! delta merge, re-running `HSS-Greedy` for touched tokens — is scoped
//! to the shards the delta actually touched. Untouched shards are
//! *reweighted* onto the new epoch: a forced empty-delta rebuild whose
//! hierarchical scheme extension is the identity (every per-token
//! selection reused; falls back to a fresh build only when the global
//! space MBR grew). The staleness window of PR 4 thereby becomes a
//! per-shard property: between refreshes each shard serves its own
//! generation plus its own frozen-weight overlay, and a mid-swap
//! reader sees some per-shard combination of before/after snapshots —
//! the two-legal-snapshots story, per shard.

use crate::query_engine::{EngineStatus, QueryEngine, ShardStatus};
use crate::store::CorpusArtifacts;
use crate::{
    FilterKind, LiveEngine, ObjectId, ObjectStore, Query, RefreshStats, RoiObject, SearchResult,
    SearchStats, SimilarityConfig,
};
use seal_geom::{Grid, GridCell, Rect};
use seal_text::{Dictionary, TokenId, TokenSet};
use std::sync::{Arc, Mutex};

/// How objects map to shards (frozen at construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Locality-preserving: grid cell of the region center, cells in
    /// contiguous row-major runs per shard.
    Spatial,
    /// Balance-first fallback: global id modulo shard count.
    RoundRobin,
}

/// The frozen routing function: policy + the grid it routes over.
struct Router {
    policy: ShardPolicy,
    grid: Grid,
    shards: usize,
    /// Row-major cell → `(units before this cell, this cell's
    /// units)`, in units of initial-corpus objects. The quantile map
    /// `unit → unit·N/total` cuts the cell sequence into N contiguous
    /// runs of ~equal mass; see [`Router::route`] for how a cell's
    /// interval resolves to a shard. Frozen at construction.
    cell_mass: Vec<(u64, u64)>,
    /// Total units (initial corpus size). Zero means the engine was
    /// built over an empty store: routes fall back to uniform cell
    /// runs.
    total_mass: u64,
}

/// The row-major cell index of a region's center. Centers outside the
/// grid's space (objects pushed after construction) clamp to the
/// nearest edge cell, so routing stays total and deterministic.
fn cell_of(grid: &Grid, region: &Rect) -> usize {
    let c = region.center();
    let space = grid.space();
    let side = grid.side();
    let ix = (((c.x - space.min().x) / grid.cell_width()).max(0.0) as u32).min(side - 1);
    let iy = (((c.y - space.min().y) / grid.cell_height()).max(0.0) as u32).min(side - 1);
    GridCell { ix, iy }.linear(side) as usize
}

impl Router {
    /// The shard for an object (its region for `Spatial`, its global
    /// id for `RoundRobin`).
    ///
    /// Spatial routing is a quantile cut over the row-major cell
    /// sequence, weighted by initial corpus mass: the object's cell
    /// owns the unit interval `[before, before + count)`, the
    /// object's deal position within its cell (`cell_next`, a
    /// monotone per-cell counter cycling through the interval) picks
    /// a unit inside it, and the unit's quantile `unit·N/total` names
    /// the shard. A cell whose interval lies inside one run routes
    /// entirely to that shard — the deal never matters, locality is
    /// perfect — while a hotspot cell too heavy for one run (a dense
    /// city at continental scale, which no cell-granular cut can
    /// balance) splits across the run boundary in *exact* proportion
    /// to each shard's share of its interval. The counters live in
    /// [`RouteState`] under its lock, so routing is a pure function
    /// of push order — deterministic forever, like `RoundRobin`.
    fn route(&self, region: &Rect, global_id: usize, cell_next: &mut [u64]) -> usize {
        match self.policy {
            ShardPolicy::RoundRobin => global_id % self.shards,
            ShardPolicy::Spatial => {
                let cell = cell_of(&self.grid, region);
                if self.total_mass == 0 {
                    // Empty initial corpus: uniform contiguous runs.
                    return ((cell as u128 * self.shards as u128) / self.cell_mass.len() as u128)
                        as usize;
                }
                let (before, count) = self.cell_mass[cell];
                let unit = if count > 1 {
                    let dealt = cell_next[cell];
                    cell_next[cell] = dealt + 1;
                    before + dealt % count
                } else {
                    before
                };
                (((u128::from(unit) * self.shards as u128) / u128::from(self.total_mass)) as usize)
                    .min(self.shards - 1)
            }
        }
    }
}

/// Mutable routing state, one lock: the global id map, per-shard
/// covering MBRs, the push-order counter and the tracked vocabulary.
/// Pushes mutate it; queries take it twice, briefly (probe-set
/// selection, then answer remapping) — never across a shard probe.
struct RouteState {
    /// Per shard: local id → global id, append-only (an entry is
    /// immutable once written, so remapping after a probe is safe even
    /// though pushes kept appending).
    to_global: Vec<Vec<ObjectId>>,
    /// Per shard: MBR of every region ever routed there (`None` =
    /// empty shard, never probed). Grows on push, never shrinks.
    covering: Vec<Option<Rect>>,
    /// Objects ever routed — the next global id.
    total: usize,
    /// Current corpus vocabulary (grows as staged tokens exceed it).
    vocab: usize,
    /// Weight epoch: bumped by every refresh that merged or
    /// reweighted; what [`ShardedEngine::generation`] reports.
    epoch: u64,
    /// Per grid cell: objects dealt so far, the split-cell cursor of
    /// [`Router::route`]. Seeded by construction, advanced by pushes.
    cell_next: Vec<u64>,
}

/// N [`LiveEngine`] shards behind one [`QueryEngine`] face — see the
/// [module docs](self) for partitioning, exactness and refresh
/// scoping.
pub struct ShardedEngine {
    shards: Vec<LiveEngine>,
    router: Router,
    kind: FilterKind,
    opts: crate::BuildOpts,
    dictionary: Option<Dictionary>,
    route: Mutex<RouteState>,
    /// Serializes refreshes (each shard also has its own gate; this
    /// one keeps the artifact computation and the fan-out atomic with
    /// respect to other sharded refreshes).
    refresh_gate: Mutex<()>,
}

/// Grid granularity for N shards: ~64 cells per shard so the
/// mass-balanced cell→shard runs can cut around hotspot cells, capped
/// to keep the routing table trivial.
fn grid_side_for(shards: usize) -> u32 {
    ((8.0 * (shards as f64).sqrt()).ceil() as u32).clamp(8, 64)
}

/// A shard assignment is "balanced enough" when no shard holds at most
/// 1.5× its fair share (`2·max ≤ 3·fair`) — tight enough to catch a
/// clustered corpus even at small shard counts.
fn badly_skewed(max_count: usize, fair: usize) -> bool {
    2 * max_count > 3 * fair
}

impl ShardedEngine {
    /// Partitions `store` into `shards` shards with default similarity
    /// configuration and build options, auto-selecting the policy
    /// (spatial, falling back to round-robin on heavy skew).
    pub fn build(store: &ObjectStore, kind: FilterKind, shards: usize) -> Self {
        Self::with_opts(
            store,
            kind,
            SimilarityConfig::default(),
            crate::BuildOpts::default(),
            shards,
            None,
        )
    }

    /// Full-control constructor. `policy: None` auto-selects: spatial
    /// routing unless the resulting assignment is skewed past 1.5× the
    /// fair share, then round-robin. The corpus artifacts of `store`
    /// are injected into every shard, so the partition answers exactly
    /// like a single engine over `store` (the dictionary, if any, is
    /// kept at this level for token resolution).
    pub fn with_opts(
        store: &ObjectStore,
        kind: FilterKind,
        cfg: SimilarityConfig,
        opts: crate::BuildOpts,
        shards: usize,
        policy: Option<ShardPolicy>,
    ) -> Self {
        let n = shards.max(1);
        let artifacts = CorpusArtifacts::of(store);
        let grid = Grid::new(store.space(), grid_side_for(n))
            .expect("store space is padded to positive area");
        let mut cell_counts = vec![0u64; grid.cell_count() as usize];
        for (_, o) in store.iter() {
            cell_counts[cell_of(&grid, &o.region)] += 1;
        }
        let mut cell_mass = Vec::with_capacity(cell_counts.len());
        let mut total_mass = 0u64;
        for &c in &cell_counts {
            cell_mass.push((total_mass, c));
            total_mass += c;
        }
        let mut router = Router {
            policy: policy.unwrap_or(ShardPolicy::Spatial),
            cell_mass,
            total_mass,
            grid,
            shards: n,
        };
        let mut cell_next = vec![0u64; router.cell_mass.len()];
        let mut assign: Vec<usize> = store
            .iter()
            .map(|(id, o)| router.route(&o.region, id.index(), &mut cell_next))
            .collect();
        if policy.is_none() && n > 1 {
            let mut counts = vec![0usize; n];
            for &s in &assign {
                counts[s] += 1;
            }
            let fair = store.len().div_ceil(n).max(1);
            if badly_skewed(counts.iter().copied().max().unwrap_or(0), fair) {
                router.policy = ShardPolicy::RoundRobin;
                for (i, slot) in assign.iter_mut().enumerate() {
                    *slot = i % n;
                }
            }
        }
        let mut locals: Vec<Vec<RoiObject>> = vec![Vec::new(); n];
        let mut to_global: Vec<Vec<ObjectId>> = vec![Vec::new(); n];
        let mut covering: Vec<Option<Rect>> = vec![None; n];
        for (id, o) in store.iter() {
            let s = assign[id.index()];
            locals[s].push(o.clone());
            to_global[s].push(id);
            covering[s] = Some(match covering[s] {
                Some(r) => r.mbr_with(&o.region),
                None => o.region,
            });
        }
        let shards: Vec<LiveEngine> = locals
            .into_iter()
            .map(|objs| {
                let local = Arc::new(ObjectStore::with_artifacts(objs, artifacts.clone()));
                LiveEngine::with_opts(local, kind, cfg, opts)
            })
            .collect();
        ShardedEngine {
            shards,
            router,
            kind,
            opts,
            dictionary: store.dictionary().cloned(),
            route: Mutex::new(RouteState {
                to_global,
                covering,
                total: store.len(),
                vocab: store.vocab_size(),
                epoch: 0,
                cell_next,
            }),
            refresh_gate: Mutex::new(()),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing policy the constructor froze.
    pub fn policy(&self) -> ShardPolicy {
        self.router.policy
    }

    /// The filter kind every shard was built with.
    pub fn kind(&self) -> FilterKind {
        self.kind
    }

    /// Per-shard object counts (frozen + staged) — balance at a
    /// glance.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    fn route_lock(&self) -> std::sync::MutexGuard<'_, RouteState> {
        self.route.lock().expect("route state lock")
    }

    /// The probe set for a query region: shards whose covering MBR
    /// intersects it.
    fn probe_set(&self, region: &Rect) -> Vec<usize> {
        let r = self.route_lock();
        (0..self.shards.len())
            .filter(|&i| r.covering[i].is_some_and(|c| c.intersects(region)))
            .collect()
    }

    fn push_locked(&self, r: &mut RouteState, object: RoiObject) -> ObjectId {
        let gid = ObjectId(r.total as u32);
        for t in object.tokens.iter() {
            r.vocab = r.vocab.max(t.index() + 1);
        }
        let region = object.region;
        let s = self.router.route(&region, r.total, &mut r.cell_next);
        let local = self.shards[s].push(object);
        debug_assert_eq!(local.index(), r.to_global[s].len(), "id map out of sync");
        r.to_global[s].push(gid);
        r.covering[s] = Some(match r.covering[s] {
            Some(c) => c.mbr_with(&region),
            None => region,
        });
        r.total += 1;
        gid
    }

    fn do_search(&self, q: &Query) -> SearchResult {
        let probe = self.probe_set(&q.region);
        let mut merged = SearchResult {
            answers: Vec::new(),
            stats: SearchStats::new(),
        };
        merged.stats.shards_probed = probe.len();
        let partials: Vec<(usize, SearchResult)> = probe
            .into_iter()
            .map(|i| (i, self.shards[i].search(q)))
            .collect();
        let start = std::time::Instant::now();
        let r = self.route_lock();
        for (i, part) in partials {
            merged
                .answers
                .extend(part.answers.iter().map(|id| r.to_global[i][id.index()]));
            merged.stats.accumulate(&part.stats);
        }
        drop(r);
        merged.stats.merge_time += start.elapsed();
        merged
    }

    fn do_top_k(
        &self,
        region: Rect,
        tokens: &TokenSet,
        k: usize,
        alpha: f64,
    ) -> Vec<(ObjectId, f64)> {
        let mut tau = 0.5f64;
        const TAU_MIN: f64 = 0.01;
        let mut scored = loop {
            let probe = self.probe_set(&region);
            let partials: Vec<(usize, Vec<(ObjectId, f64)>)> = probe
                .into_iter()
                .map(|i| (i, self.shards[i].search_scored(region, tokens, tau, alpha)))
                .collect();
            let r = self.route_lock();
            let found: Vec<(ObjectId, f64)> = partials
                .into_iter()
                .flat_map(|(i, v)| {
                    let map = &r.to_global[i];
                    v.into_iter()
                        .map(move |(id, s)| (map[id.index()], s))
                        .collect::<Vec<_>>()
                })
                .collect();
            drop(r);
            if found.len() >= k || tau <= TAU_MIN {
                break found;
            }
            tau = (tau / 2.0).max(TAU_MIN);
        };
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// Folds every shard's staged prefix into its next generation
    /// under one new weight epoch. See the [module docs](self):
    /// artifact recomputation is global, merge work is scoped to
    /// touched shards, untouched shards take the cheap reweight
    /// rebuild, and the whole fan-out runs shards in parallel
    /// (`BuildOpts::threads` workers).
    pub fn refresh(&self) -> RefreshStats {
        let _gate = self.refresh_gate.lock().expect("sharded refresh gate");
        let start = std::time::Instant::now();
        // Capture the merge caps and vocabulary under the route lock:
        // no push can land mid-capture, so the caps describe one
        // consistent corpus prefix for the artifact computation.
        let (caps, vocab) = {
            let r = self.route_lock();
            let caps: Vec<usize> = self.shards.iter().map(|s| s.staged_len()).collect();
            (caps, r.vocab)
        };
        let merged: usize = caps.iter().sum();
        if merged == 0 {
            let r = self.route_lock();
            return RefreshStats {
                generation: r.epoch,
                merged: 0,
                total: r.total,
                build_seconds: 0.0,
                scheme_reused: false,
            };
        }
        // One consistent set of global artifacts over every shard's
        // frozen objects plus its staged prefix — the corpus the new
        // epoch's weights, order and space describe.
        let snaps: Vec<_> = self.shards.iter().map(|s| s.snapshot()).collect();
        let staged: Vec<Vec<RoiObject>> = snaps
            .iter()
            .zip(&caps)
            .map(|((_, delta), &cap)| delta.iter().take(cap).cloned().collect())
            .collect();
        let artifacts = CorpusArtifacts::compute(
            snaps
                .iter()
                .zip(&staged)
                .flat_map(|((engine, _), st)| engine.store().objects().iter().chain(st.iter())),
            vocab,
        );
        drop(staged);
        drop(snaps);
        let per_shard: Vec<RefreshStats> =
            seal_index::parallel::map_indexed(self.shards.len(), self.opts.threads, |i| {
                self.shards[i].refresh_via(Some(caps[i]), true, |_prev, staged| {
                    Arc::new(
                        _prev
                            .store()
                            .extended_with_artifacts(staged, artifacts.clone()),
                    )
                })
            });
        let epoch = {
            let mut r = self.route_lock();
            r.epoch += 1;
            r.epoch
        };
        RefreshStats {
            generation: epoch,
            merged,
            total: per_shard.iter().map(|s| s.total).sum(),
            build_seconds: start.elapsed().as_secs_f64(),
            scheme_reused: per_shard.iter().any(|s| s.scheme_reused),
        }
    }
}

impl QueryEngine for ShardedEngine {
    fn search(&self, q: &Query) -> SearchResult {
        self.do_search(q)
    }

    fn search_batch(&self, queries: &[Query], threads: usize) -> Vec<SearchResult> {
        seal_index::parallel::map_indexed(queries.len(), threads, |i| self.do_search(&queries[i]))
    }

    fn search_top_k(
        &self,
        region: Rect,
        tokens: TokenSet,
        k: usize,
        alpha: f64,
    ) -> Vec<(ObjectId, f64)> {
        self.do_top_k(region, &tokens, k, alpha)
    }

    fn push(&self, object: RoiObject) -> ObjectId {
        let mut r = self.route_lock();
        self.push_locked(&mut r, object)
    }

    fn push_all(&self, objects: Vec<RoiObject>) -> Option<ObjectId> {
        let mut r = self.route_lock();
        let mut first = None;
        for o in objects {
            let id = self.push_locked(&mut r, o);
            first.get_or_insert(id);
        }
        first
    }

    fn refresh(&self) -> RefreshStats {
        ShardedEngine::refresh(self)
    }

    fn generation(&self) -> u64 {
        self.route_lock().epoch
    }

    fn staged_len(&self) -> usize {
        self.shards.iter().map(|s| s.staged_len()).sum()
    }

    fn len(&self) -> usize {
        self.route_lock().total
    }

    fn resolve_token(&self, token: &str) -> Option<TokenId> {
        self.dictionary.as_ref().and_then(|d| d.get(token))
    }

    fn status(&self) -> EngineStatus {
        let shards: Vec<ShardStatus> = self
            .shards
            .iter()
            .map(|s| ShardStatus {
                generation: s.generation(),
                staged: s.staged_len(),
                objects: s.len(),
            })
            .collect();
        EngineStatus {
            filter: self
                .shards
                .first()
                .map(|s| s.engine().filter_name().to_string())
                .unwrap_or_default(),
            index_bytes: self.shards.iter().map(|s| s.engine().index_bytes()).sum(),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::naive_search;
    use crate::SealEngine;
    use seal_text::TokenSet;

    fn sharded(n: usize) -> (ShardedEngine, ObjectStore, Query) {
        let (store, q) = figure1_store();
        let engine = ShardedEngine::build(&store, FilterKind::Token, n);
        (engine, store, q)
    }

    #[test]
    fn sharded_answers_match_the_single_engine() {
        for n in [1usize, 2, 3, 4, 8] {
            let (engine, store, q0) = sharded(n);
            assert_eq!(engine.shard_count(), n);
            assert_eq!(engine.len(), 7);
            let store = Arc::new(store);
            let single = SealEngine::build(store.clone(), FilterKind::Token);
            for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.6, 0.6)] {
                let q = q0.with_thresholds(tr, tt).unwrap();
                assert_eq!(
                    engine.search(&q).sorted().answers,
                    single.search(&q).sorted().answers,
                    "n={n} τ=({tr},{tt})"
                );
            }
        }
    }

    #[test]
    fn probe_set_skips_disjoint_shards_exactly() {
        let (engine, store, q0) = sharded(4);
        // A query region in one corner cannot require probing every
        // shard of a spatial partition, and skipping must not change
        // answers.
        let q = Query::with_token_ids(
            Rect::new(0.0, 0.0, 30.0, 30.0).unwrap(),
            q0.tokens.iter(),
            0.1,
            0.1,
        )
        .unwrap();
        let result = engine.search(&q);
        assert!(result.stats.shards_probed <= 4);
        let mut expect = naive_search(&Arc::new(store), &SimilarityConfig::default(), &q);
        expect.sort_unstable();
        assert_eq!(result.sorted().answers, expect);
    }

    #[test]
    fn push_refresh_matches_fresh_union_build() {
        let (store, q0) = figure1_store();
        let delta = vec![
            RoiObject::new(
                Rect::new(22.0, 12.0, 68.0, 43.0).unwrap(),
                TokenSet::from_ids([TokenId(0), TokenId(1), TokenId(2)]),
            ),
            RoiObject::new(
                Rect::new(100.0, 100.0, 118.0, 118.0).unwrap(),
                TokenSet::from_ids([TokenId(4), TokenId(5)]), // grows the vocab
            ),
        ];
        for n in [1usize, 2, 4] {
            let engine = ShardedEngine::build(&store, FilterKind::Token, n);
            let first = QueryEngine::push(&engine, delta[0].clone());
            assert_eq!(first, ObjectId(7), "global ids continue in push order");
            assert_eq!(engine.push_all(vec![delta[1].clone()]), Some(ObjectId(8)));
            assert_eq!(engine.staged_len(), 2);
            let stats = ShardedEngine::refresh(&engine);
            assert_eq!(stats.generation, 1);
            assert_eq!(stats.merged, 2);
            assert_eq!(stats.total, 9);
            assert_eq!(engine.staged_len(), 0);
            let union = Arc::new(store.extended(&delta));
            let fresh = SealEngine::build(union, FilterKind::Token);
            for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.6, 0.6)] {
                let q = q0.with_thresholds(tr, tt).unwrap();
                assert_eq!(
                    engine.search(&q).sorted().answers,
                    fresh.search(&q).sorted().answers,
                    "n={n} τ=({tr},{tt})"
                );
            }
        }
    }

    #[test]
    fn sharded_top_k_matches_single_engine_top_k() {
        for n in [1usize, 2, 4] {
            let (engine, store, q) = sharded(n);
            let single = SealEngine::build(Arc::new(store), FilterKind::Token);
            for alpha in [0.0, 0.5, 1.0] {
                for k in [1usize, 3, 100] {
                    assert_eq!(
                        engine.search_top_k(q.region, q.tokens.clone(), k, alpha),
                        single.search_top_k(q.region, q.tokens.clone(), k, alpha),
                        "n={n} k={k} alpha={alpha}"
                    );
                }
            }
        }
    }

    #[test]
    fn hotspot_cell_splits_instead_of_falling_back() {
        // A dense cluster in one corner plus a single far outlier: the
        // grid spans the whole space, the cluster lands in one cell.
        // Without hotspot splitting, spatial routing would put ~all
        // objects on one shard; the mass-balanced map must instead
        // split the mega-cell across shards and stay spatial.
        let mut objects: Vec<RoiObject> = (0..39)
            .map(|i| {
                let d = f64::from(i) * 0.01;
                RoiObject::new(
                    Rect::new(d, d, d + 0.5, d + 0.5).unwrap(),
                    TokenSet::from_ids([TokenId(i % 3)]),
                )
            })
            .collect();
        objects.push(RoiObject::new(
            Rect::new(1000.0, 1000.0, 1001.0, 1001.0).unwrap(),
            TokenSet::from_ids([TokenId(0)]),
        ));
        let store = ObjectStore::from_objects(objects, 3);
        let engine = ShardedEngine::build(&store, FilterKind::Token, 4);
        assert_eq!(engine.policy(), ShardPolicy::Spatial);
        let sizes = engine.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 40);
        // The per-cell deal splits the 39-object mega-cell exactly
        // proportionally: no shard exceeds the fair share of 10.
        assert_eq!(sizes.iter().max(), Some(&10), "unbalanced: {sizes:?}");
        // Splitting must not change answers.
        let q = Query::with_token_ids(
            Rect::new(0.0, 0.0, 2.0, 2.0).unwrap(),
            [TokenId(0), TokenId(1), TokenId(2)],
            0.1,
            0.1,
        )
        .unwrap();
        let store = Arc::new(store);
        let mut expect = naive_search(&store, &SimilarityConfig::default(), &q);
        expect.sort_unstable();
        assert_eq!(engine.search(&q).sorted().answers, expect);
        // And a forced policy is respected either way (no silent
        // override when the caller chose).
        for forced_policy in [ShardPolicy::Spatial, ShardPolicy::RoundRobin] {
            let forced = ShardedEngine::with_opts(
                &store,
                FilterKind::Token,
                SimilarityConfig::default(),
                crate::BuildOpts::default(),
                4,
                Some(forced_policy),
            );
            assert_eq!(forced.policy(), forced_policy);
        }
    }

    #[test]
    fn status_reports_per_shard_detail() {
        let (engine, _store, _q) = sharded(3);
        QueryEngine::push(
            &engine,
            RoiObject::new(
                Rect::new(1.0, 1.0, 2.0, 2.0).unwrap(),
                TokenSet::from_ids([TokenId(0)]),
            ),
        );
        let status = engine.status();
        assert_eq!(status.shards.len(), 3);
        assert!(status.index_bytes > 0);
        assert_eq!(
            status.shards.iter().map(|s| s.objects).sum::<usize>(),
            8,
            "per-shard objects sum to the corpus"
        );
        assert_eq!(status.shards.iter().map(|s| s.staged).sum::<usize>(), 1);
        assert_eq!(engine.generation(), 0);
    }

    #[test]
    fn empty_and_single_shard_degenerate_safely() {
        let store = ObjectStore::from_objects(Vec::new(), 0);
        let engine = ShardedEngine::build(&store, FilterKind::Naive, 2);
        assert!(engine.is_empty());
        let q = Query::with_token_ids(
            Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(),
            [TokenId(0)],
            0.5,
            0.5,
        )
        .unwrap();
        assert!(engine.search(&q).answers.is_empty());
        assert_eq!(engine.search(&q).stats.shards_probed, 0, "nothing to probe");
        let id = QueryEngine::push(
            &engine,
            RoiObject::new(
                Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(),
                TokenSet::from_ids([TokenId(0)]),
            ),
        );
        assert_eq!(id, ObjectId(0));
        assert_eq!(engine.search(&q).answers, vec![ObjectId(0)]);
        let stats = ShardedEngine::refresh(&engine);
        assert_eq!(stats.merged, 1);
        assert_eq!(engine.search(&q).answers, vec![ObjectId(0)]);
    }
}
