//! The spatio-textual object (ROI) data model of Section 2.1.

use seal_geom::Rect;
use seal_text::TokenSet;
use serde::{Deserialize, Serialize};

/// A dense object identifier: the object's row in the
/// [`ObjectStore`](crate::ObjectStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ObjectId {
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

/// A region-of-interest object `o = (R, T)`: an MBR region plus a token
/// set (Section 2.1's data model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoiObject {
    /// The spatial information `o.R` (an MBR).
    pub region: Rect,
    /// The textual information `o.T` (a token-id set).
    pub tokens: TokenSet,
}

impl RoiObject {
    /// Convenience constructor.
    pub fn new(region: Rect, tokens: TokenSet) -> Self {
        RoiObject { region, tokens }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seal_text::TokenId;

    #[test]
    fn object_id_roundtrip() {
        let id: ObjectId = 5u32.into();
        assert_eq!(id.index(), 5);
        assert_eq!(id, ObjectId(5));
    }

    #[test]
    fn roi_object_holds_both_sides() {
        let o = RoiObject::new(
            Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(),
            TokenSet::from_ids([TokenId(1), TokenId(2)]),
        );
        assert_eq!(o.region.area(), 100.0);
        assert_eq!(o.tokens.len(), 2);
    }
}
