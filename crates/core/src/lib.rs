//! # seal-core — SEAL: Spatio-Textual Similarity Search
//!
//! A from-scratch Rust reproduction of *SEAL: Spatio-Textual Similarity
//! Search* (Fan, Li, Zhou, Chen, Hu — PVLDB 5(9), 2012,
//! arXiv:1205.6694).
//!
//! Given a collection of **regions-of-interest** — objects `o = (R, T)`
//! pairing an MBR region with a weighted token set — and a query
//! `q = (R, T, τ_R, τ_T)`, SEAL returns every object with spatial
//! Jaccard similarity `≥ τ_R` *and* weighted textual Jaccard similarity
//! `≥ τ_T`, using a filter-and-verification framework over
//! threshold-bounded signature indexes.
//!
//! ## Quick start
//!
//! ```
//! use seal_core::{FilterKind, ObjectStore, Query, SealEngine};
//! use seal_geom::Rect;
//! use std::sync::Arc;
//!
//! // Regions-of-interest with textual tags (a tiny Facebook-Places
//! // style dataset).
//! let store = ObjectStore::from_labeled(vec![
//!     (Rect::new(0.0, 0.0, 40.0, 40.0).unwrap(), vec!["coffee", "mocha"]),
//!     (Rect::new(10.0, 10.0, 50.0, 50.0).unwrap(), vec!["coffee", "starbucks", "mocha"]),
//!     (Rect::new(80.0, 80.0, 120.0, 120.0).unwrap(), vec!["tea", "ice"]),
//! ]);
//! let store = Arc::new(store);
//!
//! // Build the SEAL engine (hierarchical hybrid signatures).
//! let engine = SealEngine::build(store.clone(), FilterKind::Hierarchical {
//!     max_level: 6,
//!     budget: 8,
//! });
//!
//! // Who overlaps my region and shares my interests?
//! let dict = store.dictionary().unwrap();
//! let q = Query::with_token_ids(
//!     Rect::new(5.0, 5.0, 45.0, 45.0).unwrap(),
//!     ["coffee", "mocha"].iter().filter_map(|t| dict.get(t)),
//!     0.3,
//!     0.3,
//! ).unwrap();
//! let result = engine.search(&q);
//! assert_eq!(result.answers.len(), 2);
//! ```
//!
//! ## Crate layout
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`store`] / [`Query`] | §2.1 | data & query model, corpus weights |
//! | [`SimilarityConfig`] / [`verify`] | §2.1, §3.1 | similarity functions, `Sig-Verify`, oracle |
//! | [`signatures`] | §3.2, §4.1, §5.1, §5.2 | the four signature schemes |
//! | [`filters`] | §3–§5 | `Sig-Filter`, `Sig-Filter+`, `Hybrid-Sig-Filter+` |
//! | [`baselines`] | §2.3 | Keyword-first, Spatial-first, IR-tree |
//! | [`hss`] | §5.2 | `HSS-Greedy` (Figure 11) |
//! | [`granularity`] | §4.3 | cost model & level selection |
//! | [`engine`] | §3.1 | the `SealSig` facade |
//! | [`live`] | — | generation-swapping online ingest (`LiveEngine`) |
//! | [`query_engine`] | — | the serving-tier engine abstraction |
//! | [`sharded`] | — | partitioned serving (`ShardedEngine`) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod engine;
pub mod filters;
pub mod granularity;
pub mod hss;
pub mod live;
mod object;
pub mod persist;
mod query;
pub mod query_engine;
pub mod sharded;
pub mod signatures;
mod simfn;
mod stats;
pub mod store;
pub mod verify;

pub use engine::{FilterKind, GenerationBuild, SealEngine, SearchResult};
pub use filters::{BuildOpts, CandidateFilter, QueryContext};
pub use live::{LiveEngine, RefreshStats};
pub use object::{ObjectId, RoiObject};
pub use query::{Query, QueryError};
pub use query_engine::{EngineStatus, QueryEngine, ShardStatus};
pub use sharded::{ShardPolicy, ShardedEngine};
pub use simfn::{SimilarityConfig, SpatialSimFn};
pub use stats::SearchStats;
pub use store::{CorpusArtifacts, ObjectStore, StoreStats};
