//! Combined spatio-textual similarity evaluation.

use crate::{Query, RoiObject};
use seal_geom::{Rect, SpatialSim};
use seal_text::{similarity::TextualSimFn, TokenSet, TokenWeights};
use serde::{Deserialize, Serialize};

/// Which spatial similarity function a deployment uses (Definition 1
/// plus the Dice extension the paper notes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpatialSimFn {
    /// Spatial Jaccard `|a∩b|/|a∪b|` (the paper's default).
    Jaccard,
    /// Spatial Dice `2|a∩b|/(|a|+|b|)`.
    Dice,
}

impl SpatialSimFn {
    /// Evaluates the function on two regions.
    pub fn eval(self, a: &Rect, b: &Rect) -> f64 {
        match self {
            SpatialSimFn::Jaccard => a.jaccard(b),
            SpatialSimFn::Dice => a.dice(b),
        }
    }

    /// The overlap-area threshold `c_R` derived from `τ_R` for query
    /// region `q` — the bound of Section 4.1 (`c_R = τ_R · |q.R|`).
    ///
    /// Safety: `sim(q,o) ≥ τ` must imply `|q∩o| ≥ c_R`.
    /// * Jaccard: `|q∩o| ≥ τ·|q∪o| ≥ τ·|q.R|`.
    /// * Dice: `|q∩o| ≥ τ·(|q|+|o|)/2 ≥ τ·|q.R|/2`.
    pub fn overlap_threshold(self, q: &Rect, tau: f64) -> f64 {
        match self {
            SpatialSimFn::Jaccard => tau * q.area(),
            SpatialSimFn::Dice => tau * q.area() / 2.0,
        }
    }
}

/// The pair of similarity functions a SEAL deployment is configured
/// with. Defaults to the paper's Jaccard/weighted-Jaccard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Spatial function.
    pub spatial: SpatialSimFn,
    /// Textual function.
    pub textual: TextualSimFn,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            spatial: SpatialSimFn::Jaccard,
            textual: TextualSimFn::Jaccard,
        }
    }
}

/// Rejects NaN similarity scores at the evaluation boundary — the
/// same policy `csr::check_bound` applies to index bounds at insert
/// time. Every score consumer (the answer predicate, `search_top_k`'s
/// `total_cmp` ranking) assumes a NaN-free domain; a NaN that slipped
/// through would order arbitrarily rather than fail loudly, so it is
/// stopped here, at the one place scores are produced.
#[inline]
fn check_sim(s: f64, what: &str) -> f64 {
    assert!(
        !s.is_nan(),
        "NaN {what} similarity rejected at the simfn boundary"
    );
    s
}

impl SimilarityConfig {
    /// Spatial similarity between a query and an object.
    ///
    /// # Panics
    /// If the configured function evaluates to NaN (cannot happen for
    /// the built-in Jaccard/Dice over valid rectangles; the check
    /// guards the total-order contract downstream).
    #[inline]
    pub fn spatial_sim(&self, q: &Query, o: &RoiObject) -> f64 {
        check_sim(self.spatial.eval(&q.region, &o.region), "spatial")
    }

    /// Textual similarity between a query and an object.
    ///
    /// # Panics
    /// If the configured function evaluates to NaN (see
    /// [`spatial_sim`](Self::spatial_sim)).
    #[inline]
    pub fn textual_sim<W: TokenWeights>(&self, q: &Query, o: &RoiObject, w: &W) -> f64 {
        check_sim(self.textual.eval(&q.tokens, &o.tokens, w), "textual")
    }

    /// The full answer predicate of Definition 3.
    #[inline]
    pub fn is_answer<W: TokenWeights>(&self, q: &Query, o: &RoiObject, w: &W) -> bool {
        // Spatial first: the area test is a handful of flops while the
        // textual test walks two token lists.
        self.spatial_sim(q, o) >= q.tau_spatial && self.textual_sim(q, o, w) >= q.tau_textual
    }

    /// `c_R` for a query (Section 4.1).
    #[inline]
    pub fn spatial_threshold(&self, q: &Query) -> f64 {
        self.spatial.overlap_threshold(&q.region, q.tau_spatial)
    }

    /// `c_T` for a query (Section 3.2).
    #[inline]
    pub fn textual_threshold<W: TokenWeights>(&self, q: &Query, w: &W) -> f64 {
        self.textual
            .signature_threshold(&q.tokens, w, q.tau_textual)
    }

    /// `c_T` for an explicit token set (used when bounding tree nodes
    /// in the IR-tree baseline).
    #[inline]
    pub fn textual_threshold_for<W: TokenWeights>(
        &self,
        tokens: &TokenSet,
        w: &W,
        tau: f64,
    ) -> f64 {
        self.textual.signature_threshold(tokens, w, tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seal_text::{IdfWeights, TokenId};

    fn fig1_weights() -> IdfWeights {
        IdfWeights::from_values(vec![0.8, 0.3, 0.8, 1.3, 0.6])
    }

    fn query() -> Query {
        // Figure 1's query: Rq with tokens {t1,t2,t3}, τR=0.25, τT=0.3.
        Query::with_token_ids(
            Rect::new(20.0, 30.0, 80.0, 90.0).unwrap(),
            [TokenId(0), TokenId(1), TokenId(2)],
            0.25,
            0.3,
        )
        .unwrap()
    }

    #[test]
    fn example1_answer_decision() {
        let cfg = SimilarityConfig::default();
        let w = fig1_weights();
        let q = query();
        // o2 = same tokens as q, heavily-overlapping region.
        let o2 = RoiObject::new(
            Rect::new(10.0, 20.0, 70.0, 80.0).unwrap(),
            TokenSet::from_ids([TokenId(0), TokenId(1), TokenId(2)]),
        );
        assert_eq!(cfg.textual_sim(&q, &o2, &w), 1.0);
        assert!(cfg.spatial_sim(&q, &o2) >= 0.25);
        assert!(cfg.is_answer(&q, &o2, &w));
        // o1 = good tokens, poor region.
        let o1 = RoiObject::new(
            Rect::new(70.0, 80.0, 95.0, 95.0).unwrap(),
            TokenSet::from_ids([TokenId(0), TokenId(1)]),
        );
        assert!(cfg.textual_sim(&q, &o1, &w) >= 0.3);
        assert!(cfg.spatial_sim(&q, &o1) < 0.25);
        assert!(!cfg.is_answer(&q, &o1, &w));
    }

    #[test]
    fn thresholds_match_paper_formulas() {
        let cfg = SimilarityConfig::default();
        let w = fig1_weights();
        let q = query();
        // cR = τR · |q.R| = 0.25 · 3600 = 900.
        assert!((cfg.spatial_threshold(&q) - 900.0).abs() < 1e-9);
        // cT = τT · Σ w = 0.3 · 1.9 = 0.57.
        assert!((cfg.textual_threshold(&q, &w) - 0.57).abs() < 1e-12);
    }

    #[test]
    fn dice_threshold_is_halved() {
        let q = query();
        let j = SpatialSimFn::Jaccard.overlap_threshold(&q.region, 0.4);
        let d = SpatialSimFn::Dice.overlap_threshold(&q.region, 0.4);
        assert!((d - j / 2.0).abs() < 1e-9);
    }

    #[test]
    fn dice_threshold_is_safe() {
        // For any pair: dice ≥ τ ⇒ overlap ≥ τ|q|/2.
        let q = Rect::new(0.0, 0.0, 10.0, 10.0).unwrap();
        for (ox, size) in [(2.0, 12.0), (5.0, 6.0), (0.0, 10.0), (8.0, 30.0)] {
            let o = Rect::new(ox, 0.0, ox + size, size).unwrap();
            let dice = SpatialSimFn::Dice.eval(&q, &o);
            if dice > 0.0 {
                let c = SpatialSimFn::Dice.overlap_threshold(&q, dice);
                assert!(q.intersection_area(&o) + 1e-9 >= c);
            }
        }
    }
}
