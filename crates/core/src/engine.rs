//! The `SealSig` engine (Algorithm 1): signature generation + index
//! construction at build time, `Sig-Filter` → `Sig-Verify` at query
//! time, behind one facade.

use crate::baselines::{IrTreeBaseline, KeywordFirst, SpatialFirst};
use crate::filters::{
    AdaptiveFilter, CandidateFilter, GridFilter, HierarchicalFilter, HybridFilter, NaiveFilter,
    QueryContext, TokenFilter, TokenFilterBasic,
};
use crate::signatures::hash_hybrid::BucketScheme;
use crate::{ObjectId, ObjectStore, Query, SearchStats, SimilarityConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Which filtering method the engine builds (Table 1's index rows plus
/// the baselines of Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    /// `Sig-Filter+` on textual signatures (`TokenInv`).
    Token,
    /// `Sig-Filter+` on textual signatures served **in place** off the
    /// compressed arena (`TokenInv` in its at-rest form): ~4× smaller
    /// lists, probes decode only the qualifying prefix into the
    /// per-worker [`QueryContext`] scratch.
    TokenCompressed,
    /// Basic `Sig-Filter` on textual signatures (ablation).
    TokenBasic,
    /// `Sig-Filter+` on grid signatures (`GridInv`) at the given
    /// granularity (cells per side).
    Grid {
        /// Cells per side.
        side: u32,
    },
    /// `Hybrid-Sig-Filter+` on hash-based hybrid signatures (`HashInv`).
    HashHybrid {
        /// Cells per side.
        side: u32,
        /// Hash-bucket constraint (None = full 64-bit hashing).
        buckets: Option<u64>,
    },
    /// `Hybrid-Sig-Filter+` served in place off the compressed
    /// dual-bound arena (`HashInv` in its at-rest form).
    HashHybridCompressed {
        /// Cells per side.
        side: u32,
        /// Hash-bucket constraint (None = full 64-bit hashing).
        buckets: Option<u64>,
    },
    /// `Hybrid-Sig-Filter+` on hierarchical hybrid signatures
    /// (`HierarchicalInv`) — the configuration the paper calls **Seal**.
    Hierarchical {
        /// Grid-tree depth.
        max_level: u8,
        /// `m_t`: selected grids per token.
        budget: usize,
    },
    /// Keyword-first baseline.
    KeywordFirst,
    /// Spatial-first baseline.
    SpatialFirst,
    /// IR-tree baseline.
    IrTree {
        /// R-tree fan-out.
        fanout: usize,
    },
    /// Cost-routed combination of Token and Grid filtering (per-query
    /// routing by the §4.3 cost model — the engineering answer to
    /// Figure 12's "combine both filters").
    Adaptive {
        /// Grid granularity for the spatial route.
        side: u32,
    },
    /// No filtering (scan everything, verify everything).
    Naive,
}

impl FilterKind {
    /// The paper's default SEAL configuration: hierarchical hybrid
    /// signatures with a level-10 tree (1024×1024 finest grain) and a
    /// 16-cell per-token budget.
    pub fn seal_default() -> Self {
        FilterKind::Hierarchical {
            max_level: 10,
            budget: 16,
        }
    }
}

/// One answered query: the ids plus the per-step statistics.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Answer object ids (ascending by candidate discovery, then
    /// verified; call [`SearchResult::sorted`] for id order).
    pub answers: Vec<ObjectId>,
    /// Filter/verify counters and timings.
    pub stats: SearchStats,
}

impl SearchResult {
    /// The answers sorted by id (convenient for comparisons).
    pub fn sorted(mut self) -> Self {
        self.answers.sort_unstable();
        self
    }
}

/// The spatio-textual similarity search engine.
pub struct SealEngine {
    store: Arc<ObjectStore>,
    filter: Box<dyn CandidateFilter>,
    cfg: SimilarityConfig,
}

impl SealEngine {
    /// Builds an engine over a store with the chosen filter.
    pub fn build(store: Arc<ObjectStore>, kind: FilterKind) -> Self {
        Self::build_with_config(store, kind, SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration. Every filter
    /// derives its signature thresholds from the configured functions
    /// (e.g. Dice's `c_R = τ·|q.R|/2`), so the candidate-superset
    /// guarantee holds for all supported similarity pairs.
    pub fn build_with_config(
        store: Arc<ObjectStore>,
        kind: FilterKind,
        cfg: SimilarityConfig,
    ) -> Self {
        Self::build_with_opts(store, kind, cfg, crate::BuildOpts::default())
    }

    /// Builds with explicit build options. `BuildOpts::threads` fans
    /// the build-side work (per-token `HSS-Greedy` selections, the
    /// staged group sorts inside `finalize`) out over a work-stealing
    /// pool; the resulting index is **identical for every thread
    /// count** — parallelism buys wall-clock time only. Filters
    /// without a parallel build path (the baselines, `Naive`) ignore
    /// the options.
    pub fn build_with_opts(
        store: Arc<ObjectStore>,
        kind: FilterKind,
        cfg: SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Self {
        let filter: Box<dyn CandidateFilter> = match kind {
            FilterKind::Token => Box::new(TokenFilter::build_with_opts(store.clone(), cfg, opts)),
            FilterKind::TokenCompressed => Box::new(TokenFilter::build_compressed_with_opts(
                store.clone(),
                cfg,
                opts,
            )),
            FilterKind::TokenBasic => {
                Box::new(TokenFilterBasic::build_with_config(store.clone(), cfg))
            }
            FilterKind::Grid { side } => {
                Box::new(GridFilter::build_with_opts(store.clone(), side, cfg, opts))
            }
            FilterKind::HashHybrid { side, buckets } => {
                let scheme = match buckets {
                    Some(m) => BucketScheme::Buckets(m),
                    None => BucketScheme::Full,
                };
                Box::new(HybridFilter::build_with_opts(
                    store.clone(),
                    side,
                    scheme,
                    cfg,
                    opts,
                ))
            }
            FilterKind::HashHybridCompressed { side, buckets } => {
                let scheme = match buckets {
                    Some(m) => BucketScheme::Buckets(m),
                    None => BucketScheme::Full,
                };
                Box::new(HybridFilter::build_compressed_with_opts(
                    store.clone(),
                    side,
                    scheme,
                    cfg,
                    opts,
                ))
            }
            FilterKind::Hierarchical { max_level, budget } => Box::new(
                HierarchicalFilter::build_with_opts(store.clone(), max_level, budget, cfg, opts),
            ),
            FilterKind::KeywordFirst => {
                Box::new(KeywordFirst::build_with_config(store.clone(), cfg))
            }
            FilterKind::SpatialFirst => {
                Box::new(SpatialFirst::build_with_config(store.clone(), cfg))
            }
            FilterKind::IrTree { fanout } => Box::new(IrTreeBaseline::build_with_config(
                store.clone(),
                fanout,
                cfg,
            )),
            FilterKind::Adaptive { side } => Box::new(AdaptiveFilter::build_with_opts(
                store.clone(),
                side,
                cfg,
                opts,
            )),
            FilterKind::Naive => Box::new(NaiveFilter::new(store.clone())),
        };
        SealEngine { store, filter, cfg }
    }

    /// Answers a query: filter, then verify (Algorithm 1).
    ///
    /// Convenience path over a **thread-local** [`QueryContext`]:
    /// repeated calls on one thread reuse the same scratch (shared
    /// across engines on that thread; buffers size to the largest
    /// store), so single-query callers get the warm, allocation-free
    /// filter step without managing a context. Explicit serving loops
    /// should still prefer [`search_with_ctx`](Self::search_with_ctx)
    /// with one context per worker.
    pub fn search(&self, q: &Query) -> SearchResult {
        thread_local! {
            static CTX: std::cell::RefCell<QueryContext> =
                std::cell::RefCell::new(QueryContext::new());
        }
        CTX.with(|c| self.search_with_ctx(q, &mut c.borrow_mut()))
    }

    /// Answers a query using caller-owned scratch. After the context
    /// has warmed to the store size, the filter step performs no heap
    /// allocations; only the returned answer vector is allocated.
    pub fn search_with_ctx(&self, q: &Query, ctx: &mut QueryContext) -> SearchResult {
        let mut stats = SearchStats::new();
        self.filter.candidates_into(q, ctx, &mut stats);
        let answers =
            crate::verify::verify(&self.store, &self.cfg, q, ctx.candidates(), &mut stats);
        SearchResult { answers, stats }
    }

    /// Answers a batch of queries in parallel across `threads` OS
    /// threads (the LBS serving pattern: one engine, many concurrent
    /// queries). Results come back in input order.
    ///
    /// Workers pull query indexes from a shared atomic counter (work
    /// stealing), so skewed per-query costs cannot idle a thread the
    /// way static chunking can. Each worker owns one [`QueryContext`];
    /// the filters themselves hold no locks, so the whole read path is
    /// contention-free. With `threads == 1` this degenerates to a
    /// sequential loop over a single reused context.
    pub fn search_batch(&self, queries: &[Query], threads: usize) -> Vec<SearchResult> {
        let threads = threads.clamp(1, queries.len().max(1));
        if threads == 1 || queries.len() < 2 {
            let mut ctx = QueryContext::with_capacity(self.store.len());
            return queries
                .iter()
                .map(|q| self.search_with_ctx(q, &mut ctx))
                .collect();
        }
        let slots: Vec<OnceLock<SearchResult>> =
            (0..queries.len()).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut ctx = QueryContext::with_capacity(self.store.len());
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(q) = queries.get(i) else { break };
                        // Each index is claimed by exactly one worker,
                        // so the set cannot fail.
                        let _ = slots[i].set(self.search_with_ctx(q, &mut ctx));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("every query slot filled by the work loop")
            })
            .collect()
    }

    /// The store the engine serves.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// The active filter's display name.
    pub fn filter_name(&self) -> &'static str {
        self.filter.name()
    }

    /// Index bytes of the active filter (Table 1).
    pub fn index_bytes(&self) -> usize {
        self.filter.index_bytes()
    }

    /// Direct access to the filter (diagnostics, benchmarks).
    pub fn filter(&self) -> &dyn CandidateFilter {
        self.filter.as_ref()
    }

    /// Top-k extension (the related-work direction of §2.2 adapted to
    /// ROI similarity): returns the `k` objects with the highest
    /// combined score `α·simR + (1−α)·simT` among those passing *some*
    /// qualifying threshold, found by iterative threshold deepening.
    ///
    /// Starting from `τ = τ_start` the engine runs a threshold search
    /// and halves both thresholds until at least `k` answers exist (or
    /// the floor `τ_min` is reached), then ranks the answers by score.
    /// Because the threshold search is exact at every step, the result
    /// equals "rank all objects with `min(simR, simT) ≥ τ_final`" — a
    /// deterministic, reproducible top-k semantics that reuses the
    /// signature indexes unchanged.
    pub fn search_top_k(
        &self,
        region: seal_geom::Rect,
        tokens: seal_text::TokenSet,
        k: usize,
        alpha: f64,
    ) -> Vec<(ObjectId, f64)> {
        let alpha = alpha.clamp(0.0, 1.0);
        let mut tau = 0.5f64;
        const TAU_MIN: f64 = 0.01;
        // One warm context for the whole deepening loop (up to ~7
        // threshold levels re-probe the same store).
        let mut ctx = QueryContext::with_capacity(self.store.len());
        let answers: Vec<ObjectId> = loop {
            let q = Query::new(region, tokens.clone(), tau, tau).expect("tau stays within (0,1]");
            let found = self.search_with_ctx(&q, &mut ctx).answers;
            if found.len() >= k || tau <= TAU_MIN {
                break found;
            }
            tau = (tau / 2.0).max(TAU_MIN);
        };
        let w = self.store.weights();
        // One scoring query for the whole ranking pass: `Query::new`
        // clones the token set, which used to happen once per scored
        // candidate.
        let scoring_q = Query::new(region, tokens, 1.0, 1.0).expect("static thresholds are valid");
        let mut scored: Vec<(ObjectId, f64)> = answers
            .into_iter()
            .map(|id| {
                let o = self.store.get(id);
                let s = alpha * self.cfg.spatial_sim(&scoring_q, o)
                    + (1.0 - alpha) * self.cfg.textual_sim(&scoring_q, o, w);
                (id, s)
            })
            .collect();
        // Total order: scores are NaN-free by the simfn boundary
        // contract (`SimilarityConfig` rejects NaN similarities the
        // way `csr::check_bound` rejects NaN bounds), and `total_cmp`
        // removes the `unwrap_or(Equal)` escape hatch that would let a
        // stray NaN silently destabilize the ranking.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::naive_search;

    fn all_kinds() -> Vec<FilterKind> {
        vec![
            FilterKind::Token,
            FilterKind::TokenCompressed,
            FilterKind::TokenBasic,
            FilterKind::Grid { side: 8 },
            FilterKind::HashHybrid {
                side: 8,
                buckets: None,
            },
            FilterKind::HashHybrid {
                side: 8,
                buckets: Some(64),
            },
            FilterKind::HashHybridCompressed {
                side: 8,
                buckets: None,
            },
            FilterKind::HashHybridCompressed {
                side: 8,
                buckets: Some(64),
            },
            FilterKind::Hierarchical {
                max_level: 4,
                budget: 8,
            },
            FilterKind::KeywordFirst,
            FilterKind::SpatialFirst,
            FilterKind::IrTree { fanout: 3 },
            FilterKind::Adaptive { side: 8 },
            FilterKind::Naive,
        ]
    }

    #[test]
    fn every_engine_matches_the_oracle() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        for kind in all_kinds() {
            let engine = SealEngine::build(store.clone(), kind);
            for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.6, 0.6)] {
                let q = q0.with_thresholds(tr, tt).unwrap();
                let got = engine.search(&q).sorted();
                let mut expect = naive_search(&store, &cfg, &q);
                expect.sort_unstable();
                assert_eq!(
                    got.answers, expect,
                    "{kind:?} τ=({tr},{tt}) disagrees with the oracle"
                );
            }
        }
    }

    #[test]
    fn example1_via_the_default_engine() {
        let (store, q) = figure1_store();
        let engine = SealEngine::build(
            Arc::new(store),
            FilterKind::Hierarchical {
                max_level: 4,
                budget: 8,
            },
        );
        let result = engine.search(&q);
        assert_eq!(result.answers, vec![ObjectId(1)], "A = {{o2}}");
        assert!(result.stats.candidates >= 1);
        assert_eq!(result.stats.results, 1);
        assert_eq!(engine.filter_name(), "Seal");
        assert!(engine.index_bytes() > 0);
        assert_eq!(engine.store().len(), 7);
    }

    #[test]
    fn seal_default_is_hierarchical() {
        assert!(matches!(
            FilterKind::seal_default(),
            FilterKind::Hierarchical { .. }
        ));
    }

    #[test]
    fn dice_configured_engines_match_the_dice_oracle() {
        use crate::SpatialSimFn;
        use seal_text::similarity::TextualSimFn;
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig {
            spatial: SpatialSimFn::Dice,
            textual: TextualSimFn::Dice,
        };
        for kind in all_kinds() {
            let engine = SealEngine::build_with_config(store.clone(), kind, cfg);
            for (tr, tt) in [(0.2, 0.2), (0.4, 0.4), (0.7, 0.7)] {
                let q = q0.with_thresholds(tr, tt).unwrap();
                let got = engine.search(&q).sorted();
                let mut expect = naive_search(&store, &cfg, &q);
                expect.sort_unstable();
                assert_eq!(
                    got.answers, expect,
                    "{kind:?} with Dice τ=({tr},{tt}) disagrees with the Dice oracle"
                );
            }
        }
    }

    #[test]
    fn top_k_returns_ranked_results() {
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let engine = SealEngine::build(
            store.clone(),
            FilterKind::Hierarchical {
                max_level: 4,
                budget: 8,
            },
        );
        let top = engine.search_top_k(q.region, q.tokens.clone(), 3, 0.5);
        assert!(!top.is_empty());
        assert!(top.len() <= 3);
        // Scores descending, o2 (the Example 1 answer) ranked first.
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(top[0].0, ObjectId(1));
        // k larger than the store: returns everything qualifying.
        let all = engine.search_top_k(q.region, q.tokens.clone(), 100, 0.5);
        assert!(all.len() <= 7);
        assert!(all.len() >= top.len());
    }

    #[test]
    fn batch_search_matches_sequential() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let engine = SealEngine::build(store, FilterKind::Adaptive { side: 8 });
        let queries: Vec<Query> = [(0.1, 0.1), (0.25, 0.3), (0.5, 0.5), (0.7, 0.2), (0.2, 0.7)]
            .iter()
            .map(|&(tr, tt)| q0.with_thresholds(tr, tt).unwrap())
            .collect();
        let sequential: Vec<Vec<ObjectId>> = queries
            .iter()
            .map(|q| engine.search(q).sorted().answers)
            .collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let batch: Vec<Vec<ObjectId>> = engine
                .search_batch(&queries, threads)
                .into_iter()
                .map(|r| r.sorted().answers)
                .collect();
            assert_eq!(batch, sequential, "threads={threads}");
        }
        // Empty batch.
        assert!(engine.search_batch(&[], 4).is_empty());
    }

    #[test]
    fn top_k_alpha_extremes() {
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let engine = SealEngine::build(store.clone(), FilterKind::Token);
        // α = 1: ranked purely spatially; α = 0: purely textually.
        let spatial = engine.search_top_k(q.region, q.tokens.clone(), 7, 1.0);
        let textual = engine.search_top_k(q.region, q.tokens.clone(), 7, 0.0);
        let cfg = SimilarityConfig::default();
        for (id, score) in &spatial {
            let o = store.get(*id);
            let qq = q.with_thresholds(1.0, 1.0).unwrap();
            assert!((score - cfg.spatial_sim(&qq, o)).abs() < 1e-12);
        }
        for w in textual.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
