//! The `SealSig` engine (Algorithm 1): signature generation + index
//! construction at build time, `Sig-Filter` → `Sig-Verify` at query
//! time, behind one facade.

use crate::baselines::{IrTreeBaseline, KeywordFirst, SpatialFirst};
use crate::filters::{
    AdaptiveFilter, CandidateFilter, GridFilter, HierarchicalFilter, HybridFilter, NaiveFilter,
    QueryContext, TokenFilter, TokenFilterBasic,
};
use crate::signatures::hash_hybrid::BucketScheme;
use crate::{ObjectId, ObjectStore, Query, SearchStats, SimilarityConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Which filtering method the engine builds (Table 1's index rows plus
/// the baselines of Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    /// `Sig-Filter+` on textual signatures (`TokenInv`).
    Token,
    /// `Sig-Filter+` on textual signatures served **in place** off the
    /// compressed arena (`TokenInv` in its at-rest form): ~4× smaller
    /// lists, probes decode only the qualifying prefix into the
    /// per-worker [`QueryContext`] scratch.
    TokenCompressed,
    /// Basic `Sig-Filter` on textual signatures (ablation).
    TokenBasic,
    /// `Sig-Filter+` on grid signatures (`GridInv`) at the given
    /// granularity (cells per side).
    Grid {
        /// Cells per side.
        side: u32,
    },
    /// `Hybrid-Sig-Filter+` on hash-based hybrid signatures (`HashInv`).
    HashHybrid {
        /// Cells per side.
        side: u32,
        /// Hash-bucket constraint (None = full 64-bit hashing).
        buckets: Option<u64>,
    },
    /// `Hybrid-Sig-Filter+` served in place off the compressed
    /// dual-bound arena (`HashInv` in its at-rest form).
    HashHybridCompressed {
        /// Cells per side.
        side: u32,
        /// Hash-bucket constraint (None = full 64-bit hashing).
        buckets: Option<u64>,
    },
    /// `Hybrid-Sig-Filter+` on hierarchical hybrid signatures
    /// (`HierarchicalInv`) — the configuration the paper calls **Seal**.
    Hierarchical {
        /// Grid-tree depth.
        max_level: u8,
        /// `m_t`: selected grids per token.
        budget: usize,
    },
    /// Keyword-first baseline.
    KeywordFirst,
    /// Spatial-first baseline.
    SpatialFirst,
    /// IR-tree baseline.
    IrTree {
        /// R-tree fan-out.
        fanout: usize,
    },
    /// Cost-routed combination of Token and Grid filtering (per-query
    /// routing by the §4.3 cost model — the engineering answer to
    /// Figure 12's "combine both filters").
    Adaptive {
        /// Grid granularity for the spatial route.
        side: u32,
    },
    /// No filtering (scan everything, verify everything).
    Naive,
}

impl FilterKind {
    /// The paper's default SEAL configuration: hierarchical hybrid
    /// signatures with a level-10 tree (1024×1024 finest grain) and a
    /// 16-cell per-token budget.
    pub fn seal_default() -> Self {
        FilterKind::Hierarchical {
            max_level: 10,
            budget: 16,
        }
    }
}

/// The result of [`SealEngine::build_next_generation`]: the engine
/// plus what the rebuild managed to reuse from the previous
/// generation (surfaced by `LiveEngine::refresh` stats and
/// `bench_ingest`).
pub struct GenerationBuild {
    /// The next generation's engine.
    pub engine: SealEngine,
    /// True when the previous generation's per-token HSS selections
    /// were reused (hierarchical filter, delta inside the space MBR).
    pub scheme_reused: bool,
}

/// One answered query: the ids plus the per-step statistics.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Answer object ids (ascending by candidate discovery, then
    /// verified; call [`SearchResult::sorted`] for id order).
    pub answers: Vec<ObjectId>,
    /// Filter/verify counters and timings.
    pub stats: SearchStats,
}

impl SearchResult {
    /// The answers sorted by id (convenient for comparisons).
    pub fn sorted(mut self) -> Self {
        self.answers.sort_unstable();
        self
    }
}

/// The spatio-textual similarity search engine.
pub struct SealEngine {
    store: Arc<ObjectStore>,
    filter: Box<dyn CandidateFilter>,
    cfg: SimilarityConfig,
    kind: FilterKind,
}

impl SealEngine {
    /// Builds an engine over a store with the chosen filter.
    pub fn build(store: Arc<ObjectStore>, kind: FilterKind) -> Self {
        Self::build_with_config(store, kind, SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration. Every filter
    /// derives its signature thresholds from the configured functions
    /// (e.g. Dice's `c_R = τ·|q.R|/2`), so the candidate-superset
    /// guarantee holds for all supported similarity pairs.
    pub fn build_with_config(
        store: Arc<ObjectStore>,
        kind: FilterKind,
        cfg: SimilarityConfig,
    ) -> Self {
        Self::build_with_opts(store, kind, cfg, crate::BuildOpts::default())
    }

    /// Builds with explicit build options. `BuildOpts::threads` fans
    /// the build-side work (per-token `HSS-Greedy` selections, the
    /// staged group sorts inside `finalize`) out over a work-stealing
    /// pool; the resulting index is **identical for every thread
    /// count** — parallelism buys wall-clock time only. Filters
    /// without a parallel build path (the baselines, `Naive`) ignore
    /// the options.
    pub fn build_with_opts(
        store: Arc<ObjectStore>,
        kind: FilterKind,
        cfg: SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Self {
        let filter: Box<dyn CandidateFilter> = match kind {
            FilterKind::Token => Box::new(TokenFilter::build_with_opts(store.clone(), cfg, opts)),
            FilterKind::TokenCompressed => Box::new(TokenFilter::build_compressed_with_opts(
                store.clone(),
                cfg,
                opts,
            )),
            FilterKind::TokenBasic => {
                Box::new(TokenFilterBasic::build_with_config(store.clone(), cfg))
            }
            FilterKind::Grid { side } => {
                Box::new(GridFilter::build_with_opts(store.clone(), side, cfg, opts))
            }
            FilterKind::HashHybrid { side, buckets } => {
                let scheme = match buckets {
                    Some(m) => BucketScheme::Buckets(m),
                    None => BucketScheme::Full,
                };
                Box::new(HybridFilter::build_with_opts(
                    store.clone(),
                    side,
                    scheme,
                    cfg,
                    opts,
                ))
            }
            FilterKind::HashHybridCompressed { side, buckets } => {
                let scheme = match buckets {
                    Some(m) => BucketScheme::Buckets(m),
                    None => BucketScheme::Full,
                };
                Box::new(HybridFilter::build_compressed_with_opts(
                    store.clone(),
                    side,
                    scheme,
                    cfg,
                    opts,
                ))
            }
            FilterKind::Hierarchical { max_level, budget } => Box::new(
                HierarchicalFilter::build_with_opts(store.clone(), max_level, budget, cfg, opts),
            ),
            FilterKind::KeywordFirst => {
                Box::new(KeywordFirst::build_with_config(store.clone(), cfg))
            }
            FilterKind::SpatialFirst => {
                Box::new(SpatialFirst::build_with_config(store.clone(), cfg))
            }
            FilterKind::IrTree { fanout } => Box::new(IrTreeBaseline::build_with_config(
                store.clone(),
                fanout,
                cfg,
            )),
            FilterKind::Adaptive { side } => Box::new(AdaptiveFilter::build_with_opts(
                store.clone(),
                side,
                cfg,
                opts,
            )),
            FilterKind::Naive => Box::new(NaiveFilter::new(store.clone())),
        };
        SealEngine {
            store,
            filter,
            cfg,
            kind,
        }
    }

    /// Builds the engine for the **next generation** of `prev`'s
    /// store: `store` must be `prev`'s store with the objects
    /// `delta_start..` appended (the shape [`ObjectStore::extended`]
    /// produces, ids stable). Where the filter supports it, build-side
    /// work provably unchanged by the delta is reused from `prev` —
    /// today that is the hierarchical filter's per-token `HSS-Greedy`
    /// selections, its dominant build cost — and the result is
    /// **identical** to [`build_with_opts`](Self::build_with_opts)
    /// over the union store (the generation contract `LiveEngine`
    /// pins with proptests). Falls back to a fresh build whenever
    /// reuse does not apply.
    pub fn build_next_generation(
        prev: &SealEngine,
        store: Arc<ObjectStore>,
        kind: FilterKind,
        cfg: SimilarityConfig,
        opts: crate::BuildOpts,
        delta_start: usize,
    ) -> GenerationBuild {
        if let FilterKind::Hierarchical { max_level, budget } = kind {
            if let Some(prev_h) = prev
                .filter
                .as_any()
                .and_then(|a| a.downcast_ref::<HierarchicalFilter>())
            {
                let same_shape = prev_h.scheme().budget() == budget
                    && prev_h.scheme().tree().max_level() == max_level;
                if same_shape {
                    if let Some(filter) = HierarchicalFilter::build_extended(
                        prev_h,
                        store.clone(),
                        delta_start,
                        cfg,
                        opts,
                    ) {
                        return GenerationBuild {
                            engine: SealEngine {
                                store,
                                filter: Box::new(filter),
                                cfg,
                                kind,
                            },
                            scheme_reused: true,
                        };
                    }
                }
            }
        }
        GenerationBuild {
            engine: SealEngine::build_with_opts(store, kind, cfg, opts),
            scheme_reused: false,
        }
    }

    /// Answers a query: filter, then verify (Algorithm 1).
    ///
    /// Convenience path over a **thread-local** [`QueryContext`]:
    /// repeated calls on one thread reuse the same scratch (shared
    /// across engines on that thread; buffers size to the largest
    /// store), so single-query callers get the warm, allocation-free
    /// filter step without managing a context. Explicit serving loops
    /// should still prefer [`search_with_ctx`](Self::search_with_ctx)
    /// with one context per worker.
    pub fn search(&self, q: &Query) -> SearchResult {
        thread_local! {
            static CTX: std::cell::RefCell<QueryContext> =
                std::cell::RefCell::new(QueryContext::new());
        }
        CTX.with(|c| self.search_with_ctx(q, &mut c.borrow_mut()))
    }

    /// Answers a query using caller-owned scratch. After the context
    /// has warmed to the store size, the filter step performs no heap
    /// allocations; only the returned answer vector is allocated.
    pub fn search_with_ctx(&self, q: &Query, ctx: &mut QueryContext) -> SearchResult {
        let mut stats = SearchStats::new();
        self.filter.candidates_into(q, ctx, &mut stats);
        let answers =
            crate::verify::verify(&self.store, &self.cfg, q, ctx.candidates(), &mut stats);
        SearchResult { answers, stats }
    }

    /// Answers a batch of queries in parallel across `threads` OS
    /// threads (the LBS serving pattern: one engine, many concurrent
    /// queries). Results come back in input order.
    ///
    /// `threads` follows the codebase-wide convention (`BuildOpts`,
    /// `seal_index::parallel`, the CLI): `0` = one worker per core
    /// (`available_parallelism`), anything else is literal, clamped to
    /// the number of queries.
    ///
    /// Workers pull query indexes from a shared atomic counter (work
    /// stealing), so skewed per-query costs cannot idle a thread the
    /// way static chunking can. Each worker owns one [`QueryContext`];
    /// the filters themselves hold no locks, so the whole read path is
    /// contention-free. With one worker this degenerates to a
    /// sequential loop over a single reused context.
    pub fn search_batch(&self, queries: &[Query], threads: usize) -> Vec<SearchResult> {
        let threads = Self::batch_workers(threads, queries.len());
        if threads == 1 || queries.len() < 2 {
            let mut ctx = QueryContext::with_capacity(self.store.len());
            return queries
                .iter()
                .map(|q| self.search_with_ctx(q, &mut ctx))
                .collect();
        }
        let slots: Vec<OnceLock<SearchResult>> =
            (0..queries.len()).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut ctx = QueryContext::with_capacity(self.store.len());
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(q) = queries.get(i) else { break };
                        // Each index is claimed by exactly one worker,
                        // so the set cannot fail.
                        let _ = slots[i].set(self.search_with_ctx(q, &mut ctx));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("every query slot filled by the work loop")
            })
            .collect()
    }

    /// The effective worker count for a batch of `queries`: `0`
    /// resolves to one worker per core, then clamps to the batch size
    /// (and to at least one). This used to clamp `0` to a single
    /// worker, silently sequentializing `search_batch(qs, 0)` while
    /// every other thread knob in the codebase treated `0` as "all
    /// cores" — now it delegates to the one workspace-wide rule in
    /// [`seal_index::parallel::worker_count`], same as the build-side
    /// fan-out loops, so the two sides cannot drift again.
    fn batch_workers(threads: usize, queries: usize) -> usize {
        seal_index::parallel::worker_count(threads, queries)
    }

    /// Reassembles an engine from persisted parts (the container
    /// loader's constructor — field privacy keeps every other path
    /// through [`build_with_opts`](Self::build_with_opts)).
    pub(crate) fn from_loaded_parts(
        store: Arc<ObjectStore>,
        filter: Box<dyn CandidateFilter>,
        cfg: SimilarityConfig,
        kind: FilterKind,
    ) -> Self {
        SealEngine {
            store,
            filter,
            cfg,
            kind,
        }
    }

    /// The store the engine serves.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// The filter kind the engine was built with (what
    /// [`save`](Self::save) persists and [`load`](Self::load)
    /// reconstructs).
    pub fn kind(&self) -> FilterKind {
        self.kind
    }

    /// The similarity configuration in effect.
    pub fn config(&self) -> SimilarityConfig {
        self.cfg
    }

    /// The active filter's display name.
    pub fn filter_name(&self) -> &'static str {
        self.filter.name()
    }

    /// Index bytes of the active filter (Table 1).
    pub fn index_bytes(&self) -> usize {
        self.filter.index_bytes()
    }

    /// Direct access to the filter (diagnostics, benchmarks).
    pub fn filter(&self) -> &dyn CandidateFilter {
        self.filter.as_ref()
    }

    /// Top-k extension (the related-work direction of §2.2 adapted to
    /// ROI similarity): returns the `k` objects with the highest
    /// combined score `α·simR + (1−α)·simT` among those passing *some*
    /// qualifying threshold, found by iterative threshold deepening.
    ///
    /// Starting from `τ = τ_start` the engine runs a threshold search
    /// and halves both thresholds until at least `k` answers exist (or
    /// the floor `τ_min` is reached), then ranks the answers by score.
    /// Because the threshold search is exact at every step, the result
    /// equals "rank all objects with `min(simR, simT) ≥ τ_final`" — a
    /// deterministic, reproducible top-k semantics that reuses the
    /// signature indexes unchanged.
    pub fn search_top_k(
        &self,
        region: seal_geom::Rect,
        tokens: seal_text::TokenSet,
        k: usize,
        alpha: f64,
    ) -> Vec<(ObjectId, f64)> {
        let alpha = alpha.clamp(0.0, 1.0);
        let mut tau = 0.5f64;
        const TAU_MIN: f64 = 0.01;
        // One warm context for the whole deepening loop (up to ~7
        // threshold levels re-probe the same store).
        let mut ctx = QueryContext::with_capacity(self.store.len());
        let answers: Vec<ObjectId> = loop {
            let q = Query::new(region, tokens.clone(), tau, tau).expect("tau stays within (0,1]");
            let found = self.search_with_ctx(&q, &mut ctx).answers;
            if found.len() >= k || tau <= TAU_MIN {
                break found;
            }
            tau = (tau / 2.0).max(TAU_MIN);
        };
        let w = self.store.weights();
        // One scoring query for the whole ranking pass: `Query::new`
        // clones the token set, which used to happen once per scored
        // candidate.
        let scoring_q = Query::new(region, tokens, 1.0, 1.0).expect("static thresholds are valid");
        let mut scored: Vec<(ObjectId, f64)> = answers
            .into_iter()
            .map(|id| {
                let o = self.store.get(id);
                let s = alpha * self.cfg.spatial_sim(&scoring_q, o)
                    + (1.0 - alpha) * self.cfg.textual_sim(&scoring_q, o, w);
                (id, s)
            })
            .collect();
        // Total order: scores are NaN-free by the simfn boundary
        // contract (`SimilarityConfig` rejects NaN similarities the
        // way `csr::check_bound` rejects NaN bounds), and `total_cmp`
        // removes the `unwrap_or(Equal)` escape hatch that would let a
        // stray NaN silently destabilize the ranking.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::naive_search;

    fn all_kinds() -> Vec<FilterKind> {
        vec![
            FilterKind::Token,
            FilterKind::TokenCompressed,
            FilterKind::TokenBasic,
            FilterKind::Grid { side: 8 },
            FilterKind::HashHybrid {
                side: 8,
                buckets: None,
            },
            FilterKind::HashHybrid {
                side: 8,
                buckets: Some(64),
            },
            FilterKind::HashHybridCompressed {
                side: 8,
                buckets: None,
            },
            FilterKind::HashHybridCompressed {
                side: 8,
                buckets: Some(64),
            },
            FilterKind::Hierarchical {
                max_level: 4,
                budget: 8,
            },
            FilterKind::KeywordFirst,
            FilterKind::SpatialFirst,
            FilterKind::IrTree { fanout: 3 },
            FilterKind::Adaptive { side: 8 },
            FilterKind::Naive,
        ]
    }

    #[test]
    fn every_engine_matches_the_oracle() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        for kind in all_kinds() {
            let engine = SealEngine::build(store.clone(), kind);
            for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.6, 0.6)] {
                let q = q0.with_thresholds(tr, tt).unwrap();
                let got = engine.search(&q).sorted();
                let mut expect = naive_search(&store, &cfg, &q);
                expect.sort_unstable();
                assert_eq!(
                    got.answers, expect,
                    "{kind:?} τ=({tr},{tt}) disagrees with the oracle"
                );
            }
        }
    }

    #[test]
    fn example1_via_the_default_engine() {
        let (store, q) = figure1_store();
        let engine = SealEngine::build(
            Arc::new(store),
            FilterKind::Hierarchical {
                max_level: 4,
                budget: 8,
            },
        );
        let result = engine.search(&q);
        assert_eq!(result.answers, vec![ObjectId(1)], "A = {{o2}}");
        assert!(result.stats.candidates >= 1);
        assert_eq!(result.stats.results, 1);
        assert_eq!(engine.filter_name(), "Seal");
        assert!(engine.index_bytes() > 0);
        assert_eq!(engine.store().len(), 7);
    }

    #[test]
    fn seal_default_is_hierarchical() {
        assert!(matches!(
            FilterKind::seal_default(),
            FilterKind::Hierarchical { .. }
        ));
    }

    #[test]
    fn dice_configured_engines_match_the_dice_oracle() {
        use crate::SpatialSimFn;
        use seal_text::similarity::TextualSimFn;
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig {
            spatial: SpatialSimFn::Dice,
            textual: TextualSimFn::Dice,
        };
        for kind in all_kinds() {
            let engine = SealEngine::build_with_config(store.clone(), kind, cfg);
            for (tr, tt) in [(0.2, 0.2), (0.4, 0.4), (0.7, 0.7)] {
                let q = q0.with_thresholds(tr, tt).unwrap();
                let got = engine.search(&q).sorted();
                let mut expect = naive_search(&store, &cfg, &q);
                expect.sort_unstable();
                assert_eq!(
                    got.answers, expect,
                    "{kind:?} with Dice τ=({tr},{tt}) disagrees with the Dice oracle"
                );
            }
        }
    }

    #[test]
    fn top_k_returns_ranked_results() {
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let engine = SealEngine::build(
            store.clone(),
            FilterKind::Hierarchical {
                max_level: 4,
                budget: 8,
            },
        );
        let top = engine.search_top_k(q.region, q.tokens.clone(), 3, 0.5);
        assert!(!top.is_empty());
        assert!(top.len() <= 3);
        // Scores descending, o2 (the Example 1 answer) ranked first.
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(top[0].0, ObjectId(1));
        // k larger than the store: returns everything qualifying.
        let all = engine.search_top_k(q.region, q.tokens.clone(), 100, 0.5);
        assert!(all.len() <= 7);
        assert!(all.len() >= top.len());
    }

    #[test]
    fn batch_search_matches_sequential() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let engine = SealEngine::build(store, FilterKind::Adaptive { side: 8 });
        let queries: Vec<Query> = [(0.1, 0.1), (0.25, 0.3), (0.5, 0.5), (0.7, 0.2), (0.2, 0.7)]
            .iter()
            .map(|&(tr, tt)| q0.with_thresholds(tr, tt).unwrap())
            .collect();
        let sequential: Vec<Vec<ObjectId>> = queries
            .iter()
            .map(|q| engine.search(q).sorted().answers)
            .collect();
        for threads in [0usize, 1, 2, 3, 8, 64] {
            let batch: Vec<Vec<ObjectId>> = engine
                .search_batch(&queries, threads)
                .into_iter()
                .map(|r| r.sorted().answers)
                .collect();
            assert_eq!(batch, sequential, "threads={threads}");
        }
        // Empty batch.
        assert!(engine.search_batch(&[], 4).is_empty());
        assert!(engine.search_batch(&[], 0).is_empty());
    }

    #[test]
    fn batch_workers_follow_the_zero_means_all_cores_convention() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // The regression: 0 used to clamp to a single worker instead
        // of resolving to one worker per core like `BuildOpts` and the
        // CLI default do.
        assert_eq!(
            SealEngine::batch_workers(0, 1000),
            cores.min(1000),
            "threads=0 must mean one worker per core"
        );
        assert_eq!(
            SealEngine::batch_workers(0, 1000),
            seal_index::parallel::resolve_threads(0).min(1000),
        );
        // One rule, one helper: the engine's batch workers are exactly
        // the workspace-wide worker_count.
        for (threads, tasks) in [(0, 7), (3, 9), (9, 3), (0, 0)] {
            assert_eq!(
                SealEngine::batch_workers(threads, tasks),
                seal_index::parallel::worker_count(threads, tasks),
            );
        }
        // Literal counts clamp to the batch size, never below 1.
        assert_eq!(SealEngine::batch_workers(8, 3), 3);
        assert_eq!(SealEngine::batch_workers(1, 100), 1);
        assert_eq!(SealEngine::batch_workers(4, 0), 1);
        assert_eq!(SealEngine::batch_workers(0, 0), 1);
    }

    /// A deterministic mid-sized store (no RNG dependency): varied
    /// regions over a ~1000×1000 space with Zipf-ish token reuse.
    fn synthetic_store(n: usize, vocab: u32) -> crate::ObjectStore {
        use seal_geom::Rect;
        use seal_text::{TokenId, TokenSet};
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 33) as u32
        };
        let objects: Vec<crate::RoiObject> = (0..n)
            .map(|_| {
                let x = f64::from(next() % 1000);
                let y = f64::from(next() % 1000);
                let w = 1.0 + f64::from(next() % 60);
                let h = 1.0 + f64::from(next() % 60);
                let k = 1 + (next() % 4) as usize;
                let tokens: Vec<TokenId> = (0..k).map(|_| TokenId(next() % vocab)).collect();
                crate::RoiObject::new(
                    Rect::new(x, y, x + w, y + h).unwrap(),
                    TokenSet::from_ids(tokens),
                )
            })
            .collect();
        crate::ObjectStore::from_objects(objects, vocab as usize)
    }

    #[test]
    fn thread_local_context_survives_cross_store_and_kind_reuse() {
        use seal_geom::Rect;
        use seal_text::TokenId;
        // `SealEngine::search` shares one thread-local QueryContext
        // across every engine and store this thread touches. Warm it
        // on a small store, then a ~100× larger one, then the small
        // one again — across compressed and uncompressed kinds — and
        // every answer must still match the oracle: epoch stamps and
        // decode scratch regrow, never panic or mis-dedup.
        let (small_store, q_small) = figure1_store();
        let small = Arc::new(small_store);
        let big = Arc::new(synthetic_store(800, 40));
        let q_big = Query::with_token_ids(
            Rect::new(100.0, 100.0, 700.0, 700.0).unwrap(),
            [TokenId(1), TokenId(2), TokenId(3)],
            0.05,
            0.05,
        )
        .unwrap();
        let cfg = SimilarityConfig::default();
        let kinds = [
            FilterKind::Token,
            FilterKind::TokenCompressed,
            FilterKind::TokenBasic,
            FilterKind::Grid { side: 8 },
            FilterKind::HashHybrid {
                side: 8,
                buckets: Some(64),
            },
            FilterKind::HashHybridCompressed {
                side: 8,
                buckets: Some(64),
            },
            FilterKind::Hierarchical {
                max_level: 4,
                budget: 8,
            },
            FilterKind::Adaptive { side: 8 },
        ];
        let mut expect_small = naive_search(&small, &cfg, &q_small);
        expect_small.sort_unstable();
        let mut expect_big = naive_search(&big, &cfg, &q_big);
        expect_big.sort_unstable();
        for kind in kinds {
            let e_small = SealEngine::build(small.clone(), kind);
            let e_big = SealEngine::build(big.clone(), kind);
            for round in 0..2 {
                assert_eq!(
                    e_small.search(&q_small).sorted().answers,
                    expect_small,
                    "{kind:?} small store, round {round}"
                );
                assert_eq!(
                    e_big.search(&q_big).sorted().answers,
                    expect_big,
                    "{kind:?} big store, round {round}"
                );
            }
        }
    }

    #[test]
    fn next_generation_engine_matches_fresh_union_build() {
        use seal_geom::Rect;
        use seal_text::{TokenId, TokenSet};
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        let kind = FilterKind::Hierarchical {
            max_level: 4,
            budget: 8,
        };
        let prev = SealEngine::build(store.clone(), kind);
        let delta = vec![crate::RoiObject::new(
            Rect::new(20.0, 15.0, 80.0, 42.0).unwrap(),
            TokenSet::from_ids([TokenId(0), TokenId(1), TokenId(2)]),
        )];
        let union = Arc::new(store.extended(&delta));
        let next = SealEngine::build_next_generation(
            &prev,
            union.clone(),
            kind,
            cfg,
            crate::BuildOpts::default(),
            store.len(),
        );
        assert!(
            next.scheme_reused,
            "delta inside the space MBR must reuse the HSS selections"
        );
        let fresh = SealEngine::build(union.clone(), kind);
        for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.6, 0.6)] {
            let q = q0.with_thresholds(tr, tt).unwrap();
            assert_eq!(
                next.engine.search(&q).sorted().answers,
                fresh.search(&q).sorted().answers,
                "τ=({tr},{tt})"
            );
        }
        // Non-hierarchical kinds fall back to a fresh build — still
        // correct, just nothing to reuse.
        let prev_t = SealEngine::build(store.clone(), FilterKind::Token);
        let next_t = SealEngine::build_next_generation(
            &prev_t,
            union.clone(),
            FilterKind::Token,
            cfg,
            crate::BuildOpts::default(),
            store.len(),
        );
        assert!(!next_t.scheme_reused);
        let fresh_t = SealEngine::build(union, FilterKind::Token);
        let q = q0.with_thresholds(0.2, 0.2).unwrap();
        assert_eq!(
            next_t.engine.search(&q).sorted().answers,
            fresh_t.search(&q).sorted().answers,
        );
    }

    #[test]
    fn top_k_alpha_extremes() {
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let engine = SealEngine::build(store.clone(), FilterKind::Token);
        // α = 1: ranked purely spatially; α = 0: purely textually.
        let spatial = engine.search_top_k(q.region, q.tokens.clone(), 7, 1.0);
        let textual = engine.search_top_k(q.region, q.tokens.clone(), 7, 0.0);
        let cfg = SimilarityConfig::default();
        for (id, score) in &spatial {
            let o = store.get(*id);
            let qq = q.with_thresholds(1.0, 1.0).unwrap();
            assert!((score - cfg.spatial_sim(&qq, o)).abs() < 1e-12);
        }
        for w in textual.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
