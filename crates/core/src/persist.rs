//! Durable engine persistence: the single-file `.seal` container.
//!
//! [`SealEngine::save`] lays an engine out as checksummed sections of a
//! [`seal_index::Container`] and writes it with the crash-safe
//! temp-file → fsync → atomic-rename protocol ([`ContainerWriter`]'s
//! `write_atomic`); [`SealEngine::load`] CRC-verifies the framing and
//! every payload, then validates each section semantically before
//! reconstructing the engine. Every failure on the load path is a typed
//! [`ContainerError`]: corrupt, truncated or adversarial input never
//! panics and never triggers unbounded allocation — every declared
//! count is checked against the bytes actually remaining before a
//! buffer is sized from it.
//!
//! # Section layout (in directory order)
//!
//! | kind | section | contents |
//! |------|---------|----------|
//! | 1 | store stats | summary counts + averages, cross-checked bit-exactly against the reloaded store |
//! | 2 | store objects | vocab size, then each object's rect (4×f64) and sorted token ids |
//! | 3 | dictionary | token names in id order (present only for stores built from strings) |
//! | 4 | engine meta | [`FilterKind`] tag + parameters, similarity-function tags |
//! | 5 | hier scheme | per-token HSS cell selections ([`FilterKind::Hierarchical`] only) |
//! | 6 | primary index | the filter's index in the `seal_index` codec format |
//! | 7 | secondary index | the adaptive router's grid index ([`FilterKind::Adaptive`] only) |
//!
//! Filters whose build is a cheap deterministic function of the store
//! (the baselines and [`FilterKind::Naive`]) persist no index sections
//! and are rebuilt on load.
//!
//! Legacy raw codec blobs (an index serialized with
//! `InvertedIndex::to_bytes` and friends, no container framing) are
//! detected by magic and rejected with a pointer to the compatibility
//! entry points — the `from_bytes` constructors in `seal_index` still
//! read them.
//!
//! # Streaming load
//!
//! [`SealEngine::load_with_threads`] goes through
//! [`seal_index::stream_file`]: the container framing is validated up
//! front, then each section is CRC-checked **and decoded** by a pool
//! worker the moment its bytes are read off disk, so section decoding
//! overlaps with the remaining file I/O. The writer lays the tiny
//! engine-meta section out *before* the index payloads, so the decode
//! hook can read the filter kind from the already-streamed meta bytes
//! and pick the right index decoder per section; a file with hostile
//! section ordering simply falls back to decoding at assembly time
//! (same typed errors, no panic). [`SealEngine::load_from_bytes`]
//! keeps the buffered path for bytes already in memory.

use crate::filters::{
    AdaptiveFilter, CandidateFilter, GridFilter, HierarchicalFilter, HybridFilter, TokenFilter,
    TokenFilterBasic,
};
use crate::signatures::hash_hybrid::BucketScheme;
use crate::signatures::hierarchical::{HierarchicalScheme, TokenGrids};
use crate::{FilterKind, ObjectStore, SealEngine, SimilarityConfig, SpatialSimFn};
use seal_geom::{GridCellId, GridTree, Rect};
use seal_index::{
    CompressedHybridIndex, CompressedInvertedIndex, Container, ContainerError, ContainerWriter,
    HybridIndex, InvertedIndex,
};
use seal_text::similarity::TextualSimFn;
use seal_text::{Dictionary, TokenId, TokenSet};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Section kind: store summary statistics (cross-checked on load).
pub const SECTION_STORE_STATS: u16 = 1;
/// Section kind: the object collection (rects + token ids).
pub const SECTION_STORE_OBJECTS: u16 = 2;
/// Section kind: the token dictionary (optional).
pub const SECTION_DICTIONARY: u16 = 3;
/// Section kind: filter kind and similarity configuration.
pub const SECTION_ENGINE_META: u16 = 4;
/// Section kind: hierarchical per-token HSS selections.
pub const SECTION_HIER_SCHEME: u16 = 5;
/// Section kind: the filter's primary index (codec bytes).
pub const SECTION_PRIMARY_INDEX: u16 = 6;
/// Section kind: the adaptive router's grid index (codec bytes).
pub const SECTION_SECONDARY_INDEX: u16 = 7;

// ---------------------------------------------------------------- write

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

// ----------------------------------------------------------------- read

/// A bounds-checked little-endian reader over one section payload.
///
/// Every read states what it needs before touching the buffer and
/// reports shortfalls as [`ContainerError::Section`] with the section
/// name and the byte offset — the hardened-load contract: no slicing
/// panics, no `count * size` overflow, no allocation sized from an
/// unvalidated count.
struct R<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> R<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        R {
            buf,
            pos: 0,
            section,
        }
    }

    fn err(&self, detail: impl Into<String>) -> ContainerError {
        ContainerError::Section {
            section: self.section,
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ContainerError> {
        if self.remaining() < n {
            return Err(self.err(format!("need {n} bytes, {} remain", self.remaining())));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ContainerError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ContainerError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ContainerError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, ContainerError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Validates a declared element count against the bytes remaining
    /// (`min_elem_bytes` per element) **before** the caller allocates
    /// anything sized from it.
    fn count(&mut self, declared: u64, min_elem_bytes: usize) -> Result<usize, ContainerError> {
        let n = usize::try_from(declared)
            .map_err(|_| self.err("declared count exceeds the address space"))?;
        match n.checked_mul(min_elem_bytes) {
            Some(total) if total <= self.remaining() => Ok(n),
            _ => Err(self.err(format!(
                "declared count {n} needs at least {min_elem_bytes}×{n} bytes, {} remain",
                self.remaining()
            ))),
        }
    }

    /// Asserts the payload was consumed exactly — trailing bytes in a
    /// section are corruption, not padding.
    fn done(self) -> Result<(), ContainerError> {
        if self.remaining() != 0 {
            let n = self.remaining();
            return Err(self.err(format!("{n} unconsumed trailing bytes")));
        }
        Ok(())
    }
}

// ----------------------------------------------------------- store stats

fn encode_stats(store: &ObjectStore) -> Vec<u8> {
    let s = store.stats();
    let mut buf = Vec::with_capacity(40);
    put_u64(&mut buf, s.objects as u64);
    put_u64(&mut buf, s.vocab_size as u64);
    put_f64(&mut buf, s.avg_region_area);
    put_f64(&mut buf, s.space_area);
    put_f64(&mut buf, s.avg_token_count);
    buf
}

/// Cross-checks the persisted summary against the store rebuilt from
/// the objects section. The averages are pure functions of the objects
/// in their stored order (same summation order), so the comparison is
/// **bit-exact** — any drift means the sections disagree about the
/// data they describe. `data_bytes` is deliberately not persisted: it
/// is capacity-based and so not a function of the logical contents.
fn check_stats(payload: &[u8], store: &ObjectStore) -> Result<(), ContainerError> {
    let mut r = R::new(payload, "store stats");
    let objects = r.u64()?;
    let vocab = r.u64()?;
    let avg_area = r.f64()?;
    let space_area = r.f64()?;
    let avg_tokens = r.f64()?;
    let s = store.stats();
    let mismatch = |r: &R<'_>, what: &str| -> ContainerError {
        r.err(format!("{what} disagrees with the store objects section"))
    };
    if objects != s.objects as u64 {
        return Err(mismatch(&r, "object count"));
    }
    if vocab != s.vocab_size as u64 {
        return Err(mismatch(&r, "vocab size"));
    }
    if avg_area.to_bits() != s.avg_region_area.to_bits() {
        return Err(mismatch(&r, "average region area"));
    }
    if space_area.to_bits() != s.space_area.to_bits() {
        return Err(mismatch(&r, "space area"));
    }
    if avg_tokens.to_bits() != s.avg_token_count.to_bits() {
        return Err(mismatch(&r, "average token count"));
    }
    r.done()
}

// --------------------------------------------------------- store objects

fn encode_store(store: &ObjectStore) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, store.vocab_size() as u64);
    put_u64(&mut buf, store.len() as u64);
    for o in store.objects() {
        let (min, max) = (o.region.min(), o.region.max());
        put_f64(&mut buf, min.x);
        put_f64(&mut buf, min.y);
        put_f64(&mut buf, max.x);
        put_f64(&mut buf, max.y);
        put_u32(
            &mut buf,
            u32::try_from(o.tokens.len()).expect("token count fits u32"),
        );
        for t in o.tokens.iter() {
            put_u32(&mut buf, t.0);
        }
    }
    buf
}

fn decode_store(payload: &[u8]) -> Result<ObjectStore, ContainerError> {
    let mut r = R::new(payload, "store objects");
    let vocab =
        usize::try_from(r.u64()?).map_err(|_| r.err("vocab size exceeds the address space"))?;
    let declared = r.u64()?;
    // Smallest possible object: rect (32 bytes) + empty token set (4).
    let n = r.count(declared, 4 * 8 + 4)?;
    let mut objects = Vec::with_capacity(n);
    for i in 0..n {
        let (min_x, min_y) = (r.f64()?, r.f64()?);
        let (max_x, max_y) = (r.f64()?, r.f64()?);
        let region = Rect::new(min_x, min_y, max_x, max_y)
            .map_err(|e| r.err(format!("object {i}: invalid region: {e}")))?;
        let token_count = r.u32()?;
        let k = r.count(u64::from(token_count), 4)?;
        let mut ids = Vec::with_capacity(k);
        for _ in 0..k {
            ids.push(TokenId(r.u32()?));
        }
        // `TokenSet::from_sorted_unique` only debug-asserts its
        // invariant, so untrusted bytes are validated explicitly.
        if let Some(j) = ids.windows(2).position(|w| w[0] >= w[1]) {
            return Err(r.err(format!(
                "object {i}: token ids not ascending at slot {}",
                j + 1
            )));
        }
        if let Some(t) = ids.last() {
            if t.index() >= vocab {
                return Err(r.err(format!(
                    "object {i}: token id {} outside vocab of {vocab}",
                    t.0
                )));
            }
        }
        objects.push(crate::RoiObject::new(
            region,
            TokenSet::from_sorted_unique(ids),
        ));
    }
    r.done()?;
    Ok(ObjectStore::from_objects(objects, vocab))
}

// ----------------------------------------------------------- dictionary

fn encode_dictionary(dict: &Dictionary) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, dict.len() as u64);
    for (_, name) in dict.iter() {
        put_u32(
            &mut buf,
            u32::try_from(name.len()).expect("token name length fits u32"),
        );
        buf.extend_from_slice(name.as_bytes());
    }
    buf
}

fn decode_dictionary(payload: &[u8]) -> Result<Dictionary, ContainerError> {
    let mut r = R::new(payload, "dictionary");
    let declared = r.u64()?;
    let n = r.count(declared, 4)?;
    let mut dict = Dictionary::new();
    for i in 0..n {
        let declared_len = u64::from(r.u32()?);
        let len = r.count(declared_len, 1)?;
        let bytes = r.take(len)?;
        let name = std::str::from_utf8(bytes)
            .map_err(|_| r.err(format!("name {i} is not valid UTF-8")))?;
        let id = dict.intern(name);
        if id.index() != i {
            return Err(r.err(format!("duplicate name {name:?} at slot {i}")));
        }
    }
    r.done()?;
    Ok(dict)
}

// ---------------------------------------------------------- engine meta

fn spatial_tag(f: SpatialSimFn) -> u8 {
    match f {
        SpatialSimFn::Jaccard => 0,
        SpatialSimFn::Dice => 1,
    }
}

fn textual_tag(f: TextualSimFn) -> u8 {
    match f {
        TextualSimFn::Jaccard => 0,
        TextualSimFn::Dice => 1,
        TextualSimFn::Cosine => 2,
        TextualSimFn::Overlap => 3,
    }
}

fn encode_meta(kind: FilterKind, cfg: SimilarityConfig) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24);
    match kind {
        FilterKind::Token => put_u8(&mut buf, 0),
        FilterKind::TokenCompressed => put_u8(&mut buf, 1),
        FilterKind::TokenBasic => put_u8(&mut buf, 2),
        FilterKind::Grid { side } => {
            put_u8(&mut buf, 3);
            put_u32(&mut buf, side);
        }
        FilterKind::HashHybrid { side, buckets } => {
            put_u8(&mut buf, 4);
            put_u32(&mut buf, side);
            put_u8(&mut buf, u8::from(buckets.is_some()));
            put_u64(&mut buf, buckets.unwrap_or(0));
        }
        FilterKind::HashHybridCompressed { side, buckets } => {
            put_u8(&mut buf, 5);
            put_u32(&mut buf, side);
            put_u8(&mut buf, u8::from(buckets.is_some()));
            put_u64(&mut buf, buckets.unwrap_or(0));
        }
        FilterKind::Hierarchical { max_level, budget } => {
            put_u8(&mut buf, 6);
            put_u8(&mut buf, max_level);
            put_u64(&mut buf, budget as u64);
        }
        FilterKind::KeywordFirst => put_u8(&mut buf, 7),
        FilterKind::SpatialFirst => put_u8(&mut buf, 8),
        FilterKind::IrTree { fanout } => {
            put_u8(&mut buf, 9);
            put_u64(&mut buf, fanout as u64);
        }
        FilterKind::Adaptive { side } => {
            put_u8(&mut buf, 10);
            put_u32(&mut buf, side);
        }
        FilterKind::Naive => put_u8(&mut buf, 11),
    }
    put_u8(&mut buf, spatial_tag(cfg.spatial));
    put_u8(&mut buf, textual_tag(cfg.textual));
    buf
}

fn decode_meta(payload: &[u8]) -> Result<(FilterKind, SimilarityConfig), ContainerError> {
    let mut r = R::new(payload, "engine meta");
    let tag = r.u8()?;
    let kind = match tag {
        0 => FilterKind::Token,
        1 => FilterKind::TokenCompressed,
        2 => FilterKind::TokenBasic,
        3 => FilterKind::Grid { side: r.u32()? },
        4 | 5 => {
            let side = r.u32()?;
            let has = r.u8()?;
            let m = r.u64()?;
            let buckets = match has {
                0 => None,
                1 => Some(m),
                other => return Err(r.err(format!("bad bucket presence flag {other}"))),
            };
            if tag == 4 {
                FilterKind::HashHybrid { side, buckets }
            } else {
                FilterKind::HashHybridCompressed { side, buckets }
            }
        }
        6 => {
            let max_level = r.u8()?;
            let budget =
                usize::try_from(r.u64()?).map_err(|_| r.err("budget exceeds the address space"))?;
            FilterKind::Hierarchical { max_level, budget }
        }
        7 => FilterKind::KeywordFirst,
        8 => FilterKind::SpatialFirst,
        9 => {
            let fanout =
                usize::try_from(r.u64()?).map_err(|_| r.err("fanout exceeds the address space"))?;
            FilterKind::IrTree { fanout }
        }
        10 => FilterKind::Adaptive { side: r.u32()? },
        11 => FilterKind::Naive,
        other => return Err(r.err(format!("unknown filter kind tag {other}"))),
    };
    let spatial = match r.u8()? {
        0 => SpatialSimFn::Jaccard,
        1 => SpatialSimFn::Dice,
        other => return Err(r.err(format!("unknown spatial similarity tag {other}"))),
    };
    let textual = match r.u8()? {
        0 => TextualSimFn::Jaccard,
        1 => TextualSimFn::Dice,
        2 => TextualSimFn::Cosine,
        3 => TextualSimFn::Overlap,
        other => return Err(r.err(format!("unknown textual similarity tag {other}"))),
    };
    r.done()?;
    Ok((kind, SimilarityConfig { spatial, textual }))
}

// ----------------------------------------------------- hierarchical HSS

/// Serializes per-token cell selections, tokens in ascending id order
/// (the in-memory map iterates nondeterministically) and each token's
/// cells in their **selection order**, which the scheme treats as
/// authoritative (`TokenGrids` derives probe ranks from it).
fn encode_scheme(scheme: &HierarchicalScheme) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u8(&mut buf, scheme.tree().max_level());
    put_u64(&mut buf, scheme.budget() as u64);
    let mut tokens: Vec<(&TokenId, &Arc<TokenGrids>)> = scheme.per_token().iter().collect();
    tokens.sort_unstable_by_key(|(t, _)| t.0);
    put_u64(&mut buf, tokens.len() as u64);
    for (t, grids) in tokens {
        put_u32(&mut buf, t.0);
        put_u32(
            &mut buf,
            u32::try_from(grids.cells().len()).expect("cell count fits u32"),
        );
        for c in grids.cells() {
            put_u64(&mut buf, c.id.pack());
        }
    }
    buf
}

fn decode_scheme(
    payload: &[u8],
    store: &ObjectStore,
    expect_max_level: u8,
    expect_budget: usize,
) -> Result<HierarchicalScheme, ContainerError> {
    let mut r = R::new(payload, "hier scheme");
    let max_level = r.u8()?;
    if max_level != expect_max_level {
        return Err(r.err(format!(
            "max level {max_level} disagrees with engine meta ({expect_max_level})"
        )));
    }
    let budget =
        usize::try_from(r.u64()?).map_err(|_| r.err("budget exceeds the address space"))?;
    if budget != expect_budget {
        return Err(r.err(format!(
            "budget {budget} disagrees with engine meta ({expect_budget})"
        )));
    }
    let tree = GridTree::new(store.space(), max_level)
        .map_err(|e| r.err(format!("invalid grid tree: {e}")))?;
    let declared = r.u64()?;
    // Smallest possible token entry: id + cell count, no cells.
    let n_tokens = r.count(declared, 4 + 4)?;
    let mut per_token: HashMap<TokenId, Arc<TokenGrids>> = HashMap::with_capacity(n_tokens);
    let mut prev_token: Option<u32> = None;
    for _ in 0..n_tokens {
        let t = r.u32()?;
        if prev_token.is_some_and(|p| p >= t) {
            return Err(r.err(format!("token ids not ascending at token {t}")));
        }
        prev_token = Some(t);
        let declared_cells = u64::from(r.u32()?);
        let n_cells = r.count(declared_cells, 8)?;
        let mut cells = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            let packed = r.u64()?;
            let id = GridCellId::unpack(packed)
                .map_err(|e| r.err(format!("token {t}: bad cell id {packed:#x}: {e}")))?;
            let rect = tree
                .cell_rect(id)
                .map_err(|e| r.err(format!("token {t}: cell outside the tree: {e}")))?;
            // Build-time object lists are selection scratch; probes
            // never read them, so they are not persisted.
            cells.push(crate::hss::SelectedCell {
                id,
                rect,
                objects: Vec::new(),
            });
        }
        per_token.insert(TokenId(t), Arc::new(TokenGrids::new(cells, store.space())));
    }
    r.done()?;
    Ok(HierarchicalScheme::from_parts(tree, per_token, budget))
}

// -------------------------------------------------------------- engine

/// Maps a codec decode failure into the container error space.
fn codec<T>(res: Result<T, seal_index::IndexCodecError>) -> Result<T, ContainerError> {
    res.map_err(ContainerError::Codec)
}

/// Rejects an index whose postings reference objects the store does
/// not have — the one cross-section invariant the codec itself cannot
/// check, and the one that would otherwise panic the first query
/// (dedup stamps are indexed by object id).
fn check_ids(
    max_id: Option<seal_index::ObjId>,
    store_len: usize,
    what: &'static str,
) -> Result<(), ContainerError> {
    if let Some(m) = max_id {
        if u64::from(m) >= store_len as u64 {
            return Err(ContainerError::Section {
                section: what,
                offset: 0,
                detail: format!("posting references object {m} but the store has {store_len}"),
            });
        }
    }
    Ok(())
}

fn bucket_scheme(buckets: Option<u64>) -> BucketScheme {
    match buckets {
        Some(m) => BucketScheme::Buckets(m),
        None => BucketScheme::Full,
    }
}

// ------------------------------------------------------ streaming load

/// One section's decode result from the streaming load: either fully
/// decoded by the pool worker that verified its CRC, or the raw bytes
/// for sections that are cheap to decode (stats, meta, scheme), need
/// cross-section state unavailable mid-stream, or were streamed before
/// the engine-meta section in a hostile ordering.
enum Slot {
    /// Undecoded payload bytes (decoded at assembly time).
    Raw(Vec<u8>),
    /// The object store (kind 2).
    Store(ObjectStore),
    /// The token dictionary (kind 3).
    Dict(Dictionary),
    /// An uncompressed `u32`-keyed index (token filters).
    Single32(InvertedIndex<u32>),
    /// An uncompressed `u64`-keyed index (grid filters).
    Single64(InvertedIndex<u64>),
    /// A compressed `u32`-keyed index.
    Comp32(CompressedInvertedIndex<u32>),
    /// An uncompressed hybrid index (hash-hybrid filter).
    Hybrid64(HybridIndex<u64>),
    /// A compressed hybrid index.
    CompHybrid64(CompressedHybridIndex<u64>),
    /// A `u128`-keyed hybrid index (hierarchical filter).
    Hybrid128(HybridIndex<u128>),
}

/// The per-section decode hook for [`seal_index::stream_file`]: runs
/// on a pool worker right after the section's CRC verifies, while the
/// caller thread is still reading later sections off disk.
///
/// Index sections pick their decoder by reading the filter kind from
/// the already-streamed engine-meta payload (`raw`); the writer lays
/// meta out before the index sections, so it is always visible on the
/// files this engine writes. If it is not (hostile section order) the
/// payload is kept raw and decoded at assembly, yielding the same
/// typed errors as the buffered path.
fn decode_slot(
    kind: u16,
    payload: &[u8],
    raw: &seal_index::RawSections<'_>,
) -> Result<Slot, ContainerError> {
    match kind {
        SECTION_STORE_OBJECTS => Ok(Slot::Store(decode_store(payload)?)),
        SECTION_DICTIONARY => Ok(Slot::Dict(decode_dictionary(payload)?)),
        SECTION_PRIMARY_INDEX | SECTION_SECONDARY_INDEX => {
            let Some(meta) = raw.raw(SECTION_ENGINE_META) else {
                return Ok(Slot::Raw(payload.to_vec()));
            };
            let Ok((fk, _)) = decode_meta(meta) else {
                return Ok(Slot::Raw(payload.to_vec()));
            };
            match (fk, kind) {
                (FilterKind::Token | FilterKind::TokenBasic, SECTION_PRIMARY_INDEX) => Ok(
                    Slot::Single32(codec(InvertedIndex::<u32>::from_bytes(payload))?),
                ),
                (FilterKind::TokenCompressed, SECTION_PRIMARY_INDEX) => Ok(Slot::Comp32(codec(
                    CompressedInvertedIndex::<u32>::from_bytes(payload),
                )?)),
                (FilterKind::Grid { .. }, SECTION_PRIMARY_INDEX) => Ok(Slot::Single64(codec(
                    InvertedIndex::<u64>::from_bytes(payload),
                )?)),
                (FilterKind::HashHybrid { .. }, SECTION_PRIMARY_INDEX) => Ok(Slot::Hybrid64(
                    codec(HybridIndex::<u64>::from_bytes(payload))?,
                )),
                (FilterKind::HashHybridCompressed { .. }, SECTION_PRIMARY_INDEX) => Ok(
                    Slot::CompHybrid64(codec(CompressedHybridIndex::<u64>::from_bytes(payload))?),
                ),
                (FilterKind::Hierarchical { .. }, SECTION_PRIMARY_INDEX) => Ok(Slot::Hybrid128(
                    codec(HybridIndex::<u128>::from_bytes(payload))?,
                )),
                (FilterKind::Adaptive { .. }, SECTION_PRIMARY_INDEX) => Ok(Slot::Single32(codec(
                    InvertedIndex::<u32>::from_bytes(payload),
                )?)),
                (FilterKind::Adaptive { .. }, SECTION_SECONDARY_INDEX) => Ok(Slot::Single64(
                    codec(InvertedIndex::<u64>::from_bytes(payload))?,
                )),
                // Derivable filters persist no index sections; an
                // unexpected one stays raw and is flagged at assembly.
                _ => Ok(Slot::Raw(payload.to_vec())),
            }
        }
        // Stats, meta and scheme are cheap and need cross-section
        // state (the reloaded store) the stream cannot provide.
        _ => Ok(Slot::Raw(payload.to_vec())),
    }
}

/// Takes an index slot out of the streamed-section map: the expected
/// pre-decoded variant, a raw fallback re-decoded here, a typed error
/// for a missing section, or a kind/storage mismatch otherwise.
macro_rules! take_idx {
    ($map:expr, $kind:expr, $variant:ident, $ty:ty) => {
        match $map.remove(&$kind) {
            Some(Slot::$variant(idx)) => Ok(idx),
            Some(Slot::Raw(bytes)) => codec(<$ty>::from_bytes(bytes.as_slice())),
            Some(_) => Err(wrong_filter(
                "index section was decoded under a different filter kind",
            )),
            None => Err(ContainerError::MissingSection { kind: $kind }),
        }
    };
}

/// The guidance error for a pre-container raw codec blob.
fn legacy_blob_error() -> ContainerError {
    ContainerError::Section {
        section: "container",
        offset: 0,
        detail: "file is a raw index codec blob (legacy format), not a .seal container; \
                 load it with the seal_index from_bytes compatibility entry points"
            .to_string(),
    }
}

/// Filter-side error for a kind/storage mismatch (cannot happen via
/// the public build paths; kept as a typed error rather than a panic).
fn wrong_filter(detail: &str) -> ContainerError {
    ContainerError::Section {
        section: "engine meta",
        offset: 0,
        detail: detail.to_string(),
    }
}

impl SealEngine {
    /// Serializes the engine into `.seal` container bytes (pure
    /// function of the engine — two calls return identical bytes).
    pub fn to_container_bytes(&self) -> Result<Vec<u8>, ContainerError> {
        Ok(self.container_writer()?.finish())
    }

    /// Saves the engine to `path` with the crash-safe protocol: the
    /// container is written to `<path>.tmp`, fsynced, then atomically
    /// renamed over `path` — a crash mid-save can leave a stale temp
    /// file behind but never a torn or half-written container at
    /// `path`. Returns the container size in bytes.
    pub fn save(&self, path: &Path) -> Result<u64, ContainerError> {
        self.container_writer()?.write_atomic(path)
    }

    fn container_writer(&self) -> Result<ContainerWriter, ContainerError> {
        let mut w = ContainerWriter::new();
        w.push_section(SECTION_STORE_STATS, encode_stats(self.store()));
        w.push_section(SECTION_STORE_OBJECTS, encode_store(self.store()));
        if let Some(dict) = self.store().dictionary() {
            w.push_section(SECTION_DICTIONARY, encode_dictionary(dict));
        }
        w.push_section(SECTION_ENGINE_META, encode_meta(self.kind(), self.config()));
        let f = self.filter();
        match self.kind() {
            FilterKind::Token => {
                let t: &TokenFilter = downcast(f, "TokenFilter")?;
                let idx = t
                    .index()
                    .ok_or_else(|| wrong_filter("Token kind with compressed storage"))?;
                w.push_section(SECTION_PRIMARY_INDEX, idx.to_bytes().as_slice().to_vec());
            }
            FilterKind::TokenCompressed => {
                let t: &TokenFilter = downcast(f, "TokenFilter")?;
                let idx = t
                    .compressed_index()
                    .ok_or_else(|| wrong_filter("TokenCompressed kind with arena storage"))?;
                w.push_section(SECTION_PRIMARY_INDEX, idx.to_bytes().as_slice().to_vec());
            }
            FilterKind::TokenBasic => {
                let t: &TokenFilterBasic = downcast(f, "TokenFilterBasic")?;
                w.push_section(
                    SECTION_PRIMARY_INDEX,
                    t.index().to_bytes().as_slice().to_vec(),
                );
            }
            FilterKind::Grid { .. } => {
                let g: &GridFilter = downcast(f, "GridFilter")?;
                w.push_section(
                    SECTION_PRIMARY_INDEX,
                    g.index().to_bytes().as_slice().to_vec(),
                );
            }
            FilterKind::HashHybrid { .. } => {
                let h: &HybridFilter = downcast(f, "HybridFilter")?;
                let idx = h
                    .index()
                    .ok_or_else(|| wrong_filter("HashHybrid kind with compressed storage"))?;
                w.push_section(SECTION_PRIMARY_INDEX, idx.to_bytes().as_slice().to_vec());
            }
            FilterKind::HashHybridCompressed { .. } => {
                let h: &HybridFilter = downcast(f, "HybridFilter")?;
                let idx = h
                    .compressed_index()
                    .ok_or_else(|| wrong_filter("HashHybridCompressed kind with arena storage"))?;
                w.push_section(SECTION_PRIMARY_INDEX, idx.to_bytes().as_slice().to_vec());
            }
            FilterKind::Hierarchical { .. } => {
                let h: &HierarchicalFilter = downcast(f, "HierarchicalFilter")?;
                w.push_section(SECTION_HIER_SCHEME, encode_scheme(h.scheme()));
                w.push_section(
                    SECTION_PRIMARY_INDEX,
                    h.index().to_bytes().as_slice().to_vec(),
                );
            }
            FilterKind::Adaptive { .. } => {
                let a: &AdaptiveFilter = downcast(f, "AdaptiveFilter")?;
                let token = a
                    .token_route()
                    .index()
                    .ok_or_else(|| wrong_filter("Adaptive token route with compressed storage"))?;
                w.push_section(SECTION_PRIMARY_INDEX, token.to_bytes().as_slice().to_vec());
                w.push_section(
                    SECTION_SECONDARY_INDEX,
                    a.grid_route().index().to_bytes().as_slice().to_vec(),
                );
            }
            // Cheap deterministic rebuilds: nothing beyond the store
            // and the meta tag to persist.
            FilterKind::KeywordFirst
            | FilterKind::SpatialFirst
            | FilterKind::IrTree { .. }
            | FilterKind::Naive => {}
        }
        Ok(w)
    }

    /// Loads an engine from a `.seal` container file
    /// ([`load_with_threads`](Self::load_with_threads) with a single
    /// verification worker).
    pub fn load(path: &Path) -> Result<SealEngine, ContainerError> {
        Self::load_with_threads(path, 1)
    }

    /// Loads an engine from a `.seal` container file, **streaming**:
    /// after the framing (footer, header, directory) is validated, each
    /// section is CRC-verified *and decoded* by one of `threads` pool
    /// workers (`0` = one per core) as soon as its bytes are read, so
    /// store/index decoding overlaps with the remaining file I/O
    /// instead of waiting for the whole file (see
    /// [`seal_index::stream_file`]). Derivable filters are rebuilt with
    /// the same pool. Input validation is identical to the buffered
    /// path: bad magic, truncation, bit flips, oversized counts and
    /// cross-section disagreements all surface as typed
    /// [`ContainerError`]s, never as panics.
    pub fn load_with_threads(path: &Path, threads: usize) -> Result<SealEngine, ContainerError> {
        // Legacy raw codec blobs share no framing with the container;
        // sniff the magic first for the guidance error.
        {
            use std::io::Read as _;
            let mut head = [0u8; 4];
            let n = std::fs::File::open(path)?.read(&mut head)?;
            if seal_index::container::looks_like_legacy_codec(&head[..n]) {
                return Err(legacy_blob_error());
            }
        }
        let sections = seal_index::stream_file(path, threads, decode_slot)?;
        Self::assemble_streamed(sections.into_iter().collect(), threads)
    }

    /// Reconstructs the engine from streamed-and-decoded section
    /// slots — the assembly half of [`load_with_threads`]
    /// (cross-section checks, filter construction), mirroring
    /// [`load_from_bytes`](Self::load_from_bytes) exactly.
    fn assemble_streamed(
        mut map: HashMap<u16, Slot>,
        threads: usize,
    ) -> Result<SealEngine, ContainerError> {
        let mut store = match map.remove(&SECTION_STORE_OBJECTS) {
            Some(Slot::Store(s)) => s,
            Some(Slot::Raw(b)) => decode_store(&b)?,
            Some(_) => return Err(wrong_filter("store section decoded as an index")),
            None => {
                return Err(ContainerError::MissingSection {
                    kind: SECTION_STORE_OBJECTS,
                })
            }
        };
        match map.remove(&SECTION_DICTIONARY) {
            Some(Slot::Dict(d)) => store.set_dictionary(Some(d)),
            Some(Slot::Raw(b)) => store.set_dictionary(Some(decode_dictionary(&b)?)),
            Some(_) => return Err(wrong_filter("dictionary section decoded as an index")),
            None => {}
        }
        let raw_or_missing = |slot: Option<Slot>, kind: u16| match slot {
            Some(Slot::Raw(b)) => Ok(b),
            Some(_) => Err(wrong_filter("metadata section decoded as an index")),
            None => Err(ContainerError::MissingSection { kind }),
        };
        let stats = raw_or_missing(map.remove(&SECTION_STORE_STATS), SECTION_STORE_STATS)?;
        check_stats(&stats, &store)?;
        let meta = raw_or_missing(map.remove(&SECTION_ENGINE_META), SECTION_ENGINE_META)?;
        let (kind, cfg) = decode_meta(&meta)?;
        let store = Arc::new(store);
        let opts = crate::BuildOpts::with_threads(threads);
        let filter: Box<dyn CandidateFilter> = match kind {
            FilterKind::Token => {
                let idx = take_idx!(map, SECTION_PRIMARY_INDEX, Single32, InvertedIndex<u32>)?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(TokenFilter::from_loaded_arena(store.clone(), cfg, idx))
            }
            FilterKind::TokenCompressed => {
                let idx = take_idx!(
                    map,
                    SECTION_PRIMARY_INDEX,
                    Comp32,
                    CompressedInvertedIndex<u32>
                )?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(TokenFilter::from_loaded_compressed(store.clone(), cfg, idx))
            }
            FilterKind::TokenBasic => {
                let idx = take_idx!(map, SECTION_PRIMARY_INDEX, Single32, InvertedIndex<u32>)?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(TokenFilterBasic::from_loaded(store.clone(), cfg, idx))
            }
            FilterKind::Grid { side } => {
                let idx = take_idx!(map, SECTION_PRIMARY_INDEX, Single64, InvertedIndex<u64>)?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(GridFilter::from_loaded(&store, side, cfg, idx))
            }
            FilterKind::HashHybrid { side, buckets } => {
                let idx = take_idx!(map, SECTION_PRIMARY_INDEX, Hybrid64, HybridIndex<u64>)?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(HybridFilter::from_loaded_arena(
                    store.clone(),
                    side,
                    bucket_scheme(buckets),
                    cfg,
                    idx,
                ))
            }
            FilterKind::HashHybridCompressed { side, buckets } => {
                let idx = take_idx!(
                    map,
                    SECTION_PRIMARY_INDEX,
                    CompHybrid64,
                    CompressedHybridIndex<u64>
                )?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(HybridFilter::from_loaded_compressed(
                    store.clone(),
                    side,
                    bucket_scheme(buckets),
                    cfg,
                    idx,
                ))
            }
            FilterKind::Hierarchical { max_level, budget } => {
                let scheme_bytes =
                    raw_or_missing(map.remove(&SECTION_HIER_SCHEME), SECTION_HIER_SCHEME)?;
                let scheme = decode_scheme(&scheme_bytes, &store, max_level, budget)?;
                let idx = take_idx!(map, SECTION_PRIMARY_INDEX, Hybrid128, HybridIndex<u128>)?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(HierarchicalFilter::from_loaded(
                    store.clone(),
                    cfg,
                    scheme,
                    idx,
                ))
            }
            FilterKind::Adaptive { side } => {
                let token = take_idx!(map, SECTION_PRIMARY_INDEX, Single32, InvertedIndex<u32>)?;
                check_ids(token.max_object_id(), store.len(), "primary index")?;
                let grid = take_idx!(map, SECTION_SECONDARY_INDEX, Single64, InvertedIndex<u64>)?;
                check_ids(grid.max_object_id(), store.len(), "secondary index")?;
                Box::new(AdaptiveFilter::from_loaded(
                    store.clone(),
                    cfg,
                    TokenFilter::from_loaded_arena(store.clone(), cfg, token),
                    GridFilter::from_loaded(&store, side, cfg, grid),
                ))
            }
            FilterKind::KeywordFirst
            | FilterKind::SpatialFirst
            | FilterKind::IrTree { .. }
            | FilterKind::Naive => {
                return Ok(SealEngine::build_with_opts(store, kind, cfg, opts));
            }
        };
        Ok(SealEngine::from_loaded_parts(store, filter, cfg, kind))
    }

    /// [`load_with_threads`](Self::load_with_threads) over bytes
    /// already in memory.
    pub fn load_from_bytes(bytes: &[u8], threads: usize) -> Result<SealEngine, ContainerError> {
        if seal_index::container::looks_like_legacy_codec(bytes) {
            return Err(legacy_blob_error());
        }
        let container = Container::parse_with_threads(bytes, threads)?;
        let mut store = decode_store(container.require(SECTION_STORE_OBJECTS)?)?;
        if let Some(payload) = container.section(SECTION_DICTIONARY) {
            store.set_dictionary(Some(decode_dictionary(payload)?));
        }
        check_stats(container.require(SECTION_STORE_STATS)?, &store)?;
        let (kind, cfg) = decode_meta(container.require(SECTION_ENGINE_META)?)?;
        let store = Arc::new(store);
        let opts = crate::BuildOpts::with_threads(threads);
        let filter: Box<dyn CandidateFilter> = match kind {
            FilterKind::Token => {
                let idx = codec(InvertedIndex::<u32>::from_bytes(
                    container.require(SECTION_PRIMARY_INDEX)?,
                ))?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(TokenFilter::from_loaded_arena(store.clone(), cfg, idx))
            }
            FilterKind::TokenCompressed => {
                let idx = codec(CompressedInvertedIndex::<u32>::from_bytes(
                    container.require(SECTION_PRIMARY_INDEX)?,
                ))?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(TokenFilter::from_loaded_compressed(store.clone(), cfg, idx))
            }
            FilterKind::TokenBasic => {
                let idx = codec(InvertedIndex::<u32>::from_bytes(
                    container.require(SECTION_PRIMARY_INDEX)?,
                ))?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(TokenFilterBasic::from_loaded(store.clone(), cfg, idx))
            }
            FilterKind::Grid { side } => {
                let idx = codec(InvertedIndex::<u64>::from_bytes(
                    container.require(SECTION_PRIMARY_INDEX)?,
                ))?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(GridFilter::from_loaded(&store, side, cfg, idx))
            }
            FilterKind::HashHybrid { side, buckets } => {
                let idx = codec(HybridIndex::<u64>::from_bytes(
                    container.require(SECTION_PRIMARY_INDEX)?,
                ))?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(HybridFilter::from_loaded_arena(
                    store.clone(),
                    side,
                    bucket_scheme(buckets),
                    cfg,
                    idx,
                ))
            }
            FilterKind::HashHybridCompressed { side, buckets } => {
                let idx = codec(CompressedHybridIndex::<u64>::from_bytes(
                    container.require(SECTION_PRIMARY_INDEX)?,
                ))?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(HybridFilter::from_loaded_compressed(
                    store.clone(),
                    side,
                    bucket_scheme(buckets),
                    cfg,
                    idx,
                ))
            }
            FilterKind::Hierarchical { max_level, budget } => {
                let scheme = decode_scheme(
                    container.require(SECTION_HIER_SCHEME)?,
                    &store,
                    max_level,
                    budget,
                )?;
                let idx = codec(HybridIndex::<u128>::from_bytes(
                    container.require(SECTION_PRIMARY_INDEX)?,
                ))?;
                check_ids(idx.max_object_id(), store.len(), "primary index")?;
                Box::new(HierarchicalFilter::from_loaded(
                    store.clone(),
                    cfg,
                    scheme,
                    idx,
                ))
            }
            FilterKind::Adaptive { side } => {
                let token = codec(InvertedIndex::<u32>::from_bytes(
                    container.require(SECTION_PRIMARY_INDEX)?,
                ))?;
                check_ids(token.max_object_id(), store.len(), "primary index")?;
                let grid = codec(InvertedIndex::<u64>::from_bytes(
                    container.require(SECTION_SECONDARY_INDEX)?,
                ))?;
                check_ids(grid.max_object_id(), store.len(), "secondary index")?;
                Box::new(AdaptiveFilter::from_loaded(
                    store.clone(),
                    cfg,
                    TokenFilter::from_loaded_arena(store.clone(), cfg, token),
                    GridFilter::from_loaded(&store, side, cfg, grid),
                ))
            }
            FilterKind::KeywordFirst
            | FilterKind::SpatialFirst
            | FilterKind::IrTree { .. }
            | FilterKind::Naive => {
                // Derivable filters rebuild from the (validated) store.
                return Ok(SealEngine::build_with_opts(store, kind, cfg, opts));
            }
        };
        Ok(SealEngine::from_loaded_parts(store, filter, cfg, kind))
    }
}

fn downcast<'a, T: 'static>(
    f: &'a dyn CandidateFilter,
    what: &'static str,
) -> Result<&'a T, ContainerError> {
    f.as_any()
        .and_then(|a| a.downcast_ref::<T>())
        .ok_or_else(|| wrong_filter(&format!("active filter is not a {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;

    fn engine(kind: FilterKind) -> SealEngine {
        let (store, _q) = figure1_store();
        SealEngine::build(Arc::new(store), kind)
    }

    #[test]
    fn container_bytes_are_deterministic() {
        let e = engine(FilterKind::seal_default());
        assert_eq!(
            e.to_container_bytes().unwrap(),
            e.to_container_bytes().unwrap()
        );
    }

    #[test]
    fn roundtrip_preserves_kind_config_and_answers() {
        let (store, q) = figure1_store();
        let e = SealEngine::build(Arc::new(store), FilterKind::seal_default());
        let bytes = e.to_container_bytes().unwrap();
        let loaded = SealEngine::load_from_bytes(&bytes, 1).unwrap();
        assert_eq!(loaded.kind(), e.kind());
        assert_eq!(loaded.config(), e.config());
        assert_eq!(loaded.store().len(), e.store().len());
        assert_eq!(
            loaded.search(&q).sorted().answers,
            e.search(&q).sorted().answers
        );
        // Save → load → save is byte-identical.
        assert_eq!(loaded.to_container_bytes().unwrap(), bytes);
    }

    #[test]
    fn legacy_codec_blob_is_rejected_with_guidance() {
        let e = engine(FilterKind::Token);
        let f: &TokenFilter = downcast(e.filter(), "TokenFilter").unwrap();
        let blob = f.index().unwrap().to_bytes();
        let err = SealEngine::load_from_bytes(blob.as_slice(), 1)
            .err()
            .expect("load must fail");
        let msg = err.to_string();
        assert!(msg.contains("legacy"), "unhelpful error: {msg}");
        // The compatibility entry point still reads the blob.
        assert!(InvertedIndex::<u32>::from_bytes(blob.as_slice()).is_ok());
    }

    #[test]
    fn oversized_counts_error_before_allocating() {
        // A store-objects section declaring u64::MAX objects.
        let mut payload = Vec::new();
        put_u64(&mut payload, 5); // vocab
        put_u64(&mut payload, u64::MAX); // objects
        let mut w = ContainerWriter::new();
        let e = engine(FilterKind::Token);
        w.push_section(SECTION_STORE_STATS, encode_stats(e.store()));
        w.push_section(SECTION_STORE_OBJECTS, payload);
        w.push_section(SECTION_ENGINE_META, encode_meta(e.kind(), e.config()));
        let bytes = w.finish();
        let err = SealEngine::load_from_bytes(&bytes, 1)
            .err()
            .expect("load must fail");
        assert!(matches!(err, ContainerError::Section { .. }), "{err}");
    }

    #[test]
    fn out_of_store_posting_ids_are_rejected() {
        // Rebuild the engine's container with a primary index whose
        // postings reference an object the store does not have.
        let e = engine(FilterKind::Token);
        let mut rogue: InvertedIndex<u32> = InvertedIndex::new();
        rogue.push(0, 999, 1.0);
        rogue.finalize();
        let mut w = ContainerWriter::new();
        w.push_section(SECTION_STORE_STATS, encode_stats(e.store()));
        w.push_section(SECTION_STORE_OBJECTS, encode_store(e.store()));
        w.push_section(SECTION_ENGINE_META, encode_meta(e.kind(), e.config()));
        w.push_section(SECTION_PRIMARY_INDEX, rogue.to_bytes().as_slice().to_vec());
        let err = SealEngine::load_from_bytes(&w.finish(), 1)
            .err()
            .expect("load must fail");
        assert!(
            err.to_string().contains("references object 999"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn stats_cross_check_detects_disagreement() {
        let e = engine(FilterKind::Token);
        let mut stats = encode_stats(e.store());
        stats[0] ^= 1; // object count now disagrees with the objects section
        let mut w = ContainerWriter::new();
        w.push_section(SECTION_STORE_STATS, stats);
        w.push_section(SECTION_STORE_OBJECTS, encode_store(e.store()));
        w.push_section(SECTION_ENGINE_META, encode_meta(e.kind(), e.config()));
        let f: &TokenFilter = downcast(e.filter(), "TokenFilter").unwrap();
        w.push_section(
            SECTION_PRIMARY_INDEX,
            f.index().unwrap().to_bytes().as_slice().to_vec(),
        );
        let err = SealEngine::load_from_bytes(&w.finish(), 1)
            .err()
            .expect("load must fail");
        assert!(err.to_string().contains("disagrees"), "{err}");
    }

    #[test]
    fn meta_roundtrips_every_kind_and_config() {
        let kinds = [
            FilterKind::Token,
            FilterKind::TokenCompressed,
            FilterKind::TokenBasic,
            FilterKind::Grid { side: 256 },
            FilterKind::HashHybrid {
                side: 512,
                buckets: None,
            },
            FilterKind::HashHybrid {
                side: 512,
                buckets: Some(4096),
            },
            FilterKind::HashHybridCompressed {
                side: 64,
                buckets: Some(7),
            },
            FilterKind::Hierarchical {
                max_level: 10,
                budget: 16,
            },
            FilterKind::KeywordFirst,
            FilterKind::SpatialFirst,
            FilterKind::IrTree { fanout: 32 },
            FilterKind::Adaptive { side: 128 },
            FilterKind::Naive,
        ];
        let configs = [
            SimilarityConfig::default(),
            SimilarityConfig {
                spatial: SpatialSimFn::Dice,
                textual: TextualSimFn::Cosine,
            },
            SimilarityConfig {
                spatial: SpatialSimFn::Jaccard,
                textual: TextualSimFn::Overlap,
            },
        ];
        for kind in kinds {
            for cfg in configs {
                let (k, c) = decode_meta(&encode_meta(kind, cfg)).unwrap();
                assert_eq!(k, kind);
                assert_eq!(c, cfg);
            }
        }
    }

    #[test]
    fn streaming_load_matches_buffered_for_every_kind() {
        let kinds = [
            FilterKind::Token,
            FilterKind::TokenCompressed,
            FilterKind::TokenBasic,
            FilterKind::Grid { side: 16 },
            FilterKind::HashHybrid {
                side: 16,
                buckets: None,
            },
            FilterKind::HashHybridCompressed {
                side: 16,
                buckets: Some(64),
            },
            FilterKind::Hierarchical {
                max_level: 4,
                budget: 4,
            },
            FilterKind::Adaptive { side: 16 },
            FilterKind::KeywordFirst,
        ];
        let dir = std::env::temp_dir();
        for (i, kind) in kinds.into_iter().enumerate() {
            let (store, q) = figure1_store();
            let e = SealEngine::build(Arc::new(store), kind);
            let path = dir.join(format!("seal-stream-load-{}-{i}.seal", std::process::id()));
            e.save(&path).expect("save");
            for threads in [1usize, 0] {
                let loaded = SealEngine::load_with_threads(&path, threads).expect("stream load");
                assert_eq!(loaded.kind(), e.kind());
                assert_eq!(
                    loaded.search(&q).sorted().answers,
                    e.search(&q).sorted().answers,
                    "streamed engine must answer identically ({kind:?})"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn streaming_load_survives_hostile_section_order() {
        // Meta pushed *after* the index section: the streaming decode
        // hook cannot see the filter kind mid-stream and must fall
        // back to raw bytes, decoded at assembly.
        let e = engine(FilterKind::Token);
        let f: &TokenFilter = downcast(e.filter(), "TokenFilter").unwrap();
        let mut w = ContainerWriter::new();
        w.push_section(SECTION_STORE_STATS, encode_stats(e.store()));
        w.push_section(SECTION_STORE_OBJECTS, encode_store(e.store()));
        if let Some(dict) = e.store().dictionary() {
            w.push_section(SECTION_DICTIONARY, encode_dictionary(dict));
        }
        w.push_section(
            SECTION_PRIMARY_INDEX,
            f.index().unwrap().to_bytes().as_slice().to_vec(),
        );
        w.push_section(SECTION_ENGINE_META, encode_meta(e.kind(), e.config()));
        let dir = std::env::temp_dir();
        let path = dir.join(format!("seal-stream-hostile-{}.seal", std::process::id()));
        std::fs::write(&path, w.finish()).expect("write reordered container");
        let loaded = SealEngine::load_with_threads(&path, 0).expect("hostile order still loads");
        assert_eq!(loaded.kind(), e.kind());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_load_rejects_legacy_blob_and_corruption() {
        let e = engine(FilterKind::Token);
        let f: &TokenFilter = downcast(e.filter(), "TokenFilter").unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("seal-stream-reject-{}.seal", std::process::id()));
        // A legacy raw codec blob gets the guidance error.
        std::fs::write(&path, f.index().unwrap().to_bytes().as_slice()).expect("write blob");
        let err = SealEngine::load(&path)
            .err()
            .expect("legacy blob must be rejected");
        assert!(err.to_string().contains("legacy"), "{err}");
        // A flipped payload bit surfaces as a section checksum error.
        let mut bytes = e.to_container_bytes().unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write corrupt");
        assert!(
            SealEngine::load_with_threads(&path, 0).is_err(),
            "corrupt container must fail the streaming load"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dictionary_roundtrips_and_rejects_duplicates() {
        let mut d = Dictionary::new();
        d.intern("coffee");
        d.intern("tea");
        d.intern("mocha");
        let bytes = encode_dictionary(&d);
        let back = decode_dictionary(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get("tea"), d.get("tea"));
        // Duplicate names cannot have come from a real dictionary.
        let mut forged = Vec::new();
        put_u64(&mut forged, 2);
        for _ in 0..2 {
            put_u32(&mut forged, 3);
            forged.extend_from_slice(b"tea");
        }
        assert!(decode_dictionary(&forged).is_err());
    }
}
