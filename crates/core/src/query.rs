//! The spatio-textual similarity query model (Definition 3).

use seal_geom::Rect;
use seal_text::{TokenId, TokenSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when constructing a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A threshold outside `(0, 1]`.
    ///
    /// The paper evaluates thresholds in `[0.1, 0.5]`; zero thresholds
    /// would make the signature filters incomplete (an object sharing
    /// *no* signature element with the query could still qualify), so
    /// they are rejected at construction.
    ThresholdOutOfRange {
        /// Name of the offending threshold ("spatial" or "textual").
        which: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::ThresholdOutOfRange { which, value } => {
                write!(f, "{which} threshold {value} must lie in (0, 1]")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A spatio-textual similarity search query
/// `q = (R, T, τ_R, τ_T)` (Definition 3): find all objects with
/// `simR(q,o) ≥ τ_R` **and** `simT(q,o) ≥ τ_T`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The query region `q.R`.
    pub region: Rect,
    /// The query token set `q.T`.
    pub tokens: TokenSet,
    /// Spatial similarity threshold `τ_R ∈ (0, 1]`.
    pub tau_spatial: f64,
    /// Textual similarity threshold `τ_T ∈ (0, 1]`.
    pub tau_textual: f64,
}

impl Query {
    /// Creates a query, validating the thresholds.
    pub fn new(
        region: Rect,
        tokens: TokenSet,
        tau_spatial: f64,
        tau_textual: f64,
    ) -> Result<Self, QueryError> {
        for (which, value) in [("spatial", tau_spatial), ("textual", tau_textual)] {
            if !(value > 0.0 && value <= 1.0) {
                return Err(QueryError::ThresholdOutOfRange { which, value });
            }
        }
        Ok(Query {
            region,
            tokens,
            tau_spatial,
            tau_textual,
        })
    }

    /// Builder-style constructor from raw token ids.
    pub fn with_token_ids<I: IntoIterator<Item = TokenId>>(
        region: Rect,
        ids: I,
        tau_spatial: f64,
        tau_textual: f64,
    ) -> Result<Self, QueryError> {
        Query::new(region, TokenSet::from_ids(ids), tau_spatial, tau_textual)
    }

    /// A copy of this query with different thresholds (the benchmark
    /// sweeps reuse one workload across thresholds).
    pub fn with_thresholds(&self, tau_spatial: f64, tau_textual: f64) -> Result<Self, QueryError> {
        Query::new(self.region, self.tokens.clone(), tau_spatial, tau_textual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Rect {
        Rect::new(0.0, 0.0, 10.0, 10.0).unwrap()
    }

    #[test]
    fn valid_query() {
        let q = Query::with_token_ids(region(), [TokenId(1)], 0.25, 0.3).unwrap();
        assert_eq!(q.tau_spatial, 0.25);
        assert_eq!(q.tau_textual, 0.3);
        assert_eq!(q.tokens.len(), 1);
    }

    #[test]
    fn rejects_zero_and_out_of_range_thresholds() {
        for (tr, tt) in [(0.0, 0.3), (0.3, 0.0), (-0.1, 0.3), (0.3, 1.5)] {
            let e = Query::with_token_ids(region(), [TokenId(1)], tr, tt).unwrap_err();
            assert!(matches!(e, QueryError::ThresholdOutOfRange { .. }));
        }
    }

    #[test]
    fn boundary_threshold_one_is_allowed() {
        assert!(Query::with_token_ids(region(), [TokenId(1)], 1.0, 1.0).is_ok());
    }

    #[test]
    fn with_thresholds_preserves_content() {
        let q = Query::with_token_ids(region(), [TokenId(1), TokenId(2)], 0.2, 0.2).unwrap();
        let q2 = q.with_thresholds(0.5, 0.4).unwrap();
        assert_eq!(q2.tokens, q.tokens);
        assert_eq!(q2.region, q.region);
        assert_eq!(q2.tau_spatial, 0.5);
    }

    #[test]
    fn error_display() {
        let e = Query::with_token_ids(region(), [TokenId(1)], 0.0, 0.5).unwrap_err();
        assert!(e.to_string().contains("spatial"));
    }
}
