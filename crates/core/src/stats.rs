//! Per-query search statistics.
//!
//! The paper's cost model (Section 4.3) decomposes query cost into
//! `π1 · (postings retrieved)` + `π2 · (candidates verified)`; these
//! counters expose exactly those quantities so the benchmarks can report
//! both wall-clock times and the machine-independent counts.

use std::time::Duration;

/// Counters collected while answering one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Inverted lists probed (`|Sp(q)|` for single filters; pairs for
    /// hybrid filters).
    pub lists_probed: usize,
    /// Postings retrieved across all probed lists (the `Σ|Ic(s)|` of the
    /// filter-cost term).
    pub postings_scanned: usize,
    /// Candidates produced by the filter step (`|C|`).
    pub candidates: usize,
    /// Final answers after verification (`|A|`).
    pub results: usize,
    /// Tree nodes visited (IR-tree baseline only).
    pub nodes_visited: usize,
    /// Shards probed by a sharded engine (0 for single-engine
    /// searches; the fan-out numerator of `bench_shard`'s
    /// shards-touched / N ratio).
    pub shards_probed: usize,
    /// Wall-clock time of the filter step.
    pub filter_time: Duration,
    /// Wall-clock time of the verification step.
    pub verify_time: Duration,
    /// Wall-clock time a sharded engine spent merging and remapping
    /// per-shard answers (zero for single-engine searches).
    pub merge_time: Duration,
}

impl SearchStats {
    /// A zeroed stats record.
    pub fn new() -> Self {
        SearchStats::default()
    }

    /// Total elapsed time (filter + verification).
    pub fn total_time(&self) -> Duration {
        self.filter_time + self.verify_time
    }

    /// Accumulates another record into this one (for workload totals).
    pub fn accumulate(&mut self, other: &SearchStats) {
        self.lists_probed += other.lists_probed;
        self.postings_scanned += other.postings_scanned;
        self.candidates += other.candidates;
        self.results += other.results;
        self.nodes_visited += other.nodes_visited;
        self.shards_probed += other.shards_probed;
        self.filter_time += other.filter_time;
        self.verify_time += other.verify_time;
        self.merge_time += other.merge_time;
    }

    /// The paper's cost-model estimate `π1·postings + π2·candidates`.
    pub fn modelled_cost(&self, pi1: f64, pi2: f64) -> f64 {
        pi1 * self.postings_scanned as f64 + pi2 * self.candidates as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_all_fields() {
        let mut a = SearchStats {
            lists_probed: 1,
            postings_scanned: 10,
            candidates: 5,
            results: 2,
            nodes_visited: 3,
            shards_probed: 2,
            filter_time: Duration::from_millis(4),
            verify_time: Duration::from_millis(6),
            merge_time: Duration::from_millis(1),
        };
        let b = a.clone();
        a.accumulate(&b);
        assert_eq!(a.lists_probed, 2);
        assert_eq!(a.postings_scanned, 20);
        assert_eq!(a.candidates, 10);
        assert_eq!(a.results, 4);
        assert_eq!(a.nodes_visited, 6);
        assert_eq!(a.shards_probed, 4);
        assert_eq!(a.merge_time, Duration::from_millis(2));
        assert_eq!(a.total_time(), Duration::from_millis(20));
    }

    #[test]
    fn modelled_cost() {
        let s = SearchStats {
            postings_scanned: 6,
            candidates: 4,
            ..SearchStats::default()
        };
        // The Figure 5 example: cost(q) = 6π1 + 4π2.
        assert_eq!(s.modelled_cost(2.0, 3.0), 24.0);
    }
}
