//! The IR-tree baseline (Section 2.3): an R-tree whose every node
//! carries the token set of its subtree ("an inverted file which maps a
//! token to the child nodes containing the token"). Traversal descends
//! into a node only if
//!
//! 1. the spatial overlap bound `|q.R ∩ n.R| ≥ c_R` holds, and
//! 2. the textual overlap bound `Σ_{t ∈ q.T ∩ n.T} w(t) ≥ c_T` holds,
//!
//! where `c_R = τ_R·|q.R|` and `c_T = τ_T·Σ_{t∈q.T} w(t)` are the same
//! thresholds SEAL derives (Sections 3.2 and 4.1). The paper shows this
//! prunes poorly — high internal nodes have huge MBRs and near-complete
//! vocabularies — and costs `H×` token storage (Table 1's 2.37 GB).

use crate::filters::{CandidateFilter, QueryContext};
use crate::{ObjectId, ObjectStore, Query, SearchStats};
use seal_rtree::{Descend, NodeId, NodeKind, RTree, RTreeConfig};
use seal_text::{TokenId, TokenSet, TokenWeights};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The IR-tree: R-tree + per-node subtree token sets.
pub struct IrTreeBaseline {
    store: Arc<ObjectStore>,
    cfg: crate::SimilarityConfig,
    tree: RTree<u32>,
    /// Subtree token union per node — the IR-tree's per-node inverted
    /// file, stored as a set (we only need membership for the bound).
    node_tokens: HashMap<NodeId, TokenSet>,
    /// Total tokens stored across all nodes (the `H×` blowup Table 1
    /// reports).
    stored_tokens: usize,
    /// Total postings of the per-node inverted files: each node's file
    /// maps a token to the child nodes (or objects, at leaves)
    /// containing it, so a node contributes one posting per
    /// (token, child) pair. This is what a real IR-tree stores on disk
    /// and why Table 1's IR-tree dwarfs every flat index.
    stored_postings: usize,
}

impl IrTreeBaseline {
    /// Bulk-loads the R-tree and builds per-node token unions.
    pub fn build(store: Arc<ObjectStore>) -> Self {
        Self::build_with_fanout(store, RTreeConfig::default().max_entries)
    }

    /// Builds with an explicit fan-out (the paper's example uses 3).
    pub fn build_with_fanout(store: Arc<ObjectStore>, fanout: usize) -> Self {
        Self::build_with_config(store, fanout, crate::SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration.
    pub fn build_with_config(
        store: Arc<ObjectStore>,
        fanout: usize,
        cfg: crate::SimilarityConfig,
    ) -> Self {
        let items: Vec<(seal_geom::Rect, u32)> =
            store.iter().map(|(id, o)| (o.region, id.0)).collect();
        let tree = RTree::bulk_load(items, RTreeConfig::with_fanout(fanout));
        let mut node_tokens: HashMap<NodeId, TokenSet> = HashMap::new();
        let mut stored = 0usize;
        let mut postings = 0usize;
        if let Some(root) = tree.root() {
            build_token_unions(
                &tree,
                &store,
                root,
                &mut node_tokens,
                &mut stored,
                &mut postings,
            );
        }
        IrTreeBaseline {
            store,
            cfg,
            tree,
            node_tokens,
            stored_tokens: stored,
            stored_postings: postings,
        }
    }

    /// The underlying tree (diagnostics).
    pub fn tree(&self) -> &RTree<u32> {
        &self.tree
    }

    /// Total tokens stored across nodes.
    pub fn stored_tokens(&self) -> usize {
        self.stored_tokens
    }

    /// Total (token, child) postings across all per-node inverted files.
    pub fn stored_postings(&self) -> usize {
        self.stored_postings
    }
}

fn build_token_unions(
    tree: &RTree<u32>,
    store: &ObjectStore,
    node: NodeId,
    out: &mut HashMap<NodeId, TokenSet>,
    stored: &mut usize,
    postings: &mut usize,
) -> TokenSet {
    let set = match tree.kind(node) {
        NodeKind::Leaf(entries) => {
            let mut ids: Vec<TokenId> = Vec::new();
            for e in entries {
                let tokens = &store.get(ObjectId(e.value)).tokens;
                // Leaf inverted file: token -> object, one posting per
                // (token, entry) pair.
                *postings += tokens.len();
                ids.extend(tokens.iter());
            }
            TokenSet::from_ids(ids)
        }
        NodeKind::Internal(children) => {
            let mut ids: Vec<TokenId> = Vec::new();
            for &c in children.iter() {
                let child_set = build_token_unions(tree, store, c, out, stored, postings);
                // Internal inverted file: token -> child node, one
                // posting per (token, child) pair.
                *postings += child_set.len();
                ids.extend(child_set.iter());
            }
            TokenSet::from_ids(ids)
        }
    };
    *stored += set.len();
    out.insert(node, set.clone());
    set
}

impl CandidateFilter for IrTreeBaseline {
    fn name(&self) -> &'static str {
        "IR-Tree"
    }

    fn candidates_into(&self, q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats) {
        let start = Instant::now();
        let cfg = self.cfg;
        let c_r = crate::signatures::relax(cfg.spatial_threshold(q));
        let c_t = crate::signatures::relax(cfg.textual_threshold(q, self.store.weights()));
        let weights = self.store.weights();
        let region = q.region;
        ctx.candidates.clear();
        let out = &mut ctx.candidates;
        let visited = self.tree.traverse(
            |id| {
                // Spatial bound: the node's MBR must be able to supply
                // c_R of overlap.
                if self.tree.mbr(id).intersection_area(&region) < c_r {
                    return Descend::No;
                }
                // Textual bound: the subtree vocabulary must be able to
                // supply c_T of intersection weight.
                let node_set = &self.node_tokens[&id];
                let overlap_weight: f64 = q
                    .tokens
                    .intersection(node_set)
                    .map(|t| weights.weight(t))
                    .sum();
                if overlap_weight < c_t {
                    return Descend::No;
                }
                Descend::Yes
            },
            |_, entries| {
                for e in entries {
                    stats.postings_scanned += 1;
                    if e.rect.intersection_area(&region) >= c_r {
                        out.push(ObjectId(e.value));
                    }
                }
            },
        );
        stats.nodes_visited += visited;
        stats.filter_time += start.elapsed();
    }

    fn index_bytes(&self) -> usize {
        // Tree MBRs + the per-node inverted files. A file posting is a
        // (token, child-pointer) pair; token-set membership bitmaps are
        // the `stored_tokens` term.
        self.tree.stats().size_bytes
            + self.stored_postings
                * (std::mem::size_of::<TokenId>() + std::mem::size_of::<NodeId>())
            + self.stored_tokens * std::mem::size_of::<TokenId>()
            + self.node_tokens.len() * std::mem::size_of::<TokenSet>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::{naive_search, verify};
    use crate::SimilarityConfig;

    #[test]
    fn irtree_finds_all_answers() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        // Fan-out 3 matches Figure 2's example tree.
        let f = IrTreeBaseline::build_with_fanout(store.clone(), 3);
        for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.5, 0.5)] {
            let q = q0.with_thresholds(tr, tt).unwrap();
            let mut stats = SearchStats::new();
            let cands = f.candidates(&q, &mut stats);
            let answers = naive_search(&store, &cfg, &q);
            let mut vstats = SearchStats::new();
            assert_eq!(verify(&store, &cfg, &q, &cands, &mut vstats), answers);
            assert!(stats.nodes_visited >= 1);
        }
    }

    #[test]
    fn token_blowup_is_height_bounded() {
        // Every object token is stored at most H times (once per level).
        let (store, _q) = figure1_store();
        let store = Arc::new(store);
        let f = IrTreeBaseline::build_with_fanout(store.clone(), 3);
        let object_tokens: usize = store.objects().iter().map(|o| o.tokens.len()).sum();
        assert!(f.stored_tokens() <= object_tokens * f.tree().height());
        assert!(
            f.stored_tokens() >= object_tokens.min(5),
            "unions are non-trivial"
        );
    }

    #[test]
    fn leaf_candidates_are_exactly_the_overlap_qualifiers() {
        // The IR-tree's final filter is the exact overlap bound
        // |q.R ∩ o.R| ≥ c_R, so its candidates must be exactly the
        // objects passing that bound (node pruning must not lose any).
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let ir = IrTreeBaseline::build_with_fanout(store.clone(), 3);
        let mut stats = SearchStats::new();
        let mut got = ir.candidates(&q, &mut stats);
        got.sort_unstable();
        let c_r = SimilarityConfig::default().spatial_threshold(&q);
        let mut expect: Vec<ObjectId> = store
            .iter()
            .filter(|(_, o)| q.region.intersection_area(&o.region) >= c_r)
            .map(|(id, _)| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn accessors() {
        let (store, _q) = figure1_store();
        let f = IrTreeBaseline::build(Arc::new(store));
        assert_eq!(f.name(), "IR-Tree");
        assert!(f.index_bytes() > 0);
        assert!(f.tree().len() == 7);
    }
}
