//! The paper's baseline methods (Section 2.3): **Keyword-first**,
//! **Spatial-first**, and the **IR-tree** extension of Cong et al.
//!
//! All three implement [`CandidateFilter`](crate::filters::CandidateFilter)
//! so the engine and the benchmarks drive them exactly like SEAL's
//! filters; their candidate sets are the supersets their first stage
//! produces, and `Sig-Verify` finishes the job.

mod irtree;
mod keyword_first;
mod spatial_first;

pub use irtree::IrTreeBaseline;
pub use keyword_first::KeywordFirst;
pub use spatial_first::SpatialFirst;
