//! The Keyword-first baseline (Section 2.3): inverted index from tokens
//! to objects; compute the exact textual similarity of every object
//! sharing a token with the query, keep those with `simT ≥ τ_T`, verify
//! the spatial predicate afterwards.

use crate::filters::{CandidateFilter, QueryContext};
use crate::{ObjectId, ObjectStore, Query, SearchStats};
use seal_index::InvertedIndex;
use seal_text::TokenWeights;
use std::sync::Arc;
use std::time::Instant;

/// Keyword-first: exact textual filtering, no spatial pruning.
pub struct KeywordFirst {
    store: Arc<ObjectStore>,
    cfg: crate::SimilarityConfig,
    index: InvertedIndex<u32>,
    /// Σ_{t ∈ o.T} w(t) per object, for the Jaccard denominator.
    object_weights: Vec<f64>,
    empty_token_objects: Vec<ObjectId>,
}

impl KeywordFirst {
    /// Builds the token inverted index (postings carry token weights).
    pub fn build(store: Arc<ObjectStore>) -> Self {
        Self::build_with_config(store, crate::SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration: the exact
    /// first-stage test evaluates the configured textual function.
    pub fn build_with_config(store: Arc<ObjectStore>, cfg: crate::SimilarityConfig) -> Self {
        let mut index: InvertedIndex<u32> = InvertedIndex::new();
        let mut empty = Vec::new();
        let mut object_weights = Vec::with_capacity(store.len());
        for (id, o) in store.iter() {
            object_weights.push(store.weights().set_weight(&o.tokens));
            if o.tokens.is_empty() {
                empty.push(id);
                continue;
            }
            for t in o.tokens.iter() {
                index.push(t.0, id.0, store.weights().weight(t));
            }
        }
        index.finalize();
        KeywordFirst {
            store,
            cfg,
            index,
            object_weights,
            empty_token_objects: empty,
        }
    }
}

impl CandidateFilter for KeywordFirst {
    fn name(&self) -> &'static str {
        "Keyword"
    }

    fn candidates_into(&self, q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats) {
        let start = Instant::now();
        ctx.candidates.clear();
        if q.tokens.is_empty() {
            ctx.candidates.extend_from_slice(&self.empty_token_objects);
            stats.filter_time += start.elapsed();
            return;
        }
        let w_q = self.store.weights().set_weight(&q.tokens);
        ctx.acc.begin(self.store.len());
        ctx.touched.clear();
        for t in q.tokens.iter() {
            stats.lists_probed += 1;
            if let Some(list) = self.index.list(&t.0) {
                stats.postings_scanned += list.len();
                for (&o, &w) in list.ids.iter().zip(list.bounds) {
                    ctx.acc.add(o, w, &mut ctx.touched); // = w(t)
                }
            }
        }
        for &o in &ctx.touched {
            let inter = ctx.acc.sum(o);
            let w_o = self.object_weights[o as usize];
            let sim = textual_sim_from_components(self.cfg.textual, inter, w_q, w_o);
            if sim >= crate::signatures::relax(q.tau_textual) {
                ctx.candidates.push(ObjectId(o));
            }
        }
        stats.filter_time += start.elapsed();
    }

    fn index_bytes(&self) -> usize {
        self.index.size_bytes() + self.object_weights.len() * std::mem::size_of::<f64>()
    }
}

/// Evaluates a textual similarity function from the accumulated
/// intersection weight and the two set weights (the keyword-first
/// filter never materializes the intersection set).
fn textual_sim_from_components(
    f: seal_text::similarity::TextualSimFn,
    inter: f64,
    w_q: f64,
    w_o: f64,
) -> f64 {
    use seal_text::similarity::TextualSimFn;
    let safe = |num: f64, den: f64| if den <= 0.0 { 1.0 } else { num / den };
    match f {
        TextualSimFn::Jaccard => safe(inter, w_q + w_o - inter),
        TextualSimFn::Dice => safe(2.0 * inter, w_q + w_o),
        TextualSimFn::Cosine => safe(inter, (w_q * w_o).sqrt()),
        TextualSimFn::Overlap => safe(inter, w_q.min(w_o)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::{naive_search, verify};
    use crate::SimilarityConfig;

    #[test]
    fn keyword_first_finds_all_answers() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        let f = KeywordFirst::build(store.clone());
        for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.5, 0.5)] {
            let q = q0.with_thresholds(tr, tt).unwrap();
            let mut stats = SearchStats::new();
            let cands = f.candidates(&q, &mut stats);
            let answers = naive_search(&store, &cfg, &q);
            let mut vstats = SearchStats::new();
            assert_eq!(verify(&store, &cfg, &q, &cands, &mut vstats), answers);
        }
    }

    #[test]
    fn candidates_have_exact_textual_similarity() {
        // Keyword-first's first stage *is* the textual predicate: its
        // candidates must equal the τT-qualifying objects exactly.
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let f = KeywordFirst::build(store.clone());
        let cfg = SimilarityConfig::default();
        let mut stats = SearchStats::new();
        let mut got = f.candidates(&q, &mut stats);
        got.sort_unstable();
        let mut expect: Vec<ObjectId> = store
            .iter()
            .filter(|(_, o)| cfg.textual_sim(&q, o, store.weights()) >= q.tau_textual)
            .map(|(id, _)| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn scans_full_lists() {
        // No threshold bounds: every posting of every query token's list
        // is read — this is exactly the inefficiency SEAL removes.
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let f = KeywordFirst::build(store.clone());
        let mut stats = SearchStats::new();
        let _ = f.candidates(&q, &mut stats);
        let full: usize = q.tokens.iter().map(|t| f.index.list_len(&t.0)).sum();
        assert_eq!(stats.postings_scanned, full);
        assert_eq!(f.name(), "Keyword");
    }
}
