//! The Spatial-first baseline (Section 2.3): an R-tree range search
//! computes the exact spatial similarity of every object intersecting
//! the query region, keeps those with `simR ≥ τ_R`, and verifies the
//! textual predicate afterwards.

use crate::filters::{CandidateFilter, QueryContext};
use crate::{ObjectId, ObjectStore, Query, SearchStats};

use seal_rtree::{Descend, RTree, RTreeConfig};
use std::sync::Arc;
use std::time::Instant;

/// Spatial-first: exact spatial filtering via R-tree, no textual
/// pruning.
pub struct SpatialFirst {
    cfg: crate::SimilarityConfig,
    tree: RTree<u32>,
}

impl SpatialFirst {
    /// Bulk-loads the R-tree over the store's regions.
    pub fn build(store: Arc<ObjectStore>) -> Self {
        Self::build_with_config(store, crate::SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration: the exact
    /// first-stage test evaluates the configured spatial function.
    pub fn build_with_config(store: Arc<ObjectStore>, cfg: crate::SimilarityConfig) -> Self {
        let items: Vec<(seal_geom::Rect, u32)> =
            store.iter().map(|(id, o)| (o.region, id.0)).collect();
        let tree = RTree::bulk_load(items, RTreeConfig::default());
        SpatialFirst { cfg, tree }
    }

    /// The underlying R-tree (diagnostics).
    pub fn tree(&self) -> &RTree<u32> {
        &self.tree
    }
}

impl CandidateFilter for SpatialFirst {
    fn name(&self) -> &'static str {
        "Spatial"
    }

    fn candidates_into(&self, q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats) {
        let start = Instant::now();
        ctx.candidates.clear();
        let out = &mut ctx.candidates;
        let region = q.region;
        let tau = crate::signatures::relax(q.tau_spatial);
        let visited = self.tree.traverse(
            |id| {
                if self.tree.mbr(id).intersects(&region) {
                    Descend::Yes
                } else {
                    Descend::No
                }
            },
            |_, entries| {
                for e in entries {
                    stats.postings_scanned += 1;
                    if self.cfg.spatial.eval(&e.rect, &region) >= tau {
                        out.push(ObjectId(e.value));
                    }
                }
            },
        );
        stats.nodes_visited += visited;
        stats.filter_time += start.elapsed();
    }

    fn index_bytes(&self) -> usize {
        self.tree.stats().size_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::{naive_search, verify};
    use crate::SimilarityConfig;

    #[test]
    fn spatial_first_finds_all_answers() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        let f = SpatialFirst::build(store.clone());
        for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.5, 0.5), (0.95, 0.95)] {
            let q = q0.with_thresholds(tr, tt).unwrap();
            let mut stats = SearchStats::new();
            let cands = f.candidates(&q, &mut stats);
            let answers = naive_search(&store, &cfg, &q);
            let mut vstats = SearchStats::new();
            assert_eq!(verify(&store, &cfg, &q, &cands, &mut vstats), answers);
        }
    }

    #[test]
    fn candidates_are_exactly_spatial_matches() {
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let f = SpatialFirst::build(store.clone());
        let cfg = SimilarityConfig::default();
        let mut stats = SearchStats::new();
        let mut got = f.candidates(&q, &mut stats);
        got.sort_unstable();
        let mut expect: Vec<ObjectId> = store
            .iter()
            .filter(|(_, o)| cfg.spatial_sim(&q, o) >= q.tau_spatial)
            .map(|(id, _)| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert!(stats.nodes_visited >= 1);
        assert_eq!(f.name(), "Spatial");
        assert!(f.index_bytes() > 0);
    }
}
