//! The no-op filter: every object is a candidate. Exists so the engine
//! can run pure `Sig-Verify` as a baseline and so tests can price
//! filtering against not filtering.

use crate::filters::{CandidateFilter, QueryContext};
use crate::{ObjectStore, Query, SearchStats};
use std::sync::Arc;
use std::time::Instant;

/// Trivial filter returning all object ids.
pub struct NaiveFilter {
    store: Arc<ObjectStore>,
}

impl NaiveFilter {
    /// Wraps a store.
    pub fn new(store: Arc<ObjectStore>) -> Self {
        NaiveFilter { store }
    }
}

impl CandidateFilter for NaiveFilter {
    fn name(&self) -> &'static str {
        "NaiveScan"
    }

    fn candidates_into(&self, _q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats) {
        let start = Instant::now();
        ctx.candidates.clear();
        ctx.candidates.extend(self.store.iter().map(|(id, _)| id));
        stats.filter_time += start.elapsed();
    }

    fn index_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;

    #[test]
    fn returns_everything() {
        let (store, q) = figure1_store();
        let f = NaiveFilter::new(Arc::new(store));
        let mut stats = SearchStats::new();
        assert_eq!(f.candidates(&q, &mut stats).len(), 7);
        assert_eq!(f.index_bytes(), 0);
        assert_eq!(f.name(), "NaiveScan");
    }
}
