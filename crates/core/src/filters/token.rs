//! Textual filtering: `Sig-Filter+` on token signatures (the paper's
//! **TokenFilter**) and the basic `Sig-Filter` ablation.

use crate::filters::{CandidateFilter, QueryContext};
use crate::signatures::textual::TextualSignature;
use crate::{ObjectId, ObjectStore, Query, SearchStats};
use seal_index::{CompressedInvertedIndex, InvertedIndex};
use seal_text::TokenWeights;
use std::sync::Arc;
use std::time::Instant;

/// How a filter stores its posting lists: the uncompressed CSR arena,
/// or the compressed arena served in place (quantized bound columns +
/// codec-encoded ids — block-packed by default — decoded through the
/// `QueryContext` scratch).
enum TokenStorage {
    Arena(InvertedIndex<u32>),
    Compressed(CompressedInvertedIndex<u32>),
}

/// `Sig-Filter+` with textual signatures: token inverted lists with
/// Lemma 3 threshold bounds, probed only for the query's Lemma 2
/// prefix.
///
/// Two serving modes share the probe logic: the uncompressed CSR
/// arena ([`TokenFilter::build`]) returns qualifying prefixes as
/// slices of the arena; the compressed arena
/// ([`TokenFilter::build_compressed`]) binary-searches the quantized
/// bound column in place and decodes only the qualifying prefix into
/// the caller's [`QueryContext`] scratch. Both are allocation-free on
/// a warm context; the compressed mode trades ~4× smaller lists for
/// the prefix decode and a superset-only candidate guarantee (bounds
/// round up by at most one quantization step — verification removes
/// the extras).
pub struct TokenFilter {
    store: Arc<ObjectStore>,
    cfg: crate::SimilarityConfig,
    storage: TokenStorage,
    /// Objects with empty token sets: they can only match queries whose
    /// token sets are also empty (simT = 1 by convention), and inverted
    /// lists never enumerate them.
    empty_token_objects: Vec<ObjectId>,
}

impl TokenFilter {
    /// Builds the `TokenInv` index over a store (default similarity
    /// configuration).
    pub fn build(store: Arc<ObjectStore>) -> Self {
        Self::build_with_config(store, crate::SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration: the signature
    /// thresholds `c_T` are derived from the configured textual
    /// function, which keeps the filter a safe superset for Dice /
    /// Cosine deployments too.
    pub fn build_with_config(store: Arc<ObjectStore>, cfg: crate::SimilarityConfig) -> Self {
        Self::build_with_opts(store, cfg, crate::BuildOpts::default())
    }

    /// Builds with explicit similarity configuration and build options
    /// (`BuildOpts::threads` parallelizes the finalize-time group
    /// sorts; the index contents are identical for every thread
    /// count).
    pub fn build_with_opts(
        store: Arc<ObjectStore>,
        cfg: crate::SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Self {
        let (index, empty) = Self::build_index(&store, opts);
        TokenFilter {
            store,
            cfg,
            storage: TokenStorage::Arena(index),
            empty_token_objects: empty,
        }
    }

    /// Builds the compressed serving mode (default configuration).
    pub fn build_compressed(store: Arc<ObjectStore>) -> Self {
        Self::build_compressed_with_config(store, crate::SimilarityConfig::default())
    }

    /// Builds the compressed serving mode: the same finalized CSR
    /// index, folded into one compressed arena and queried in place.
    pub fn build_compressed_with_config(
        store: Arc<ObjectStore>,
        cfg: crate::SimilarityConfig,
    ) -> Self {
        Self::build_compressed_with_opts(store, cfg, crate::BuildOpts::default())
    }

    /// Compressed serving mode with explicit build options: the
    /// uncompressed CSR build (finalize sorts fanned out over
    /// `opts.threads`) feeds the arena compressor unchanged.
    pub fn build_compressed_with_opts(
        store: Arc<ObjectStore>,
        cfg: crate::SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Self {
        let (index, empty) = Self::build_index(&store, opts);
        TokenFilter {
            store,
            cfg,
            storage: TokenStorage::Compressed(CompressedInvertedIndex::compress(&index)),
            empty_token_objects: empty,
        }
    }

    /// Reassembles an arena-mode filter around a loaded index. The
    /// empty-token list is recomputed from the store (it is a pure
    /// function of it), so only the index itself needs persisting.
    pub(crate) fn from_loaded_arena(
        store: Arc<ObjectStore>,
        cfg: crate::SimilarityConfig,
        index: InvertedIndex<u32>,
    ) -> Self {
        let empty = crate::filters::empty_token_objects(&store);
        TokenFilter {
            store,
            cfg,
            storage: TokenStorage::Arena(index),
            empty_token_objects: empty,
        }
    }

    /// Reassembles a compressed-mode filter around a loaded index.
    pub(crate) fn from_loaded_compressed(
        store: Arc<ObjectStore>,
        cfg: crate::SimilarityConfig,
        index: CompressedInvertedIndex<u32>,
    ) -> Self {
        let empty = crate::filters::empty_token_objects(&store);
        TokenFilter {
            store,
            cfg,
            storage: TokenStorage::Compressed(index),
            empty_token_objects: empty,
        }
    }

    fn build_index(
        store: &ObjectStore,
        opts: crate::BuildOpts,
    ) -> (InvertedIndex<u32>, Vec<ObjectId>) {
        let mut index: InvertedIndex<u32> = InvertedIndex::new();
        let mut empty = Vec::new();
        for (id, o) in store.iter() {
            if o.tokens.is_empty() {
                empty.push(id);
                continue;
            }
            let sig = TextualSignature::build(&o.tokens, store.weights(), store.token_order());
            for (elem, bound) in sig.elements_with_bounds() {
                index.push(elem.token.0, id.0, bound);
            }
        }
        index.finalize_with_threads(opts.threads);
        (index, empty)
    }

    /// The uncompressed inverted index, when serving from the CSR
    /// arena (diagnostics; `None` in compressed mode).
    pub fn index(&self) -> Option<&InvertedIndex<u32>> {
        match &self.storage {
            TokenStorage::Arena(i) => Some(i),
            TokenStorage::Compressed(_) => None,
        }
    }

    /// The compressed index, when serving in place (`None` in arena
    /// mode).
    pub fn compressed_index(&self) -> Option<&CompressedInvertedIndex<u32>> {
        match &self.storage {
            TokenStorage::Arena(_) => None,
            TokenStorage::Compressed(c) => Some(c),
        }
    }

    /// `|I_c(token)|` — the qualifying-prefix length, costed without
    /// decoding anything (the §4.3 cost-model probe; used by the
    /// adaptive router). Works in both serving modes.
    pub fn qualifying_len(&self, token: u32, c: f64) -> usize {
        match &self.storage {
            TokenStorage::Arena(i) => i.qualifying_len(&token, c),
            TokenStorage::Compressed(i) => i.qualifying_len(&token, c),
        }
    }
}

impl CandidateFilter for TokenFilter {
    fn name(&self) -> &'static str {
        match &self.storage {
            TokenStorage::Arena(_) => "TokenFilter",
            TokenStorage::Compressed(_) => "TokenFilterCompressed",
        }
    }

    fn candidates_into(&self, q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats) {
        let start = Instant::now();
        let store = &self.store;
        let cfg = self.cfg;
        ctx.candidates.clear();
        if q.tokens.is_empty() {
            // Only empty-token objects can reach simT ≥ τT > 0.
            ctx.candidates.extend_from_slice(&self.empty_token_objects);
            stats.filter_time += start.elapsed();
            return;
        }
        let sig = TextualSignature::build(&q.tokens, store.weights(), store.token_order());
        let c_t = crate::signatures::relax(cfg.textual_threshold(q, store.weights()));
        ctx.dedup.begin(store.len());
        for elem in sig.prefix(c_t) {
            stats.lists_probed += 1;
            // Both storage modes share one contract: the qualifying
            // probe yields an id slice — in place from the arena's id
            // column, or codec-decoded into the context scratch.
            let ids = match &self.storage {
                TokenStorage::Arena(index) => index.qualifying(&elem.token.0, c_t),
                TokenStorage::Compressed(index) => {
                    index.qualifying_into(&elem.token.0, c_t, &mut ctx.decode)
                }
            };
            stats.postings_scanned += ids.len();
            for &o in ids {
                if ctx.dedup.insert(o) {
                    ctx.candidates.push(ObjectId(o));
                }
            }
        }
        stats.filter_time += start.elapsed();
    }

    fn index_bytes(&self) -> usize {
        match &self.storage {
            TokenStorage::Arena(i) => i.size_bytes(),
            TokenStorage::Compressed(c) => c.size_bytes(),
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// The basic `Sig-Filter` (Figure 3) on textual signatures: no prefix,
/// no threshold bounds — every query token's full list is scanned and
/// the signature similarity `Σ_{t∈q∩o} w(t)` is accumulated exactly.
///
/// Kept as an ablation baseline to quantify what Section 4.2's
/// threshold-aware pruning buys.
pub struct TokenFilterBasic {
    store: Arc<ObjectStore>,
    cfg: crate::SimilarityConfig,
    index: InvertedIndex<u32>,
    empty_token_objects: Vec<ObjectId>,
}

impl TokenFilterBasic {
    /// Builds the plain (bound-free) token index.
    pub fn build(store: Arc<ObjectStore>) -> Self {
        Self::build_with_config(store, crate::SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration.
    pub fn build_with_config(store: Arc<ObjectStore>, cfg: crate::SimilarityConfig) -> Self {
        let mut index: InvertedIndex<u32> = InvertedIndex::new();
        let mut empty = Vec::new();
        for (id, o) in store.iter() {
            if o.tokens.is_empty() {
                empty.push(id);
                continue;
            }
            for t in o.tokens.iter() {
                // The "bound" slot stores the token weight so the filter
                // can accumulate sim(S(q), S(o)) without a second lookup.
                index.push(t.0, id.0, store.weights().weight(t));
            }
        }
        index.finalize();
        TokenFilterBasic {
            store,
            cfg,
            index,
            empty_token_objects: empty,
        }
    }

    /// Reassembles the filter around a loaded index (empty-token list
    /// recomputed from the store).
    pub(crate) fn from_loaded(
        store: Arc<ObjectStore>,
        cfg: crate::SimilarityConfig,
        index: InvertedIndex<u32>,
    ) -> Self {
        let empty = crate::filters::empty_token_objects(&store);
        TokenFilterBasic {
            store,
            cfg,
            index,
            empty_token_objects: empty,
        }
    }

    /// The underlying weighted index (persistence reads it out).
    pub(crate) fn index(&self) -> &InvertedIndex<u32> {
        &self.index
    }
}

impl CandidateFilter for TokenFilterBasic {
    fn name(&self) -> &'static str {
        "TokenFilterBasic"
    }

    fn candidates_into(&self, q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats) {
        let start = Instant::now();
        ctx.candidates.clear();
        if q.tokens.is_empty() {
            ctx.candidates.extend_from_slice(&self.empty_token_objects);
            stats.filter_time += start.elapsed();
            return;
        }
        let cfg = self.cfg;
        let c_t = crate::signatures::relax(cfg.textual_threshold(q, self.store.weights()));
        ctx.acc.begin(self.store.len());
        ctx.touched.clear();
        for t in q.tokens.iter() {
            stats.lists_probed += 1;
            if let Some(list) = self.index.list(&t.0) {
                stats.postings_scanned += list.len();
                for (&o, &w) in list.ids.iter().zip(list.bounds) {
                    ctx.acc.add(o, w, &mut ctx.touched); // bound slot = w(t)
                }
            }
        }
        for &o in &ctx.touched {
            if ctx.acc.sum(o) >= c_t {
                ctx.candidates.push(ObjectId(o));
            }
        }
        stats.filter_time += start.elapsed();
    }

    fn index_bytes(&self) -> usize {
        self.index.size_bytes()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::{naive_search, verify};
    use crate::SimilarityConfig;

    fn ids(v: &[u32]) -> Vec<ObjectId> {
        v.iter().map(|&i| ObjectId(i)).collect()
    }

    #[test]
    fn figure4_candidates() {
        // Figure 4: textual filtering with cT = 0.57 produces candidates
        // {o1..o5} (o6, o7 share no prefix token with q).
        let (store, q) = figure1_store();
        let f = TokenFilter::build(Arc::new(store));
        let mut stats = SearchStats::new();
        let mut got = f.candidates(&q, &mut stats);
        got.sort_unstable();
        assert_eq!(got, ids(&[0, 1, 2, 3, 4]));
        assert!(
            stats.lists_probed <= 3,
            "prefix probes at most the 3 query tokens"
        );
    }

    #[test]
    fn candidates_are_supersets_across_thresholds() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        let f = TokenFilter::build(store.clone());
        for tau_t in [0.1, 0.3, 0.5, 0.8, 1.0] {
            let q = q0.with_thresholds(0.25, tau_t).unwrap();
            let mut stats = SearchStats::new();
            let cands = f.candidates(&q, &mut stats);
            let answers = naive_search(&store, &cfg, &q);
            for a in &answers {
                assert!(cands.contains(a), "τT={tau_t}: answer {a:?} missing");
            }
            let mut vstats = SearchStats::new();
            let verified = verify(&store, &cfg, &q, &cands, &mut vstats);
            assert_eq!(verified, answers);
        }
    }

    #[test]
    fn basic_filter_agrees_with_plus_on_answers() {
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        let plus = TokenFilter::build(store.clone());
        let basic = TokenFilterBasic::build(store.clone());
        let mut s1 = SearchStats::new();
        let mut s2 = SearchStats::new();
        let c_plus = plus.candidates(&q, &mut s1);
        let c_basic = basic.candidates(&q, &mut s2);
        let mut v1 = SearchStats::new();
        let mut v2 = SearchStats::new();
        assert_eq!(
            verify(&store, &cfg, &q, &c_plus, &mut v1),
            verify(&store, &cfg, &q, &c_basic, &mut v2),
        );
        // The basic filter scans full lists; the + filter cannot scan more.
        assert!(s1.postings_scanned <= s2.postings_scanned);
    }

    #[test]
    fn basic_filter_is_tighter_or_equal() {
        // Accumulating the exact signature similarity prunes at least as
        // well as prefix-membership.
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let basic = TokenFilterBasic::build(store);
        let mut stats = SearchStats::new();
        let mut got = basic.candidates(&q, &mut stats);
        got.sort_unstable();
        // sim values from Figure 4: o1 1.1, o2 1.9, o3 0.8, o4 1.1,
        // o5 1.1 — all ≥ 0.57, so the candidate set matches Figure 4.
        assert_eq!(got, ids(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn empty_query_tokens_match_empty_objects() {
        use seal_geom::Rect;
        use seal_text::TokenSet;
        let objects = vec![
            crate::RoiObject::new(Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(), TokenSet::empty()),
            crate::RoiObject::new(
                Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(),
                TokenSet::from_ids([seal_text::TokenId(0)]),
            ),
        ];
        let store = Arc::new(ObjectStore::from_objects(objects, 1));
        let f = TokenFilter::build(store.clone());
        let q = Query::new(
            Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(),
            TokenSet::empty(),
            0.5,
            0.5,
        )
        .unwrap();
        let mut stats = SearchStats::new();
        let cands = f.candidates(&q, &mut stats);
        assert_eq!(cands, vec![ObjectId(0)]);
        // And the oracle agrees that the empty-token object is the answer.
        let cfg = SimilarityConfig::default();
        assert_eq!(naive_search(&store, &cfg, &q), vec![ObjectId(0)]);
    }

    #[test]
    fn index_bytes_nonzero() {
        let (store, _q) = figure1_store();
        let f = TokenFilter::build(Arc::new(store));
        assert!(f.index_bytes() > 0);
        assert_eq!(f.name(), "TokenFilter");
    }
}
