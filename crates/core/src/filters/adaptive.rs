//! Cost-based adaptive filtering.
//!
//! Figure 12's conclusion — "it is better to combine both filters
//! instead of using either one individually" — motivates the hybrid
//! signatures of Section 5, but it also admits a lighter-weight
//! engineering answer: keep the cheap single-signature indexes and
//! *route each query* to whichever filter the Section 4.3 cost model
//! predicts to be cheaper. This filter does exactly that:
//!
//! * it estimates the token route's cost as the number of postings the
//!   query's textual prefix would retrieve (`Σ |I_cT(t)|`), and the
//!   grid route's cost likewise over the spatial prefix;
//! * it runs the cheaper route (both estimates are exact — they come
//!   from the same `partition_point` cuts the filters themselves use,
//!   so "estimation" costs a few binary searches per query).
//!
//! The candidate set is whichever single filter ran, so the superset
//! guarantee is inherited unchanged. Tests assert the router never does
//! worse than the *sum* of a fixed choice's postings across a workload
//! and stays oracle-correct.

use crate::filters::{CandidateFilter, GridFilter, QueryContext, TokenFilter};
use crate::signatures::grid::GridScheme;
use crate::signatures::textual::TextualSignature;
use crate::{ObjectStore, Query, SearchStats};
use std::sync::Arc;
use std::time::Instant;

/// Which route the adaptive filter picked for a query (exposed for
/// diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Textual prefix probing (TokenFilter).
    Token,
    /// Spatial prefix probing (GridFilter).
    Grid,
}

/// A per-query cost-routed combination of [`TokenFilter`] and
/// [`GridFilter`].
pub struct AdaptiveFilter {
    store: Arc<ObjectStore>,
    cfg: crate::SimilarityConfig,
    token: TokenFilter,
    grid: GridFilter,
}

impl AdaptiveFilter {
    /// Builds both underlying indexes (token lists + grid lists at the
    /// given granularity).
    pub fn build(store: Arc<ObjectStore>, side: u32) -> Self {
        Self::build_with_config(store, side, crate::SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration.
    pub fn build_with_config(
        store: Arc<ObjectStore>,
        side: u32,
        cfg: crate::SimilarityConfig,
    ) -> Self {
        Self::build_with_opts(store, side, cfg, crate::BuildOpts::default())
    }

    /// Builds with explicit build options, forwarded to both
    /// underlying index builds.
    pub fn build_with_opts(
        store: Arc<ObjectStore>,
        side: u32,
        cfg: crate::SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Self {
        let token = TokenFilter::build_with_opts(store.clone(), cfg, opts);
        let grid = GridFilter::build_with_opts(store.clone(), side, cfg, opts);
        AdaptiveFilter {
            store,
            cfg,
            token,
            grid,
        }
    }

    /// Reassembles the router around its two loaded routes.
    pub(crate) fn from_loaded(
        store: Arc<ObjectStore>,
        cfg: crate::SimilarityConfig,
        token: TokenFilter,
        grid: GridFilter,
    ) -> Self {
        AdaptiveFilter {
            store,
            cfg,
            token,
            grid,
        }
    }

    /// The token route (persistence reads its index out).
    pub(crate) fn token_route(&self) -> &TokenFilter {
        &self.token
    }

    /// The grid route (persistence reads its index out).
    pub(crate) fn grid_route(&self) -> &GridFilter {
        &self.grid
    }

    /// The grid scheme used by the spatial route.
    pub fn grid_scheme(&self) -> &GridScheme {
        self.grid.scheme()
    }

    /// Exact posting counts each route would retrieve for this query
    /// (the cost model's `Σ |I_c(s)|` with π1 = 1), and the chosen
    /// route.
    pub fn plan(&self, q: &Query) -> (usize, usize, Route) {
        let w = self.store.weights();
        let c_t = crate::signatures::relax(self.cfg.textual_threshold(q, w));
        let tsig = TextualSignature::build(&q.tokens, w, self.store.token_order());
        let token_cost: usize = tsig
            .prefix(c_t)
            .iter()
            .map(|e| self.token.qualifying_len(e.token.0, c_t))
            .sum();

        let c_r = crate::signatures::relax(self.cfg.spatial_threshold(q));
        let gsig = self.grid.scheme().signature(&q.region);
        let grid_cost: usize = gsig
            .prefix(c_r)
            .iter()
            .map(|e| self.grid.index().qualifying_len(&e.cell, c_r))
            .sum();

        let route = if token_cost <= grid_cost {
            Route::Token
        } else {
            Route::Grid
        };
        (token_cost, grid_cost, route)
    }
}

impl CandidateFilter for AdaptiveFilter {
    fn name(&self) -> &'static str {
        "Adaptive"
    }

    fn candidates_into(&self, q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats) {
        let start = Instant::now();
        let (_, _, route) = self.plan(q);
        let planning = start.elapsed();
        match route {
            Route::Token => self.token.candidates_into(q, ctx, stats),
            Route::Grid => self.grid.candidates_into(q, ctx, stats),
        }
        stats.filter_time += planning;
    }

    fn index_bytes(&self) -> usize {
        self.token.index_bytes() + self.grid.index_bytes()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::{naive_search, verify};
    use crate::SimilarityConfig;

    #[test]
    fn adaptive_is_oracle_correct() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        let f = AdaptiveFilter::build(store.clone(), 8);
        for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.5, 0.5), (0.9, 0.9)] {
            let q = q0.with_thresholds(tr, tt).unwrap();
            let mut stats = SearchStats::new();
            let cands = f.candidates(&q, &mut stats);
            let answers = naive_search(&store, &cfg, &q);
            let mut vstats = SearchStats::new();
            assert_eq!(verify(&store, &cfg, &q, &cands, &mut vstats), answers);
        }
    }

    #[test]
    fn plan_costs_match_actual_postings() {
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let f = AdaptiveFilter::build(store.clone(), 8);
        let (token_cost, grid_cost, route) = f.plan(&q);
        // Run both routes explicitly and compare scanned counts.
        let mut ts = SearchStats::new();
        let _ = f.token.candidates(&q, &mut ts);
        assert_eq!(ts.postings_scanned, token_cost);
        let mut gs = SearchStats::new();
        let _ = f.grid.candidates(&q, &mut gs);
        assert_eq!(gs.postings_scanned, grid_cost);
        match route {
            Route::Token => assert!(token_cost <= grid_cost),
            Route::Grid => assert!(grid_cost < token_cost),
        }
    }

    #[test]
    fn routes_follow_thresholds() {
        // Figure 12's finding, reproduced as routing behaviour: a high
        // spatial threshold with a trivial textual threshold should
        // route spatially, and vice versa, whenever the costs differ.
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let f = AdaptiveFilter::build(store.clone(), 16);
        let spatial_heavy = q0.with_thresholds(0.9, 0.05).unwrap();
        let textual_heavy = q0.with_thresholds(0.05, 0.9).unwrap();
        let (tc_s, gc_s, route_s) = f.plan(&spatial_heavy);
        let (tc_t, gc_t, route_t) = f.plan(&textual_heavy);
        // Whatever the absolute costs, the router must pick the min.
        assert_eq!(route_s == Route::Token, tc_s <= gc_s);
        assert_eq!(route_t == Route::Token, tc_t <= gc_t);
    }

    #[test]
    fn adaptive_never_scans_more_than_the_worse_route() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let f = AdaptiveFilter::build(store.clone(), 8);
        for (tr, tt) in [(0.1, 0.5), (0.5, 0.1), (0.3, 0.3)] {
            let q = q0.with_thresholds(tr, tt).unwrap();
            let (tc, gc, _) = f.plan(&q);
            let mut stats = SearchStats::new();
            let _ = f.candidates(&q, &mut stats);
            assert!(stats.postings_scanned <= tc.max(gc));
            assert_eq!(stats.postings_scanned, tc.min(gc));
        }
    }

    #[test]
    fn accessors() {
        let (store, _q) = figure1_store();
        let f = AdaptiveFilter::build(Arc::new(store), 8);
        assert_eq!(f.name(), "Adaptive");
        assert!(f.index_bytes() > 0);
        assert_eq!(f.grid_scheme().side(), 8);
    }
}
