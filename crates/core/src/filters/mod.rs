//! Candidate filters — the "filter" half of filter-and-verification.
//!
//! Every filter implements [`CandidateFilter`]: given a query, produce a
//! candidate id set that is guaranteed to be a **superset** of the
//! answer set (the signature property of Section 3.1). The engine then
//! verifies candidates with `Sig-Verify`.
//!
//! | filter | paper name | index |
//! |--------|------------|-------|
//! | [`TokenFilter`] | `Sig-Filter+` on textual signatures ("TokenFilter", §6.2) | `TokenInv` |
//! | [`TokenFilterBasic`] | `Sig-Filter` (no prefix/bounds) — ablation | weighted `TokenInv` |
//! | [`GridFilter`] | `Sig-Filter+` on grid signatures ("GridFilter") | `GridInv` |
//! | [`HybridFilter`] | `Hybrid-Sig-Filter+` (§5.1, "HybridFilter") | `HashInv` |
//! | [`HierarchicalFilter`] | `Hybrid-Sig-Filter+` on HSS signatures (§5.2, "Seal") | `HierarchicalInv` |
//! | [`AdaptiveFilter`] | cost-routed Token/Grid (Fig 12's conclusion) | `TokenInv` + `GridInv` |
//! | [`NaiveFilter`] | no filtering (every object is a candidate) | — |
//!
//! # Concurrency model
//!
//! Filters are **stateless at query time**: every byte of per-query
//! scratch (dedup stamps, accumulator arrays, candidate buffers,
//! compressed-arena decode buffers) lives in a caller-owned
//! [`QueryContext`], so `&self` probes never contend on a lock. A
//! serving loop keeps one context per worker thread and calls
//! [`CandidateFilter::candidates_into`]; after the first query warms
//! the buffers, a probe performs **zero heap allocations**. The plain
//! [`CandidateFilter::candidates`] convenience method allocates a
//! fresh context per call — fine for tests and examples, wasteful in a
//! hot loop.
//!
//! # Scratch invariants
//!
//! * **Epoch-stamped dedup.** Candidate-set membership and the
//!   accumulator arrays are reset by bumping a `u32` epoch, not by
//!   clearing memory, so starting a query costs O(1) regardless of
//!   store size; a slot is "seen" only if its stamp equals the current
//!   epoch. On epoch wrap (every 2³²−1 queries per context) the stamp
//!   array is zeroed once to keep stale stamps from aliasing.
//! * **Filters clear their outputs at entry.** `candidates_into`
//!   clears `ctx.candidates` (and whatever scratch it uses) before
//!   writing, so contexts may be freely reused across filters, engines
//!   and stores of different sizes — buffers only ever grow.
//! * **The compressed decode buffer is per-probe.** The compressed
//!   filters decode each qualifying prefix's *object ids* into the
//!   context's decode scratch and consume them before the next list
//!   probe; nothing in the context outlives the query it served.
//!   (Uncompressed probes need no decode at all — they return id-column
//!   slices in place.)
//!
//! ```
//! use seal_core::{CandidateFilter, ObjectStore, Query, QueryContext, SearchStats};
//! use seal_core::filters::TokenFilter;
//! use seal_geom::Rect;
//! use std::sync::Arc;
//!
//! let store = Arc::new(ObjectStore::from_labeled(vec![
//!     (Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(), vec!["coffee", "mocha"]),
//!     (Rect::new(5.0, 5.0, 15.0, 15.0).unwrap(), vec!["tea"]),
//! ]));
//! // One filter, one long-lived context per worker thread.
//! let filter = TokenFilter::build(store.clone());
//! let mut ctx = QueryContext::with_capacity(store.len());
//! let mut stats = SearchStats::new();
//! let dict = store.dictionary().unwrap();
//! let q = Query::with_token_ids(
//!     Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(),
//!     dict.get("coffee"),
//!     0.3,
//!     0.3,
//! ).unwrap();
//! filter.candidates_into(&q, &mut ctx, &mut stats);
//! assert_eq!(ctx.candidates().len(), 1); // warm probes now allocate nothing
//! ```

mod adaptive;
mod grid;
mod hierarchical;
mod hybrid;
mod naive;
mod token;

pub use adaptive::{AdaptiveFilter, Route};
pub use grid::GridFilter;
pub use hierarchical::HierarchicalFilter;
pub use hybrid::HybridFilter;
pub use naive::NaiveFilter;
pub use token::{TokenFilter, TokenFilterBasic};

use crate::{ObjectId, Query, SearchStats};

/// Ids of objects with empty token sets, in store order — exactly the
/// list every build loop accumulates while skipping them. Used by the
/// persistence layer to reconstruct filters without serializing the
/// (derivable) list.
pub(crate) fn empty_token_objects(store: &crate::ObjectStore) -> Vec<ObjectId> {
    store
        .iter()
        .filter(|(_, o)| o.tokens.is_empty())
        .map(|(id, _)| id)
        .collect()
}

/// Build-time options shared by the filter constructors.
///
/// `FilterKind` picks *what* gets built; `BuildOpts` configures *how*.
/// The only knob today is the build-side thread count: per-token
/// `HSS-Greedy` selections and the staged per-group sorts inside
/// `finalize` fan out over a work-stealing pool
/// ([`seal_index::parallel`]). Builds are **deterministic for every
/// thread count** — parallelism changes wall-clock time only, never
/// the selected cells or the arena contents (asserted by the
/// parallel-determinism tests and by `bench_build`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOpts {
    /// Worker threads for build-side fan-outs: `0` = one per core
    /// (`available_parallelism`), `1` = fully sequential (default),
    /// `n` = exactly `n`.
    pub threads: usize,
}

impl Default for BuildOpts {
    fn default() -> Self {
        BuildOpts { threads: 1 }
    }
}

impl BuildOpts {
    /// Options with an explicit thread count (0 = one per core).
    pub fn with_threads(threads: usize) -> Self {
        BuildOpts { threads }
    }

    /// The effective worker count: `0` resolves to
    /// `available_parallelism`, anything else is literal.
    pub fn resolved_threads(&self) -> usize {
        seal_index::parallel::resolve_threads(self.threads)
    }
}

/// The filter interface: produce a candidate superset of the answers.
pub trait CandidateFilter: Send + Sync {
    /// Short display name (matches the paper's method names).
    fn name(&self) -> &'static str;

    /// Generates candidates for a query into `ctx.candidates`
    /// (cleared first), updating `stats` with probe counters and
    /// filter time. All scratch comes from `ctx`; the filter itself is
    /// immutable, so any number of threads may call this concurrently
    /// with their own contexts.
    fn candidates_into(&self, q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats);

    /// Convenience wrapper: generates candidates with a throwaway
    /// [`QueryContext`]. Allocates per call — prefer
    /// [`candidates_into`](Self::candidates_into) with a reused
    /// context in serving loops.
    fn candidates(&self, q: &Query, stats: &mut SearchStats) -> Vec<ObjectId> {
        let mut ctx = QueryContext::new();
        self.candidates_into(q, &mut ctx, stats);
        std::mem::take(&mut ctx.candidates)
    }

    /// Approximate heap bytes of the filter's index structures
    /// (Table 1's index-size rows).
    fn index_bytes(&self) -> usize;

    /// The concrete filter as [`Any`](std::any::Any), for
    /// generation-reusing rebuild paths
    /// (`SealEngine::build_next_generation`) to probe. Defaults to
    /// `None`; only filters with a cross-generation reuse path
    /// ([`HierarchicalFilter`]) return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Caller-owned per-query scratch: everything a filter needs beyond
/// its immutable indexes.
///
/// Buffers grow to the store size on first use and are then reused, so
/// a warm context makes a query allocation-free. Contexts are cheap to
/// create empty ([`QueryContext::new`]) and independent of any
/// particular filter or store — one context can serve queries against
/// several engines (buffers size to the largest).
///
/// The intended pattern is **one context per worker thread**:
/// `SealEngine::search_batch` does this internally, and
/// `SealEngine::search_with_ctx` exposes it to callers running their
/// own serving loops.
#[derive(Debug, Default)]
pub struct QueryContext {
    /// Epoch-stamped dedup scratch (candidate set membership).
    pub(crate) dedup: DedupScratch,
    /// Epoch-stamped weighted accumulator (basic/keyword filters).
    pub(crate) acc: AccScratch,
    /// The candidate output buffer of the last
    /// [`CandidateFilter::candidates_into`] call.
    pub(crate) candidates: Vec<ObjectId>,
    /// Object ids touched by the accumulator this query.
    pub(crate) touched: Vec<u32>,
    /// Decode scratch for compressed arenas: qualifying prefixes'
    /// object ids are decoded here — block-unpacked or varint-decoded,
    /// per the arena's id codec (single- and dual-bound
    /// arenas both decode ids only — bounds are cut in the quantized
    /// domain and never materialized), so the compressed serving path
    /// allocates nothing once this has grown to the largest
    /// qualifying prefix. Sized off the id column, like every other
    /// per-probe buffer.
    pub(crate) decode: Vec<seal_index::ObjId>,
}

impl QueryContext {
    /// An empty context; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context with scratch pre-sized for a store of `n_objects`
    /// (avoids the one-time growth on the first query).
    pub fn with_capacity(n_objects: usize) -> Self {
        let mut ctx = Self::new();
        ctx.dedup.ensure(n_objects);
        ctx.acc.ensure(n_objects);
        ctx
    }

    /// The candidates produced by the most recent filter call.
    pub fn candidates(&self) -> &[ObjectId] {
        &self.candidates
    }

    /// Mutable access to the candidate output buffer, for
    /// [`CandidateFilter`] implementations outside this crate: clear
    /// it at entry, push candidate ids as you find them. (The built-in
    /// filters additionally use crate-private dedup/accumulator
    /// scratch; external filters manage their own.)
    pub fn candidates_mut(&mut self) -> &mut Vec<ObjectId> {
        &mut self.candidates
    }

    /// Current capacity of the compressed-arena id-decode buffer.
    /// Once a context is warm this stops changing — tests use it to
    /// assert the compressed serving path performs no further
    /// allocations.
    pub fn decode_capacity(&self) -> usize {
        self.decode.capacity()
    }
}

/// Epoch-stamped deduplication scratch: merging qualifying postings
/// into a candidate set without allocating a hash set per query and
/// without clearing an array per query.
#[derive(Debug, Default)]
pub(crate) struct DedupScratch {
    stamps: Vec<u32>,
    epoch: u32,
}

impl DedupScratch {
    /// Grows the stamp array to cover object ids `< n` (keeps epochs).
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
    }

    /// Starts a new deduplication round for a store of `n` objects.
    pub(crate) fn begin(&mut self, n: usize) {
        self.ensure(n);
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Returns true the first time an object is seen this round.
    #[inline]
    pub(crate) fn insert(&mut self, object: u32) -> bool {
        let slot = &mut self.stamps[object as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// Epoch-stamped weighted accumulator: per-object running sums for the
/// filters that compute exact signature similarities (`Sig-Filter`
/// without bounds, Keyword-first).
#[derive(Debug, Default)]
pub(crate) struct AccScratch {
    sums: Vec<f64>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl AccScratch {
    /// Grows the arrays to cover object ids `< n` (keeps epochs).
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
            self.sums.resize(n, 0.0);
        }
    }

    /// Starts a new accumulation round for a store of `n` objects.
    pub(crate) fn begin(&mut self, n: usize) {
        self.ensure(n);
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Adds `w` to the object's sum, recording first touches in
    /// `touched`. Returns nothing; read back via [`sum`](Self::sum).
    #[inline]
    pub(crate) fn add(&mut self, object: u32, w: f64, touched: &mut Vec<u32>) {
        let i = object as usize;
        if self.stamps[i] != self.epoch {
            self.stamps[i] = self.epoch;
            self.sums[i] = 0.0;
            touched.push(object);
        }
        self.sums[i] += w;
    }

    /// The accumulated sum for an object this round (0 if untouched).
    #[inline]
    pub(crate) fn sum(&self, object: u32) -> f64 {
        if self.stamps[object as usize] == self.epoch {
            self.sums[object as usize]
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_scratch_rounds() {
        let mut s = DedupScratch::default();
        s.begin(4);
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(3));
        s.begin(4);
        assert!(s.insert(0), "new round forgets the old stamps");
    }

    #[test]
    fn dedup_epoch_wrap() {
        let mut s = DedupScratch {
            epoch: u32::MAX - 1,
            ..Default::default()
        };
        s.begin(2);
        assert!(s.insert(1));
        s.begin(2); // wraps
        assert!(s.insert(1));
        assert!(!s.insert(1));
    }

    #[test]
    fn dedup_grows_across_stores() {
        let mut s = DedupScratch::default();
        s.begin(2);
        assert!(s.insert(1));
        // A bigger store later: ids beyond the old length work.
        s.begin(10);
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn acc_scratch_sums_and_touches() {
        let mut acc = AccScratch::default();
        let mut touched = Vec::new();
        acc.begin(4);
        acc.add(2, 1.5, &mut touched);
        acc.add(2, 0.5, &mut touched);
        acc.add(0, 1.0, &mut touched);
        assert_eq!(touched, vec![2, 0], "first touches only");
        assert_eq!(acc.sum(2), 2.0);
        assert_eq!(acc.sum(0), 1.0);
        assert_eq!(acc.sum(3), 0.0, "untouched reads as zero");
        acc.begin(4);
        assert_eq!(acc.sum(2), 0.0, "new round resets");
    }

    #[test]
    fn context_reuse_is_clean() {
        let mut ctx = QueryContext::with_capacity(8);
        ctx.candidates.push(crate::ObjectId(5));
        ctx.touched.push(3);
        // Filters clear these at entry; simulate that contract.
        ctx.candidates.clear();
        ctx.touched.clear();
        assert!(ctx.candidates().is_empty());
    }
}
