//! Candidate filters — the "filter" half of filter-and-verification.
//!
//! Every filter implements [`CandidateFilter`]: given a query, produce a
//! candidate id set that is guaranteed to be a **superset** of the
//! answer set (the signature property of Section 3.1). The engine then
//! verifies candidates with `Sig-Verify`.
//!
//! | filter | paper name | index |
//! |--------|------------|-------|
//! | [`TokenFilter`] | `Sig-Filter+` on textual signatures ("TokenFilter", §6.2) | `TokenInv` |
//! | [`TokenFilterBasic`] | `Sig-Filter` (no prefix/bounds) — ablation | weighted `TokenInv` |
//! | [`GridFilter`] | `Sig-Filter+` on grid signatures ("GridFilter") | `GridInv` |
//! | [`HybridFilter`] | `Hybrid-Sig-Filter+` (§5.1, "HybridFilter") | `HashInv` |
//! | [`HierarchicalFilter`] | `Hybrid-Sig-Filter+` on HSS signatures (§5.2, "Seal") | `HierarchicalInv` |
//! | [`AdaptiveFilter`] | cost-routed Token/Grid (Fig 12's conclusion) | `TokenInv` + `GridInv` |
//! | [`NaiveFilter`] | no filtering (every object is a candidate) | — |

mod adaptive;
mod grid;
mod hierarchical;
mod hybrid;
mod naive;
mod token;

pub use adaptive::{AdaptiveFilter, Route};
pub use grid::GridFilter;
pub use hierarchical::HierarchicalFilter;
pub use hybrid::HybridFilter;
pub use naive::NaiveFilter;
pub use token::{TokenFilter, TokenFilterBasic};

use crate::{ObjectId, Query, SearchStats};
use parking_lot::Mutex;

/// The filter interface: produce a candidate superset of the answers.
pub trait CandidateFilter: Send + Sync {
    /// Short display name (matches the paper's method names).
    fn name(&self) -> &'static str;

    /// Generates candidates for a query, updating `stats` with probe
    /// counters and filter time.
    fn candidates(&self, q: &Query, stats: &mut SearchStats) -> Vec<ObjectId>;

    /// Approximate heap bytes of the filter's index structures
    /// (Table 1's index-size rows).
    fn index_bytes(&self) -> usize;
}

/// Epoch-stamped deduplication scratch shared by all filters: merging
/// qualifying postings into a candidate set without allocating a hash
/// set per query.
#[derive(Debug)]
pub(crate) struct DedupScratch {
    stamps: Vec<u32>,
    epoch: u32,
}

impl DedupScratch {
    pub(crate) fn new(n_objects: usize) -> Mutex<Self> {
        Mutex::new(DedupScratch {
            stamps: vec![0; n_objects],
            epoch: 0,
        })
    }

    /// Starts a new deduplication round.
    pub(crate) fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Returns true the first time an object is seen this round.
    #[inline]
    pub(crate) fn insert(&mut self, object: u32) -> bool {
        let slot = &mut self.stamps[object as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_scratch_rounds() {
        let scratch = DedupScratch::new(4);
        let mut s = scratch.lock();
        s.begin();
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(3));
        s.begin();
        assert!(s.insert(0), "new round forgets the old stamps");
    }

    #[test]
    fn dedup_epoch_wrap() {
        let scratch = DedupScratch::new(2);
        let mut s = scratch.lock();
        s.epoch = u32::MAX - 1;
        s.begin();
        assert!(s.insert(1));
        s.begin(); // wraps
        assert!(s.insert(1));
        assert!(!s.insert(1));
    }
}
