//! Spatial filtering: `Sig-Filter+` on grid signatures (the paper's
//! **GridFilter**, Section 4.2, Example 3).

use crate::filters::{CandidateFilter, QueryContext};
use crate::signatures::grid::GridScheme;
use crate::{ObjectId, ObjectStore, Query, SearchStats};
use seal_index::InvertedIndex;
use std::sync::Arc;
use std::time::Instant;

/// `Sig-Filter+` with grid-based signatures: one inverted list per grid
/// cell, postings carry Lemma 3 spatial bounds, probed only for the
/// query prefix under `c_R = τ_R · |q.R|`.
pub struct GridFilter {
    cfg: crate::SimilarityConfig,
    scheme: GridScheme,
    index: InvertedIndex<u64>,
    n_objects: usize,
}

impl GridFilter {
    /// Builds the `GridInv` index at the given granularity (cells per
    /// side — the paper's 256/512/1024 configurations).
    pub fn build(store: Arc<ObjectStore>, side: u32) -> Self {
        Self::build_with_config(store, side, crate::SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration (the spatial
    /// threshold `c_R` follows the configured function's bound).
    pub fn build_with_config(
        store: Arc<ObjectStore>,
        side: u32,
        cfg: crate::SimilarityConfig,
    ) -> Self {
        Self::build_with_opts(store, side, cfg, crate::BuildOpts::default())
    }

    /// Builds with explicit build options (`BuildOpts::threads`
    /// parallelizes the finalize-time group sorts; contents are
    /// identical for every thread count).
    pub fn build_with_opts(
        store: Arc<ObjectStore>,
        side: u32,
        cfg: crate::SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Self {
        let scheme = GridScheme::build(&store, side);
        let mut index: InvertedIndex<u64> = InvertedIndex::new();
        for (id, o) in store.iter() {
            let sig = scheme.signature(&o.region);
            for (elem, bound) in sig.elements_with_bounds() {
                index.push(elem.cell, id.0, bound);
            }
        }
        index.finalize_with_threads(opts.threads);
        GridFilter {
            cfg,
            scheme,
            index,
            n_objects: store.len(),
        }
    }

    /// Reassembles the filter around a loaded index. The scheme is a
    /// deterministic function of `(store, side)`, so only the index and
    /// the granularity need persisting.
    pub(crate) fn from_loaded(
        store: &ObjectStore,
        side: u32,
        cfg: crate::SimilarityConfig,
        index: InvertedIndex<u64>,
    ) -> Self {
        GridFilter {
            cfg,
            scheme: GridScheme::build(store, side),
            index,
            n_objects: store.len(),
        }
    }

    /// The grid scheme (granularity, counts).
    pub fn scheme(&self) -> &GridScheme {
        &self.scheme
    }

    /// The underlying index (diagnostics).
    pub fn index(&self) -> &InvertedIndex<u64> {
        &self.index
    }
}

impl CandidateFilter for GridFilter {
    fn name(&self) -> &'static str {
        "GridFilter"
    }

    fn candidates_into(&self, q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats) {
        let start = Instant::now();
        let cfg = self.cfg;
        let c_r = crate::signatures::relax(cfg.spatial_threshold(q));
        let sig = self.scheme.signature(&q.region);
        ctx.candidates.clear();
        ctx.dedup.begin(self.n_objects);
        for elem in sig.prefix(c_r) {
            stats.lists_probed += 1;
            // The qualifying prefix comes back as an in-place slice of
            // the arena's id column.
            let ids = self.index.qualifying(&elem.cell, c_r);
            stats.postings_scanned += ids.len();
            for &o in ids {
                if ctx.dedup.insert(o) {
                    ctx.candidates.push(ObjectId(o));
                }
            }
        }
        stats.filter_time += start.elapsed();
    }

    fn index_bytes(&self) -> usize {
        self.index.size_bytes() + self.scheme.size_bytes()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::{naive_search, verify};
    use crate::SimilarityConfig;

    #[test]
    fn grid_filter_is_complete_across_granularities() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        for side in [1u32, 2, 4, 8, 16, 64] {
            let f = GridFilter::build(store.clone(), side);
            for tau_r in [0.05, 0.25, 0.5, 0.9] {
                let q = q0.with_thresholds(tau_r, 0.3).unwrap();
                let mut stats = SearchStats::new();
                let cands = f.candidates(&q, &mut stats);
                let answers = naive_search(&store, &cfg, &q);
                for a in &answers {
                    assert!(
                        cands.contains(a),
                        "side={side} τR={tau_r}: answer {a:?} missing"
                    );
                }
                let mut vstats = SearchStats::new();
                assert_eq!(verify(&store, &cfg, &q, &cands, &mut vstats), answers);
            }
        }
    }

    #[test]
    fn finer_grids_prune_at_least_as_well_on_example() {
        // Section 4.3's tension: fine granularity → fewer candidates.
        // On the Figure-1 data a 16×16 grid must not produce more
        // candidates than the 1×1 grid (which admits everything).
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let coarse = GridFilter::build(store.clone(), 1);
        let fine = GridFilter::build(store.clone(), 16);
        let mut s1 = SearchStats::new();
        let mut s2 = SearchStats::new();
        let c_coarse = coarse.candidates(&q, &mut s1);
        let c_fine = fine.candidates(&q, &mut s2);
        assert!(c_fine.len() <= c_coarse.len());
    }

    #[test]
    fn disjoint_query_yields_no_candidates_at_fine_grain() {
        use seal_geom::Rect;
        let (store, _q) = figure1_store();
        let store = Arc::new(store);
        let f = GridFilter::build(store.clone(), 64);
        // A query region in an empty corner of the space.
        let q = Query::with_token_ids(
            Rect::new(60.0, 95.0, 70.0, 110.0).unwrap(),
            [seal_text::TokenId(0)],
            0.5,
            0.3,
        )
        .unwrap();
        let mut stats = SearchStats::new();
        let cands = f.candidates(&q, &mut stats);
        let cfg = SimilarityConfig::default();
        let answers = naive_search(&store, &cfg, &q);
        assert!(answers.is_empty());
        // At fine granularity no object shares a prefix cell.
        assert!(
            cands.len() <= 1,
            "expected near-empty candidates, got {cands:?}"
        );
    }

    #[test]
    fn stats_count_probes() {
        let (store, q) = figure1_store();
        let f = GridFilter::build(Arc::new(store), 8);
        let mut stats = SearchStats::new();
        let _ = f.candidates(&q, &mut stats);
        assert!(stats.lists_probed > 0);
        assert!(stats.filter_time.as_nanos() > 0);
        assert_eq!(f.name(), "GridFilter");
        assert!(f.index_bytes() > 0);
    }
}
