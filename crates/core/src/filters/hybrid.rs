//! `Hybrid-Sig-Filter+` with hash-based hybrid signatures (Section 5.1,
//! Figure 8 — the paper's **HybridFilter**).

use crate::filters::{CandidateFilter, QueryContext};
use crate::signatures::grid::GridScheme;
use crate::signatures::hash_hybrid::BucketScheme;
use crate::signatures::textual::TextualSignature;
use crate::{ObjectId, ObjectStore, Query, SearchStats};
use seal_index::{CompressedHybridIndex, HybridIndex};
use std::sync::Arc;
use std::time::Instant;

/// Posting storage for the hybrid filter: the uncompressed dual-bound
/// CSR arena, or the compressed arena served in place through the
/// `QueryContext` dual-posting scratch.
enum HybridStorage {
    Arena(HybridIndex<u64>),
    Compressed(CompressedHybridIndex<u64>),
}

/// The hash-based hybrid filter: elements are `(token, cell)` pairs
/// hashed into buckets, postings carry *both* spatial and textual
/// bounds, and only `Sp_T(q) × Sp_R(q)` pairs are probed.
pub struct HybridFilter {
    store: Arc<ObjectStore>,
    cfg: crate::SimilarityConfig,
    grid: GridScheme,
    buckets: BucketScheme,
    storage: HybridStorage,
    empty_token_objects: Vec<ObjectId>,
}

impl HybridFilter {
    /// Builds the `HashInv` index.
    ///
    /// * `side` — grid granularity (cells per side).
    /// * `buckets` — [`BucketScheme::Full`] or a bucket count (the
    ///   paper's index-size constraint).
    pub fn build(store: Arc<ObjectStore>, side: u32, buckets: BucketScheme) -> Self {
        Self::build_with_config(store, side, buckets, crate::SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration.
    pub fn build_with_config(
        store: Arc<ObjectStore>,
        side: u32,
        buckets: BucketScheme,
        cfg: crate::SimilarityConfig,
    ) -> Self {
        Self::build_with_opts(store, side, buckets, cfg, crate::BuildOpts::default())
    }

    /// Builds with explicit build options (`BuildOpts::threads`
    /// parallelizes the finalize-time group sorts; contents are
    /// identical for every thread count).
    pub fn build_with_opts(
        store: Arc<ObjectStore>,
        side: u32,
        buckets: BucketScheme,
        cfg: crate::SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Self {
        let (grid, index, empty) = Self::build_index(&store, side, buckets, opts);
        HybridFilter {
            store,
            cfg,
            grid,
            buckets,
            storage: HybridStorage::Arena(index),
            empty_token_objects: empty,
        }
    }

    /// Builds the compressed serving mode (default configuration):
    /// the same `HashInv` lists folded into one compressed dual-bound
    /// arena and queried in place.
    pub fn build_compressed(store: Arc<ObjectStore>, side: u32, buckets: BucketScheme) -> Self {
        Self::build_compressed_with_config(store, side, buckets, crate::SimilarityConfig::default())
    }

    /// Builds the compressed serving mode with an explicit similarity
    /// configuration.
    pub fn build_compressed_with_config(
        store: Arc<ObjectStore>,
        side: u32,
        buckets: BucketScheme,
        cfg: crate::SimilarityConfig,
    ) -> Self {
        Self::build_compressed_with_opts(store, side, buckets, cfg, crate::BuildOpts::default())
    }

    /// Compressed serving mode with explicit build options: the
    /// uncompressed CSR build (finalize fanned out over
    /// `opts.threads`) feeds the arena compressor unchanged.
    pub fn build_compressed_with_opts(
        store: Arc<ObjectStore>,
        side: u32,
        buckets: BucketScheme,
        cfg: crate::SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Self {
        let (grid, index, empty) = Self::build_index(&store, side, buckets, opts);
        HybridFilter {
            store,
            cfg,
            grid,
            buckets,
            storage: HybridStorage::Compressed(CompressedHybridIndex::compress(&index)),
            empty_token_objects: empty,
        }
    }

    fn build_index(
        store: &ObjectStore,
        side: u32,
        buckets: BucketScheme,
        opts: crate::BuildOpts,
    ) -> (GridScheme, HybridIndex<u64>, Vec<ObjectId>) {
        let grid = GridScheme::build(store, side);
        let mut index: HybridIndex<u64> = HybridIndex::new();
        let mut empty = Vec::new();
        for (id, o) in store.iter() {
            if o.tokens.is_empty() {
                empty.push(id);
                continue;
            }
            let tsig = TextualSignature::build(&o.tokens, store.weights(), store.token_order());
            let gsig = grid.signature(&o.region);
            // Definition 5: SH(o) = ST(o) × SR(o) hashed into buckets.
            for (telem, tbound) in tsig.elements_with_bounds() {
                for (gelem, gbound) in gsig.elements_with_bounds() {
                    let key = buckets.key(telem.token, gelem.cell);
                    index.push(key, id.0, gbound, tbound);
                }
            }
        }
        index.finalize_with_threads(opts.threads);
        (grid, index, empty)
    }

    /// Reassembles an arena-mode filter around a loaded index. The
    /// grid scheme is a deterministic function of `(store, side)` and
    /// the empty-token list of the store, so only the index, the
    /// granularity and the bucket scheme need persisting.
    pub(crate) fn from_loaded_arena(
        store: Arc<ObjectStore>,
        side: u32,
        buckets: BucketScheme,
        cfg: crate::SimilarityConfig,
        index: HybridIndex<u64>,
    ) -> Self {
        let grid = GridScheme::build(&store, side);
        let empty = crate::filters::empty_token_objects(&store);
        HybridFilter {
            store,
            cfg,
            grid,
            buckets,
            storage: HybridStorage::Arena(index),
            empty_token_objects: empty,
        }
    }

    /// Reassembles a compressed-mode filter around a loaded index.
    pub(crate) fn from_loaded_compressed(
        store: Arc<ObjectStore>,
        side: u32,
        buckets: BucketScheme,
        cfg: crate::SimilarityConfig,
        index: CompressedHybridIndex<u64>,
    ) -> Self {
        let grid = GridScheme::build(&store, side);
        let empty = crate::filters::empty_token_objects(&store);
        HybridFilter {
            store,
            cfg,
            grid,
            buckets,
            storage: HybridStorage::Compressed(index),
            empty_token_objects: empty,
        }
    }

    /// The grid scheme in use.
    pub fn grid(&self) -> &GridScheme {
        &self.grid
    }

    /// The bucket scheme in use.
    pub fn buckets(&self) -> BucketScheme {
        self.buckets
    }

    /// The uncompressed index, when serving from the CSR arena
    /// (diagnostics; `None` in compressed mode).
    pub fn index(&self) -> Option<&HybridIndex<u64>> {
        match &self.storage {
            HybridStorage::Arena(i) => Some(i),
            HybridStorage::Compressed(_) => None,
        }
    }

    /// The compressed index, when serving in place (`None` in arena
    /// mode).
    pub fn compressed_index(&self) -> Option<&CompressedHybridIndex<u64>> {
        match &self.storage {
            HybridStorage::Arena(_) => None,
            HybridStorage::Compressed(c) => Some(c),
        }
    }
}

impl CandidateFilter for HybridFilter {
    fn name(&self) -> &'static str {
        match &self.storage {
            HybridStorage::Arena(_) => "HybridFilter",
            HybridStorage::Compressed(_) => "HybridFilterCompressed",
        }
    }

    fn candidates_into(&self, q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats) {
        let start = Instant::now();
        let store = &self.store;
        let cfg = self.cfg;
        ctx.candidates.clear();
        if q.tokens.is_empty() {
            ctx.candidates.extend_from_slice(&self.empty_token_objects);
            stats.filter_time += start.elapsed();
            return;
        }
        let c_t = crate::signatures::relax(cfg.textual_threshold(q, store.weights()));
        let c_r = crate::signatures::relax(cfg.spatial_threshold(q));
        let tsig = TextualSignature::build(&q.tokens, store.weights(), store.token_order());
        let gsig = self.grid.signature(&q.region);
        let tprefix = tsig.prefix(c_t);
        let gprefix = gsig.prefix(c_r);
        ctx.dedup.begin(store.len());
        for telem in tprefix {
            for gelem in gprefix {
                let key = self.buckets.key(telem.token, gelem.cell);
                stats.lists_probed += 1;
                match &self.storage {
                    HybridStorage::Arena(index) => {
                        for o in index.qualifying(&key, c_r, c_t) {
                            stats.postings_scanned += 1;
                            if ctx.dedup.insert(o) {
                                ctx.candidates.push(ObjectId(o));
                            }
                        }
                    }
                    HybridStorage::Compressed(index) => {
                        let ids = index.qualifying_into(&key, c_r, c_t, &mut ctx.decode);
                        stats.postings_scanned += ids.len();
                        for &o in ids {
                            if ctx.dedup.insert(o) {
                                ctx.candidates.push(ObjectId(o));
                            }
                        }
                    }
                }
            }
        }
        stats.filter_time += start.elapsed();
    }

    fn index_bytes(&self) -> usize {
        let index = match &self.storage {
            HybridStorage::Arena(i) => i.size_bytes(),
            HybridStorage::Compressed(c) => c.size_bytes(),
        };
        index + self.grid.size_bytes()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::{naive_search, verify};
    use crate::SimilarityConfig;

    #[test]
    fn hybrid_filter_is_complete() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        for buckets in [
            BucketScheme::Full,
            BucketScheme::Buckets(64),
            BucketScheme::Buckets(7),
        ] {
            let f = HybridFilter::build(store.clone(), 8, buckets);
            for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.5, 0.5), (0.9, 0.9)] {
                let q = q0.with_thresholds(tr, tt).unwrap();
                let mut stats = SearchStats::new();
                let cands = f.candidates(&q, &mut stats);
                let answers = naive_search(&store, &cfg, &q);
                for a in &answers {
                    assert!(
                        cands.contains(a),
                        "{buckets:?} τ=({tr},{tt}): answer {a:?} missing"
                    );
                }
                let mut vstats = SearchStats::new();
                assert_eq!(verify(&store, &cfg, &q, &cands, &mut vstats), answers);
            }
        }
    }

    #[test]
    fn hybrid_prunes_at_least_as_well_as_grid_on_example() {
        // Section 5.1: hybrid = both prunings at once, so its candidate
        // set is contained in the grid filter's for the same granularity
        // (with full hashing, no bucket collisions).
        use crate::filters::GridFilter;
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let hybrid = HybridFilter::build(store.clone(), 8, BucketScheme::Full);
        let grid = GridFilter::build(store.clone(), 8);
        let mut s1 = SearchStats::new();
        let mut s2 = SearchStats::new();
        let ch: std::collections::BTreeSet<ObjectId> =
            hybrid.candidates(&q, &mut s1).into_iter().collect();
        let cg: std::collections::BTreeSet<ObjectId> =
            grid.candidates(&q, &mut s2).into_iter().collect();
        assert!(ch.is_subset(&cg), "hybrid {ch:?} ⊄ grid {cg:?}");
    }

    #[test]
    fn fewer_buckets_never_lose_answers() {
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        let answers = naive_search(&store, &cfg, &q);
        // Even a pathological 2-bucket hash stays a superset.
        let f = HybridFilter::build(store.clone(), 8, BucketScheme::Buckets(2));
        let mut stats = SearchStats::new();
        let cands = f.candidates(&q, &mut stats);
        for a in &answers {
            assert!(cands.contains(a));
        }
    }

    #[test]
    fn accessors() {
        let (store, _q) = figure1_store();
        let f = HybridFilter::build(Arc::new(store), 4, BucketScheme::Buckets(32));
        assert_eq!(f.name(), "HybridFilter");
        assert_eq!(f.buckets(), BucketScheme::Buckets(32));
        assert_eq!(f.grid().side(), 4);
        assert!(f.index_bytes() > 0);
        assert!(f.index().unwrap().posting_count() > 0);
        assert!(f.compressed_index().is_none());
    }

    #[test]
    fn compressed_mode_is_complete() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        let compressed = HybridFilter::build_compressed(store.clone(), 8, BucketScheme::Full);
        assert_eq!(compressed.name(), "HybridFilterCompressed");
        assert!(compressed.index().is_none());
        assert!(compressed.compressed_index().is_some());
        // Size wins only show on dense lists (the 7-object fixture's
        // directory overhead dominates); see seal-index's
        // `dual_compression_shrinks` for the size assertion.
        assert!(compressed.index_bytes() > 0);
        for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.6, 0.6)] {
            let q = q0.with_thresholds(tr, tt).unwrap();
            let answers = naive_search(&store, &cfg, &q);
            let mut stats = SearchStats::new();
            let cands = compressed.candidates(&q, &mut stats);
            for a in &answers {
                assert!(cands.contains(a), "τ=({tr},{tt}): answer {a:?} missing");
            }
            let mut vstats = SearchStats::new();
            assert_eq!(verify(&store, &cfg, &q, &cands, &mut vstats), answers);
        }
    }
}
