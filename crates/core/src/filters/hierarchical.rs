//! `Hybrid-Sig-Filter+` with hierarchical hybrid signatures
//! (Section 5.2 — the configuration the paper calls **Seal** in its
//! method comparison).

use crate::filters::{CandidateFilter, QueryContext};
use crate::signatures::hierarchical::HierarchicalScheme;
use crate::signatures::textual::TextualSignature;
use crate::{ObjectId, ObjectStore, Query, SearchStats};
use seal_index::HybridIndex;
use std::sync::Arc;
use std::time::Instant;

/// The hierarchical hybrid filter: per-token HSS-selected grids, keys
/// are exact `(token, tree-cell)` pairs, postings carry dual bounds.
pub struct HierarchicalFilter {
    store: Arc<ObjectStore>,
    cfg: crate::SimilarityConfig,
    scheme: HierarchicalScheme,
    index: HybridIndex<u128>,
    empty_token_objects: Vec<ObjectId>,
}

impl HierarchicalFilter {
    /// Builds the `HierarchicalInv` index.
    ///
    /// * `max_level` — grid-tree depth available to `HSS-Greedy`.
    /// * `budget` — `m_t`, maximum selected grids per token.
    pub fn build(store: Arc<ObjectStore>, max_level: u8, budget: usize) -> Self {
        Self::build_with_config(store, max_level, budget, crate::SimilarityConfig::default())
    }

    /// Builds with an explicit similarity configuration.
    pub fn build_with_config(
        store: Arc<ObjectStore>,
        max_level: u8,
        budget: usize,
        cfg: crate::SimilarityConfig,
    ) -> Self {
        Self::build_with_opts(store, max_level, budget, cfg, crate::BuildOpts::default())
    }

    /// Builds with explicit build options. `BuildOpts::threads` fans
    /// the per-token `HSS-Greedy` selections (the dominant build cost)
    /// and the finalize-time group sorts out over a work-stealing
    /// pool; the selected cells and the resulting index are identical
    /// for every thread count.
    pub fn build_with_opts(
        store: Arc<ObjectStore>,
        max_level: u8,
        budget: usize,
        cfg: crate::SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Self {
        let scheme =
            HierarchicalScheme::build_with_threads(&store, max_level, budget, opts.threads);
        let (index, empty) = Self::index_over(&store, &scheme, opts.threads);
        HierarchicalFilter {
            store,
            cfg,
            scheme,
            index,
            empty_token_objects: empty,
        }
    }

    /// Builds the filter for the **next generation** of `prev`'s
    /// store, reusing `prev`'s per-token HSS selections for every
    /// token untouched by the delta
    /// ([`HierarchicalScheme::extend_from`]). The postings are rebuilt
    /// in full — textual bounds carry the new generation's idf
    /// weights — but `HSS-Greedy`, the dominant build cost, runs only
    /// for tokens the delta actually touched. The result is identical
    /// to [`build_with_opts`](Self::build_with_opts) over the union
    /// store.
    ///
    /// `store` must be `prev`'s store with `delta_start..` appended
    /// (ids stable). Returns `None` when the selections cannot be
    /// reused (the delta grew the space MBR); the caller falls back to
    /// a fresh build.
    pub fn build_extended(
        prev: &HierarchicalFilter,
        store: Arc<ObjectStore>,
        delta_start: usize,
        cfg: crate::SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Option<Self> {
        let scheme =
            HierarchicalScheme::extend_from(&prev.scheme, &store, delta_start, opts.threads)?;
        let (index, empty) = Self::index_over(&store, &scheme, opts.threads);
        Some(HierarchicalFilter {
            store,
            cfg,
            scheme,
            index,
            empty_token_objects: empty,
        })
    }

    /// Pushes every object's hybrid signature postings over `scheme`
    /// and freezes the index — shared by the fresh and
    /// generation-extending builds.
    fn index_over(
        store: &ObjectStore,
        scheme: &HierarchicalScheme,
        threads: usize,
    ) -> (HybridIndex<u128>, Vec<ObjectId>) {
        let mut index: HybridIndex<u128> = HybridIndex::new();
        let mut empty = Vec::new();
        for (id, o) in store.iter() {
            if o.tokens.is_empty() {
                empty.push(id);
                continue;
            }
            let tsig = TextualSignature::build(&o.tokens, store.weights(), store.token_order());
            for (telem, tbound) in tsig.elements_with_bounds() {
                let grids = scheme
                    .token_grids(telem.token)
                    .expect("object's token must have grids");
                let hsig = grids.signature(&o.region);
                for (gelem, gbound) in hsig.elements_with_bounds() {
                    let key = HierarchicalScheme::key(telem.token, gelem.cell);
                    index.push(key, id.0, gbound, tbound);
                }
            }
        }
        index.finalize_with_threads(threads);
        (index, empty)
    }

    /// Reassembles the filter around a loaded scheme and index (the
    /// empty-token list is recomputed from the store).
    pub(crate) fn from_loaded(
        store: Arc<ObjectStore>,
        cfg: crate::SimilarityConfig,
        scheme: HierarchicalScheme,
        index: HybridIndex<u128>,
    ) -> Self {
        let empty = crate::filters::empty_token_objects(&store);
        HierarchicalFilter {
            store,
            cfg,
            scheme,
            index,
            empty_token_objects: empty,
        }
    }

    /// The hierarchical scheme (per-token grids).
    pub fn scheme(&self) -> &HierarchicalScheme {
        &self.scheme
    }

    /// The underlying index (diagnostics).
    pub fn index(&self) -> &HybridIndex<u128> {
        &self.index
    }
}

impl CandidateFilter for HierarchicalFilter {
    fn name(&self) -> &'static str {
        "Seal"
    }

    fn candidates_into(&self, q: &Query, ctx: &mut QueryContext, stats: &mut SearchStats) {
        let start = Instant::now();
        let store = &self.store;
        let cfg = self.cfg;
        ctx.candidates.clear();
        if q.tokens.is_empty() {
            ctx.candidates.extend_from_slice(&self.empty_token_objects);
            stats.filter_time += start.elapsed();
            return;
        }
        let c_t = crate::signatures::relax(cfg.textual_threshold(q, store.weights()));
        let c_r = crate::signatures::relax(cfg.spatial_threshold(q));
        let tsig = TextualSignature::build(&q.tokens, store.weights(), store.token_order());
        ctx.dedup.begin(store.len());
        for telem in tsig.prefix(c_t) {
            // Tokens absent from the corpus have no grids and no
            // postings; skipping them loses nothing.
            let Some(grids) = self.scheme.token_grids(telem.token) else {
                continue;
            };
            // Example 5: generate the query's signature over *this
            // token's* grids and prefix-prune it spatially.
            let hsig = grids.signature(&q.region);
            for gelem in hsig.prefix(c_r) {
                let key = HierarchicalScheme::key(telem.token, gelem.cell);
                stats.lists_probed += 1;
                for o in self.index.qualifying(&key, c_r, c_t) {
                    stats.postings_scanned += 1;
                    if ctx.dedup.insert(o) {
                        ctx.candidates.push(ObjectId(o));
                    }
                }
            }
        }
        stats.filter_time += start.elapsed();
    }

    fn index_bytes(&self) -> usize {
        self.index.size_bytes()
            + self.scheme.total_cells() * (std::mem::size_of::<u128>() + std::mem::size_of::<f64>())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::{naive_search, verify};
    use crate::SimilarityConfig;

    #[test]
    fn hierarchical_filter_is_complete() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        for budget in [1usize, 4, 8, 32] {
            let f = HierarchicalFilter::build(store.clone(), 4, budget);
            for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.6, 0.6)] {
                let q = q0.with_thresholds(tr, tt).unwrap();
                let mut stats = SearchStats::new();
                let cands = f.candidates(&q, &mut stats);
                let answers = naive_search(&store, &cfg, &q);
                for a in &answers {
                    assert!(
                        cands.contains(a),
                        "budget={budget} τ=({tr},{tt}): answer {a:?} missing"
                    );
                }
                let mut vstats = SearchStats::new();
                assert_eq!(verify(&store, &cfg, &q, &cands, &mut vstats), answers);
            }
        }
    }

    #[test]
    fn larger_budgets_do_not_expand_candidates_on_example() {
        // Section 5.2's motivation: finer, better-placed grids tighten
        // the weight upper bounds, so candidates shrink (or stay equal).
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let coarse = HierarchicalFilter::build(store.clone(), 4, 1);
        let fine = HierarchicalFilter::build(store.clone(), 4, 16);
        let mut s1 = SearchStats::new();
        let mut s2 = SearchStats::new();
        let c1 = coarse.candidates(&q, &mut s1).len();
        let c2 = fine.candidates(&q, &mut s2).len();
        assert!(c2 <= c1, "budget 16 gave {c2} > budget 1's {c1}");
    }

    #[test]
    fn build_extended_equals_fresh_union_build() {
        use seal_geom::Rect;
        use seal_text::{TokenId, TokenSet};
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let cfg = SimilarityConfig::default();
        let prev = HierarchicalFilter::build_with_opts(
            store.clone(),
            4,
            8,
            cfg,
            crate::BuildOpts::default(),
        );
        let delta = vec![
            crate::RoiObject::new(
                Rect::new(25.0, 20.0, 60.0, 42.0).unwrap(),
                TokenSet::from_ids([TokenId(0), TokenId(1), TokenId(2)]),
            ),
            crate::RoiObject::new(
                Rect::new(90.0, 10.0, 118.0, 30.0).unwrap(),
                TokenSet::from_ids([TokenId(4)]),
            ),
        ];
        let union = Arc::new(store.extended(&delta));
        let extended = HierarchicalFilter::build_extended(
            &prev,
            union.clone(),
            store.len(),
            cfg,
            crate::BuildOpts::default(),
        )
        .expect("space unchanged");
        let fresh = HierarchicalFilter::build_with_config(union.clone(), 4, 8, cfg);
        assert_eq!(
            extended.scheme().selected_cells_sorted(),
            fresh.scheme().selected_cells_sorted(),
        );
        assert_eq!(
            extended.index().posting_count(),
            fresh.index().posting_count(),
        );
        // And end to end: identical answers, including for the new ids.
        for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.6, 0.6)] {
            let q = q0.with_thresholds(tr, tt).unwrap();
            let mut s1 = SearchStats::new();
            let mut s2 = SearchStats::new();
            let a = verify(&union, &cfg, &q, &extended.candidates(&q, &mut s1), &mut s1);
            let b = verify(&union, &cfg, &q, &fresh.candidates(&q, &mut s2), &mut s2);
            assert_eq!(a, b, "τ=({tr},{tt})");
            assert_eq!(a, naive_search(&union, &cfg, &q));
        }
    }

    #[test]
    fn name_and_sizes() {
        let (store, _q) = figure1_store();
        let f = HierarchicalFilter::build(Arc::new(store), 3, 8);
        assert_eq!(f.name(), "Seal");
        assert!(f.index_bytes() > 0);
        assert!(f.scheme().total_cells() > 0);
        assert!(f.index().posting_count() > 0);
    }
}
