//! The engine/serving boundary: one trait the whole serving tier
//! programs against.
//!
//! PR 7 hard-wired `seal-server`'s batcher and handlers to
//! `Arc<LiveEngine>`, so any new engine shape forced a serving-tier
//! rewrite. [`QueryEngine`] is that boundary made explicit: the
//! batcher, the HTTP handlers, the CLI's `serve`/`ingest`/`batch`
//! commands and the bench harness all take `Arc<dyn QueryEngine>`, and
//! both the single-arena [`LiveEngine`] and the partitioned
//! [`ShardedEngine`](crate::ShardedEngine) implement it. Construction
//! sites pick the concrete engine; everything downstream is
//! engine-generic.
//!
//! The trait is deliberately the *serving* surface, not the full
//! engine API: exact threshold search (single and batched), ranked
//! top-k, ingest (`push`/`push_all`), `refresh`, cheap observability
//! scalars, token resolution for wire parsers, and a structured
//! [`EngineStatus`] for `/status` and `/metrics`. Diagnostics that
//! only make sense on one shape (filter internals, delta snapshots)
//! stay on the concrete types.

use crate::live::RefreshStats;
use crate::{LiveEngine, ObjectId, Query, RoiObject, SearchResult};
use seal_geom::Rect;
use seal_text::{TokenId, TokenSet};

/// One shard's observability row (a [`LiveEngine`]'s generation,
/// staged-delta size and answerable object count). `/status` and
/// `/metrics` emit one row per shard so operators can see an uneven
/// partition at a glance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard's served generation.
    pub generation: u64,
    /// Objects staged in the shard since its last refresh.
    pub staged: usize,
    /// Objects answerable from the shard right now (frozen + staged).
    pub objects: usize,
}

/// A point-in-time status snapshot of an engine, shape-agnostic.
#[derive(Debug, Clone)]
pub struct EngineStatus {
    /// The active filter's display name (per shard, all shards share
    /// one filter kind).
    pub filter: String,
    /// Index bytes across the whole engine (summed over shards).
    pub index_bytes: usize,
    /// Per-shard detail — empty for a single-arena engine, one row per
    /// shard for a sharded one.
    pub shards: Vec<ShardStatus>,
}

/// The serving-tier engine abstraction. Object-safe (`Arc<dyn
/// QueryEngine>` is the currency of the server and CLI) and
/// `Send + Sync` so one engine serves every connection thread.
pub trait QueryEngine: Send + Sync {
    /// Answers one exact threshold query (current generation plus any
    /// staged delta).
    fn search(&self, q: &Query) -> SearchResult;

    /// Answers a batch in parallel; results come back in input order.
    /// `threads` follows the workspace convention (0 = one worker per
    /// core).
    fn search_batch(&self, queries: &[Query], threads: usize) -> Vec<SearchResult>;

    /// Ranked top-k by iterative threshold deepening (see
    /// [`crate::SealEngine::search_top_k`] for the semantics every
    /// implementation reproduces).
    fn search_top_k(
        &self,
        region: Rect,
        tokens: TokenSet,
        k: usize,
        alpha: f64,
    ) -> Vec<(ObjectId, f64)>;

    /// Stages one object; returns the id it will keep forever.
    fn push(&self, object: RoiObject) -> ObjectId;

    /// Stages a batch; returns the first staged id (ids consecutive),
    /// `None` for an empty batch.
    fn push_all(&self, objects: Vec<RoiObject>) -> Option<ObjectId>;

    /// Folds the staged delta into the next generation(s).
    fn refresh(&self) -> RefreshStats;

    /// The generation (single engine) or weight epoch (sharded) being
    /// served.
    fn generation(&self) -> u64;

    /// Objects staged since the last refresh (summed over shards).
    fn staged_len(&self) -> usize;

    /// Objects answerable right now.
    fn len(&self) -> usize;

    /// True when nothing is answerable.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves a token string through the engine's dictionary, when
    /// it has one (the wire parsers fall back to numeric ids).
    fn resolve_token(&self, token: &str) -> Option<TokenId>;

    /// A structured status snapshot for `/status` and `/metrics`.
    fn status(&self) -> EngineStatus;
}

impl QueryEngine for LiveEngine {
    fn search(&self, q: &Query) -> SearchResult {
        LiveEngine::search(self, q)
    }

    fn search_batch(&self, queries: &[Query], threads: usize) -> Vec<SearchResult> {
        LiveEngine::search_batch(self, queries, threads)
    }

    fn search_top_k(
        &self,
        region: Rect,
        tokens: TokenSet,
        k: usize,
        alpha: f64,
    ) -> Vec<(ObjectId, f64)> {
        LiveEngine::search_top_k(self, region, tokens, k, alpha)
    }

    fn push(&self, object: RoiObject) -> ObjectId {
        LiveEngine::push(self, object)
    }

    fn push_all(&self, objects: Vec<RoiObject>) -> Option<ObjectId> {
        LiveEngine::push_all(self, objects)
    }

    fn refresh(&self) -> RefreshStats {
        LiveEngine::refresh(self)
    }

    fn generation(&self) -> u64 {
        LiveEngine::generation(self)
    }

    fn staged_len(&self) -> usize {
        LiveEngine::staged_len(self)
    }

    fn len(&self) -> usize {
        LiveEngine::len(self)
    }

    fn resolve_token(&self, token: &str) -> Option<TokenId> {
        self.engine()
            .store()
            .dictionary()
            .and_then(|d| d.get(token))
    }

    fn status(&self) -> EngineStatus {
        let engine = self.engine();
        EngineStatus {
            filter: engine.filter_name().to_string(),
            index_bytes: engine.index_bytes(),
            shards: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::FilterKind;
    use std::sync::Arc;

    #[test]
    fn live_engine_serves_through_the_trait_object() {
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let live = LiveEngine::new(store.clone(), FilterKind::Token);
        let direct = live.search(&q).sorted().answers;
        let engine: Arc<dyn QueryEngine> = Arc::new(live);
        assert_eq!(engine.search(&q).sorted().answers, direct);
        assert_eq!(engine.generation(), 0);
        assert_eq!(engine.staged_len(), 0);
        assert_eq!(engine.len(), 7);
        assert!(!engine.is_empty());
        let batch = engine.search_batch(std::slice::from_ref(&q), 1);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].clone().sorted().answers, direct);
        let top = engine.search_top_k(q.region, q.tokens.clone(), 2, 0.5);
        assert!(!top.is_empty());
        let status = engine.status();
        assert_eq!(status.filter, "TokenFilter");
        assert!(status.index_bytes > 0);
        assert!(status.shards.is_empty(), "single engine has no shard rows");
        assert_eq!(engine.resolve_token("anything"), None, "no dictionary");
    }
}
