//! The verification step (`Sig-Verify`, Figure 3) and the naive-scan
//! oracle every filter is tested against.

use crate::{ObjectId, ObjectStore, Query, SearchStats, SimilarityConfig};
use std::time::Instant;

/// Verifies candidates against the exact similarity predicates
/// (Definition 3), appending timing/counters to `stats`.
pub fn verify(
    store: &ObjectStore,
    cfg: &SimilarityConfig,
    q: &Query,
    candidates: &[ObjectId],
    stats: &mut SearchStats,
) -> Vec<ObjectId> {
    let start = Instant::now();
    let w = store.weights();
    let mut answers = Vec::new();
    for &id in candidates {
        if cfg.is_answer(q, store.get(id), w) {
            answers.push(id);
        }
    }
    stats.verify_time += start.elapsed();
    stats.candidates += candidates.len();
    stats.results += answers.len();
    answers
}

/// The brute-force oracle: scans every object and applies Definition 3
/// directly. All filters' `verify(filter(q))` must equal this.
pub fn naive_search(store: &ObjectStore, cfg: &SimilarityConfig, q: &Query) -> Vec<ObjectId> {
    let w = store.weights();
    store
        .iter()
        .filter(|(_, o)| cfg.is_answer(q, o, w))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;

    #[test]
    fn example1_answer_is_o2() {
        let (store, q) = figure1_store();
        let cfg = SimilarityConfig::default();
        let answers = naive_search(&store, &cfg, &q);
        assert_eq!(answers, vec![ObjectId(1)], "Example 1: A = {{o2}}");
    }

    #[test]
    fn verify_filters_a_candidate_superset() {
        let (store, q) = figure1_store();
        let cfg = SimilarityConfig::default();
        let all: Vec<ObjectId> = store.iter().map(|(id, _)| id).collect();
        let mut stats = SearchStats::new();
        let answers = verify(&store, &cfg, &q, &all, &mut stats);
        assert_eq!(answers, naive_search(&store, &cfg, &q));
        assert_eq!(stats.candidates, 7);
        assert_eq!(stats.results, answers.len());
        assert!(stats.verify_time.as_nanos() > 0);
    }

    #[test]
    fn verify_empty_candidates() {
        let (store, q) = figure1_store();
        let cfg = SimilarityConfig::default();
        let mut stats = SearchStats::new();
        let answers = verify(&store, &cfg, &q, &[], &mut stats);
        assert!(answers.is_empty());
        assert_eq!(stats.candidates, 0);
    }

    #[test]
    fn loose_thresholds_return_more() {
        let (store, q) = figure1_store();
        let cfg = SimilarityConfig::default();
        let loose = q.with_thresholds(0.01, 0.01).unwrap();
        let strict = q.with_thresholds(0.9, 0.9).unwrap();
        let a_loose = naive_search(&store, &cfg, &loose);
        let a_strict = naive_search(&store, &cfg, &strict);
        assert!(a_loose.len() >= a_strict.len());
        for id in &a_strict {
            assert!(a_loose.contains(id), "monotonicity violated");
        }
    }
}
