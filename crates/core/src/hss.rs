//! `HSS-Greedy` — hierarchical hybrid signature selection (Section 5.2,
//! Figure 11).
//!
//! For one token `t`, the algorithm picks at most `m_t` grid-tree cells
//! that tile the data space, greedily splitting the cell with the
//! largest *error* (Definition 6):
//!
//! ```text
//! Error(n) = Σ_{children c} (Î(n) − Î(c))²
//! Î(g) = Σ_{o ∈ I(g)} |g ∩ o.R| / |g|
//! ```
//!
//! `Î(g)` is the *expected* inverted-list length of cell `g` under the
//! uniform-query assumption, so a cell has high error when its children
//! would summarize the objects much more precisely than it does. The
//! exact optimization (the HSS problem, Definition 7) is NP-hard by
//! reduction from rectangular partitioning; the greedy walk is the
//! paper's Algorithm 2.

use seal_geom::{GridCellId, GridTree, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A cell selected for one token, with the objects (indices into the
/// caller's region list) whose regions intersect it.
#[derive(Debug, Clone)]
pub struct SelectedCell {
    /// The tree cell.
    pub id: GridCellId,
    /// The cell's rectangle.
    pub rect: Rect,
    /// Indices (into the input `regions`) of intersecting objects —
    /// the `count(g)` statistic is `objects.len()`.
    pub objects: Vec<u32>,
}

/// Priority-queue entry ordered by error (max-heap), with a
/// deterministic tie-break on the packed cell id.
struct QueueEntry {
    error: f64,
    cell: GridCellId,
    rect: Rect,
    /// Indices of regions intersecting this cell.
    subset: Vec<u32>,
}

impl QueueEntry {
    /// Entry with its priority. `Error(n)` is a finite sum of finite
    /// squared differences by construction; the debug assertion pins
    /// that invariant down so the `total_cmp` heap order below is the
    /// documented deterministic one (a non-finite error would still
    /// order totally, but not meaningfully).
    fn new(error: f64, cell: GridCellId, rect: Rect, subset: Vec<u32>) -> Self {
        debug_assert!(
            error.is_finite(),
            "Error(n) must be finite, got {error} for cell {cell:?}"
        );
        QueueEntry {
            error,
            cell,
            rect,
            subset,
        }
    }
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: the
        // escape hatch made any non-finite error value compare Equal
        // to everything, silently breaking the documented
        // deterministic tie-break (Equal-by-accident entries fell
        // through to the cell-id comparison in heap-internal order).
        // Errors are asserted finite at construction; total_cmp keeps
        // the order total even if that invariant were violated.
        self.error
            .total_cmp(&other.error)
            .then_with(|| other.cell.pack().cmp(&self.cell.pack()))
    }
}

/// Expected inverted-list length `Î(g)` over the given region subset.
fn expected_len(rect: &Rect, regions: &[Rect], subset: &[u32]) -> f64 {
    let cell_area = rect.area();
    if cell_area <= 0.0 {
        return 0.0;
    }
    subset
        .iter()
        .map(|&i| rect.intersection_area(&regions[i as usize]) / cell_area)
        .sum()
}

/// Runs `HSS-Greedy` for one token.
///
/// * `regions` — the regions of the objects containing the token
///   (`I(t)`).
/// * `tree` — the grid tree over the data space.
/// * `budget` — `m_t`, the maximum number of selected cells (≥ 1).
///
/// Returns the selected cells; their rectangles exactly tile the data
/// space (a cut of the quad tree), which the hierarchical filter's
/// completeness proof relies on.
pub fn hss_greedy(regions: &[Rect], tree: &GridTree, budget: usize) -> Vec<SelectedCell> {
    let budget = budget.max(1);
    let root_rect = tree.space();
    let all: Vec<u32> = (0..regions.len() as u32).collect();

    let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();
    let root_len = expected_len(&root_rect, regions, &all);
    let root_error = node_error(tree, GridCellId::ROOT, root_len, regions, &all);
    queue.push(QueueEntry::new(
        root_error,
        GridCellId::ROOT,
        root_rect,
        all,
    ));

    let mut selected: Vec<SelectedCell> = Vec::new();
    while let Some(entry) = queue.pop() {
        let at_max_level = entry.cell.level() >= tree.max_level();
        // Figure 11 line 10: splitting replaces 1 queued node by 4, so
        // the post-split cell count is |Gt| + |Q| + |children| − 1.
        let over_budget = selected.len() + queue.len() + 1 + 4 - 1 > budget;
        if at_max_level || over_budget {
            selected.push(SelectedCell {
                id: entry.cell,
                rect: entry.rect,
                objects: entry.subset,
            });
            continue;
        }
        let children = entry.cell.children().expect("level < max_level");
        for child in children {
            let rect = tree.cell_rect(child).expect("child within tree");
            let subset: Vec<u32> = entry
                .subset
                .iter()
                .copied()
                .filter(|&i| rect.intersects(&regions[i as usize]))
                .collect();
            let len = expected_len(&rect, regions, &subset);
            let error = node_error(tree, child, len, regions, &subset);
            queue.push(QueueEntry::new(error, child, rect, subset));
        }
    }
    selected
}

/// `Error(n) = Σ_children (Î(n) − Î(child))²` — approximated from the
/// node's immediate children as in Figure 11's description.
fn node_error(
    tree: &GridTree,
    cell: GridCellId,
    own_len: f64,
    regions: &[Rect],
    subset: &[u32],
) -> f64 {
    let Some(children) = cell.children() else {
        return 0.0;
    };
    if cell.level() >= tree.max_level() {
        return 0.0;
    }
    children
        .iter()
        .map(|&c| {
            let r = tree.cell_rect(c).expect("child within tree");
            let child_subset: Vec<u32> = subset
                .iter()
                .copied()
                .filter(|&i| r.intersects(&regions[i as usize]))
                .collect();
            let l = expected_len(&r, regions, &child_subset);
            (own_len - l) * (own_len - l)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> GridTree {
        GridTree::new(Rect::new(0.0, 0.0, 128.0, 128.0).unwrap(), 5).unwrap()
    }

    fn tiles_space(cells: &[SelectedCell], space: &Rect) -> bool {
        let total: f64 = cells.iter().map(|c| c.rect.area()).sum();
        if (total - space.area()).abs() > 1e-6 {
            return false;
        }
        for (i, a) in cells.iter().enumerate() {
            for b in &cells[i + 1..] {
                if a.rect.intersection_area(&b.rect) > 1e-9 {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn budget_one_returns_root() {
        let regions = vec![Rect::new(0.0, 0.0, 10.0, 10.0).unwrap()];
        let cells = hss_greedy(&regions, &tree(), 1);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].id, GridCellId::ROOT);
        assert_eq!(cells[0].objects, vec![0]);
    }

    #[test]
    fn selection_respects_budget_and_tiles() {
        let regions: Vec<Rect> = (0..20)
            .map(|i| {
                let x = f64::from(i % 5) * 25.0;
                let y = f64::from(i / 5) * 30.0;
                Rect::new(x, y, x + 20.0, y + 25.0).unwrap()
            })
            .collect();
        for budget in [1usize, 4, 8, 16, 32] {
            let cells = hss_greedy(&regions, &tree(), budget);
            assert!(
                cells.len() <= budget,
                "budget {budget}: got {}",
                cells.len()
            );
            assert!(tiles_space(&cells, &tree().space()), "budget {budget}");
        }
    }

    #[test]
    fn clustered_regions_attract_fine_cells() {
        // All regions inside the bottom-left level-1 quadrant: the
        // greedy should refine there, leaving the rest coarse.
        let regions: Vec<Rect> = (0..16)
            .map(|i| {
                let x = f64::from(i % 4) * 14.0;
                let y = f64::from(i / 4) * 14.0;
                Rect::new(x, y, x + 10.0, y + 10.0).unwrap()
            })
            .collect();
        let cells = hss_greedy(&regions, &tree(), 16);
        assert!(tiles_space(&cells, &tree().space()));
        // The deepest selected cell must lie in the bottom-left
        // quadrant (x,y < 64).
        let deepest = cells.iter().max_by_key(|c| c.id.level()).unwrap();
        assert!(deepest.id.level() >= 2, "no refinement happened");
        assert!(deepest.rect.min().x < 64.0 && deepest.rect.min().y < 64.0);
        // Cells far from the data keep few objects.
        for c in &cells {
            if c.rect.min().x >= 64.0 && c.rect.min().y >= 64.0 {
                assert!(c.objects.is_empty());
            }
        }
    }

    #[test]
    fn empty_token_is_fine() {
        let cells = hss_greedy(&[], &tree(), 8);
        assert!(!cells.is_empty());
        assert!(tiles_space(&cells, &tree().space()));
        assert!(cells.iter().all(|c| c.objects.is_empty()));
    }

    #[test]
    fn subsets_are_exact() {
        let regions = vec![
            Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(),
            Rect::new(100.0, 100.0, 120.0, 120.0).unwrap(),
        ];
        let cells = hss_greedy(&regions, &tree(), 16);
        for c in &cells {
            for i in 0..regions.len() as u32 {
                let expect = c.rect.intersects(&regions[i as usize]);
                assert_eq!(c.objects.contains(&i), expect, "cell {:?}", c.id);
            }
        }
    }

    #[test]
    fn max_level_caps_depth() {
        let shallow = GridTree::new(Rect::new(0.0, 0.0, 64.0, 64.0).unwrap(), 2).unwrap();
        let regions = vec![Rect::new(0.0, 0.0, 1.0, 1.0).unwrap()];
        let cells = hss_greedy(&regions, &shallow, 1024);
        assert!(cells.iter().all(|c| c.id.level() <= 2));
        assert!(tiles_space(&cells, &shallow.space()));
    }
}
