//! Cost-based grid granularity selection (Section 4.3).
//!
//! The expected query cost of a grid set `G` is
//! `cost(G) = π1 · Σ_g P(g)·|I(g)| + π2 · |C|` (Equation 4): the filter
//! step pays `π1` per posting retrieved, the verification step pays `π2`
//! per candidate. The selector walks the grid-tree levels top-down,
//! estimates the cost of each `2^l × 2^l` partition against a query
//! workload, and stops when the benefit of the next split,
//! `B(l, l+1) = cost(G_l) − cost(G_{l+1})`, falls below a threshold `B`
//! (Lemma 4 guarantees such a level exists).

use crate::{ObjectStore, Query};
use seal_geom::Grid;

/// The per-posting / per-candidate cost weights `π1`, `π2`.
///
/// Defaults reflect the paper's observation that verification is the
/// bottleneck (Section 5.2): verifying a candidate — fetching the
/// object, exact area arithmetic, a token-set merge — costs roughly an
/// order of magnitude more than streaming one posting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of retrieving one posting and merging it into candidates.
    pub pi1: f64,
    /// Cost of verifying one candidate.
    pub pi2: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            pi1: 1.0,
            pi2: 10.0,
        }
    }
}

/// Estimated cost of one grid level for a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCost {
    /// Tree level (`side = 2^level`).
    pub level: u8,
    /// Cells per side.
    pub side: u32,
    /// `π1 · Σ` postings the workload would retrieve (worst case
    /// `|Ic(g)| = |I(g)|`, as in the paper's analysis).
    pub filter_cost: f64,
    /// `π2 · Σ` candidates the workload would verify.
    pub verify_cost: f64,
}

impl LevelCost {
    /// Total expected cost.
    pub fn total(&self) -> f64 {
        self.filter_cost + self.verify_cost
    }
}

/// Estimates the per-level costs for levels `0..=max_level`.
///
/// `|I(g)|` is computed exactly per level with a 2-D difference array
/// (`O(|O| + 4^l)` per level); `|C|` per query is the number of objects
/// intersecting the query's cell-aligned expansion — exactly the
/// candidate set the grid filter would produce in the worst case.
pub fn level_costs(
    store: &ObjectStore,
    workload: &[Query],
    max_level: u8,
    model: CostModel,
) -> Vec<LevelCost> {
    let mut out = Vec::with_capacity(usize::from(max_level) + 1);
    for level in 0..=max_level {
        let side = 1u32 << level;
        let grid = Grid::new(store.space(), side).expect("store space non-degenerate");
        let counts = cell_counts(store, &grid);
        let mut filter = 0.0;
        let mut verify = 0.0;
        for q in workload {
            let (cols, rows) = grid.cell_range(&q.region);
            let mut postings = 0u64;
            for iy in rows.clone() {
                let row_base = u64::from(iy) * u64::from(side);
                for ix in cols.clone() {
                    postings += u64::from(counts[(row_base + u64::from(ix)) as usize]);
                }
            }
            filter += postings as f64;
            // Candidates: objects intersecting the cell-aligned
            // expansion of the query region.
            let expanded = expansion_rect(&grid, q);
            let cands = store
                .objects()
                .iter()
                .filter(|o| o.region.intersects(&expanded))
                .count();
            verify += cands as f64;
        }
        let n = workload.len().max(1) as f64;
        out.push(LevelCost {
            level,
            side,
            filter_cost: model.pi1 * filter / n,
            verify_cost: model.pi2 * verify / n,
        });
    }
    out
}

/// Per-cell `|I(g)|` via a 2-D difference array: each object's cell
/// range contributes +1 over a rectangle of cells.
fn cell_counts(store: &ObjectStore, grid: &Grid) -> Vec<u32> {
    let side = grid.side() as usize;
    let mut diff = vec![0i64; (side + 1) * (side + 1)];
    for o in store.objects() {
        let (cols, rows) = grid.cell_range(&o.region);
        let (c0, c1) = (*cols.start() as usize, *cols.end() as usize);
        let (r0, r1) = (*rows.start() as usize, *rows.end() as usize);
        diff[r0 * (side + 1) + c0] += 1;
        diff[r0 * (side + 1) + c1 + 1] -= 1;
        diff[(r1 + 1) * (side + 1) + c0] -= 1;
        diff[(r1 + 1) * (side + 1) + c1 + 1] += 1;
    }
    let mut counts = vec![0u32; side * side];
    let mut rowacc = vec![0i64; side + 1];
    for r in 0..side {
        let mut acc = 0i64;
        for c in 0..side {
            rowacc[c] += diff[r * (side + 1) + c];
            acc += rowacc[c];
            counts[r * side + c] = u32::try_from(acc).expect("count never negative");
        }
        rowacc[side] += diff[r * (side + 1) + side];
    }
    counts
}

/// The query region expanded to the boundaries of the cells it touches.
fn expansion_rect(grid: &Grid, q: &Query) -> seal_geom::Rect {
    let (cols, rows) = grid.cell_range(&q.region);
    let lo = grid.cell_rect(seal_geom::GridCell {
        ix: *cols.start(),
        iy: *rows.start(),
    });
    let hi = grid.cell_rect(seal_geom::GridCell {
        ix: *cols.end(),
        iy: *rows.end(),
    });
    lo.mbr_with(&hi)
}

/// Walks levels top-down and returns the first level whose split
/// benefit falls below `benefit_threshold` (the `B` of Section 4.3) —
/// or `max_level` if the benefit never does.
pub fn select_granularity(
    store: &ObjectStore,
    workload: &[Query],
    model: CostModel,
    benefit_threshold: f64,
    max_level: u8,
) -> u32 {
    let costs = level_costs(store, workload, max_level, model);
    for w in costs.windows(2) {
        let benefit = w[0].total() - w[1].total();
        if benefit < benefit_threshold {
            return w[0].side;
        }
    }
    costs.last().map(|c| c.side).unwrap_or(1)
}

/// Convenience: builds a [`crate::SealEngine`] with a grid filter whose
/// granularity was selected by the §4.3 walk against a probe workload.
///
/// This is the "GenSig must pick a granularity" step of the paper made
/// executable: callers that don't know their data's density let the
/// cost model choose.
pub fn build_auto_grid_engine(
    store: std::sync::Arc<ObjectStore>,
    probe_workload: &[Query],
    benefit_threshold: f64,
    max_level: u8,
) -> crate::SealEngine {
    let side = select_granularity(
        &store,
        probe_workload,
        CostModel::default(),
        benefit_threshold,
        max_level,
    );
    crate::SealEngine::build(store, crate::FilterKind::Grid { side })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;

    #[test]
    fn cell_counts_match_bruteforce() {
        let (store, _q) = figure1_store();
        for level in 0..5u8 {
            let grid = Grid::new(store.space(), 1 << level).unwrap();
            let counts = cell_counts(&store, &grid);
            let side = grid.side();
            for iy in 0..side {
                for ix in 0..side {
                    let cell = seal_geom::GridCell { ix, iy };
                    let rect = grid.cell_rect(cell);
                    let expect = store
                        .objects()
                        .iter()
                        .filter(|o| {
                            let (cols, rows) = grid.cell_range(&o.region);
                            cols.contains(&ix) && rows.contains(&iy)
                        })
                        .count() as u32;
                    assert_eq!(
                        counts[(u64::from(iy) * u64::from(side) + u64::from(ix)) as usize],
                        expect,
                        "level {level} cell {cell:?} rect {rect:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn verification_cost_decreases_with_level() {
        // Finer grids expand queries less → fewer worst-case candidates.
        let (store, q) = figure1_store();
        let costs = level_costs(&store, &[q], 5, CostModel::default());
        for w in costs.windows(2) {
            assert!(
                w[1].verify_cost <= w[0].verify_cost + 1e-9,
                "verify cost increased from level {} to {}",
                w[0].level,
                w[1].level
            );
        }
    }

    #[test]
    fn selection_terminates_and_is_a_power_of_two() {
        let (store, q) = figure1_store();
        let side = select_granularity(&store, &[q], CostModel::default(), 0.5, 8);
        assert!(side.is_power_of_two());
        assert!(side <= 256);
    }

    #[test]
    fn huge_benefit_threshold_selects_level_zero() {
        let (store, q) = figure1_store();
        let side = select_granularity(&store, &[q], CostModel::default(), f64::INFINITY, 8);
        assert_eq!(side, 1);
    }

    #[test]
    fn zero_threshold_reaches_max_level_or_plateau() {
        let (store, q) = figure1_store();
        let side = select_granularity(&store, &[q], CostModel::default(), f64::NEG_INFINITY, 6);
        assert_eq!(side, 64, "negative threshold never stops early");
    }

    #[test]
    fn empty_workload_is_safe() {
        let (store, _q) = figure1_store();
        let costs = level_costs(&store, &[], 3, CostModel::default());
        assert_eq!(costs.len(), 4);
        assert!(costs.iter().all(|c| c.total() == 0.0));
    }

    #[test]
    fn auto_grid_engine_answers_correctly() {
        use crate::verify::naive_search;
        let (store, q) = figure1_store();
        let store = std::sync::Arc::new(store);
        let engine = build_auto_grid_engine(store.clone(), std::slice::from_ref(&q), 1.0, 6);
        let got = engine.search(&q).sorted();
        let mut expect = naive_search(&store, &crate::SimilarityConfig::default(), &q);
        expect.sort_unstable();
        assert_eq!(got.answers, expect);
        assert_eq!(engine.filter_name(), "GridFilter");
    }
}
