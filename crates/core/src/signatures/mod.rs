//! Signature generation (Sections 3–5).
//!
//! A *signature* maps an object or query to a set of elements such that
//! similar pairs must share elements. Four schemes from the paper:
//!
//! * [`textual`] — tokens, ordered by descending idf (Section 3.2).
//! * [`grid`] — grid cells with overlap-area weights, ordered by
//!   ascending `count(g)` (Section 4).
//! * [`hash_hybrid`] — hashed `(token, cell)` pairs with dual bounds
//!   (Section 5.1).
//! * [`hierarchical`] — per-token hierarchical grids selected by
//!   `HSS-Greedy` (Section 5.2).
//!
//! This module hosts the two primitives everything shares:
//! [`suffix_sums`] (Lemma 3's threshold bounds) and [`prefix_len`]
//! (Lemma 2's prefix selection).

pub mod grid;
pub mod hash_hybrid;
pub mod hierarchical;
pub mod textual;

/// Conservatively relaxes a signature-similarity threshold before it is
/// used for pruning.
///
/// Signature weights are sums of many floating-point areas (grid-cell
/// overlaps), so an object that satisfies the similarity predicate
/// *exactly* (e.g. a self-query at `τ = 1`) can have a signature weight
/// a few ULPs below the analytic threshold. Lowering the threshold by a
/// relative 1e-9 (plus an absolute 1e-12 for thresholds near zero) only
/// widens the candidate superset — verification still applies the exact
/// predicate — so correctness is preserved and the FP edge disappears.
#[inline]
pub fn relax(c: f64) -> f64 {
    c * (1.0 - 1e-9) - 1e-12
}

/// `suffix[i] = Σ_{j ≥ i} weights[j]` — the threshold bound `c_{s_i}(o)`
/// of Lemma 3 for the element at position `i` of a signature already
/// sorted by the global order.
///
/// The returned vector has the same length as the input and is
/// non-increasing (weights are non-negative).
pub fn suffix_sums(weights: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; weights.len()];
    let mut acc = 0.0;
    for i in (0..weights.len()).rev() {
        acc += weights[i];
        out[i] = acc;
    }
    out
}

/// Lemma 2's prefix length: the number of leading elements to keep so
/// that the *dropped* suffix weighs less than `c`. Equivalently, the
/// number of positions whose suffix sum (element included) is ≥ `c`.
///
/// `suffix` must be non-increasing (the output of [`suffix_sums`]).
/// For `c ≤ 0` the whole signature is the prefix (no pruning is sound
/// when the threshold is trivial).
pub fn prefix_len(suffix: &[f64], c: f64) -> usize {
    suffix.partition_point(|&s| s >= c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_sums_basic() {
        let s = suffix_sums(&[3.0, 2.0, 1.0]);
        assert_eq!(s, vec![6.0, 3.0, 1.0]);
        assert!(suffix_sums(&[]).is_empty());
    }

    #[test]
    fn suffix_sums_nonincreasing() {
        let s = suffix_sums(&[0.5, 0.0, 2.5, 1.0]);
        assert!(s.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn prefix_len_figure5_example() {
        // Figure 5: SR(q) = {g7,g10,g11,g14,g15,g6} with weights
        // 150,750,450,500,300,250 and cR = 600. The paper selects the
        // prefix {g7,g10,g11,g14}: dropping {g15,g6} loses 550 < 600,
        // while dropping {g14,g15,g6} would lose 1050 ≥ 600.
        let weights = [150.0, 750.0, 450.0, 500.0, 300.0, 250.0];
        let suffix = suffix_sums(&weights);
        assert_eq!(prefix_len(&suffix, 600.0), 4);
    }

    #[test]
    fn prefix_len_boundaries() {
        let suffix = suffix_sums(&[1.0, 1.0, 1.0]);
        assert_eq!(prefix_len(&suffix, 0.0), 3, "trivial threshold keeps all");
        assert_eq!(prefix_len(&suffix, 3.0), 1);
        assert_eq!(prefix_len(&suffix, 3.1), 0, "unreachable threshold");
        assert_eq!(prefix_len(&suffix, 1.0), 3);
        assert_eq!(prefix_len(&suffix, 1.1), 2);
        assert_eq!(prefix_len(&[], 1.0), 0);
    }

    #[test]
    fn prefix_drop_invariant() {
        // Lemma 2: the dropped suffix must weigh < c; keeping one fewer
        // element would drop ≥ c.
        let weights = [5.0, 4.0, 3.0, 2.0, 1.0];
        let suffix = suffix_sums(&weights);
        for c in [0.5, 1.0, 2.5, 3.0, 6.0, 14.9, 15.0, 16.0] {
            let p = prefix_len(&suffix, c);
            let dropped: f64 = weights[p..].iter().sum();
            assert!(
                dropped < c || p == weights.len(),
                "c={c}: dropped {dropped}"
            );
            if p > 0 {
                let one_less: f64 = weights[p - 1..].iter().sum();
                assert!(one_less >= c, "c={c}: prefix not minimal");
            }
        }
    }
}
