//! Hierarchical hybrid signatures (Section 5.2).
//!
//! For every token `t`, `HSS-Greedy` selects at most `m_t` grid-tree
//! cells `G_t` that tile the data space, adapting the cell sizes to the
//! regions of the objects containing `t` (Figure 10). The hybrid
//! signature of an object `o` for token `t` is then the cells of `G_t`
//! intersecting `o.R`, with weights `|g ∩ o.R|`.
//!
//! Per-token cells are sorted by the paper's order: ascending tree
//! level, then ascending intersect-count, then packed id.

use crate::hss::{hss_greedy, SelectedCell};
use crate::signatures::{prefix_len, suffix_sums};
use crate::ObjectStore;
use seal_geom::{GridCellId, GridTree, Rect};
use seal_text::TokenId;
use std::collections::{HashMap, HashSet};

/// One token's selected hierarchical grids with their global order.
#[derive(Debug, Clone)]
pub struct TokenGrids {
    /// Cells in the token's global order.
    cells: Vec<SelectedCell>,
    /// Packed id → position in `cells` (for signature ordering).
    rank: HashMap<u64, usize>,
    /// Packed ids of strict ancestors of selected cells, so signature
    /// generation can descend the quad tree and visit only branches
    /// intersecting the region — `O(hits · depth)` instead of scanning
    /// every selected cell (matters for small query regions against
    /// large per-token budgets).
    ancestors: HashSet<u64>,
    /// The data space (root cell rectangle).
    space: Rect,
}

impl TokenGrids {
    pub(crate) fn new(cells: Vec<SelectedCell>, space: Rect) -> Self {
        let mut rank = HashMap::with_capacity(cells.len());
        let mut ancestors = HashSet::new();
        for (i, c) in cells.iter().enumerate() {
            rank.insert(c.id.pack(), i);
            let mut cur = c.id;
            while let Some(p) = cur.parent() {
                // Ancestor chains overlap heavily; stop at first seen.
                if !ancestors.insert(p.pack()) {
                    break;
                }
                cur = p;
            }
        }
        TokenGrids {
            cells,
            rank,
            ancestors,
            space,
        }
    }

    /// The ordered cells.
    #[inline]
    pub fn cells(&self) -> &[SelectedCell] {
        &self.cells
    }

    /// The spatial signature of a region over this token's grids:
    /// intersecting cells with weights `|g ∩ R|`, in the token's global
    /// order, plus the suffix bounds. Found by quad-tree descent from
    /// the root, pruning branches disjoint from the region.
    pub fn signature(&self, region: &Rect) -> HierSignature {
        let mut hits: Vec<(usize, GridCellId, Rect)> = Vec::new();
        let mut stack: Vec<(GridCellId, Rect)> = vec![(GridCellId::ROOT, self.space)];
        while let Some((id, rect)) = stack.pop() {
            if !rect.intersects(region) {
                continue;
            }
            let packed = id.pack();
            if let Some(&pos) = self.rank.get(&packed) {
                hits.push((pos, id, rect));
            } else if self.ancestors.contains(&packed) {
                if let Some(children) = id.children() {
                    for child in children {
                        stack.push((child, child_rect(&rect, child)));
                    }
                }
            }
            // Neither selected nor an ancestor: dead branch (cannot
            // happen for cells inside the space, since the selected
            // cells tile it — defensive skip).
        }
        hits.sort_unstable_by_key(|(pos, _, _)| *pos);
        let elements: Vec<HierElement> = hits
            .into_iter()
            .map(|(_, id, rect)| HierElement {
                cell: id,
                weight: rect.intersection_area(region),
            })
            .collect();
        let suffix = suffix_sums(&elements.iter().map(|e| e.weight).collect::<Vec<f64>>());
        HierSignature { elements, suffix }
    }
}

/// One token's `HSS-Greedy` selection in the token's global order — a
/// pure function of (the token's regions in id order, the tree, the
/// budget), which is what makes per-token reuse across store
/// generations ([`HierarchicalScheme::extend_from`]) sound.
///
/// "Judiciously select": a token occurring in k objects gains nothing
/// from more than ~k grids (its inverted lists hold k postings total),
/// so rare tokens keep coarse tilings. This is the index-size
/// constraint of Section 5.2 applied per-token, and it is what keeps
/// HierarchicalInv smaller than HashInv in Table 1.
fn select_token_grids(regions: &[Rect], tree: &GridTree, budget: usize, space: Rect) -> TokenGrids {
    let budget_t = budget.min(regions.len()).max(1);
    let mut cells = hss_greedy(regions, tree, budget_t);
    // Global order within the token: level asc, count asc, id.
    cells.sort_by(|a, b| {
        a.id.level()
            .cmp(&b.id.level())
            .then(a.objects.len().cmp(&b.objects.len()))
            .then(a.id.pack().cmp(&b.id.pack()))
    });
    TokenGrids::new(cells, space)
}

/// The rectangle of `child` given its parent's rectangle (quadrant
/// split; exact halves, matching `GridTree::cell_rect` up to the FP
/// identity of repeated halving).
fn child_rect(parent: &Rect, child: GridCellId) -> Rect {
    let midx = (parent.min().x + parent.max().x) / 2.0;
    let midy = (parent.min().y + parent.max().y) / 2.0;
    let left = child.ix().is_multiple_of(2);
    let bottom = child.iy().is_multiple_of(2);
    let (x0, x1) = if left {
        (parent.min().x, midx)
    } else {
        (midx, parent.max().x)
    };
    let (y0, y1) = if bottom {
        (parent.min().y, midy)
    } else {
        (midy, parent.max().y)
    };
    Rect::new(x0, y0, x1, y1).expect("quadrant rect is valid")
}

/// A cell of a token's hierarchical signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierElement {
    /// The tree cell.
    pub cell: GridCellId,
    /// `|g ∩ R|`.
    pub weight: f64,
}

/// A per-token spatial signature with Lemma 2/3 support.
#[derive(Debug, Clone, PartialEq)]
pub struct HierSignature {
    elements: Vec<HierElement>,
    suffix: Vec<f64>,
}

impl HierSignature {
    /// All elements in the token's global order.
    #[inline]
    pub fn elements(&self) -> &[HierElement] {
        &self.elements
    }

    /// The Lemma 3 bound at position `i`.
    #[inline]
    pub fn bound(&self, i: usize) -> f64 {
        self.suffix[i]
    }

    /// The Lemma 2 prefix for threshold `c`.
    pub fn prefix(&self, c: f64) -> &[HierElement] {
        &self.elements[..prefix_len(&self.suffix, c)]
    }

    /// Iterates `(element, bound)` pairs.
    pub fn elements_with_bounds(&self) -> impl Iterator<Item = (HierElement, f64)> + '_ {
        self.elements
            .iter()
            .copied()
            .zip(self.suffix.iter().copied())
    }
}

/// The corpus-level hierarchical scheme: per-token grids.
///
/// Grids live behind `Arc` so cloning a scheme — and, more to the
/// point, reusing untouched tokens across store generations in
/// [`extend_from`](Self::extend_from) — is a refcount bump per token,
/// not a deep copy of every selected cell's object list.
#[derive(Debug, Clone)]
pub struct HierarchicalScheme {
    tree: GridTree,
    per_token: HashMap<TokenId, std::sync::Arc<TokenGrids>>,
    budget: usize,
}

impl HierarchicalScheme {
    /// Builds per-token grids for every token in the store.
    ///
    /// * `max_level` — depth of the grid tree (the finest granularity
    ///   `HSS-Greedy` may select).
    /// * `budget` — `m_t`, identical for every token here; Figure 15's
    ///   index-size sweep varies it.
    pub fn build(store: &ObjectStore, max_level: u8, budget: usize) -> Self {
        Self::build_with_threads(store, max_level, budget, 1)
    }

    /// [`build`](Self::build) with the per-token `HSS-Greedy`
    /// selections fanned out over `threads` workers (0 = one per
    /// core). Each token's selection depends only on that token's
    /// regions, so the fan-out is embarrassingly parallel and the
    /// selected cells are **identical for every thread count** — the
    /// work-stealing loop only changes which worker computes which
    /// token.
    pub fn build_with_threads(
        store: &ObjectStore,
        max_level: u8,
        budget: usize,
        threads: usize,
    ) -> Self {
        let tree = GridTree::new(store.space(), max_level).expect("valid store space");
        // Group object regions by token.
        let mut by_token: HashMap<TokenId, Vec<Rect>> = HashMap::new();
        for o in store.objects() {
            for t in o.tokens.iter() {
                by_token.entry(t).or_default().push(o.region);
            }
        }
        let tokens: Vec<(TokenId, Vec<Rect>)> = by_token.into_iter().collect();
        let space = store.space();
        let grids: Vec<TokenGrids> =
            seal_index::parallel::map_indexed(tokens.len(), threads, |i| {
                select_token_grids(&tokens[i].1, &tree, budget, space)
            });
        let per_token: HashMap<TokenId, std::sync::Arc<TokenGrids>> = tokens
            .into_iter()
            .map(|(t, _)| t)
            .zip(grids.into_iter().map(std::sync::Arc::new))
            .collect();
        HierarchicalScheme {
            tree,
            per_token,
            budget,
        }
    }

    /// Builds the scheme for the **next generation** of a store by
    /// reusing `prev`'s per-token selections wherever they are
    /// provably unchanged.
    ///
    /// A token's `HSS-Greedy` selection is a pure function of (the
    /// regions of the objects containing it, the grid tree, the
    /// budget). `store` must be `prev`'s store with `delta_start..`
    /// appended (ids stable); then a token absent from the delta has
    /// exactly the regions it had, so its selection is reused
    /// verbatim, and only tokens occurring in the delta are
    /// re-selected (over their full region list, so the result is
    /// *identical* to [`build_with_threads`] over the union — the
    /// generation contract).
    ///
    /// Returns `None` when the reuse precondition fails: the delta
    /// extended the space MBR, so the grid tree — and with it every
    /// selection — changed, and the caller must fall back to a fresh
    /// build.
    ///
    /// [`build_with_threads`]: Self::build_with_threads
    pub fn extend_from(
        prev: &HierarchicalScheme,
        store: &ObjectStore,
        delta_start: usize,
        threads: usize,
    ) -> Option<Self> {
        let tree = GridTree::new(store.space(), prev.tree.max_level()).ok()?;
        if tree != prev.tree {
            return None;
        }
        // Tokens occurring in the delta gained regions: re-select them
        // over their full (old + new) region lists, in id order — the
        // exact input a fresh build would hand `hss_greedy`.
        let delta = &store.objects()[delta_start..];
        let touched: HashSet<TokenId> = delta.iter().flat_map(|o| o.tokens.iter()).collect();
        if touched.is_empty() {
            return Some(prev.clone());
        }
        let mut by_token: HashMap<TokenId, Vec<Rect>> =
            touched.iter().map(|&t| (t, Vec::new())).collect();
        for o in store.objects() {
            for t in o.tokens.iter() {
                if let Some(regions) = by_token.get_mut(&t) {
                    regions.push(o.region);
                }
            }
        }
        let tokens: Vec<(TokenId, Vec<Rect>)> = by_token.into_iter().collect();
        let space = store.space();
        let budget = prev.budget;
        let grids: Vec<TokenGrids> =
            seal_index::parallel::map_indexed(tokens.len(), threads, |i| {
                select_token_grids(&tokens[i].1, &tree, budget, space)
            });
        // Untouched tokens: a refcount bump each, never a cell copy.
        let mut per_token = prev.per_token.clone();
        for ((t, _), g) in tokens.into_iter().zip(grids) {
            per_token.insert(t, std::sync::Arc::new(g));
        }
        Some(HierarchicalScheme {
            tree,
            per_token,
            budget,
        })
    }

    /// Every token's selected cells as sorted `(token, packed cell)`
    /// pairs — a canonical fingerprint of the whole HSS selection.
    /// Two schemes built from the same store select the same cells iff
    /// these vectors are equal; `bench_build` and the
    /// parallel-determinism tests compare them across thread counts.
    pub fn selected_cells_sorted(&self) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = self
            .per_token
            .iter()
            .flat_map(|(t, g)| g.cells.iter().map(move |c| (t.0, c.id.pack())))
            .collect();
        out.sort_unstable();
        out
    }

    /// The grid tree.
    #[inline]
    pub fn tree(&self) -> &GridTree {
        &self.tree
    }

    /// The per-token budget `m_t`.
    #[inline]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The grids selected for a token (None if the token occurs in no
    /// object — probing it can produce no candidates).
    pub fn token_grids(&self, t: TokenId) -> Option<&TokenGrids> {
        self.per_token.get(&t).map(|g| g.as_ref())
    }

    /// Total selected cells across tokens (index-size accounting).
    pub fn total_cells(&self) -> usize {
        self.per_token.values().map(|g| g.cells.len()).sum()
    }

    /// Packs a `(token, cell)` pair into the hybrid-index key space.
    #[inline]
    pub fn key(t: TokenId, cell: GridCellId) -> u128 {
        (u128::from(t.0) << 64) | u128::from(cell.pack())
    }

    /// The full per-token grid map (persistence walks it to serialize
    /// each token's cells in selection order).
    pub(crate) fn per_token(&self) -> &HashMap<TokenId, std::sync::Arc<TokenGrids>> {
        &self.per_token
    }

    /// Reassembles a scheme from persisted parts. The per-token cell
    /// order is authoritative: `TokenGrids::new` derives ranks from it
    /// without re-sorting, so a round-tripped scheme probes cells in
    /// exactly the order the builder selected them.
    pub(crate) fn from_parts(
        tree: GridTree,
        per_token: HashMap<TokenId, std::sync::Arc<TokenGrids>>,
        budget: usize,
    ) -> Self {
        HierarchicalScheme {
            tree,
            per_token,
            budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;

    #[test]
    fn every_token_gets_a_tiling() {
        let (store, _q) = figure1_store();
        let scheme = HierarchicalScheme::build(&store, 4, 8);
        for t in 0..5u32 {
            let grids = scheme.token_grids(TokenId(t)).expect("token occurs");
            let total: f64 = grids.cells().iter().map(|c| c.rect.area()).sum();
            assert!(
                (total - store.space().area()).abs() < 1e-6,
                "token {t} does not tile the space"
            );
            assert!(grids.cells().len() <= 8);
        }
        assert!(scheme.token_grids(TokenId(99)).is_none());
    }

    #[test]
    fn signature_weights_sum_to_clipped_region() {
        let (store, q) = figure1_store();
        let scheme = HierarchicalScheme::build(&store, 4, 8);
        let grids = scheme.token_grids(TokenId(0)).unwrap();
        let sig = grids.signature(&q.region);
        let total: f64 = sig.elements().iter().map(|e| e.weight).sum();
        let clipped = q.region.intersection_area(&store.space());
        assert!((total - clipped).abs() < 1e-9);
    }

    #[test]
    fn order_is_level_then_count() {
        let (store, _q) = figure1_store();
        let scheme = HierarchicalScheme::build(&store, 4, 16);
        for t in 0..5u32 {
            let cells = scheme.token_grids(TokenId(t)).unwrap().cells();
            for w in cells.windows(2) {
                let (a, b) = (&w[0], &w[1]);
                assert!(
                    a.id.level() < b.id.level()
                        || (a.id.level() == b.id.level() && a.objects.len() <= b.objects.len()),
                    "order violated for token {t}"
                );
            }
        }
    }

    #[test]
    fn prefix_lemma_holds() {
        let (store, q) = figure1_store();
        let scheme = HierarchicalScheme::build(&store, 4, 8);
        let grids = scheme.token_grids(TokenId(1)).unwrap();
        let sig = grids.signature(&q.region);
        let c = 0.25 * q.region.area();
        let p = sig.prefix(c);
        let dropped: f64 = sig.elements()[p.len()..].iter().map(|e| e.weight).sum();
        assert!(dropped < c);
    }

    #[test]
    fn keys_are_injective_across_tokens_and_cells() {
        let a = HierarchicalScheme::key(TokenId(1), GridCellId::new(1, 0, 0).unwrap());
        let b = HierarchicalScheme::key(TokenId(1), GridCellId::new(1, 1, 0).unwrap());
        let c = HierarchicalScheme::key(TokenId(2), GridCellId::new(1, 0, 0).unwrap());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn extend_from_matches_fresh_build() {
        use crate::RoiObject;
        use seal_text::TokenSet;
        let (store, _q) = figure1_store();
        let prev = HierarchicalScheme::build(&store, 4, 8);
        // Delta inside the existing space: reuse applies.
        let delta = vec![
            RoiObject::new(
                Rect::new(30.0, 30.0, 55.0, 55.0).unwrap(),
                TokenSet::from_ids([TokenId(0), TokenId(3)]),
            ),
            RoiObject::new(
                Rect::new(100.0, 100.0, 110.0, 115.0).unwrap(),
                TokenSet::from_ids([TokenId(3)]),
            ),
        ];
        let union = store.extended(&delta);
        for threads in [1usize, 2, 0] {
            let extended = HierarchicalScheme::extend_from(&prev, &union, store.len(), threads)
                .expect("space unchanged: reuse applies");
            let fresh = HierarchicalScheme::build(&union, 4, 8);
            assert_eq!(
                extended.selected_cells_sorted(),
                fresh.selected_cells_sorted(),
                "threads={threads}: extended scheme diverged from the fresh build"
            );
            assert_eq!(extended.total_cells(), fresh.total_cells());
        }
    }

    #[test]
    fn extend_from_refuses_when_space_grows() {
        use crate::RoiObject;
        use seal_text::TokenSet;
        let (store, _q) = figure1_store();
        let prev = HierarchicalScheme::build(&store, 4, 8);
        let delta = vec![RoiObject::new(
            Rect::new(-50.0, -50.0, -40.0, -40.0).unwrap(), // outside the MBR
            TokenSet::from_ids([TokenId(0)]),
        )];
        let union = store.extended(&delta);
        assert!(
            HierarchicalScheme::extend_from(&prev, &union, store.len(), 1).is_none(),
            "grown space must force a fresh build"
        );
    }

    #[test]
    fn extend_from_with_empty_delta_is_identity() {
        let (store, _q) = figure1_store();
        let prev = HierarchicalScheme::build(&store, 4, 8);
        let same = HierarchicalScheme::extend_from(&prev, &store, store.len(), 1).unwrap();
        assert_eq!(same.selected_cells_sorted(), prev.selected_cells_sorted());
    }

    #[test]
    fn total_cells_respects_budget() {
        let (store, _q) = figure1_store();
        let scheme = HierarchicalScheme::build(&store, 4, 4);
        assert!(scheme.total_cells() <= 5 * 4);
        assert_eq!(scheme.budget(), 4);
    }
}
