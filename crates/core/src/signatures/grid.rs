//! Grid-based spatial signatures (Section 4).
//!
//! The scheme partitions the data space into `side × side` uniform
//! cells. An object's signature is the cells its region intersects
//! (Definition 4) with weights `w(g|o) = |g ∩ o.R|` (Equation 1), sorted
//! by the paper's global grid order: **ascending `count(g)`** — the
//! number of object regions intersecting the cell — with cell id as the
//! deterministic tie-break.

use crate::signatures::{prefix_len, suffix_sums};
use crate::ObjectStore;
use seal_geom::{Grid, GridCell, Rect};
use std::collections::HashMap;

/// A grid cell with its overlap weight, in global grid order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridElement {
    /// Linear cell id (row-major within the scheme's grid).
    pub cell: u64,
    /// Weight `w(g|·) = |g ∩ R|`.
    pub weight: f64,
}

/// A spatial signature: cells sorted by the global grid order, with
/// suffix bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSignature {
    elements: Vec<GridElement>,
    suffix: Vec<f64>,
}

impl GridSignature {
    /// All elements in global order.
    #[inline]
    pub fn elements(&self) -> &[GridElement] {
        &self.elements
    }

    /// The Lemma 3 bound for position `i`.
    #[inline]
    pub fn bound(&self, i: usize) -> f64 {
        self.suffix[i]
    }

    /// The Lemma 2 prefix for threshold `c`.
    pub fn prefix(&self, c: f64) -> &[GridElement] {
        &self.elements[..prefix_len(&self.suffix, c)]
    }

    /// Iterates `(element, bound)` pairs.
    pub fn elements_with_bounds(&self) -> impl Iterator<Item = (GridElement, f64)> + '_ {
        self.elements
            .iter()
            .copied()
            .zip(self.suffix.iter().copied())
    }
}

/// The corpus-level grid signature scheme: the grid itself plus the
/// `count(g)` statistics that define the global order.
#[derive(Debug, Clone)]
pub struct GridScheme {
    grid: Grid,
    /// `count(g)`: number of object regions intersecting each non-empty
    /// cell. Cells absent from the map have count 0.
    counts: HashMap<u64, u32>,
}

impl GridScheme {
    /// Builds the scheme over a store with the given granularity
    /// (`side × side` cells).
    ///
    /// # Panics
    /// If `side == 0` (the store's space is guaranteed non-degenerate).
    pub fn build(store: &ObjectStore, side: u32) -> Self {
        let grid = Grid::new(store.space(), side).expect("store space is non-degenerate");
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for o in store.objects() {
            for ov in grid.overlaps(&o.region) {
                *counts.entry(ov.cell.linear(side)).or_insert(0) += 1;
            }
        }
        GridScheme { grid, counts }
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Granularity (cells per side).
    #[inline]
    pub fn side(&self) -> u32 {
        self.grid.side()
    }

    /// `count(g)` for a cell (0 when no region touches it).
    #[inline]
    pub fn count(&self, cell: u64) -> u32 {
        self.counts.get(&cell).copied().unwrap_or(0)
    }

    /// The signature of a region: intersecting cells with overlap
    /// weights, sorted ascending by `count(g)` then cell id.
    pub fn signature(&self, region: &Rect) -> GridSignature {
        let side = self.side();
        let mut elements: Vec<GridElement> = self
            .grid
            .overlaps(region)
            .map(|ov| GridElement {
                cell: ov.cell.linear(side),
                weight: ov.area,
            })
            .collect();
        elements.sort_by(|a, b| {
            self.count(a.cell)
                .cmp(&self.count(b.cell))
                .then(a.cell.cmp(&b.cell))
        });
        let suffix = suffix_sums(&elements.iter().map(|e| e.weight).collect::<Vec<f64>>());
        GridSignature { elements, suffix }
    }

    /// The rectangle of a cell (diagnostics / tests).
    pub fn cell_rect(&self, cell: u64) -> Rect {
        self.grid
            .cell_rect(GridCell::from_linear(cell, self.side()))
    }

    /// Bytes used by the count statistics (part of index accounting).
    pub fn size_bytes(&self) -> usize {
        self.counts.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;

    #[test]
    fn counts_cover_all_objects() {
        let (store, _q) = figure1_store();
        let scheme = GridScheme::build(&store, 4);
        // Every object intersects at least one cell, and the total count
        // equals the sum of per-object cell counts.
        let total: u32 = scheme.counts.values().sum();
        let expect: u64 = store
            .objects()
            .iter()
            .map(|o| scheme.grid().overlap_count(&o.region))
            .sum();
        assert_eq!(u64::from(total), expect);
    }

    #[test]
    fn signature_weights_sum_to_clipped_area() {
        let (store, q) = figure1_store();
        let scheme = GridScheme::build(&store, 8);
        let sig = scheme.signature(&q.region);
        let total: f64 = sig.elements().iter().map(|e| e.weight).sum();
        let clipped = q.region.intersection_area(&store.space());
        assert!((total - clipped).abs() < 1e-9);
    }

    #[test]
    fn signature_sorted_by_ascending_count() {
        let (store, q) = figure1_store();
        let scheme = GridScheme::build(&store, 4);
        let sig = scheme.signature(&q.region);
        let counts: Vec<u32> = sig
            .elements()
            .iter()
            .map(|e| scheme.count(e.cell))
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn prefix_obeys_lemma2() {
        let (store, q) = figure1_store();
        let scheme = GridScheme::build(&store, 8);
        let sig = scheme.signature(&q.region);
        let c = 0.25 * q.region.area();
        let p = sig.prefix(c);
        let dropped: f64 = sig.elements()[p.len()..].iter().map(|e| e.weight).sum();
        assert!(dropped < c);
        if p.len() < sig.elements().len() {
            let one_more: f64 = sig.elements()[p.len() - 1..].iter().map(|e| e.weight).sum();
            assert!(one_more >= c, "prefix not minimal");
        }
    }

    #[test]
    fn bounds_nonincreasing() {
        let (store, q) = figure1_store();
        let scheme = GridScheme::build(&store, 16);
        let sig = scheme.signature(&q.region);
        for i in 1..sig.elements().len() {
            assert!(sig.bound(i - 1) >= sig.bound(i));
        }
    }

    #[test]
    fn degenerate_region_signature() {
        let (store, _q) = figure1_store();
        let scheme = GridScheme::build(&store, 4);
        let p = Rect::new(50.0, 50.0, 50.0, 50.0).unwrap();
        let sig = scheme.signature(&p);
        assert_eq!(sig.elements().len(), 1);
        assert_eq!(sig.elements()[0].weight, 0.0);
        // With threshold 0 (degenerate query area) the prefix keeps it.
        assert_eq!(sig.prefix(0.0).len(), 1);
    }

    #[test]
    fn scheme_size_accounting() {
        let (store, _q) = figure1_store();
        let scheme = GridScheme::build(&store, 4);
        assert!(scheme.size_bytes() > 0);
    }
}
