//! Hash-based hybrid signatures (Section 5.1, Definition 5).
//!
//! A hybrid signature element is a `(token, grid-cell)` pair hashed into
//! a bucket: `SH(o) = {h = (t, g) | t ∈ ST(o), g ∈ SR(o)}`. The paper
//! constrains the number of hash buckets "to avoid generating too many
//! inverted lists"; we hash `(t, g)` with a 64-bit mixer and optionally
//! reduce modulo a bucket count. Bucket collisions merge lists, which
//! can only *add* candidates — the filter stays a safe superset.

use seal_text::TokenId;

/// How `(token, cell)` pairs map to inverted-list keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketScheme {
    /// Full 64-bit hash (collisions astronomically unlikely; list count
    /// ≈ distinct pairs). This is the "unconstrained" configuration.
    Full,
    /// Hash reduced modulo a bucket count (the paper's index-size
    /// constraint).
    Buckets(u64),
}

impl BucketScheme {
    /// The inverted-list key of a `(token, cell)` pair.
    #[inline]
    pub fn key(self, token: TokenId, cell: u64) -> u64 {
        let h = mix(((u64::from(token.0)) << 36) ^ cell.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15);
        match self {
            BucketScheme::Full => h,
            BucketScheme::Buckets(m) => h % m.max(1),
        }
    }

    /// Number of possible keys (`None` for the full 64-bit space).
    pub fn bucket_count(self) -> Option<u64> {
        match self {
            BucketScheme::Full => None,
            BucketScheme::Buckets(m) => Some(m.max(1)),
        }
    }
}

/// SplitMix64 finalizer — a fast, well-distributed 64-bit mixer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_keys_distinguish_pairs() {
        let s = BucketScheme::Full;
        let a = s.key(TokenId(1), 10);
        let b = s.key(TokenId(1), 11);
        let c = s.key(TokenId(2), 10);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn keys_are_deterministic() {
        let s = BucketScheme::Full;
        assert_eq!(s.key(TokenId(7), 99), s.key(TokenId(7), 99));
    }

    #[test]
    fn bucketed_keys_stay_in_range() {
        let s = BucketScheme::Buckets(1000);
        for t in 0..50u32 {
            for g in 0..50u64 {
                assert!(s.key(TokenId(t), g) < 1000);
            }
        }
    }

    #[test]
    fn bucket_count() {
        assert_eq!(BucketScheme::Full.bucket_count(), None);
        assert_eq!(BucketScheme::Buckets(64).bucket_count(), Some(64));
        assert_eq!(BucketScheme::Buckets(0).bucket_count(), Some(1));
    }

    #[test]
    fn hashing_spreads_buckets() {
        // 10k pairs into 256 buckets: every bucket should be hit.
        let s = BucketScheme::Buckets(256);
        let mut hit = vec![false; 256];
        for t in 0..100u32 {
            for g in 0..100u64 {
                hit[s.key(TokenId(t), g) as usize] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "hash leaves buckets unused");
    }
}
