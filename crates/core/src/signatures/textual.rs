//! Textual signatures (Section 3.2) ordered for prefix filtering
//! (Section 4.2's "Sig-Filter+ can be also applied to textual
//! signatures").

use crate::signatures::{prefix_len, suffix_sums};
use seal_text::{GlobalTokenOrder, TokenId, TokenSet, TokenWeights};

/// A token with its idf weight, in global (descending-idf) order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextualElement {
    /// The token.
    pub token: TokenId,
    /// Its weight `w(t)`.
    pub weight: f64,
}

/// A textual signature: the object's tokens sorted by the global order,
/// with weights and Lemma 3 suffix bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct TextualSignature {
    elements: Vec<TextualElement>,
    suffix: Vec<f64>,
}

impl TextualSignature {
    /// Builds the signature of a token set.
    pub fn build<W: TokenWeights>(
        tokens: &TokenSet,
        weights: &W,
        order: &GlobalTokenOrder,
    ) -> Self {
        let mut ids: Vec<TokenId> = tokens.iter().collect();
        order.sort(&mut ids);
        let elements: Vec<TextualElement> = ids
            .into_iter()
            .map(|token| TextualElement {
                token,
                weight: weights.weight(token),
            })
            .collect();
        let suffix = suffix_sums(&elements.iter().map(|e| e.weight).collect::<Vec<f64>>());
        TextualSignature { elements, suffix }
    }

    /// All elements in global order.
    #[inline]
    pub fn elements(&self) -> &[TextualElement] {
        &self.elements
    }

    /// The Lemma 3 bound `c_{s_i}(o)` for the element at position `i`.
    #[inline]
    pub fn bound(&self, i: usize) -> f64 {
        self.suffix[i]
    }

    /// Total weight `Σ_{t∈S} w(t)`.
    pub fn total_weight(&self) -> f64 {
        self.suffix.first().copied().unwrap_or(0.0)
    }

    /// The Lemma 2 prefix for threshold `c`.
    pub fn prefix(&self, c: f64) -> &[TextualElement] {
        &self.elements[..prefix_len(&self.suffix, c)]
    }

    /// Iterates `(element, bound)` pairs — what index construction
    /// pushes into the inverted lists.
    pub fn elements_with_bounds(&self) -> impl Iterator<Item = (TextualElement, f64)> + '_ {
        self.elements
            .iter()
            .copied()
            .zip(self.suffix.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seal_text::IdfWeights;

    fn fig1() -> (IdfWeights, GlobalTokenOrder) {
        let w = IdfWeights::from_values(vec![0.8, 0.3, 0.8, 1.3, 0.6]);
        let order = GlobalTokenOrder::by_descending_weight(5, &w);
        (w, order)
    }

    #[test]
    fn signature_is_sorted_by_descending_idf() {
        let (w, order) = fig1();
        // o2's tokens {t1,t2,t3} = ids {0,1,2}; descending idf with id
        // tie-break: t1(0.8), t3(0.8), t2(0.3) — matching Figure 4's
        // ST(o2) = {t1, t3, t2}.
        let s = TextualSignature::build(
            &TokenSet::from_ids([TokenId(0), TokenId(1), TokenId(2)]),
            &w,
            &order,
        );
        let toks: Vec<TokenId> = s.elements().iter().map(|e| e.token).collect();
        assert_eq!(toks, vec![TokenId(0), TokenId(2), TokenId(1)]);
    }

    #[test]
    fn bounds_are_suffix_weights() {
        let (w, order) = fig1();
        let s = TextualSignature::build(
            &TokenSet::from_ids([TokenId(0), TokenId(1), TokenId(2)]),
            &w,
            &order,
        );
        // Suffix sums over (0.8, 0.8, 0.3): 1.9, 1.1, 0.3.
        assert!((s.bound(0) - 1.9).abs() < 1e-12);
        assert!((s.bound(1) - 1.1).abs() < 1e-12);
        assert!((s.bound(2) - 0.3).abs() < 1e-12);
        assert!((s.total_weight() - 1.9).abs() < 1e-12);
    }

    #[test]
    fn prefix_for_figure4_threshold() {
        let (w, order) = fig1();
        let s = TextualSignature::build(
            &TokenSet::from_ids([TokenId(0), TokenId(1), TokenId(2)]),
            &w,
            &order,
        );
        // cT = 0.57: dropping t2 alone loses 0.3 < 0.57, dropping
        // {t3, t2} loses 1.1 ≥ 0.57 — prefix is {t1, t3}, exactly the
        // lists Figure 4 probes ("we only retrieve inverted lists of t1
        // and t3").
        let p = s.prefix(0.57);
        let toks: Vec<TokenId> = p.iter().map(|e| e.token).collect();
        assert_eq!(toks, vec![TokenId(0), TokenId(2)]);
    }

    #[test]
    fn empty_signature() {
        let (w, order) = fig1();
        let s = TextualSignature::build(&TokenSet::empty(), &w, &order);
        assert!(s.elements().is_empty());
        assert_eq!(s.total_weight(), 0.0);
        assert!(s.prefix(0.1).is_empty());
    }

    #[test]
    fn elements_with_bounds_pairs_up() {
        let (w, order) = fig1();
        let s = TextualSignature::build(&TokenSet::from_ids([TokenId(3), TokenId(4)]), &w, &order);
        let pairs: Vec<(TokenId, f64)> = s
            .elements_with_bounds()
            .map(|(e, b)| (e.token, b))
            .collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, TokenId(3));
        assert!((pairs[0].1 - 1.9).abs() < 1e-12);
        assert!((pairs[1].1 - 0.6).abs() < 1e-12);
    }
}
